// Close links across target systems — model independence in action.
//
// The ECB close-links component (Section 2.1: "peculiar forms of financial
// conflict of interest between graph entities involved in the issuance and
// use as collateral of asset-backed securities") runs unchanged against
// three deployments of the same extensional component: the property-graph
// target, the relational target, and a CSV round trip — and yields the
// same CLOSE_LINK pairs everywhere.
//
// Run: build/examples/close_links

#include <cstdio>
#include <set>
#include <string>

#include "finkg/company_kg.h"
#include "instance/pipeline.h"
#include "instance/rel_bridge.h"
#include "translate/csv_io.h"

namespace {

using namespace kgm;

pg::PropertyGraph Scenario() {
  // An asset-backed-security-style web: the originator (bankA) owns the
  // special-purpose vehicle indirectly through two intermediaries, and a
  // fund holds >= 20% of both bankA and the servicer.
  pg::PropertyGraph g;
  auto biz = [&g](const char* code) {
    return g.AddNode(
        std::vector<std::string>{"Business", "LegalPerson", "Person"},
        {{"fiscalCode", Value(code)},
         {"businessName", Value(code)},
         {"legalNature", Value("spa")},
         {"shareholdingCapital", Value(1000.0)}});
  };
  pg::NodeId bank_a = biz("bankA");
  pg::NodeId mid1 = biz("mid1");
  pg::NodeId mid2 = biz("mid2");
  pg::NodeId spv = biz("spv");
  pg::NodeId servicer = biz("servicer");
  pg::NodeId fund = biz("fund");
  auto owns = [&g](pg::NodeId f, pg::NodeId t, double pct) {
    g.AddEdge(f, t, "OWNS", {{"percentage", Value(pct)}});
  };
  owns(bank_a, mid1, 0.8);
  owns(mid1, mid2, 0.6);
  owns(mid2, spv, 0.5);       // bankA -> spv indirectly: 0.8*0.6*0.5 = 24%
  owns(fund, bank_a, 0.25);   // common third party ...
  owns(fund, servicer, 0.3);  // ... links bankA and servicer
  owns(bank_a, servicer, 0.05);  // direct 5%: below the threshold
  return g;
}

std::set<std::pair<std::string, std::string>> GraphCloseLinks(
    const pg::PropertyGraph& g) {
  std::set<std::pair<std::string, std::string>> out;
  for (pg::EdgeId e : g.EdgesWithLabel("CLOSE_LINK")) {
    out.emplace(
        g.NodeProperty(g.edge(e).from, "fiscalCode")->AsString(),
        g.NodeProperty(g.edge(e).to, "fiscalCode")->AsString());
  }
  return out;
}

void Print(const char* target,
           const std::set<std::pair<std::string, std::string>>& links) {
  std::printf("%s (%zu close links):\n", target, links.size());
  for (const auto& [from, to] : links) {
    std::printf("  %s <-> %s\n", from.c_str(), to.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::SuperSchema schema = finkg::CompanyKgSchema();

  // Target 1: property graph.
  pg::PropertyGraph graph_target = Scenario();
  auto graph_stats = instance::Materialize(
      schema, finkg::kCloseLinksProgram, &graph_target);
  if (!graph_stats.ok()) {
    std::printf("graph target failed: %s\n",
                graph_stats.status().ToString().c_str());
    return 1;
  }
  auto graph_links = GraphCloseLinks(graph_target);
  Print("property-graph target", graph_links);

  // Target 2: relational database (Figure 8 deployment).
  auto db = instance::GraphToRelational(schema, Scenario());
  if (!db.ok()) {
    std::printf("relational export failed: %s\n",
                db.status().ToString().c_str());
    return 1;
  }
  auto rel_stats = instance::MaterializeRelational(
      schema, finkg::kCloseLinksProgram, &*db);
  if (!rel_stats.ok()) {
    std::printf("relational target failed: %s\n",
                rel_stats.status().ToString().c_str());
    return 1;
  }
  std::set<std::pair<std::string, std::string>> rel_links;
  const rel::Table* close = db->GetTable("close_link");
  int from = close->schema().ColumnIndex("from_person_fiscal_code");
  int to = close->schema().ColumnIndex("to_person_fiscal_code");
  for (const auto& row : close->rows()) {
    rel_links.emplace(row[from].AsString(), row[to].AsString());
  }
  Print("relational target", rel_links);

  // Target 3: CSV round trip, then materialize.
  auto files = translate::ExportCsv(schema, Scenario());
  if (!files.ok()) return 1;
  auto csv_target = translate::ImportCsv(schema, *files);
  if (!csv_target.ok()) {
    std::printf("CSV import failed: %s\n",
                csv_target.status().ToString().c_str());
    return 1;
  }
  auto csv_stats = instance::Materialize(
      schema, finkg::kCloseLinksProgram, &*csv_target);
  if (!csv_stats.ok()) return 1;
  auto csv_links = GraphCloseLinks(*csv_target);
  Print("CSV round-trip target", csv_links);

  bool agree = graph_links == rel_links && rel_links == csv_links;
  std::printf("all three targets agree: %s\n", agree ? "YES" : "NO");
  std::printf(
      "\nexpected: bankA<->spv (indirect 24%%), fund<->bankA (25%%),\n"
      "fund<->servicer (30%%), bankA<->servicer (common third party),\n"
      "and NOT bankA->servicer via its direct 5%% stake alone.\n");
  return agree ? 0 : 1;
}
