// The Company KG of the Central Bank of Italy, end to end (Sections 2-6):
// design (Figure 4), synthetic register data, and the materialization of
// every intensional component through Algorithm 2, with per-phase timing.
//
// Run: build/examples/company_kg [num_companies num_persons]

#include <cstdio>
#include <cstdlib>

#include "analytics/graph_stats.h"
#include "core/gsl.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"

int main(int argc, char** argv) {
  using namespace kgm;

  finkg::GeneratorConfig config;
  config.num_companies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  config.num_persons = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;
  config.seed = 2022;

  // 1. The conceptual design (Figure 4).
  core::SuperSchema schema = finkg::CompanyKgSchema();
  std::printf("%s\n", schema.Summary().c_str());
  std::printf("%s\n", core::RenderGslAscii(schema).c_str());

  // 2. Synthetic register data standing in for the Chambers of Commerce
  //    source, with the Section 2.1 statistics.
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  std::printf("generated %zu holdings over %zu entities\n\n",
              net.holdings().size(), net.num_entities());
  analytics::GraphStatsReport stats =
      analytics::ComputeGraphStats(net.ToDigraph());
  std::printf("%s\n", analytics::RenderStatsTable(stats).c_str());

  // 3. Materialize the intensional components through Algorithm 2.
  pg::PropertyGraph data = net.ToInstanceGraph();
  struct Step {
    const char* name;
    const char* program;
  };
  const Step steps[] = {
      {"OWNS (derived ownership)", finkg::kOwnsProgram},
      {"CONTROLS (company control, Example 4.1)", finkg::kControlProgram},
      {"numberOfStakeholders", finkg::kStakeholdersProgram},
      {"families / IS_RELATED_TO", finkg::kFamilyProgram},
      {"close links (ECB)", finkg::kCloseLinksProgram},
  };
  for (const Step& step : steps) {
    auto result = instance::Materialize(schema, step.program, &data);
    if (!result.ok()) {
      std::printf("%s FAILED: %s\n", step.name,
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-42s load %.3fs  reason %.3fs  flush %.3fs  "
        "(+%zu edges, +%zu nodes, %zu prop updates)\n",
        step.name, result->load_seconds, result->reason_seconds,
        result->flush_seconds, result->new_edges, result->new_nodes,
        result->updated_properties);
  }

  // 4. Query the result.
  std::printf("\nderived edge counts:\n");
  for (const char* label : {"OWNS", "CONTROLS", "BELONGS_TO_FAMILY",
                            "IS_RELATED_TO", "FAMILY_OWNS", "CLOSE_LINK"}) {
    std::printf("  %-18s %zu\n", label, data.EdgesWithLabel(label).size());
  }
  size_t with_stakeholders = 0;
  for (pg::NodeId id : data.NodesWithLabel("Business")) {
    if (data.NodeProperty(id, "numberOfStakeholders") != nullptr) {
      ++with_stakeholders;
    }
  }
  std::printf("  businesses with numberOfStakeholders: %zu\n",
              with_stakeholders);

  // 5. Show a concrete control chain, if any non-self control exists.
  for (pg::EdgeId e : data.EdgesWithLabel("CONTROLS")) {
    const pg::Edge& edge = data.edge(e);
    if (edge.from == edge.to) continue;
    const Value* from = data.NodeProperty(edge.from, "businessName");
    const Value* to = data.NodeProperty(edge.to, "businessName");
    if (from != nullptr && to != nullptr) {
      std::printf("\nexample control edge: %s CONTROLS %s\n",
                  from->ToString().c_str(), to->ToString().c_str());
      break;
    }
  }
  return 0;
}
