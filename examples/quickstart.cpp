// Quickstart: design a small knowledge graph at super-model level, render
// the GSL diagram, and deploy it to three target models (property graph,
// relational, CSV) through SSST — the 10-minute tour of KGModel.
//
// Run: build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/gsl.h"
#include "core/metamodel.h"
#include "core/superschema.h"
#include "rel/relational.h"
#include "translate/enforce.h"
#include "translate/ssst.h"

int main() {
  using namespace kgm;

  std::printf("== KGModel quickstart ==\n\n%s\n",
              core::RenderModelingStack().c_str());

  // 1. Design: a miniature library domain at super-model level.
  core::SuperSchema schema("LibraryKG", 42);
  schema.AddNode("Person",
                 {core::IdAttr("memberId"), core::Attr("name")});
  schema.AddNode("Author", {core::OptAttr("penName")});
  schema.AddNode("Member", {core::Attr("joined", core::AttrType::kDate)});
  schema.AddGeneralization("Person", {"Author", "Member"},
                           /*total=*/false, /*disjoint=*/false);
  schema.AddNode("Book", {core::IdAttr("isbn"), core::Attr("title")});
  schema.AddEdge("WROTE", "Author", "Book");
  schema.AddEdge("BORROWED", "Member", "Book",
                 core::Cardinality::ZeroOrMore(),
                 core::Cardinality::ZeroOrMore(),
                 {core::Attr("on", core::AttrType::kDate)});
  schema.AddIntensionalEdge("READS_SAME_AUTHOR", "Member", "Member");
  Status valid = schema.Validate();
  std::printf("schema validation: %s\n\n", valid.ToString().c_str());
  if (!valid.ok()) return 1;

  // 2. The GSL diagram (Gamma_SM applied to the super-schema).
  std::printf("%s\n", core::RenderGslAscii(schema).c_str());

  // 3. Deploy to the property-graph model (Section 5.2) via the
  //    declarative MetaLog mapping.
  auto pg_schema = translate::TranslateToPropertyGraph(schema);
  if (!pg_schema.ok()) {
    std::printf("PG translation failed: %s\n",
                pg_schema.status().ToString().c_str());
    return 1;
  }
  std::printf("== PG model schema (Eliminate+Copy via MetaLog) ==\n%s\n",
              pg_schema->ToString().c_str());
  std::printf("== Cypher-style constraints ==\n%s\n",
              translate::RenderCypherConstraints(*pg_schema).c_str());

  // 4. Deploy to the relational model (Section 5.3).
  auto tables = translate::TranslateToRelational(schema);
  if (!tables.ok()) {
    std::printf("relational translation failed: %s\n",
                tables.status().ToString().c_str());
    return 1;
  }
  std::printf("== Relational DDL ==\n%s",
              rel::RenderSqlDdl(*tables).c_str());

  // 5. CSV serialization and RDF-S document.
  std::printf("== CSV headers ==\n%s\n",
              translate::RenderCsvHeaders(translate::TranslateToCsv(schema))
                  .c_str());
  std::printf("== RDF-S (Turtle) ==\n%s\n",
              translate::RenderRdfs(schema).c_str());

  // 6. The Gamma_SM rendering table (Figure 3).
  std::printf("== Super-model rendering table (Gamma_SM) ==\n");
  for (const core::GraphemeEntry& e : core::SuperModelRenderingTable()) {
    std::printf("  %-22s %-55s %s\n", e.construct.c_str(),
                e.attributes.c_str(),
                e.has_grapheme ? e.grapheme.c_str() : "(no notation)");
  }
  return 0;
}
