// kgmctl — a command-line workflow around the Company KG.
//
//   kgmctl stats [companies persons seed]
//       Generate a synthetic shareholding network and print the
//       Section 2.1 statistics table.
//   kgmctl schema <gsl|dot|ddl|cypher|rdfs|csv|pg>
//       Render the Figure 4 super-schema in the requested target form.
//   kgmctl export <dir> [companies persons seed]
//       Generate an instance and write it as CSV files into <dir>.
//   kgmctl materialize <dir> <owns|control|stakeholders|family|closelinks|all>
//       Import the CSV instance from <dir>, validate it, materialize the
//       requested intensional component(s) through Algorithm 2, and write
//       the enriched instance back.
//
// Run: build/examples/kgmctl <command> ...

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analytics/graph_stats.h"
#include "core/gsl.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "rel/relational.h"
#include "translate/csv_io.h"
#include "translate/enforce.h"
#include "translate/ssst.h"
#include "translate/validate.h"

namespace {

using namespace kgm;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  kgmctl stats [companies persons seed]\n"
               "  kgmctl schema <gsl|dot|ddl|cypher|rdfs|csv|pg>\n"
               "  kgmctl export <dir> [companies persons seed]\n"
               "  kgmctl materialize <dir> "
               "<owns|control|stakeholders|family|closelinks|all>\n");
  return 2;
}

finkg::GeneratorConfig ConfigFromArgs(int argc, char** argv, int base) {
  finkg::GeneratorConfig config;
  config.num_companies = 300;
  config.num_persons = 500;
  if (argc > base) config.num_companies = std::strtoul(argv[base], nullptr, 10);
  if (argc > base + 1) {
    config.num_persons = std::strtoul(argv[base + 1], nullptr, 10);
  }
  if (argc > base + 2) config.seed = std::strtoul(argv[base + 2], nullptr, 10);
  return config;
}

int CmdStats(int argc, char** argv) {
  finkg::GeneratorConfig config = ConfigFromArgs(argc, argv, 2);
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  analytics::GraphStatsReport report =
      analytics::ComputeGraphStats(net.ToDigraph());
  std::printf("%s", analytics::RenderStatsTable(report).c_str());
  return 0;
}

int CmdSchema(const std::string& format) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  if (format == "gsl") {
    std::printf("%s", core::RenderGslAscii(schema).c_str());
  } else if (format == "dot") {
    std::printf("%s", core::RenderGslDot(schema).c_str());
  } else if (format == "ddl") {
    auto tables = translate::TranslateToRelational(schema);
    if (!tables.ok()) return 1;
    std::printf("%s", rel::RenderSqlDdl(*tables).c_str());
  } else if (format == "cypher") {
    auto pg_schema = translate::TranslateToPropertyGraph(schema);
    if (!pg_schema.ok()) return 1;
    std::printf("%s", translate::RenderCypherConstraints(*pg_schema).c_str());
  } else if (format == "rdfs") {
    std::printf("%s", translate::RenderRdfs(schema).c_str());
  } else if (format == "csv") {
    std::printf("%s", translate::RenderCsvHeaders(
                          translate::TranslateToCsv(schema)).c_str());
  } else if (format == "pg") {
    auto pg_schema = translate::TranslateToPropertyGraph(schema);
    if (!pg_schema.ok()) {
      std::fprintf(stderr, "%s\n",
                   pg_schema.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", pg_schema->ToString().c_str());
  } else {
    return Usage();
  }
  return 0;
}

Status WriteCsvDir(const core::SuperSchema& schema,
                   const pg::PropertyGraph& data, const std::string& dir) {
  KGM_ASSIGN_OR_RETURN(auto files, translate::ExportCsv(schema, data));
  for (const auto& [name, content] : files) {
    std::ofstream out(dir + "/" + name);
    if (!out) return Internal("cannot write " + dir + "/" + name);
    out << content;
  }
  return OkStatus();
}

Result<pg::PropertyGraph> ReadCsvDir(const core::SuperSchema& schema,
                                     const std::string& dir) {
  std::map<std::string, std::string> files;
  auto slurp = [&dir, &files](const std::string& name) {
    std::ifstream in(dir + "/" + name);
    if (!in) return;  // file absent: that type has no instances
    std::ostringstream content;
    content << in.rdbuf();
    files[name] = content.str();
  };
  for (const auto& file : translate::TranslateToCsv(schema)) {
    slurp(file.file_name);
  }
  if (files.empty()) {
    return NotFound("no CSV files found in " + dir);
  }
  return translate::ImportCsv(schema, files);
}

int CmdExport(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string dir = argv[2];
  finkg::GeneratorConfig config = ConfigFromArgs(argc, argv, 3);
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  core::SuperSchema schema = finkg::CompanyKgSchema();
  Status s = WriteCsvDir(schema, net.ToInstanceGraph(), dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu entities / %zu holdings as CSV into %s\n",
              net.num_entities(), net.holdings().size(), dir.c_str());
  return 0;
}

int CmdMaterialize(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string dir = argv[2];
  std::string component = argv[3];
  core::SuperSchema schema = finkg::CompanyKgSchema();

  auto data = ReadCsvDir(schema, dir);
  if (!data.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %zu nodes / %zu edges from %s\n",
              data->num_nodes(), data->num_edges(), dir.c_str());

  // Validate before reasoning (Section 2.2 enforcement).
  auto pg_schema = translate::TranslateToPropertyGraph(schema);
  if (!pg_schema.ok()) return 1;
  translate::ValidationReport report =
      translate::ValidateInstance(schema, *pg_schema, *data);
  std::printf("%s", report.ToString().c_str());
  if (!report.ok()) {
    std::fprintf(stderr, "instance does not conform; aborting\n");
    return 1;
  }

  struct Step {
    const char* key;
    const char* program;
  };
  const Step steps[] = {
      {"owns", finkg::kOwnsProgram},
      {"control", finkg::kControlProgram},
      {"stakeholders", finkg::kStakeholdersProgram},
      {"family", finkg::kFamilyProgram},
      {"closelinks", finkg::kCloseLinksProgram},
  };
  bool ran = false;
  for (const Step& step : steps) {
    if (component != "all" && component != step.key) continue;
    ran = true;
    auto stats = instance::Materialize(schema, step.program, &*data);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", step.key,
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-14s load %.3fs reason %.3fs flush %.3fs  (+%zu edges, +%zu "
        "nodes, %zu updates)\n",
        step.key, stats->load_seconds, stats->reason_seconds,
        stats->flush_seconds, stats->new_edges, stats->new_nodes,
        stats->updated_properties);
  }
  if (!ran) return Usage();

  Status s = WriteCsvDir(schema, *data, dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("enriched instance written back to %s\n", dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "schema") {
    return argc >= 3 ? CmdSchema(argv[2]) : Usage();
  }
  if (command == "export") return CmdExport(argc, argv);
  if (command == "materialize") return CmdMaterialize(argc, argv);
  return Usage();
}
