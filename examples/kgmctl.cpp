// kgmctl — a command-line workflow around the Company KG.
//
//   kgmctl stats [companies persons seed]
//       Generate a synthetic shareholding network and print the
//       Section 2.1 statistics table.
//   kgmctl schema <gsl|dot|ddl|cypher|rdfs|csv|pg>
//       Render the Figure 4 super-schema in the requested target form.
//   kgmctl export <dir> [companies persons seed]
//       Generate an instance and write it as CSV files into <dir>.
//   kgmctl materialize <dir> <owns|control|stakeholders|family|closelinks|all>
//       Import the CSV instance from <dir>, validate it, materialize the
//       requested intensional component(s) through Algorithm 2, and write
//       the enriched instance back.
//   kgmctl serve [--port N]
//       Run a KgService over a line-oriented protocol (stdin, or a TCP
//       socket with --port; one thread per connection).  Commands:
//         publish [companies persons seed]   generate + publish an epoch
//         apply-delta [batch] [seed]         stream a shareholding-update
//                                            batch into a delta epoch
//         query <output> <m|v> <program>     MetaLog (m) or Vadalog (v)
//         pquery <output> <m|v> <bound> <program>
//                                            point query: <bound> is a CSV
//                                            binding (`_` = free position)
//                                            routed through magic sets
//         stats | epoch | quit
//   kgmctl lint [--json] [--vadalog|--metalog] [--schema company|none] <file>...
//       Run the static-analysis pipeline over MetaLog/Vadalog programs and
//       print source-located diagnostics.  Exit code is the worst severity:
//       0 clean/notes, 1 warnings, 2 errors.
//   kgmctl explain [--json] [--threads N] <program>...
//       Evaluate each program against a demo Company-KG instance twice —
//       plan_mode off and greedy — print the cost-based join plans the
//       planner chose (order, index-vs-scan, estimates, probe savings),
//       and verify the two materializations are bit-identical.  Programs
//       run in the given order against one shared instance, so
//       prerequisites compose (e.g. `explain owns.mlog closelinks.mlog`).
//       Exit code 1 if any differential fails.
//   kgmctl query [--json] [--threads N] [--output PRED] --bound a1,a2,... <program>
//       Answer a point query against the same demo instance `explain`
//       uses: the binding (CSV of constants, `_` = free position) routes
//       the evaluation through the magic-sets rewrite / QSQR dispatcher.
//       Prints the chosen route, the rewrite summary (adorned and magic
//       predicates, full-evaluation predicates) and the probe cost next
//       to the materialize-then-filter baseline.
//
// Run: build/examples/kgmctl <command> ...

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analytics/graph_stats.h"
#include "core/gsl.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "finkg/update_feed.h"
#include "instance/pipeline.h"
#include "lint/lint.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "metalog/prepared.h"
#include "rel/relational.h"
#include "service/service.h"
#include "service/wire.h"
#include "translate/csv_io.h"
#include "translate/enforce.h"
#include "translate/ssst.h"
#include "translate/validate.h"
#include "vadalog/magic/point_query.h"
#include "vadalog/parser.h"
#include "vadalog/planner.h"

namespace {

using namespace kgm;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  kgmctl stats [companies persons seed]\n"
               "  kgmctl schema <gsl|dot|ddl|cypher|rdfs|csv|pg>\n"
               "  kgmctl export <dir> [companies persons seed]\n"
               "  kgmctl materialize <dir> "
               "<owns|control|stakeholders|family|closelinks|all>\n"
               "  kgmctl serve [--port N]\n"
               "  kgmctl lint [--json] [--vadalog|--metalog] "
               "[--schema company|none] <file>...\n"
               "  kgmctl explain [--json] [--threads N] <program>...\n"
               "  kgmctl query [--json] [--threads N] [--output PRED] "
               "--bound a1,a2,... <program>\n");
  return 2;
}

finkg::GeneratorConfig ConfigFromArgs(int argc, char** argv, int base) {
  finkg::GeneratorConfig config;
  config.num_companies = 300;
  config.num_persons = 500;
  if (argc > base) config.num_companies = std::strtoul(argv[base], nullptr, 10);
  if (argc > base + 1) {
    config.num_persons = std::strtoul(argv[base + 1], nullptr, 10);
  }
  if (argc > base + 2) config.seed = std::strtoul(argv[base + 2], nullptr, 10);
  return config;
}

int CmdStats(int argc, char** argv) {
  finkg::GeneratorConfig config = ConfigFromArgs(argc, argv, 2);
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  analytics::GraphStatsReport report =
      analytics::ComputeGraphStats(net.ToDigraph());
  std::printf("%s", analytics::RenderStatsTable(report).c_str());
  return 0;
}

int CmdSchema(const std::string& format) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  if (format == "gsl") {
    std::printf("%s", core::RenderGslAscii(schema).c_str());
  } else if (format == "dot") {
    std::printf("%s", core::RenderGslDot(schema).c_str());
  } else if (format == "ddl") {
    auto tables = translate::TranslateToRelational(schema);
    if (!tables.ok()) return 1;
    std::printf("%s", rel::RenderSqlDdl(*tables).c_str());
  } else if (format == "cypher") {
    auto pg_schema = translate::TranslateToPropertyGraph(schema);
    if (!pg_schema.ok()) return 1;
    std::printf("%s", translate::RenderCypherConstraints(*pg_schema).c_str());
  } else if (format == "rdfs") {
    std::printf("%s", translate::RenderRdfs(schema).c_str());
  } else if (format == "csv") {
    std::printf("%s", translate::RenderCsvHeaders(
                          translate::TranslateToCsv(schema)).c_str());
  } else if (format == "pg") {
    auto pg_schema = translate::TranslateToPropertyGraph(schema);
    if (!pg_schema.ok()) {
      std::fprintf(stderr, "%s\n",
                   pg_schema.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", pg_schema->ToString().c_str());
  } else {
    return Usage();
  }
  return 0;
}

Status WriteCsvDir(const core::SuperSchema& schema,
                   const pg::PropertyGraph& data, const std::string& dir) {
  KGM_ASSIGN_OR_RETURN(auto files, translate::ExportCsv(schema, data));
  for (const auto& [name, content] : files) {
    std::ofstream out(dir + "/" + name);
    if (!out) return Internal("cannot write " + dir + "/" + name);
    out << content;
  }
  return OkStatus();
}

Result<pg::PropertyGraph> ReadCsvDir(const core::SuperSchema& schema,
                                     const std::string& dir) {
  std::map<std::string, std::string> files;
  auto slurp = [&dir, &files](const std::string& name) {
    std::ifstream in(dir + "/" + name);
    if (!in) return;  // file absent: that type has no instances
    std::ostringstream content;
    content << in.rdbuf();
    files[name] = content.str();
  };
  for (const auto& file : translate::TranslateToCsv(schema)) {
    slurp(file.file_name);
  }
  if (files.empty()) {
    return NotFound("no CSV files found in " + dir);
  }
  return translate::ImportCsv(schema, files);
}

int CmdExport(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string dir = argv[2];
  finkg::GeneratorConfig config = ConfigFromArgs(argc, argv, 3);
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  core::SuperSchema schema = finkg::CompanyKgSchema();
  Status s = WriteCsvDir(schema, net.ToInstanceGraph(), dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu entities / %zu holdings as CSV into %s\n",
              net.num_entities(), net.holdings().size(), dir.c_str());
  return 0;
}

int CmdMaterialize(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string dir = argv[2];
  std::string component = argv[3];
  core::SuperSchema schema = finkg::CompanyKgSchema();

  auto data = ReadCsvDir(schema, dir);
  if (!data.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %zu nodes / %zu edges from %s\n",
              data->num_nodes(), data->num_edges(), dir.c_str());

  // Validate before reasoning (Section 2.2 enforcement).
  auto pg_schema = translate::TranslateToPropertyGraph(schema);
  if (!pg_schema.ok()) return 1;
  translate::ValidationReport report =
      translate::ValidateInstance(schema, *pg_schema, *data);
  std::printf("%s", report.ToString().c_str());
  if (!report.ok()) {
    std::fprintf(stderr, "instance does not conform; aborting\n");
    return 1;
  }

  struct Step {
    const char* key;
    const char* program;
  };
  const Step steps[] = {
      {"owns", finkg::kOwnsProgram},
      {"control", finkg::kControlProgram},
      {"stakeholders", finkg::kStakeholdersProgram},
      {"family", finkg::kFamilyProgram},
      {"closelinks", finkg::kCloseLinksProgram},
  };
  // One prepared cache across components: repeated materializations of the
  // same component (and the shared view structure) compile once.
  metalog::PreparedCache prepared(64);
  instance::MaterializeOptions mat_options;
  mat_options.prepared = &prepared;

  bool ran = false;
  for (const Step& step : steps) {
    if (component != "all" && component != step.key) continue;
    ran = true;
    auto stats = instance::Materialize(schema, step.program, &*data,
                                       mat_options);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", step.key,
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-14s load %.3fs reason %.3fs flush %.3fs  (+%zu edges, +%zu "
        "nodes, %zu updates)\n",
        step.key, stats->load_seconds, stats->reason_seconds,
        stats->flush_seconds, stats->new_edges, stats->new_nodes,
        stats->updated_properties);
  }
  if (!ran) return Usage();

  Status s = WriteCsvDir(schema, *data, dir);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("enriched instance written back to %s\n", dir.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// serve: a KgService behind a line-oriented protocol.

// Handles one protocol line; returns false on `quit`.  Thread-safe: the
// service does its own synchronization, and each connection has its own
// output string.
bool HandleServeLine(service::KgService& svc, const std::string& line,
                     std::string* out) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) {
    return true;
  } else if (cmd == "quit") {
    *out = "bye\n";
    return false;
  } else if (cmd == "epoch") {
    *out = "epoch " + std::to_string(svc.CurrentEpoch()) + "\n";
  } else if (cmd == "stats") {
    *out = svc.Stats().ToJson() + "\n";
  } else if (cmd == "publish") {
    finkg::GeneratorConfig config;
    config.num_companies = 300;
    config.num_persons = 500;
    if (in >> config.num_companies) {
      in >> config.num_persons;
      size_t seed;
      if (in >> seed) config.seed = seed;
    }
    finkg::ShareholdingNetwork net =
        finkg::ShareholdingNetwork::Generate(config);
    uint64_t epoch = svc.Publish(net.ToInstanceGraph());
    *out = "published epoch " + std::to_string(epoch) + "\n";
  } else if (cmd == "apply-delta") {
    // Streams one synthetic shareholding-update batch against the served
    // encoding: deletes live HOLDS rows, inserts fresh ones, publishes a
    // delta epoch that shares every untouched relation with the previous
    // snapshot.
    finkg::UpdateFeedConfig config;
    config.edge_pred = "HOLDS";
    config.seed = svc.CurrentEpoch() + 1;
    in >> config.batch_size;
    in >> config.seed;
    std::shared_ptr<const service::Snapshot> snap = svc.CurrentSnapshot();
    if (snap == nullptr) {
      *out = "error no graph published yet\n";
      return true;
    }
    auto rel = snap->facts.find(config.edge_pred);
    finkg::UpdateFeed feed(
        rel == snap->facts.end() ? nullptr : rel->second.get(), config);
    vadalog::EdbDelta delta = feed.NextBatch();
    size_t dels = 0, inss = 0;
    for (const auto& [pred, ts] : delta.deletes) dels += ts.size();
    for (const auto& [pred, ts] : delta.inserts) inss += ts.size();
    auto epoch = svc.ApplyDelta(delta);
    if (!epoch.ok()) {
      *out = "error " + epoch.status().ToString() + "\n";
      return true;
    }
    *out = "delta epoch " + std::to_string(*epoch) + " (-" +
           std::to_string(dels) + " +" + std::to_string(inss) + " " +
           config.edge_pred + ")\n";
  } else if (cmd == "query") {
    std::string output, lang;
    in >> output >> lang;
    std::string program;
    std::getline(in, program);
    if (output.empty() || (lang != "m" && lang != "v") || program.empty()) {
      *out = "error usage: query <output> <m|v> <program>\n";
      return true;
    }
    service::QueryRequest request;
    request.program = program;
    request.language = lang == "m" ? service::QueryLanguage::kMetaLog
                                   : service::QueryLanguage::kVadalog;
    request.output = output;
    auto result = svc.Query(request);
    if (!result.ok()) {
      *out = "error " + result.status().ToString() + "\n";
      return true;
    }
    std::ostringstream reply;
    reply << "ok epoch=" << result->epoch << " rows=" << result->rows->size()
          << " cache=" << (result->result_cache_hit ? "hit" : "miss")
          << " eval=" << result->eval_seconds << "\n";
    constexpr size_t kMaxRows = 20;
    for (size_t i = 0; i < result->rows->size() && i < kMaxRows; ++i) {
      const vadalog::Tuple& t = (*result->rows)[i];
      for (size_t j = 0; j < t.size(); ++j) {
        reply << (j == 0 ? "" : "\t") << t[j].ToString();
      }
      reply << "\n";
    }
    if (result->rows->size() > kMaxRows) {
      reply << "... (" << result->rows->size() - kMaxRows << " more)\n";
    }
    *out = reply.str();
  } else if (cmd == "pquery") {
    // Point query: like `query`, but with an argument binding routed
    // through the magic-sets / QSQR dispatcher.  The binding is a CSV of
    // constants with `_` for free positions (no spaces inside values over
    // this whitespace-split protocol; use `kgmctl query` for those).
    std::string output, lang, bound;
    in >> output >> lang >> bound;
    std::string program;
    std::getline(in, program);
    if (output.empty() || (lang != "m" && lang != "v") || bound.empty() ||
        program.empty()) {
      *out = "error usage: pquery <output> <m|v> <bound-csv> <program>\n";
      return true;
    }
    auto args = vadalog::magic::ParseBoundArgs(bound);
    if (!args.ok()) {
      *out = "error " + args.status().ToString() + "\n";
      return true;
    }
    service::QueryRequest request;
    request.program = program;
    request.language = lang == "m" ? service::QueryLanguage::kMetaLog
                                   : service::QueryLanguage::kVadalog;
    request.output = output;
    request.bound_args = std::move(*args);
    auto result = svc.Query(request);
    if (!result.ok()) {
      *out = "error " + result.status().ToString() + "\n";
      return true;
    }
    std::ostringstream reply;
    reply << "ok epoch=" << result->epoch << " rows=" << result->rows->size()
          << " mode=" << vadalog::magic::PointQueryModeName(result->point_mode)
          << (result->point_fallback.empty()
                  ? ""
                  : " fallback=" + result->point_fallback)
          << " probes=" << result->join_probes
          << " cache=" << (result->result_cache_hit ? "hit" : "miss")
          << " eval=" << result->eval_seconds << "\n";
    constexpr size_t kMaxRows = 20;
    for (size_t i = 0; i < result->rows->size() && i < kMaxRows; ++i) {
      const vadalog::Tuple& t = (*result->rows)[i];
      for (size_t j = 0; j < t.size(); ++j) {
        reply << (j == 0 ? "" : "\t") << t[j].ToString();
      }
      reply << "\n";
    }
    if (result->rows->size() > kMaxRows) {
      reply << "... (" << result->rows->size() - kMaxRows << " more)\n";
    }
    *out = reply.str();
  } else {
    *out = "error unknown command: " + cmd + "\n";
  }
  return true;
}

void ServeConnection(service::KgService& svc, int fd) {
  // Raw IO through the wire helpers: reads retry on EINTR instead of
  // treating an interrupted call as connection close, and replies are
  // written to completion across short writes.
  auto do_read = [fd](void* buf, size_t len) { return read(fd, buf, len); };
  auto do_write = [fd](const void* buf, size_t len) {
    return write(fd, buf, len);
  };
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = service::ReadSomeWith(do_read, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      std::string out;
      bool keep_going = HandleServeLine(svc, line, &out);
      if (!out.empty() &&
          !service::WriteAllWith(do_write, out.data(), out.size())) {
        keep_going = false;
      }
      if (!keep_going) {
        close(fd);
        return;
      }
    }
  }
  close(fd);
}

int CmdServe(int argc, char** argv) {
  int port = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      if (!service::ParsePort(text, &port)) {
        std::fprintf(stderr, "kgmctl serve: invalid --port '%s' (want 1-65535)\n",
                     text);
        return 2;
      }
    }
  }

  service::KgService svc;
  if (port == 0) {
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string out;
      bool keep_going = HandleServeLine(svc, line, &out);
      std::fputs(out.c_str(), stdout);
      std::fflush(stdout);
      if (!keep_going) break;
    }
    return 0;
  }

  int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 16) < 0) {
    std::perror("bind/listen");
    close(listener);
    return 1;
  }
  std::fprintf(stderr, "kgmctl serving on 127.0.0.1:%d\n", port);
  for (;;) {
    int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    std::thread(&ServeConnection, std::ref(svc), fd).detach();
  }
  close(listener);
  return 0;
}

// kgmctl lint [--json] [--vadalog|--metalog] [--schema company|none] <file>...
//
// Lints each program and prints its diagnostics (text by default, one JSON
// object per file with --json).  Language is picked per file from the
// extension (.vlog/.vdl → Vadalog, anything else → MetaLog) unless forced
// by a flag.  --schema company checks label/property names against the
// Company KG super-schema catalog.  Exit code is the worst severity seen:
// 0 clean (or notes only), 1 warnings, 2 errors.
int CmdLint(int argc, char** argv) {
  bool json = false;
  int forced_language = 0;  // 0 = by extension, 1 = vadalog, 2 = metalog
  std::string schema = "none";
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--vadalog") {
      forced_language = 1;
    } else if (arg == "--metalog") {
      forced_language = 2;
    } else if (arg == "--schema") {
      if (i + 1 >= argc) return Usage();
      schema = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "kgmctl lint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();
  if (schema != "none" && schema != "company") {
    std::fprintf(stderr, "kgmctl lint: unknown schema %s\n", schema.c_str());
    return Usage();
  }

  metalog::GraphCatalog company_catalog;
  const metalog::GraphCatalog* base_catalog = nullptr;
  if (schema == "company") {
    company_catalog = instance::SchemaCatalog(finkg::CompanyKgSchema());
    base_catalog = &company_catalog;
  }

  lint::Severity worst = lint::Severity::kNote;
  bool any = false;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "kgmctl lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    const bool vadalog =
        forced_language == 1 ||
        (forced_language == 0 &&
         (path.ends_with(".vlog") || path.ends_with(".vdl")));
    lint::LintResult result =
        vadalog ? lint::LintVadalogSource(source)
                : lint::LintMetaLogSource(source, base_catalog);
    std::cout << (json ? lint::RenderJson(result, path)
                       : lint::RenderText(result, path));
    if (!result.empty()) {
      any = true;
      worst = std::max(worst, result.max_severity());
    }
  }
  if (!any) return 0;
  if (worst == lint::Severity::kError) return 2;
  if (worst == lint::Severity::kWarning) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// explain: evaluate each program twice — plan_mode off and greedy — against
// a demo Company-KG instance, print the join plans the planner chose, and
// verify the two materializations are bit-identical (the planner's
// determinism contract, checked end to end rather than assumed).

uint64_t Fnv1a(const std::string& text, uint64_t hash) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string HashHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// One evaluation of a program: the engine counters plus a fingerprint of
// the materialized result (CSV export for MetaLog, FactDb dump for
// Vadalog) — equal fingerprints mean bit-identical output.
struct ExplainRun {
  vadalog::EngineStats stats;
  std::string fingerprint;
};

constexpr uint64_t kFnvBasis = 1469598103934665603ull;

Status ExplainMetaLog(const core::SuperSchema& schema,
                      const std::string& source, vadalog::PlanMode mode,
                      size_t threads, pg::PropertyGraph* graph,
                      ExplainRun* out) {
  instance::MaterializeOptions options;
  options.engine.num_threads = threads;
  options.engine.plan_mode = mode;
  KGM_ASSIGN_OR_RETURN(auto stats,
                       instance::Materialize(schema, source, graph, options));
  out->stats = stats.engine_stats;
  KGM_ASSIGN_OR_RETURN(auto files, translate::ExportCsv(schema, *graph));
  uint64_t hash = kFnvBasis;
  for (const auto& [name, content] : files) {
    hash = Fnv1a(name, hash);
    hash = Fnv1a(content, hash);
  }
  out->fingerprint = HashHex(hash);
  return OkStatus();
}

Status ExplainVadalog(const std::string& source, vadalog::PlanMode mode,
                      size_t threads, vadalog::FactDb db, ExplainRun* out) {
  KGM_ASSIGN_OR_RETURN(vadalog::Program program,
                       vadalog::ParseProgram(source));
  vadalog::EngineOptions options;
  options.num_threads = threads;
  options.plan_mode = mode;
  vadalog::Engine engine(std::move(program), options);
  KGM_RETURN_IF_ERROR(engine.status());
  KGM_RETURN_IF_ERROR(engine.Run(&db));
  out->stats = engine.stats();
  out->fingerprint = HashHex(Fnv1a(db.DebugString(), kFnvBasis));
  return OkStatus();
}

double ProbeReductionPct(const vadalog::EngineStats& off,
                         const vadalog::EngineStats& greedy) {
  if (off.join_probes == 0) return 0;
  return 100.0 * (1.0 - static_cast<double>(greedy.join_probes) /
                            static_cast<double>(off.join_probes));
}

void PrintExplainText(const std::string& path, const char* language,
                      size_t threads, bool identical, const ExplainRun& off,
                      const ExplainRun& greedy) {
  std::printf("== %s  %s  threads=%zu ==\n", path.c_str(), language, threads);
  if (identical) {
    std::printf("differential: identical (fnv1a %s)\n",
                off.fingerprint.c_str());
  } else {
    std::printf("differential: MISMATCH off=%s greedy=%s\n",
                off.fingerprint.c_str(), greedy.fingerprint.c_str());
  }
  std::printf("probes: off=%zu greedy=%zu (%.1f%% fewer)\n",
              off.stats.join_probes, greedy.stats.join_probes,
              ProbeReductionPct(off.stats, greedy.stats));
  std::printf(
      "planner: built=%zu reordered=%zu cache_hits=%zu replans=%zu "
      "est_probes_saved=%.3g\n",
      greedy.stats.plans_built, greedy.stats.plans_reordered,
      greedy.stats.plan_cache_hits, greedy.stats.plan_replans,
      greedy.stats.est_probes_saved);
  for (const vadalog::PlanSnapshot& p : greedy.stats.rule_plans) {
    std::printf("  rule %-3d %-15s", p.rule_index,
                vadalog::PlanRegimeName(p.regime));
    if (p.delta_literal >= 0) std::printf(" delta=%d", p.delta_literal);
    std::printf("  %s  est %.3g -> %.3g  uses=%zu replans=%zu\n",
                p.plan.reordered ? "reordered" : "written-order",
                p.plan.est_probes_written, p.plan.est_probes, p.uses,
                p.replans);
    std::printf("   ");
    for (size_t i = 0; i < p.plan.order.size(); ++i) {
      const vadalog::PlannedLiteral& lit = p.plan.order[i];
      std::printf(" %s#%zu(%s, est %.3g)", p.preds[i].c_str(), lit.literal,
                  lit.use_index ? "index" : "scan", lit.est_rows);
    }
    std::printf("\n");
  }
}

void AppendExplainJson(std::ostringstream& out, const std::string& path,
                       const char* language, size_t threads, bool identical,
                       const ExplainRun& off, const ExplainRun& greedy) {
  out << "{\"file\":\"" << JsonEscape(path) << "\"";
  out << ",\"language\":\"" << language << "\"";
  out << ",\"threads\":" << threads;
  out << ",\"identical\":" << (identical ? "true" : "false");
  out << ",\"fingerprint_off\":\"" << off.fingerprint << "\"";
  out << ",\"fingerprint_greedy\":\"" << greedy.fingerprint << "\"";
  out << ",\"probes\":{\"off\":" << off.stats.join_probes
      << ",\"greedy\":" << greedy.stats.join_probes << ",\"reduction_pct\":"
      << ProbeReductionPct(off.stats, greedy.stats) << "}";
  out << ",\"planner\":{\"plans_built\":" << greedy.stats.plans_built
      << ",\"plans_reordered\":" << greedy.stats.plans_reordered
      << ",\"cache_hits\":" << greedy.stats.plan_cache_hits
      << ",\"replans\":" << greedy.stats.plan_replans
      << ",\"est_probes_saved\":" << greedy.stats.est_probes_saved << "}";
  out << ",\"plans\":[";
  for (size_t pi = 0; pi < greedy.stats.rule_plans.size(); ++pi) {
    const vadalog::PlanSnapshot& p = greedy.stats.rule_plans[pi];
    if (pi > 0) out << ",";
    out << "{\"rule\":" << p.rule_index << ",\"regime\":\""
        << vadalog::PlanRegimeName(p.regime) << "\""
        << ",\"delta_literal\":" << p.delta_literal
        << ",\"reordered\":" << (p.plan.reordered ? "true" : "false")
        << ",\"est_probes\":" << p.plan.est_probes
        << ",\"est_probes_written\":" << p.plan.est_probes_written
        << ",\"est_firings\":" << p.plan.est_firings << ",\"uses\":" << p.uses
        << ",\"replans\":" << p.replans << ",\"order\":[";
    for (size_t i = 0; i < p.plan.order.size(); ++i) {
      const vadalog::PlannedLiteral& lit = p.plan.order[i];
      if (i > 0) out << ",";
      out << "{\"pred\":\"" << JsonEscape(p.preds[i]) << "\",\"literal\":"
          << lit.literal << ",\"index\":" << (lit.use_index ? "true" : "false")
          << ",\"est_rows\":" << lit.est_rows << "}";
    }
    out << "]}";
  }
  out << "]}";
}

int CmdExplain(int argc, char** argv) {
  bool json = false;
  size_t threads = 2;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return Usage();
      threads = std::strtoul(argv[++i], nullptr, 10);
      if (threads == 0) threads = 1;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "kgmctl explain: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  // A small deterministic instance: big enough that the statistics make
  // label scans and relationship probes clearly asymmetric, small enough
  // that every program pair runs in seconds.
  core::SuperSchema schema = finkg::CompanyKgSchema();
  finkg::GeneratorConfig config;
  config.num_companies = 100;
  config.num_persons = 150;
  config.seed = 2022;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  // Two instances evolved in lockstep: MetaLog programs enrich both (one
  // with planning off, one greedy), so later programs see their
  // prerequisites and every step is differentially checked.
  pg::PropertyGraph off_graph = net.ToInstanceGraph();
  pg::PropertyGraph greedy_graph = net.ToInstanceGraph();

  bool all_identical = true;
  std::ostringstream json_out;
  json_out << "[";
  bool first = true;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "kgmctl explain: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    const bool vlog = path.ends_with(".vlog") || path.ends_with(".vdl");

    ExplainRun off;
    ExplainRun greedy;
    Status s_off, s_greedy;
    if (vlog) {
      // Vadalog programs run read-only over the relational encoding of the
      // current instance; they do not advance the shared graphs.
      s_off = ExplainVadalog(
          source, vadalog::PlanMode::kOff, threads,
          metalog::EncodeGraph(off_graph,
                               metalog::GraphCatalog::FromGraph(off_graph)),
          &off);
      s_greedy = ExplainVadalog(
          source, vadalog::PlanMode::kGreedy, threads,
          metalog::EncodeGraph(
              greedy_graph, metalog::GraphCatalog::FromGraph(greedy_graph)),
          &greedy);
    } else {
      s_off = ExplainMetaLog(schema, source, vadalog::PlanMode::kOff, threads,
                             &off_graph, &off);
      s_greedy = ExplainMetaLog(schema, source, vadalog::PlanMode::kGreedy,
                                threads, &greedy_graph, &greedy);
    }
    if (!s_off.ok() || !s_greedy.ok()) {
      std::fprintf(stderr, "kgmctl explain: %s failed: %s\n", path.c_str(),
                   (!s_off.ok() ? s_off : s_greedy).ToString().c_str());
      return 1;
    }
    const bool identical = off.fingerprint == greedy.fingerprint;
    all_identical = all_identical && identical;
    if (json) {
      if (!first) json_out << ",";
      AppendExplainJson(json_out, path, vlog ? "vadalog" : "metalog", threads,
                        identical, off, greedy);
    } else {
      PrintExplainText(path, vlog ? "vadalog" : "metalog", threads, identical,
                       off, greedy);
      std::printf("\n");
    }
    first = false;
  }
  if (json) {
    json_out << "]";
    std::printf("%s\n", json_out.str().c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "kgmctl explain: planner output diverged from plan-off\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// query: answer one bound-argument (point) query against a demo instance,
// showing which route the dispatcher picked and — when the magic-sets
// rewrite ran — an explain-style summary of the rewrite (adorned
// predicates, magic predicates, predicates forced to full evaluation) and
// the probe cost next to the materialize-then-filter baseline.

int CmdQuery(int argc, char** argv) {
  bool json = false;
  size_t threads = 1;
  std::string bound;
  std::string output;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--bound") {
      if (i + 1 >= argc) return Usage();
      bound = argv[++i];
    } else if (arg == "--output") {
      if (i + 1 >= argc) return Usage();
      output = argv[++i];
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return Usage();
      threads = std::strtoul(argv[++i], nullptr, 10);
      if (threads == 0) threads = 1;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "kgmctl query: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 1 || bound.empty()) return Usage();
  const std::string& path = files[0];

  auto bound_args = vadalog::magic::ParseBoundArgs(bound);
  if (!bound_args.ok()) {
    std::fprintf(stderr, "kgmctl query: bad --bound: %s\n",
                 bound_args.status().ToString().c_str());
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kgmctl query: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();
  const bool vlog = path.ends_with(".vlog") || path.ends_with(".vdl");

  // The same demo instance `kgmctl explain` uses, with the aggregated
  // OWNS layer merged in so ownership-closure programs (reach.vlog,
  // control, close links) have their extensional input without a prior
  // owns materialization.
  finkg::GeneratorConfig config;
  config.num_companies = 100;
  config.num_persons = 150;
  config.seed = 2022;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  pg::PropertyGraph graph = net.ToInstanceGraph();
  pg::PropertyGraph owns_graph = net.ToOwnershipGraph(/*include_persons=*/true);
  auto merge_owns = [&owns_graph](vadalog::FactDb db,
                                  const metalog::GraphCatalog& catalog) {
    vadalog::FactDb owns = metalog::EncodeGraph(owns_graph, catalog);
    for (const std::string& pred : owns.Predicates()) {
      const vadalog::Relation* rel = owns.Get(pred);
      vadalog::Relation& dst = db.GetOrCreate(pred, rel->arity());
      for (const vadalog::Tuple& t : rel->tuples()) dst.Insert(t);
    }
    return db;
  };

  vadalog::Program program;
  vadalog::FactDb db;
  if (vlog) {
    auto parsed = vadalog::ParseProgram(source);
    if (!parsed.ok()) {
      std::fprintf(stderr, "kgmctl query: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    program = std::move(*parsed);
    metalog::GraphCatalog catalog =
        instance::SchemaCatalog(finkg::CompanyKgSchema());
    db = merge_owns(metalog::EncodeGraph(graph, catalog), catalog);
  } else {
    auto meta = metalog::ParseMetaProgram(source);
    if (!meta.ok()) {
      std::fprintf(stderr, "kgmctl query: %s\n",
                   meta.status().ToString().c_str());
      return 1;
    }
    metalog::GraphCatalog catalog =
        instance::SchemaCatalog(finkg::CompanyKgSchema());
    Status absorbed = catalog.AbsorbProgram(*meta);
    if (!absorbed.ok()) {
      std::fprintf(stderr, "kgmctl query: %s\n", absorbed.ToString().c_str());
      return 1;
    }
    auto mtv = metalog::TranslateMetaProgram(*meta, catalog);
    if (!mtv.ok()) {
      std::fprintf(stderr, "kgmctl query: %s\n",
                   mtv.status().ToString().c_str());
      return 1;
    }
    program = std::move(mtv->program);
    db = merge_owns(metalog::EncodeGraph(graph, catalog), catalog);
  }

  if (output.empty()) {
    if (!program.outputs.empty()) {
      output = program.outputs[0];
    } else if (!program.rules.empty() && !program.rules.back().head.empty()) {
      output = program.rules.back().head.back().predicate;
    } else {
      std::fprintf(stderr,
                   "kgmctl query: no @output and no rules; use --output\n");
      return 2;
    }
  }

  vadalog::magic::QueryBinding query{output, *bound_args};
  vadalog::magic::PointQueryOptions pq_options;
  pq_options.engine.num_threads = threads;

  // The dispatcher's pick, then the materialize-then-filter baseline on a
  // fresh clone for the probe comparison.
  vadalog::FactDb point_db = db.Clone();
  vadalog::magic::PointQueryStats stats;
  auto answers = vadalog::magic::EvalPointQuery(program, query, &point_db,
                                                pq_options, &stats);
  if (!answers.ok()) {
    std::fprintf(stderr, "kgmctl query: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }
  vadalog::magic::PointQueryOptions base_options = pq_options;
  base_options.force_materialize = true;
  vadalog::magic::PointQueryStats base_stats;
  auto baseline = vadalog::magic::EvalPointQuery(program, query, &db,
                                                 base_options, &base_stats);
  if (!baseline.ok()) {
    std::fprintf(stderr, "kgmctl query: baseline failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  const double ratio =
      stats.engine.join_probes > 0
          ? static_cast<double>(base_stats.engine.join_probes) /
                static_cast<double>(stats.engine.join_probes)
          : 0;

  if (json) {
    std::ostringstream out;
    out << "{\"file\":\"" << JsonEscape(path) << "\"";
    out << ",\"query\":\"" << JsonEscape(query.Render()) << "\"";
    out << ",\"mode\":\""
        << vadalog::magic::PointQueryModeName(stats.mode) << "\"";
    out << ",\"fallback\":\""
        << vadalog::magic::FallbackReasonName(stats.fallback) << "\"";
    if (!stats.fallback_detail.empty()) {
      out << ",\"fallback_detail\":\"" << JsonEscape(stats.fallback_detail)
          << "\"";
    }
    out << ",\"answers\":" << stats.answers;
    out << ",\"adorned\":[";
    for (size_t i = 0; i < stats.adorned.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"pred\":\"" << JsonEscape(stats.adorned[i].pred)
          << "\",\"adornment\":\"" << stats.adorned[i].adornment
          << "\",\"magic\":\"" << JsonEscape(stats.adorned[i].magic_pred)
          << "\"}";
    }
    out << "]";
    out << ",\"full_required\":[";
    for (size_t i = 0; i < stats.full_required.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << JsonEscape(stats.full_required[i]) << "\"";
    }
    out << "]";
    out << ",\"rewrites\":" << stats.engine.magic_rewrites;
    out << ",\"subqueries\":" << stats.engine.magic_subqueries;
    out << ",\"magic_rules\":" << stats.engine.magic_rules;
    out << ",\"probes\":{\"point\":" << stats.engine.join_probes
        << ",\"materialize\":" << base_stats.engine.join_probes
        << ",\"reduction_factor\":" << ratio << "}";
    out << "}";
    std::printf("%s\n", out.str().c_str());
  } else {
    std::printf("== %s  %s ==\n", path.c_str(), query.Render().c_str());
    std::printf("mode: %s", vadalog::magic::PointQueryModeName(stats.mode));
    if (stats.fallback != vadalog::magic::FallbackReason::kNone) {
      std::printf("  (fallback: %s — %s)",
                  vadalog::magic::FallbackReasonName(stats.fallback),
                  stats.fallback_detail.c_str());
    }
    std::printf("\n");
    if (!stats.adorned.empty()) {
      std::printf("rewrite: %zu adorned predicate(s), %zu rewritten rule(s)\n",
                  stats.adorned.size(), stats.engine.magic_rules);
      for (const auto& a : stats.adorned) {
        std::printf("  %s@%s   seeded by %s\n", a.pred.c_str(),
                    a.adornment.c_str(), a.magic_pred.c_str());
      }
      for (const auto& p : stats.full_required) {
        std::printf("  %s   (full evaluation required)\n", p.c_str());
      }
    }
    std::printf("probes: point=%zu materialize=%zu (%.1fx fewer)\n",
                stats.engine.join_probes, base_stats.engine.join_probes,
                ratio);
    std::printf("answers: %zu\n", stats.answers);
    constexpr size_t kMaxRows = 20;
    for (size_t i = 0; i < answers->size() && i < kMaxRows; ++i) {
      const vadalog::Tuple& t = (*answers)[i];
      for (size_t j = 0; j < t.size(); ++j) {
        std::printf("%s%s", j == 0 ? "  " : "\t", t[j].ToString().c_str());
      }
      std::printf("\n");
    }
    if (answers->size() > kMaxRows) {
      std::printf("  ... (%zu more)\n", answers->size() - kMaxRows);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "schema") {
    return argc >= 3 ? CmdSchema(argv[2]) : Usage();
  }
  if (command == "export") return CmdExport(argc, argv);
  if (command == "materialize") return CmdMaterialize(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "lint") return CmdLint(argc, argv);
  if (command == "explain") return CmdExplain(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  return Usage();
}
