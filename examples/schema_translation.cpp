// Reproduces Figures 6 and 8: the Company KG super-schema of Figure 4
// translated to the PG model (Section 5.2, via the declarative MetaLog
// mapping) and to the relational model (Section 5.3), plus the equivalence
// check against the native translator and the DOT rendering of the source
// diagram.
//
// Run: build/examples/schema_translation

#include <cstdio>

#include "core/gsl.h"
#include "finkg/company_kg.h"
#include "rel/relational.h"
#include "translate/enforce.h"
#include "translate/ssst.h"

int main() {
  using namespace kgm;
  core::SuperSchema schema = finkg::CompanyKgSchema();

  std::printf("== Figure 4: the Company KG super-schema (GSL, DOT) ==\n%s\n",
              core::RenderGslDot(schema).c_str());

  // Figure 6: the PG model translation, through the MetaLog mapping.
  translate::DeclarativeStats stats;
  auto declarative = translate::TranslateToPgDeclarative(schema, &stats);
  if (!declarative.ok()) {
    std::printf("declarative translation failed: %s\n",
                declarative.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "== Figure 6: PG schema via MetaLog Eliminate/Copy ==\n"
      "(eliminate: %zu Vadalog rules, %.3fs; copy: %zu rules, %.3fs)\n\n%s\n",
      stats.eliminate_rules, stats.eliminate_seconds, stats.copy_rules,
      stats.copy_seconds, declarative->ToString().c_str());

  // Cross-check: the native oracle must agree.
  auto native = translate::TranslateToPgNative(schema);
  if (!native.ok()) return 1;
  std::printf("declarative == native: %s\n\n",
              declarative->ToString() == native->ToString() ? "YES" : "NO");

  // The published Eliminate rules, as stored in the mapping repository.
  const translate::Mapping* mapping =
      translate::FindMapping("property_graph", "type_accumulation");
  std::printf("== The Eliminate program (Examples 5.1/5.2) ==\n%s\n",
              mapping->eliminate.c_str());

  // Figure 8: the relational translation with its DDL.
  auto tables = translate::TranslateToRelational(schema);
  if (!tables.ok()) {
    std::printf("relational translation failed: %s\n",
                tables.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 8: relational schema (DDL) ==\n%s",
              rel::RenderSqlDdl(*tables).c_str());
  return 0;
}
