// A tour of the MetaLog language (Section 4): every example of the paper,
// its compilation to Vadalog through MTV, and its evaluation on toy data.
//
// Run: build/examples/metalog_tour

#include <cstdio>

#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "metalog/runner.h"
#include "vadalog/analysis.h"

namespace {

using namespace kgm;

void ShowTranslation(const char* title, const char* source,
                     const metalog::GraphCatalog& catalog) {
  std::printf("---- %s ----\nMetaLog:\n%s\n", title, source);
  auto program = metalog::ParseMetaProgram(source);
  if (!program.ok()) {
    std::printf("parse error: %s\n\n", program.status().ToString().c_str());
    return;
  }
  metalog::GraphCatalog extended = catalog;
  Status absorbed = extended.AbsorbProgram(*program);
  if (!absorbed.ok()) {
    std::printf("catalog error: %s\n\n", absorbed.ToString().c_str());
    return;
  }
  auto mtv = metalog::TranslateMetaProgram(*program, extended);
  if (!mtv.ok()) {
    std::printf("MTV error: %s\n\n", mtv.status().ToString().c_str());
    return;
  }
  std::printf("Vadalog (via MTV):\n%s",
              mtv->program.ToString().c_str());
  std::printf("%s", metalog::GenerateInputBindings(
                        *program, extended,
                        metalog::BindingLanguage::kCypher)
                        .c_str());
  auto warded = vadalog::CheckWardedness(mtv->program);
  std::printf("warded: %s; piecewise-linear: %s\n\n",
              warded.warded ? "yes" : "no",
              vadalog::IsPiecewiseLinear(mtv->program) ? "yes" : "no");
}

}  // namespace

int main() {
  using namespace kgm;

  metalog::GraphCatalog catalog;
  catalog.AddNodeLabel("Business", {"name"});
  catalog.AddEdgeLabel("OWNS", {"percentage"});
  catalog.AddEdgeLabel("CONTROLS");
  catalog.AddNodeLabel("SM_Node", {"name"});
  catalog.AddNodeLabel("SM_Generalization");
  catalog.AddEdgeLabel("SM_CHILD");
  catalog.AddEdgeLabel("SM_PARENT");
  catalog.AddEdgeLabel("DESCFROM");

  // Example 4.1: company control in MetaLog.
  ShowTranslation("Example 4.1: company control", R"(
(x: Business) -> exists c (x)[c: CONTROLS](x).
(x: Business)[: CONTROLS](z: Business)
    [: OWNS; percentage: w](y: Business),
v = msum(w, <z>), v > 0.5 -> exists c (x)[c: CONTROLS](y).
)",
                  catalog);

  // Example 4.3: descendant-ancestor closure with a regular path pattern.
  ShowTranslation("Example 4.3: DESCFROM via Kleene star", R"(
(x: SM_Node) ([: SM_CHILD]- / [: SM_PARENT])* (y: SM_Node)
  -> exists w (x)[w: DESCFROM](y).
)",
                  catalog);

  // Evaluate Example 4.1 on the joint-control scenario.
  std::printf("---- Evaluating company control on toy data ----\n");
  pg::PropertyGraph g;
  pg::NodeId a = g.AddNode("Business", {{"name", Value("a")}});
  pg::NodeId b = g.AddNode("Business", {{"name", Value("b")}});
  pg::NodeId c = g.AddNode("Business", {{"name", Value("c")}});
  pg::NodeId d = g.AddNode("Business", {{"name", Value("d")}});
  g.AddEdge(a, b, "OWNS", {{"percentage", Value(0.6)}});
  g.AddEdge(a, c, "OWNS", {{"percentage", Value(0.6)}});
  g.AddEdge(b, d, "OWNS", {{"percentage", Value(0.3)}});
  g.AddEdge(c, d, "OWNS", {{"percentage", Value(0.3)}});
  auto run = metalog::RunMetaLogSource(R"(
    (x: Business) -> exists k (x)[k: CONTROLS](x).
    (x: Business)[: CONTROLS](z: Business)
        [: OWNS; percentage: w](y: Business),
    v = msum(w, <z>), v > 0.5 -> exists k (x)[k: CONTROLS](y).
  )", &g);
  if (!run.ok()) {
    std::printf("run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("derived CONTROLS edges (%zu):\n",
              g.EdgesWithLabel("CONTROLS").size());
  for (pg::EdgeId e : g.EdgesWithLabel("CONTROLS")) {
    const Value* from = g.NodeProperty(g.edge(e).from, "name");
    const Value* to = g.NodeProperty(g.edge(e).to, "name");
    std::printf("  %s CONTROLS %s\n", from->AsString().c_str(),
                to->AsString().c_str());
  }
  std::printf(
      "\nNote: a controls d jointly through b and c (30%% + 30%%), even\n"
      "though neither b nor c alone holds a majority of d.\n");
  return 0;
}
