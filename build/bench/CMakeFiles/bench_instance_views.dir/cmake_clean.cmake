file(REMOVE_RECURSE
  "CMakeFiles/bench_instance_views.dir/bench_instance_views.cc.o"
  "CMakeFiles/bench_instance_views.dir/bench_instance_views.cc.o.d"
  "bench_instance_views"
  "bench_instance_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instance_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
