file(REMOVE_RECURSE
  "CMakeFiles/bench_metalog.dir/bench_metalog.cc.o"
  "CMakeFiles/bench_metalog.dir/bench_metalog.cc.o.d"
  "bench_metalog"
  "bench_metalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
