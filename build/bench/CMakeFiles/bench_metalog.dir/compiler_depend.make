# Empty compiler generated dependencies file for bench_metalog.
# This may be replaced when dependencies are built.
