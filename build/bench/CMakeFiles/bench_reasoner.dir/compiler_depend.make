# Empty compiler generated dependencies file for bench_reasoner.
# This may be replaced when dependencies are built.
