file(REMOVE_RECURSE
  "CMakeFiles/bench_reasoner.dir/bench_reasoner.cc.o"
  "CMakeFiles/bench_reasoner.dir/bench_reasoner.cc.o.d"
  "bench_reasoner"
  "bench_reasoner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reasoner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
