# Empty compiler generated dependencies file for control_pipeline_report.
# This may be replaced when dependencies are built.
