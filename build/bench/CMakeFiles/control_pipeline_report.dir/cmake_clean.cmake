file(REMOVE_RECURSE
  "CMakeFiles/control_pipeline_report.dir/control_pipeline_report.cc.o"
  "CMakeFiles/control_pipeline_report.dir/control_pipeline_report.cc.o.d"
  "control_pipeline_report"
  "control_pipeline_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_pipeline_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
