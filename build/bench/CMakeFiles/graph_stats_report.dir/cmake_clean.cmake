file(REMOVE_RECURSE
  "CMakeFiles/graph_stats_report.dir/graph_stats_report.cc.o"
  "CMakeFiles/graph_stats_report.dir/graph_stats_report.cc.o.d"
  "graph_stats_report"
  "graph_stats_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_stats_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
