# Empty dependencies file for graph_stats_report.
# This may be replaced when dependencies are built.
