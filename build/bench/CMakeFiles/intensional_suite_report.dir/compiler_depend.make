# Empty compiler generated dependencies file for intensional_suite_report.
# This may be replaced when dependencies are built.
