file(REMOVE_RECURSE
  "CMakeFiles/intensional_suite_report.dir/intensional_suite_report.cc.o"
  "CMakeFiles/intensional_suite_report.dir/intensional_suite_report.cc.o.d"
  "intensional_suite_report"
  "intensional_suite_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intensional_suite_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
