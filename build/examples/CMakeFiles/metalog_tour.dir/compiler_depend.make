# Empty compiler generated dependencies file for metalog_tour.
# This may be replaced when dependencies are built.
