file(REMOVE_RECURSE
  "CMakeFiles/metalog_tour.dir/metalog_tour.cpp.o"
  "CMakeFiles/metalog_tour.dir/metalog_tour.cpp.o.d"
  "metalog_tour"
  "metalog_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metalog_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
