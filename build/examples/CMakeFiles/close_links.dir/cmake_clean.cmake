file(REMOVE_RECURSE
  "CMakeFiles/close_links.dir/close_links.cpp.o"
  "CMakeFiles/close_links.dir/close_links.cpp.o.d"
  "close_links"
  "close_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/close_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
