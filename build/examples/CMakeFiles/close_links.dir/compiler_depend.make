# Empty compiler generated dependencies file for close_links.
# This may be replaced when dependencies are built.
