file(REMOVE_RECURSE
  "CMakeFiles/company_kg.dir/company_kg.cpp.o"
  "CMakeFiles/company_kg.dir/company_kg.cpp.o.d"
  "company_kg"
  "company_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
