# Empty compiler generated dependencies file for company_kg.
# This may be replaced when dependencies are built.
