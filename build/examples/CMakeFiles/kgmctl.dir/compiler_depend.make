# Empty compiler generated dependencies file for kgmctl.
# This may be replaced when dependencies are built.
