file(REMOVE_RECURSE
  "CMakeFiles/kgmctl.dir/kgmctl.cpp.o"
  "CMakeFiles/kgmctl.dir/kgmctl.cpp.o.d"
  "kgmctl"
  "kgmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
