# Empty compiler generated dependencies file for schema_translation.
# This may be replaced when dependencies are built.
