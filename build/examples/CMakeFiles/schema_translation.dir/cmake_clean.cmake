file(REMOVE_RECURSE
  "CMakeFiles/schema_translation.dir/schema_translation.cpp.o"
  "CMakeFiles/schema_translation.dir/schema_translation.cpp.o.d"
  "schema_translation"
  "schema_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
