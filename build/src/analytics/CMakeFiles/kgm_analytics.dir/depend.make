# Empty dependencies file for kgm_analytics.
# This may be replaced when dependencies are built.
