file(REMOVE_RECURSE
  "libkgm_analytics.a"
)
