file(REMOVE_RECURSE
  "CMakeFiles/kgm_analytics.dir/graph_stats.cc.o"
  "CMakeFiles/kgm_analytics.dir/graph_stats.cc.o.d"
  "libkgm_analytics.a"
  "libkgm_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
