
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vadalog/analysis.cc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/analysis.cc.o" "gcc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/analysis.cc.o.d"
  "/root/repo/src/vadalog/ast.cc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/ast.cc.o" "gcc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/ast.cc.o.d"
  "/root/repo/src/vadalog/database.cc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/database.cc.o" "gcc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/database.cc.o.d"
  "/root/repo/src/vadalog/engine.cc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/engine.cc.o" "gcc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/engine.cc.o.d"
  "/root/repo/src/vadalog/lexer.cc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/lexer.cc.o" "gcc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/lexer.cc.o.d"
  "/root/repo/src/vadalog/parser.cc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/parser.cc.o" "gcc" "src/vadalog/CMakeFiles/kgm_vadalog.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/kgm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
