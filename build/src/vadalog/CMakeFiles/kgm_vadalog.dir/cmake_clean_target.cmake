file(REMOVE_RECURSE
  "libkgm_vadalog.a"
)
