# Empty compiler generated dependencies file for kgm_vadalog.
# This may be replaced when dependencies are built.
