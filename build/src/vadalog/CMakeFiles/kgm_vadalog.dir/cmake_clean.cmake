file(REMOVE_RECURSE
  "CMakeFiles/kgm_vadalog.dir/analysis.cc.o"
  "CMakeFiles/kgm_vadalog.dir/analysis.cc.o.d"
  "CMakeFiles/kgm_vadalog.dir/ast.cc.o"
  "CMakeFiles/kgm_vadalog.dir/ast.cc.o.d"
  "CMakeFiles/kgm_vadalog.dir/database.cc.o"
  "CMakeFiles/kgm_vadalog.dir/database.cc.o.d"
  "CMakeFiles/kgm_vadalog.dir/engine.cc.o"
  "CMakeFiles/kgm_vadalog.dir/engine.cc.o.d"
  "CMakeFiles/kgm_vadalog.dir/lexer.cc.o"
  "CMakeFiles/kgm_vadalog.dir/lexer.cc.o.d"
  "CMakeFiles/kgm_vadalog.dir/parser.cc.o"
  "CMakeFiles/kgm_vadalog.dir/parser.cc.o.d"
  "libkgm_vadalog.a"
  "libkgm_vadalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_vadalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
