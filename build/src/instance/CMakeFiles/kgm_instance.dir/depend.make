# Empty dependencies file for kgm_instance.
# This may be replaced when dependencies are built.
