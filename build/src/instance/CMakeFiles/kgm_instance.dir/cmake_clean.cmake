file(REMOVE_RECURSE
  "CMakeFiles/kgm_instance.dir/loader.cc.o"
  "CMakeFiles/kgm_instance.dir/loader.cc.o.d"
  "CMakeFiles/kgm_instance.dir/pipeline.cc.o"
  "CMakeFiles/kgm_instance.dir/pipeline.cc.o.d"
  "CMakeFiles/kgm_instance.dir/rel_bridge.cc.o"
  "CMakeFiles/kgm_instance.dir/rel_bridge.cc.o.d"
  "CMakeFiles/kgm_instance.dir/views.cc.o"
  "CMakeFiles/kgm_instance.dir/views.cc.o.d"
  "libkgm_instance.a"
  "libkgm_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
