file(REMOVE_RECURSE
  "libkgm_instance.a"
)
