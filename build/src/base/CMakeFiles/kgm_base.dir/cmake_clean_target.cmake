file(REMOVE_RECURSE
  "libkgm_base.a"
)
