# Empty dependencies file for kgm_base.
# This may be replaced when dependencies are built.
