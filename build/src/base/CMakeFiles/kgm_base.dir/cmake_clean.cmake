file(REMOVE_RECURSE
  "CMakeFiles/kgm_base.dir/status.cc.o"
  "CMakeFiles/kgm_base.dir/status.cc.o.d"
  "CMakeFiles/kgm_base.dir/strings.cc.o"
  "CMakeFiles/kgm_base.dir/strings.cc.o.d"
  "CMakeFiles/kgm_base.dir/value.cc.o"
  "CMakeFiles/kgm_base.dir/value.cc.o.d"
  "libkgm_base.a"
  "libkgm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
