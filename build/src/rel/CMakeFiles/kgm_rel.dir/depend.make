# Empty dependencies file for kgm_rel.
# This may be replaced when dependencies are built.
