file(REMOVE_RECURSE
  "libkgm_rel.a"
)
