file(REMOVE_RECURSE
  "CMakeFiles/kgm_rel.dir/relational.cc.o"
  "CMakeFiles/kgm_rel.dir/relational.cc.o.d"
  "libkgm_rel.a"
  "libkgm_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
