
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metalog/ast.cc" "src/metalog/CMakeFiles/kgm_metalog.dir/ast.cc.o" "gcc" "src/metalog/CMakeFiles/kgm_metalog.dir/ast.cc.o.d"
  "/root/repo/src/metalog/catalog.cc" "src/metalog/CMakeFiles/kgm_metalog.dir/catalog.cc.o" "gcc" "src/metalog/CMakeFiles/kgm_metalog.dir/catalog.cc.o.d"
  "/root/repo/src/metalog/mtv.cc" "src/metalog/CMakeFiles/kgm_metalog.dir/mtv.cc.o" "gcc" "src/metalog/CMakeFiles/kgm_metalog.dir/mtv.cc.o.d"
  "/root/repo/src/metalog/parser.cc" "src/metalog/CMakeFiles/kgm_metalog.dir/parser.cc.o" "gcc" "src/metalog/CMakeFiles/kgm_metalog.dir/parser.cc.o.d"
  "/root/repo/src/metalog/runner.cc" "src/metalog/CMakeFiles/kgm_metalog.dir/runner.cc.o" "gcc" "src/metalog/CMakeFiles/kgm_metalog.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/kgm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/kgm_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/kgm_vadalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
