file(REMOVE_RECURSE
  "CMakeFiles/kgm_metalog.dir/ast.cc.o"
  "CMakeFiles/kgm_metalog.dir/ast.cc.o.d"
  "CMakeFiles/kgm_metalog.dir/catalog.cc.o"
  "CMakeFiles/kgm_metalog.dir/catalog.cc.o.d"
  "CMakeFiles/kgm_metalog.dir/mtv.cc.o"
  "CMakeFiles/kgm_metalog.dir/mtv.cc.o.d"
  "CMakeFiles/kgm_metalog.dir/parser.cc.o"
  "CMakeFiles/kgm_metalog.dir/parser.cc.o.d"
  "CMakeFiles/kgm_metalog.dir/runner.cc.o"
  "CMakeFiles/kgm_metalog.dir/runner.cc.o.d"
  "libkgm_metalog.a"
  "libkgm_metalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_metalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
