# Empty compiler generated dependencies file for kgm_metalog.
# This may be replaced when dependencies are built.
