file(REMOVE_RECURSE
  "libkgm_metalog.a"
)
