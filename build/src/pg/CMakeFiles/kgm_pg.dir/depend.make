# Empty dependencies file for kgm_pg.
# This may be replaced when dependencies are built.
