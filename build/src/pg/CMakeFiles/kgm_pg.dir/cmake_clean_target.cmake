file(REMOVE_RECURSE
  "libkgm_pg.a"
)
