file(REMOVE_RECURSE
  "CMakeFiles/kgm_pg.dir/property_graph.cc.o"
  "CMakeFiles/kgm_pg.dir/property_graph.cc.o.d"
  "libkgm_pg.a"
  "libkgm_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
