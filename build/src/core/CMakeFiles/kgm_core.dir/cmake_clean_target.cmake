file(REMOVE_RECURSE
  "libkgm_core.a"
)
