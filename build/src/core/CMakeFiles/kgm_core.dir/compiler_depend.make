# Empty compiler generated dependencies file for kgm_core.
# This may be replaced when dependencies are built.
