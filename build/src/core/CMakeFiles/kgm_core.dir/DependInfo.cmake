
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dictionary.cc" "src/core/CMakeFiles/kgm_core.dir/dictionary.cc.o" "gcc" "src/core/CMakeFiles/kgm_core.dir/dictionary.cc.o.d"
  "/root/repo/src/core/gsl.cc" "src/core/CMakeFiles/kgm_core.dir/gsl.cc.o" "gcc" "src/core/CMakeFiles/kgm_core.dir/gsl.cc.o.d"
  "/root/repo/src/core/metamodel.cc" "src/core/CMakeFiles/kgm_core.dir/metamodel.cc.o" "gcc" "src/core/CMakeFiles/kgm_core.dir/metamodel.cc.o.d"
  "/root/repo/src/core/models.cc" "src/core/CMakeFiles/kgm_core.dir/models.cc.o" "gcc" "src/core/CMakeFiles/kgm_core.dir/models.cc.o.d"
  "/root/repo/src/core/superschema.cc" "src/core/CMakeFiles/kgm_core.dir/superschema.cc.o" "gcc" "src/core/CMakeFiles/kgm_core.dir/superschema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/kgm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/kgm_pg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
