file(REMOVE_RECURSE
  "CMakeFiles/kgm_core.dir/dictionary.cc.o"
  "CMakeFiles/kgm_core.dir/dictionary.cc.o.d"
  "CMakeFiles/kgm_core.dir/gsl.cc.o"
  "CMakeFiles/kgm_core.dir/gsl.cc.o.d"
  "CMakeFiles/kgm_core.dir/metamodel.cc.o"
  "CMakeFiles/kgm_core.dir/metamodel.cc.o.d"
  "CMakeFiles/kgm_core.dir/models.cc.o"
  "CMakeFiles/kgm_core.dir/models.cc.o.d"
  "CMakeFiles/kgm_core.dir/superschema.cc.o"
  "CMakeFiles/kgm_core.dir/superschema.cc.o.d"
  "libkgm_core.a"
  "libkgm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
