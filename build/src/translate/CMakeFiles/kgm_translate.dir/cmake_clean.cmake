file(REMOVE_RECURSE
  "CMakeFiles/kgm_translate.dir/csv_io.cc.o"
  "CMakeFiles/kgm_translate.dir/csv_io.cc.o.d"
  "CMakeFiles/kgm_translate.dir/enforce.cc.o"
  "CMakeFiles/kgm_translate.dir/enforce.cc.o.d"
  "CMakeFiles/kgm_translate.dir/native.cc.o"
  "CMakeFiles/kgm_translate.dir/native.cc.o.d"
  "CMakeFiles/kgm_translate.dir/pg_mapping.cc.o"
  "CMakeFiles/kgm_translate.dir/pg_mapping.cc.o.d"
  "CMakeFiles/kgm_translate.dir/ssst.cc.o"
  "CMakeFiles/kgm_translate.dir/ssst.cc.o.d"
  "CMakeFiles/kgm_translate.dir/validate.cc.o"
  "CMakeFiles/kgm_translate.dir/validate.cc.o.d"
  "libkgm_translate.a"
  "libkgm_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
