
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/csv_io.cc" "src/translate/CMakeFiles/kgm_translate.dir/csv_io.cc.o" "gcc" "src/translate/CMakeFiles/kgm_translate.dir/csv_io.cc.o.d"
  "/root/repo/src/translate/enforce.cc" "src/translate/CMakeFiles/kgm_translate.dir/enforce.cc.o" "gcc" "src/translate/CMakeFiles/kgm_translate.dir/enforce.cc.o.d"
  "/root/repo/src/translate/native.cc" "src/translate/CMakeFiles/kgm_translate.dir/native.cc.o" "gcc" "src/translate/CMakeFiles/kgm_translate.dir/native.cc.o.d"
  "/root/repo/src/translate/pg_mapping.cc" "src/translate/CMakeFiles/kgm_translate.dir/pg_mapping.cc.o" "gcc" "src/translate/CMakeFiles/kgm_translate.dir/pg_mapping.cc.o.d"
  "/root/repo/src/translate/ssst.cc" "src/translate/CMakeFiles/kgm_translate.dir/ssst.cc.o" "gcc" "src/translate/CMakeFiles/kgm_translate.dir/ssst.cc.o.d"
  "/root/repo/src/translate/validate.cc" "src/translate/CMakeFiles/kgm_translate.dir/validate.cc.o" "gcc" "src/translate/CMakeFiles/kgm_translate.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/kgm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metalog/CMakeFiles/kgm_metalog.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/kgm_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/kgm_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/kgm_vadalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
