file(REMOVE_RECURSE
  "libkgm_translate.a"
)
