# Empty compiler generated dependencies file for kgm_translate.
# This may be replaced when dependencies are built.
