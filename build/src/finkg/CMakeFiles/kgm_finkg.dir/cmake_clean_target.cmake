file(REMOVE_RECURSE
  "libkgm_finkg.a"
)
