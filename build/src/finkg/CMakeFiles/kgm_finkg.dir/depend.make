# Empty dependencies file for kgm_finkg.
# This may be replaced when dependencies are built.
