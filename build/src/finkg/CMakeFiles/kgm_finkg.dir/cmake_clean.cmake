file(REMOVE_RECURSE
  "CMakeFiles/kgm_finkg.dir/company_kg.cc.o"
  "CMakeFiles/kgm_finkg.dir/company_kg.cc.o.d"
  "CMakeFiles/kgm_finkg.dir/generator.cc.o"
  "CMakeFiles/kgm_finkg.dir/generator.cc.o.d"
  "libkgm_finkg.a"
  "libkgm_finkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgm_finkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
