# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/base")
subdirs("src/pg")
subdirs("src/rel")
subdirs("src/vadalog")
subdirs("src/metalog")
subdirs("src/core")
subdirs("src/translate")
subdirs("src/instance")
subdirs("src/analytics")
subdirs("src/finkg")
subdirs("tests")
subdirs("bench")
subdirs("examples")
