file(REMOVE_RECURSE
  "CMakeFiles/metalog_parser_test.dir/metalog/parser_test.cc.o"
  "CMakeFiles/metalog_parser_test.dir/metalog/parser_test.cc.o.d"
  "metalog_parser_test"
  "metalog_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metalog_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
