# Empty dependencies file for metalog_parser_test.
# This may be replaced when dependencies are built.
