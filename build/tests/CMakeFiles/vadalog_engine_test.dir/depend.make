# Empty dependencies file for vadalog_engine_test.
# This may be replaced when dependencies are built.
