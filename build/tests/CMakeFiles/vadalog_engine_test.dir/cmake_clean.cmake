file(REMOVE_RECURSE
  "CMakeFiles/vadalog_engine_test.dir/vadalog/engine_test.cc.o"
  "CMakeFiles/vadalog_engine_test.dir/vadalog/engine_test.cc.o.d"
  "vadalog_engine_test"
  "vadalog_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
