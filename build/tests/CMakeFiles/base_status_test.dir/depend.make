# Empty dependencies file for base_status_test.
# This may be replaced when dependencies are built.
