# Empty dependencies file for translate_csv_io_test.
# This may be replaced when dependencies are built.
