file(REMOVE_RECURSE
  "CMakeFiles/translate_csv_io_test.dir/translate/csv_io_test.cc.o"
  "CMakeFiles/translate_csv_io_test.dir/translate/csv_io_test.cc.o.d"
  "translate_csv_io_test"
  "translate_csv_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_csv_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
