file(REMOVE_RECURSE
  "CMakeFiles/base_strings_test.dir/base/strings_test.cc.o"
  "CMakeFiles/base_strings_test.dir/base/strings_test.cc.o.d"
  "base_strings_test"
  "base_strings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_strings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
