file(REMOVE_RECURSE
  "CMakeFiles/instance_pipeline_test.dir/instance/pipeline_test.cc.o"
  "CMakeFiles/instance_pipeline_test.dir/instance/pipeline_test.cc.o.d"
  "instance_pipeline_test"
  "instance_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
