# Empty dependencies file for instance_pipeline_test.
# This may be replaced when dependencies are built.
