file(REMOVE_RECURSE
  "CMakeFiles/metalog_catalog_test.dir/metalog/catalog_test.cc.o"
  "CMakeFiles/metalog_catalog_test.dir/metalog/catalog_test.cc.o.d"
  "metalog_catalog_test"
  "metalog_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metalog_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
