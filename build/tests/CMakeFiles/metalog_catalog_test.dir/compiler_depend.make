# Empty compiler generated dependencies file for metalog_catalog_test.
# This may be replaced when dependencies are built.
