file(REMOVE_RECURSE
  "CMakeFiles/vadalog_lexer_test.dir/vadalog/lexer_test.cc.o"
  "CMakeFiles/vadalog_lexer_test.dir/vadalog/lexer_test.cc.o.d"
  "vadalog_lexer_test"
  "vadalog_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
