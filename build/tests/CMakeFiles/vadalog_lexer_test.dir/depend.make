# Empty dependencies file for vadalog_lexer_test.
# This may be replaced when dependencies are built.
