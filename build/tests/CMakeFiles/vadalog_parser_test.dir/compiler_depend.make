# Empty compiler generated dependencies file for vadalog_parser_test.
# This may be replaced when dependencies are built.
