file(REMOVE_RECURSE
  "CMakeFiles/vadalog_parser_test.dir/vadalog/parser_test.cc.o"
  "CMakeFiles/vadalog_parser_test.dir/vadalog/parser_test.cc.o.d"
  "vadalog_parser_test"
  "vadalog_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
