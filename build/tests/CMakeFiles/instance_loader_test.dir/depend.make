# Empty dependencies file for instance_loader_test.
# This may be replaced when dependencies are built.
