file(REMOVE_RECURSE
  "CMakeFiles/instance_loader_test.dir/instance/loader_test.cc.o"
  "CMakeFiles/instance_loader_test.dir/instance/loader_test.cc.o.d"
  "instance_loader_test"
  "instance_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
