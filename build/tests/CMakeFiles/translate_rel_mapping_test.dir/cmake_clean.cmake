file(REMOVE_RECURSE
  "CMakeFiles/translate_rel_mapping_test.dir/translate/rel_mapping_test.cc.o"
  "CMakeFiles/translate_rel_mapping_test.dir/translate/rel_mapping_test.cc.o.d"
  "translate_rel_mapping_test"
  "translate_rel_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_rel_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
