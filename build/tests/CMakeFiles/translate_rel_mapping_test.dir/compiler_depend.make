# Empty compiler generated dependencies file for translate_rel_mapping_test.
# This may be replaced when dependencies are built.
