file(REMOVE_RECURSE
  "CMakeFiles/pg_property_graph_test.dir/pg/property_graph_test.cc.o"
  "CMakeFiles/pg_property_graph_test.dir/pg/property_graph_test.cc.o.d"
  "pg_property_graph_test"
  "pg_property_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_property_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
