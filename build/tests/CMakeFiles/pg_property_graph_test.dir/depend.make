# Empty dependencies file for pg_property_graph_test.
# This may be replaced when dependencies are built.
