file(REMOVE_RECURSE
  "CMakeFiles/analytics_graph_stats_test.dir/analytics/graph_stats_test.cc.o"
  "CMakeFiles/analytics_graph_stats_test.dir/analytics/graph_stats_test.cc.o.d"
  "analytics_graph_stats_test"
  "analytics_graph_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_graph_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
