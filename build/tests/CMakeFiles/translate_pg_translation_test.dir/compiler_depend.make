# Empty compiler generated dependencies file for translate_pg_translation_test.
# This may be replaced when dependencies are built.
