file(REMOVE_RECURSE
  "CMakeFiles/translate_pg_translation_test.dir/translate/pg_translation_test.cc.o"
  "CMakeFiles/translate_pg_translation_test.dir/translate/pg_translation_test.cc.o.d"
  "translate_pg_translation_test"
  "translate_pg_translation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_pg_translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
