file(REMOVE_RECURSE
  "CMakeFiles/instance_property_test.dir/instance/property_test.cc.o"
  "CMakeFiles/instance_property_test.dir/instance/property_test.cc.o.d"
  "instance_property_test"
  "instance_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
