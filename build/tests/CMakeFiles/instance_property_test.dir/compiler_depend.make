# Empty compiler generated dependencies file for instance_property_test.
# This may be replaced when dependencies are built.
