file(REMOVE_RECURSE
  "CMakeFiles/base_value_test.dir/base/value_test.cc.o"
  "CMakeFiles/base_value_test.dir/base/value_test.cc.o.d"
  "base_value_test"
  "base_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
