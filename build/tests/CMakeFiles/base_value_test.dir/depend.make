# Empty dependencies file for base_value_test.
# This may be replaced when dependencies are built.
