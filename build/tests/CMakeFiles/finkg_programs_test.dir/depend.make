# Empty dependencies file for finkg_programs_test.
# This may be replaced when dependencies are built.
