file(REMOVE_RECURSE
  "CMakeFiles/finkg_programs_test.dir/finkg/programs_test.cc.o"
  "CMakeFiles/finkg_programs_test.dir/finkg/programs_test.cc.o.d"
  "finkg_programs_test"
  "finkg_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finkg_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
