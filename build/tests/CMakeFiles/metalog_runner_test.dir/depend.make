# Empty dependencies file for metalog_runner_test.
# This may be replaced when dependencies are built.
