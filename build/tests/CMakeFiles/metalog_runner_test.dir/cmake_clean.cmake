file(REMOVE_RECURSE
  "CMakeFiles/metalog_runner_test.dir/metalog/runner_test.cc.o"
  "CMakeFiles/metalog_runner_test.dir/metalog/runner_test.cc.o.d"
  "metalog_runner_test"
  "metalog_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metalog_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
