# Empty dependencies file for instance_rel_bridge_test.
# This may be replaced when dependencies are built.
