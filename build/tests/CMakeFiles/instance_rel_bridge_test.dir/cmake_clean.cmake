file(REMOVE_RECURSE
  "CMakeFiles/instance_rel_bridge_test.dir/instance/rel_bridge_test.cc.o"
  "CMakeFiles/instance_rel_bridge_test.dir/instance/rel_bridge_test.cc.o.d"
  "instance_rel_bridge_test"
  "instance_rel_bridge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_rel_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
