# Empty compiler generated dependencies file for instance_rel_bridge_test.
# This may be replaced when dependencies are built.
