# Empty dependencies file for vadalog_engine_edge_test.
# This may be replaced when dependencies are built.
