file(REMOVE_RECURSE
  "CMakeFiles/core_superschema_test.dir/core/superschema_test.cc.o"
  "CMakeFiles/core_superschema_test.dir/core/superschema_test.cc.o.d"
  "core_superschema_test"
  "core_superschema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_superschema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
