# Empty compiler generated dependencies file for vadalog_analysis_test.
# This may be replaced when dependencies are built.
