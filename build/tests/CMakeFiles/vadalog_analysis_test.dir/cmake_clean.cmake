file(REMOVE_RECURSE
  "CMakeFiles/vadalog_analysis_test.dir/vadalog/analysis_test.cc.o"
  "CMakeFiles/vadalog_analysis_test.dir/vadalog/analysis_test.cc.o.d"
  "vadalog_analysis_test"
  "vadalog_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
