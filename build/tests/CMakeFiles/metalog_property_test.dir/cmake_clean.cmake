file(REMOVE_RECURSE
  "CMakeFiles/metalog_property_test.dir/metalog/property_test.cc.o"
  "CMakeFiles/metalog_property_test.dir/metalog/property_test.cc.o.d"
  "metalog_property_test"
  "metalog_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metalog_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
