# Empty dependencies file for metalog_property_test.
# This may be replaced when dependencies are built.
