# Empty dependencies file for base_rng_test.
# This may be replaced when dependencies are built.
