# Empty compiler generated dependencies file for translate_validate_test.
# This may be replaced when dependencies are built.
