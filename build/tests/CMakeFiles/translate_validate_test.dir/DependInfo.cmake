
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/translate/validate_test.cc" "tests/CMakeFiles/translate_validate_test.dir/translate/validate_test.cc.o" "gcc" "tests/CMakeFiles/translate_validate_test.dir/translate/validate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/translate/CMakeFiles/kgm_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/finkg/CMakeFiles/kgm_finkg.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/kgm_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kgm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metalog/CMakeFiles/kgm_metalog.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/kgm_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/kgm_vadalog.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/kgm_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kgm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
