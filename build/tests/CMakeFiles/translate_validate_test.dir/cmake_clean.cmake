file(REMOVE_RECURSE
  "CMakeFiles/translate_validate_test.dir/translate/validate_test.cc.o"
  "CMakeFiles/translate_validate_test.dir/translate/validate_test.cc.o.d"
  "translate_validate_test"
  "translate_validate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
