file(REMOVE_RECURSE
  "CMakeFiles/vadalog_expr_test.dir/vadalog/expr_test.cc.o"
  "CMakeFiles/vadalog_expr_test.dir/vadalog/expr_test.cc.o.d"
  "vadalog_expr_test"
  "vadalog_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
