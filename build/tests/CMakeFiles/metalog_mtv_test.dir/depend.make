# Empty dependencies file for metalog_mtv_test.
# This may be replaced when dependencies are built.
