file(REMOVE_RECURSE
  "CMakeFiles/metalog_mtv_test.dir/metalog/mtv_test.cc.o"
  "CMakeFiles/metalog_mtv_test.dir/metalog/mtv_test.cc.o.d"
  "metalog_mtv_test"
  "metalog_mtv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metalog_mtv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
