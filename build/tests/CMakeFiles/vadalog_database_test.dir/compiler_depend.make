# Empty compiler generated dependencies file for vadalog_database_test.
# This may be replaced when dependencies are built.
