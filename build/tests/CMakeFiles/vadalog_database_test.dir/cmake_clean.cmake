file(REMOVE_RECURSE
  "CMakeFiles/vadalog_database_test.dir/vadalog/database_test.cc.o"
  "CMakeFiles/vadalog_database_test.dir/vadalog/database_test.cc.o.d"
  "vadalog_database_test"
  "vadalog_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
