file(REMOVE_RECURSE
  "CMakeFiles/vadalog_property_test.dir/vadalog/property_test.cc.o"
  "CMakeFiles/vadalog_property_test.dir/vadalog/property_test.cc.o.d"
  "vadalog_property_test"
  "vadalog_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
