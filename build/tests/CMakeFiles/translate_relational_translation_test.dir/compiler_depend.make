# Empty compiler generated dependencies file for translate_relational_translation_test.
# This may be replaced when dependencies are built.
