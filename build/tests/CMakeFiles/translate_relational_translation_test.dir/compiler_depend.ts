# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for translate_relational_translation_test.
