file(REMOVE_RECURSE
  "CMakeFiles/translate_relational_translation_test.dir/translate/relational_translation_test.cc.o"
  "CMakeFiles/translate_relational_translation_test.dir/translate/relational_translation_test.cc.o.d"
  "translate_relational_translation_test"
  "translate_relational_translation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_relational_translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
