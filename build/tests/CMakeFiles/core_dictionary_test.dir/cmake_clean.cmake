file(REMOVE_RECURSE
  "CMakeFiles/core_dictionary_test.dir/core/dictionary_test.cc.o"
  "CMakeFiles/core_dictionary_test.dir/core/dictionary_test.cc.o.d"
  "core_dictionary_test"
  "core_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
