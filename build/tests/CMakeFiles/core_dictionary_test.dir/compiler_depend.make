# Empty compiler generated dependencies file for core_dictionary_test.
# This may be replaced when dependencies are built.
