file(REMOVE_RECURSE
  "CMakeFiles/finkg_intensional_test.dir/finkg/intensional_test.cc.o"
  "CMakeFiles/finkg_intensional_test.dir/finkg/intensional_test.cc.o.d"
  "finkg_intensional_test"
  "finkg_intensional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finkg_intensional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
