# Empty dependencies file for finkg_intensional_test.
# This may be replaced when dependencies are built.
