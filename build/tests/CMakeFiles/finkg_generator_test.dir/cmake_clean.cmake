file(REMOVE_RECURSE
  "CMakeFiles/finkg_generator_test.dir/finkg/generator_test.cc.o"
  "CMakeFiles/finkg_generator_test.dir/finkg/generator_test.cc.o.d"
  "finkg_generator_test"
  "finkg_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finkg_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
