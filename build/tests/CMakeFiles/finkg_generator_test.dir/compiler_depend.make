# Empty compiler generated dependencies file for finkg_generator_test.
# This may be replaced when dependencies are built.
