file(REMOVE_RECURSE
  "CMakeFiles/rel_relational_test.dir/rel/relational_test.cc.o"
  "CMakeFiles/rel_relational_test.dir/rel/relational_test.cc.o.d"
  "rel_relational_test"
  "rel_relational_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_relational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
