#include "pg/property_graph.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/check.h"

namespace kgm::pg {

bool Node::HasLabel(std::string_view label) const {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

PropertyGraph PropertyGraph::Clone() const {
  PropertyGraph copy;
  copy.nodes_ = nodes_;
  copy.edges_ = edges_;
  copy.out_edges_ = out_edges_;
  copy.in_edges_ = in_edges_;
  copy.node_label_index_ = node_label_index_;
  copy.edge_label_index_ = edge_label_index_;
  copy.num_live_nodes_ = num_live_nodes_;
  copy.num_live_edges_ = num_live_edges_;
  return copy;
}

NodeId PropertyGraph::AddNode(std::vector<std::string> labels,
                              PropertyMap props) {
  NodeId id = nodes_.size();
  Node n;
  n.id = id;
  n.labels = std::move(labels);
  n.props = std::move(props);
  for (const std::string& label : n.labels) {
    node_label_index_[label].push_back(id);
  }
  nodes_.push_back(std::move(n));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  ++num_live_nodes_;
  return id;
}

NodeId PropertyGraph::AddNode(std::string label, PropertyMap props) {
  return AddNode(std::vector<std::string>{std::move(label)},
                 std::move(props));
}

EdgeId PropertyGraph::AddEdge(NodeId from, NodeId to, std::string label,
                              PropertyMap props) {
  KGM_CHECK(HasNode(from));
  KGM_CHECK(HasNode(to));
  EdgeId id = edges_.size();
  Edge e;
  e.id = id;
  e.from = from;
  e.to = to;
  e.label = std::move(label);
  e.props = std::move(props);
  edge_label_index_[e.label].push_back(id);
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  edges_.push_back(std::move(e));
  ++num_live_edges_;
  return id;
}

void PropertyGraph::AddLabel(NodeId id, const std::string& label) {
  KGM_CHECK(HasNode(id));
  Node& n = nodes_[id];
  if (n.HasLabel(label)) return;
  n.labels.push_back(label);
  node_label_index_[label].push_back(id);
}

void PropertyGraph::SetNodeProperty(NodeId id, const std::string& key,
                                    Value value) {
  KGM_CHECK(HasNode(id));
  nodes_[id].props[key] = std::move(value);
}

void PropertyGraph::SetEdgeProperty(EdgeId id, const std::string& key,
                                    Value value) {
  KGM_CHECK(HasEdge(id));
  edges_[id].props[key] = std::move(value);
}

void PropertyGraph::DeleteNode(NodeId id) {
  if (!HasNode(id)) return;
  for (EdgeId e : out_edges_[id]) DeleteEdge(e);
  for (EdgeId e : in_edges_[id]) DeleteEdge(e);
  nodes_[id].deleted = true;
  --num_live_nodes_;
}

void PropertyGraph::DeleteEdge(EdgeId id) {
  if (!HasEdge(id)) return;
  edges_[id].deleted = true;
  --num_live_edges_;
}

const Node& PropertyGraph::node(NodeId id) const {
  KGM_CHECK(id < nodes_.size());
  return nodes_[id];
}

const Edge& PropertyGraph::edge(EdgeId id) const {
  KGM_CHECK(id < edges_.size());
  return edges_[id];
}

const Value* PropertyGraph::NodeProperty(NodeId id,
                                         std::string_view key) const {
  const Node& n = node(id);
  auto it = n.props.find(key);
  if (it == n.props.end()) return nullptr;
  return &it->second;
}

const Value* PropertyGraph::EdgeProperty(EdgeId id,
                                         std::string_view key) const {
  const Edge& e = edge(id);
  auto it = e.props.find(key);
  if (it == e.props.end()) return nullptr;
  return &it->second;
}

std::vector<NodeId> PropertyGraph::NodesWithLabel(
    std::string_view label) const {
  std::vector<NodeId> out;
  auto it = node_label_index_.find(std::string(label));
  if (it == node_label_index_.end()) return out;
  for (NodeId id : it->second) {
    if (HasNode(id)) out.push_back(id);
  }
  return out;
}

std::vector<EdgeId> PropertyGraph::EdgesWithLabel(
    std::string_view label) const {
  std::vector<EdgeId> out;
  auto it = edge_label_index_.find(std::string(label));
  if (it == edge_label_index_.end()) return out;
  for (EdgeId id : it->second) {
    if (HasEdge(id)) out.push_back(id);
  }
  return out;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id) const {
  KGM_CHECK(id < out_edges_.size());
  return out_edges_[id];
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id) const {
  KGM_CHECK(id < in_edges_.size());
  return in_edges_[id];
}

std::vector<std::string> PropertyGraph::NodeLabels() const {
  std::set<std::string> labels;
  for (const auto& [label, ids] : node_label_index_) {
    for (NodeId id : ids) {
      if (HasNode(id)) {
        labels.insert(label);
        break;
      }
    }
  }
  return {labels.begin(), labels.end()};
}

std::vector<std::string> PropertyGraph::EdgeLabels() const {
  std::set<std::string> labels;
  for (const auto& [label, ids] : edge_label_index_) {
    for (EdgeId id : ids) {
      if (HasEdge(id)) {
        labels.insert(label);
        break;
      }
    }
  }
  return {labels.begin(), labels.end()};
}

NodeId PropertyGraph::FindNode(std::string_view label, std::string_view key,
                               const Value& value) const {
  auto it = node_label_index_.find(std::string(label));
  if (it == node_label_index_.end()) return kInvalidNode;
  for (NodeId id : it->second) {
    if (!HasNode(id)) continue;
    const Value* v = NodeProperty(id, key);
    if (v != nullptr && *v == value) return id;
  }
  return kInvalidNode;
}

std::string PropertyGraph::DebugString() const {
  std::ostringstream os;
  for (const Node& n : nodes_) {
    if (n.deleted) continue;
    os << "(" << n.id;
    for (const std::string& label : n.labels) os << ":" << label;
    if (!n.props.empty()) {
      os << " {";
      bool first = true;
      for (const auto& [k, v] : n.props) {
        if (!first) os << ", ";
        first = false;
        os << k << ": " << v.ToString();
      }
      os << "}";
    }
    os << ")\n";
  }
  for (const Edge& e : edges_) {
    if (e.deleted) continue;
    os << "(" << e.from << ")-[" << e.id << ":" << e.label;
    if (!e.props.empty()) {
      os << " {";
      bool first = true;
      for (const auto& [k, v] : e.props) {
        if (!first) os << ", ";
        first = false;
        os << k << ": " << v.ToString();
      }
      os << "}";
    }
    os << "]->(" << e.to << ")\n";
  }
  return os.str();
}

}  // namespace kgm::pg
