// In-memory property graph store.
//
// Implements the (regular) Property Graph model of Section 4 of the paper:
// G = (N, E, mu, lambda, sigma) with binary edges, partial labeling and
// partial property assignment.  Nodes may carry multiple labels, which the
// super-schema -> PG translation relies on (type accumulation when
// generalizations are eliminated, Section 5.2).
//
// The store doubles as the backing structure for KGModel's graph
// dictionaries: super-schemas, model schemas and instance super-components
// are all stored as property graphs (Section 2.2).
//
// The store is append-mostly: nodes and edges are never physically removed;
// a tombstone flag supports the Eliminate phase of schema translation.

#ifndef KGM_PG_PROPERTY_GRAPH_H_
#define KGM_PG_PROPERTY_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/value.h"

namespace kgm::pg {

using NodeId = uint64_t;
using EdgeId = uint64_t;

inline constexpr NodeId kInvalidNode = ~0ULL;
inline constexpr EdgeId kInvalidEdge = ~0ULL;

// Deterministically ordered property map.
using PropertyMap = std::map<std::string, Value, std::less<>>;

struct Node {
  NodeId id = kInvalidNode;
  std::vector<std::string> labels;
  PropertyMap props;
  bool deleted = false;

  bool HasLabel(std::string_view label) const;
};

struct Edge {
  EdgeId id = kInvalidEdge;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::string label;
  PropertyMap props;
  bool deleted = false;
};

class PropertyGraph {
 public:
  PropertyGraph() = default;

  // Movable but not copyable (graphs can be large); use Clone() to copy.
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  PropertyGraph Clone() const;

  // --- construction ---------------------------------------------------------

  NodeId AddNode(std::vector<std::string> labels, PropertyMap props = {});
  NodeId AddNode(std::string label, PropertyMap props = {});

  // `from` and `to` must exist.
  EdgeId AddEdge(NodeId from, NodeId to, std::string label,
                 PropertyMap props = {});

  // Adds `label` to an existing node (no-op if present).
  void AddLabel(NodeId id, const std::string& label);

  void SetNodeProperty(NodeId id, const std::string& key, Value value);
  void SetEdgeProperty(EdgeId id, const std::string& key, Value value);

  // Marks a node deleted, along with its incident edges.
  void DeleteNode(NodeId id);
  void DeleteEdge(EdgeId id);

  // --- access ---------------------------------------------------------------

  bool HasNode(NodeId id) const { return id < nodes_.size() && !nodes_[id].deleted; }
  bool HasEdge(EdgeId id) const { return id < edges_.size() && !edges_[id].deleted; }

  const Node& node(NodeId id) const;
  const Edge& edge(EdgeId id) const;

  // Property lookup; returns nullptr when absent.
  const Value* NodeProperty(NodeId id, std::string_view key) const;
  const Value* EdgeProperty(EdgeId id, std::string_view key) const;

  // Live nodes carrying `label`, in id order.
  std::vector<NodeId> NodesWithLabel(std::string_view label) const;
  // Live edges labeled `label`, in id order.
  std::vector<EdgeId> EdgesWithLabel(std::string_view label) const;

  // Ids of live out-/in-edges of a node, in insertion order.
  const std::vector<EdgeId>& OutEdges(NodeId id) const;
  const std::vector<EdgeId>& InEdges(NodeId id) const;

  // All distinct node labels / edge labels present (sorted).
  std::vector<std::string> NodeLabels() const;
  std::vector<std::string> EdgeLabels() const;

  // Counts of live nodes / edges.
  size_t num_nodes() const { return num_live_nodes_; }
  size_t num_edges() const { return num_live_edges_; }
  // Upper bound of node/edge ids (including tombstones).
  size_t node_capacity() const { return nodes_.size(); }
  size_t edge_capacity() const { return edges_.size(); }

  // The first live node with `label` whose property `key` equals `value`,
  // or kInvalidNode.  Linear scan over the label index.
  NodeId FindNode(std::string_view label, std::string_view key,
                  const Value& value) const;

  // Human-readable multi-line rendering (small graphs only).
  std::string DebugString() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::unordered_map<std::string, std::vector<NodeId>> node_label_index_;
  std::unordered_map<std::string, std::vector<EdgeId>> edge_label_index_;
  size_t num_live_nodes_ = 0;
  size_t num_live_edges_ = 0;
};

}  // namespace kgm::pg

#endif  // KGM_PG_PROPERTY_GRAPH_H_
