// Graph statistics for the Section 2.1 characterization of the
// shareholding graph: SCC / WCC structure, degree statistics, clustering
// coefficient, and a power-law exponent fit.
//
// Works on a lightweight directed multigraph (edge list), so it scales to
// millions of edges without materializing a property graph.

#ifndef KGM_ANALYTICS_GRAPH_STATS_H_
#define KGM_ANALYTICS_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kgm::analytics {

// A directed multigraph as an edge list over nodes [0, num_nodes).
struct Digraph {
  size_t num_nodes = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

struct ComponentSummary {
  size_t count = 0;
  double avg_size = 0;
  size_t max_size = 0;
};

// Strongly connected components (iterative Tarjan).
ComponentSummary StronglyConnectedComponents(const Digraph& g);

// Weakly connected components (union-find).
ComponentSummary WeaklyConnectedComponents(const Digraph& g);

struct DegreeStats {
  // Averages over nodes that have at least one in-/out-edge, which is how
  // the 3.12 / 1.78 asymmetry of Section 2.1 arises.
  double avg_in = 0;
  double avg_out = 0;
  size_t max_in = 0;
  size_t max_out = 0;
  size_t nodes_with_in = 0;
  size_t nodes_with_out = 0;
};

DegreeStats ComputeDegreeStats(const Digraph& g);

// Average local clustering coefficient of the undirected projection.
// Exact for nodes with degree <= exact_cap; larger hubs are estimated by
// sampling `samples` neighbour pairs (seeded deterministically).
double AverageClusteringCoefficient(const Digraph& g,
                                    size_t exact_cap = 256,
                                    size_t samples = 200,
                                    uint64_t seed = 7);

// Histogram of a degree sequence: degree -> node count.
std::map<size_t, size_t> DegreeHistogram(const std::vector<size_t>& degrees);

// In-/out-degree sequences.
std::vector<size_t> InDegrees(const Digraph& g);
std::vector<size_t> OutDegrees(const Digraph& g);

// Discrete maximum-likelihood power-law exponent for degrees >= k_min:
// alpha = 1 + n / sum(ln(k_i / (k_min - 0.5))).  Returns 0 when fewer
// than 10 samples qualify.
double PowerLawAlphaMle(const std::vector<size_t>& degrees, size_t k_min = 2);

// The full Section 2.1 statistics block.
struct GraphStatsReport {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  ComponentSummary scc;
  ComponentSummary wcc;
  DegreeStats degrees;
  double clustering = 0;
  double power_law_alpha = 0;
};

GraphStatsReport ComputeGraphStats(const Digraph& g);

// Renders the report as the paper-style table, optionally next to the
// published Bank of Italy figures.
std::string RenderStatsTable(const GraphStatsReport& report,
                             bool include_paper_column = true);

}  // namespace kgm::analytics

#endif  // KGM_ANALYTICS_GRAPH_STATS_H_
