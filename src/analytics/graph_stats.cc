#include "analytics/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "base/rng.h"

namespace kgm::analytics {

namespace {

// Compressed adjacency built once from the edge list.
struct Adjacency {
  std::vector<uint32_t> targets;
  std::vector<size_t> offsets;  // size num_nodes + 1

  static Adjacency Build(size_t n,
                         const std::vector<std::pair<uint32_t, uint32_t>>&
                             edges,
                         bool forward) {
    Adjacency adj;
    adj.offsets.assign(n + 1, 0);
    for (const auto& [from, to] : edges) {
      ++adj.offsets[(forward ? from : to) + 1];
    }
    for (size_t i = 0; i < n; ++i) adj.offsets[i + 1] += adj.offsets[i];
    adj.targets.resize(edges.size());
    std::vector<size_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
    for (const auto& [from, to] : edges) {
      uint32_t src = forward ? from : to;
      uint32_t dst = forward ? to : from;
      adj.targets[cursor[src]++] = dst;
    }
    return adj;
  }

  std::pair<const uint32_t*, const uint32_t*> Neighbors(uint32_t v) const {
    return {targets.data() + offsets[v], targets.data() + offsets[v + 1]};
  }
  size_t Degree(uint32_t v) const {
    return offsets[v + 1] - offsets[v];
  }
};

ComponentSummary Summarize(const std::vector<size_t>& sizes) {
  ComponentSummary s;
  s.count = sizes.size();
  if (sizes.empty()) return s;
  size_t total = std::accumulate(sizes.begin(), sizes.end(), size_t{0});
  s.avg_size = static_cast<double>(total) / sizes.size();
  s.max_size = *std::max_element(sizes.begin(), sizes.end());
  return s;
}

}  // namespace

ComponentSummary StronglyConnectedComponents(const Digraph& g) {
  size_t n = g.num_nodes;
  Adjacency adj = Adjacency::Build(n, g.edges, /*forward=*/true);
  std::vector<int64_t> index(n, -1);
  std::vector<int64_t> low(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<uint32_t> stack;
  std::vector<size_t> scc_sizes;
  int64_t next_index = 0;

  struct Frame {
    uint32_t v;
    size_t child;
  };
  std::vector<Frame> frames;
  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    frames.push_back({start, 0});
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      size_t deg = adj.Degree(f.v);
      if (f.child < deg) {
        uint32_t w = adj.targets[adj.offsets[f.v] + f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          size_t size = 0;
          while (true) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            ++size;
            if (w == f.v) break;
          }
          scc_sizes.push_back(size);
        }
        uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return Summarize(scc_sizes);
}

ComponentSummary WeaklyConnectedComponents(const Digraph& g) {
  size_t n = g.num_nodes;
  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<uint32_t> rank(n, 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [from, to] : g.edges) {
    uint32_t a = find(from);
    uint32_t b = find(to);
    if (a == b) continue;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  }
  std::vector<size_t> sizes_by_root(n, 0);
  for (uint32_t v = 0; v < n; ++v) ++sizes_by_root[find(v)];
  std::vector<size_t> sizes;
  for (size_t s : sizes_by_root) {
    if (s > 0) sizes.push_back(s);
  }
  return Summarize(sizes);
}

std::vector<size_t> InDegrees(const Digraph& g) {
  std::vector<size_t> deg(g.num_nodes, 0);
  for (const auto& [from, to] : g.edges) ++deg[to];
  return deg;
}

std::vector<size_t> OutDegrees(const Digraph& g) {
  std::vector<size_t> deg(g.num_nodes, 0);
  for (const auto& [from, to] : g.edges) ++deg[from];
  return deg;
}

DegreeStats ComputeDegreeStats(const Digraph& g) {
  DegreeStats s;
  std::vector<size_t> in = InDegrees(g);
  std::vector<size_t> out = OutDegrees(g);
  size_t in_sum = 0;
  size_t out_sum = 0;
  for (size_t d : in) {
    if (d > 0) {
      ++s.nodes_with_in;
      in_sum += d;
      s.max_in = std::max(s.max_in, d);
    }
  }
  for (size_t d : out) {
    if (d > 0) {
      ++s.nodes_with_out;
      out_sum += d;
      s.max_out = std::max(s.max_out, d);
    }
  }
  if (s.nodes_with_in > 0) {
    s.avg_in = static_cast<double>(in_sum) / s.nodes_with_in;
  }
  if (s.nodes_with_out > 0) {
    s.avg_out = static_cast<double>(out_sum) / s.nodes_with_out;
  }
  return s;
}

double AverageClusteringCoefficient(const Digraph& g, size_t exact_cap,
                                    size_t samples, uint64_t seed) {
  size_t n = g.num_nodes;
  if (n == 0) return 0;
  // Undirected, deduplicated adjacency.
  std::vector<std::pair<uint32_t, uint32_t>> undirected;
  undirected.reserve(g.edges.size() * 2);
  for (const auto& [from, to] : g.edges) {
    if (from == to) continue;
    undirected.emplace_back(from, to);
    undirected.emplace_back(to, from);
  }
  Adjacency adj = Adjacency::Build(n, undirected, /*forward=*/true);
  // Deduplicate neighbour lists in place.
  std::vector<uint32_t> dedup_targets;
  std::vector<size_t> dedup_offsets(1, 0);
  dedup_targets.reserve(adj.targets.size());
  for (uint32_t v = 0; v < n; ++v) {
    auto [begin, end] = adj.Neighbors(v);
    std::vector<uint32_t> nbrs(begin, end);
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    dedup_targets.insert(dedup_targets.end(), nbrs.begin(), nbrs.end());
    dedup_offsets.push_back(dedup_targets.size());
  }
  auto neighbors = [&](uint32_t v) {
    return std::make_pair(dedup_targets.data() + dedup_offsets[v],
                          dedup_targets.data() + dedup_offsets[v + 1]);
  };
  auto connected = [&](uint32_t a, uint32_t b) {
    auto [begin, end] = neighbors(a);
    return std::binary_search(begin, end, b);
  };

  Rng rng(seed);
  double total = 0;
  for (uint32_t v = 0; v < n; ++v) {
    size_t deg = dedup_offsets[v + 1] - dedup_offsets[v];
    if (deg < 2) continue;  // local coefficient 0 by convention
    auto [begin, end] = neighbors(v);
    if (deg <= exact_cap) {
      size_t links = 0;
      for (const uint32_t* a = begin; a != end; ++a) {
        for (const uint32_t* b = a + 1; b != end; ++b) {
          if (connected(*a, *b)) ++links;
        }
      }
      total += 2.0 * links / (static_cast<double>(deg) * (deg - 1));
    } else {
      size_t hits = 0;
      for (size_t s = 0; s < samples; ++s) {
        uint32_t a = begin[rng.NextBelow(deg)];
        uint32_t b = begin[rng.NextBelow(deg)];
        if (a != b && connected(a, b)) ++hits;
      }
      total += static_cast<double>(hits) / samples;
    }
  }
  return total / n;
}

std::map<size_t, size_t> DegreeHistogram(const std::vector<size_t>& degrees) {
  std::map<size_t, size_t> hist;
  for (size_t d : degrees) ++hist[d];
  return hist;
}

double PowerLawAlphaMle(const std::vector<size_t>& degrees, size_t k_min) {
  double log_sum = 0;
  size_t n = 0;
  for (size_t d : degrees) {
    if (d < k_min) continue;
    log_sum += std::log(static_cast<double>(d) / (k_min - 0.5));
    ++n;
  }
  if (n < 10 || log_sum <= 0) return 0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

GraphStatsReport ComputeGraphStats(const Digraph& g) {
  GraphStatsReport r;
  r.num_nodes = g.num_nodes;
  r.num_edges = g.edges.size();
  r.scc = StronglyConnectedComponents(g);
  r.wcc = WeaklyConnectedComponents(g);
  r.degrees = ComputeDegreeStats(g);
  r.clustering = AverageClusteringCoefficient(g);
  r.power_law_alpha = PowerLawAlphaMle(InDegrees(g));
  return r;
}

std::string RenderStatsTable(const GraphStatsReport& r,
                             bool include_paper_column) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  auto row = [&](const std::string& name, const std::string& measured,
                 const std::string& paper) {
    os << "  " << name;
    for (size_t i = name.size(); i < 30; ++i) os << ' ';
    os << measured;
    if (include_paper_column) {
      for (size_t i = measured.size(); i < 18; ++i) os << ' ';
      os << paper;
    }
    os << "\n";
  };
  auto num = [](double v, int precision = 2) {
    std::ostringstream s;
    s.setf(std::ios::fixed);
    s.precision(precision);
    s << v;
    return s.str();
  };
  os << "Shareholding graph statistics (Section 2.1)\n";
  row("metric", "measured", include_paper_column ? "paper (BoI KG)" : "");
  row("nodes", std::to_string(r.num_nodes), "11.97M");
  row("edges", std::to_string(r.num_edges), "14.18M");
  row("SCC count", std::to_string(r.scc.count), "11.96M");
  row("SCC avg size", num(r.scc.avg_size), "~1");
  row("SCC max size", std::to_string(r.scc.max_size), "1.9k");
  row("WCC count", std::to_string(r.wcc.count), ">1.3M");
  row("WCC avg size", num(r.wcc.avg_size), "~9");
  row("WCC max size", std::to_string(r.wcc.max_size), ">6M");
  row("avg in-degree", num(r.degrees.avg_in), "~3.12");
  row("avg out-degree", num(r.degrees.avg_out), "~1.78");
  row("max in-degree", std::to_string(r.degrees.max_in), ">16.9k");
  row("max out-degree", std::to_string(r.degrees.max_out), ">5.1k");
  row("avg clustering coeff", num(r.clustering, 4), "~0.0086");
  row("power-law alpha (in)", num(r.power_law_alpha), "power law");
  return os.str();
}

}  // namespace kgm::analytics
