// KgService: an embeddable, thread-safe serving layer over a materialized
// knowledge graph.
//
// The service owns the published graph as a sequence of immutable,
// epoch-stamped snapshots (see snapshot.h).  Writers materialize a new
// graph off to the side and Publish() it — one shared_ptr swap under a
// leaf mutex held only for the pointer copy — while readers keep
// evaluating against the epoch they pinned; no query ever observes a
// half-published graph and no reader ever waits for snapshot
// construction, only for a concurrent pointer copy.
//
// Queries (MetaLog or Vadalog) flow through three layers:
//
//   1. admission control — a bounded queue over a worker pool; requests
//      beyond `queue_capacity` are rejected immediately with Unavailable
//      rather than piling up latency;
//   2. caching — MetaLog programs are parse+MTV-compiled once per
//      (source, catalog fingerprint) via PreparedCache, and whole results
//      are cached per (request, epoch), invalidated by publication;
//   3. evaluation — the snapshot's precomputed relational encoding is
//      cloned, the compiled program runs to fixpoint with a per-request
//      deadline (cooperatively checked inside the engine), and the output
//      predicate's tuples are returned.

#ifndef KGM_SERVICE_SERVICE_H_
#define KGM_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/thread_pool.h"
#include "metalog/mtv.h"
#include "metalog/prepared.h"
#include "pg/property_graph.h"
#include "service/cache.h"
#include "service/snapshot.h"
#include "service/stats.h"
#include "vadalog/engine.h"
#include "vadalog/incremental.h"
#include "vadalog/magic/point_query.h"

namespace kgm::service {

enum class QueryLanguage {
  kMetaLog,  // compiled via MTV against the snapshot catalog
  kVadalog,  // parsed directly; runs over the relational encoding
};

struct QueryRequest {
  std::string program;
  QueryLanguage language = QueryLanguage::kMetaLog;
  // Predicate whose facts are the result.  For MetaLog this is a label:
  // node rows are (oid, props...), edge rows (oid, from, to, props...).
  std::string output;
  int64_t timeout_ms = 0;  // 0 = no per-request deadline
  bool use_result_cache = true;
  // Point query: when non-empty, `bound_args` is an argument binding for
  // `output` (one entry per position, nullopt = free) and the evaluation
  // routes through the magic-sets / QSQR point-query dispatcher instead
  // of full materialization; the rows returned are exactly the tuples
  // matching the binding.  Aggregates, restricted-chase existentials and
  // all-free bindings fall back to materialize-then-filter with the
  // reason recorded on the result.  `use_point_query = false` keeps the
  // binding semantics but forces the materialize route (benchmark
  // baseline).
  std::vector<std::optional<Value>> bound_args;
  bool use_point_query = true;
};

struct QueryResult {
  uint64_t epoch = 0;
  bool result_cache_hit = false;
  // Set when the program widened an extensional label's property list and
  // the graph had to be re-encoded instead of cloning the snapshot facts.
  bool fresh_encoding = false;
  double eval_seconds = 0;
  // Column names of `rows` (known for MetaLog outputs; empty for Vadalog).
  std::vector<std::string> columns;
  // Point-query routing outcome (kOff unless the request carried
  // `bound_args`): the mode that answered, why magic was skipped if it
  // was, and the evaluation's join-probe count (for the materialize route
  // this includes the output filter scan — the honest baseline cost).
  vadalog::magic::PointQueryMode point_mode = vadalog::magic::PointQueryMode::kOff;
  std::string point_fallback;
  size_t join_probes = 0;
  // Shared with the result cache; never mutated after creation.
  std::shared_ptr<const std::vector<vadalog::Tuple>> rows;
};

struct KgServiceOptions {
  size_t num_workers = 4;
  // Upper bound on queued + running requests; 0 rejects every Query()
  // (Execute() stays available).  Rejections return Unavailable.
  size_t queue_capacity = 64;
  size_t prepared_cache_capacity = 128;
  size_t result_cache_capacity = 256;
  // Per-query engine configuration.  Queries default to single-threaded
  // evaluation — the pool provides cross-request parallelism.
  vadalog::EngineOptions engine;
  metalog::MtvOptions mtv;
  // Run the lint pipeline on every program and reject those with
  // error-severity diagnostics with InvalidArgument — for MetaLog before
  // the request is even queued (diagnostics are cached with the prepared
  // program, so the check is free on cache hits).
  bool lint_admission = true;

  KgServiceOptions() { engine.num_threads = 1; }
};

class KgService {
 public:
  explicit KgService(KgServiceOptions options = {});
  ~KgService();

  KgService(const KgService&) = delete;
  KgService& operator=(const KgService&) = delete;

  // Builds a snapshot from `graph` (taken by value) and makes it the
  // current epoch.  Readers holding the previous epoch finish against
  // it; new queries see the new one.  Returns the new epoch.  Publishers
  // are serialized; building happens outside the snapshot lock, so
  // readers only ever contend on the O(1) pointer swap.
  uint64_t Publish(pg::PropertyGraph graph);

  // Publishes a DELTA snapshot: applies `delta` (deletes before inserts,
  // both idempotent) to the current epoch's relational encoding, cloning
  // only the touched relations and sharing every other relation — plus the
  // graph and the catalog — with the previous snapshot by pointer.  Result
  // cache entries whose recorded input predicates are disjoint from the
  // relations the delta actually changed are carried forward to the new
  // epoch instead of being dropped.  Delta predicates must name existing
  // relations with matching arity (InvalidArgument otherwise); requires a
  // prior Publish (FailedPrecondition).  Returns the new epoch.
  //
  // The snapshot's property graph is NOT updated — queries that would need
  // a fresh graph encoding (an extensional label widened by the program)
  // fail with FailedPrecondition on delta snapshots instead of reading
  // stale data; publish a full graph to clear the condition.
  Result<uint64_t> ApplyDelta(const vadalog::EdbDelta& delta);

  // The current epoch's snapshot (nullptr before the first Publish).
  std::shared_ptr<const Snapshot> CurrentSnapshot() const;
  uint64_t CurrentEpoch() const;

  // Runs a query through admission control on the worker pool; blocks the
  // caller until the result is ready.  Returns Unavailable when the queue
  // is full and DeadlineExceeded when `timeout_ms` elapses (including
  // queue wait).
  Result<QueryResult> Query(const QueryRequest& request);

  // Evaluates on the caller's thread, bypassing admission control (still
  // honors `timeout_ms`).  For embedders that manage their own threading.
  Result<QueryResult> Execute(const QueryRequest& request);

  StatsSnapshot Stats() const;

  metalog::PreparedCache& prepared_cache() { return prepared_; }

 private:
  struct CachedResult {
    std::vector<std::string> columns;
    std::shared_ptr<const std::vector<vadalog::Tuple>> rows;
    double eval_seconds = 0;
    vadalog::magic::PointQueryMode point_mode =
        vadalog::magic::PointQueryMode::kOff;
    std::string point_fallback;
    size_t join_probes = 0;
    // Sorted snapshot predicates the evaluation read (every program
    // predicate present in the snapshot encoding).  ApplyDelta carries an
    // entry forward only when this set is disjoint from the delta's
    // changed relations.
    std::vector<std::string> input_preds;
  };

  // Full key material of one result-cache entry.  The cache indexes by
  // Hash() but verifies the whole struct on hit, so hash collisions are
  // misses, never wrong rows.
  struct ResultKeyMaterial {
    std::string program;
    std::string output;
    QueryLanguage language = QueryLanguage::kMetaLog;
    uint64_t epoch = 0;
    bool reflexive_star = false;
    int max_stars_per_rule = 0;
    // Point-query key material: the collision-free serialization of the
    // binding (QueryBinding::CacheKey — constants are kind-tagged and
    // doubles print round-trip exactly, so 1, 1.0 and "1" key
    // differently) and whether the point-query router was enabled.
    // Same program + same binding but a different route must never share
    // an entry: the rows agree, but the recorded mode/probe counters
    // don't.
    std::string binding;
    bool point_query = false;

    bool operator==(const ResultKeyMaterial& other) const;
    uint64_t Hash() const;
  };

  static ResultKeyMaterial ResultKey(const QueryRequest& request,
                                     uint64_t epoch,
                                     const metalog::MtvOptions& mtv);

  // Compilation carried from pre-queue admission into evaluation so each
  // request is compiled (and cache-counted) at most once.  `epoch` is the
  // snapshot epoch the compile was keyed against; evaluation only reuses
  // the program if it still runs on that epoch.
  struct AdmittedCompile {
    std::shared_ptr<const metalog::CompiledMeta> compiled;
    uint64_t epoch = 0;
  };

  // Pre-queue admission: compiles a MetaLog request through the prepared
  // cache and rejects programs whose cached lint result carries errors.
  // No-op for Vadalog requests (they are linted during evaluation) and
  // before the first Publish.
  Status LintAdmission(const QueryRequest& request, AdmittedCompile* admitted);

  // Full evaluation with stats recording; `start` is the admission time.
  Result<QueryResult> Evaluate(const QueryRequest& request,
                               std::chrono::steady_clock::time_point start,
                               std::chrono::steady_clock::time_point deadline,
                               const AdmittedCompile& admitted);
  // The uninstrumented evaluation pipeline.
  Result<QueryResult> EvaluateOnSnapshot(
      const QueryRequest& request, const Snapshot& snap,
      std::chrono::steady_clock::time_point deadline,
      const AdmittedCompile& admitted);

  KgServiceOptions options_;
  ThreadPool pool_;
  // Current epoch.  A leaf mutex guards the pointer itself; critical
  // sections are a single shared_ptr copy/assign.  (A C++20
  // std::atomic<std::shared_ptr> would do, but libstdc++'s lock-bit
  // implementation is opaque to TSan, which this repo gates on.)
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by snapshot_mu_
  std::mutex publish_mu_;
  uint64_t next_epoch_ = 1;  // guarded by publish_mu_
  metalog::PreparedCache prepared_;
  LruCache<ResultKeyMaterial, CachedResult> results_;
  std::atomic<size_t> pending_{0};  // queued + running requests
  ServiceStats stats_;
};

}  // namespace kgm::service

#endif  // KGM_SERVICE_SERVICE_H_
