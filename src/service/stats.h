// Service-side observability: request counters, latency percentiles over a
// sliding window, cache hit rates, queue depth and epoch age, snapshotted
// atomically and dumpable as JSON for dashboards / the bench harness.

#ifndef KGM_SERVICE_STATS_H_
#define KGM_SERVICE_STATS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "vadalog/engine.h"
#include "vadalog/magic/point_query.h"

namespace kgm::service {

// Point-in-time copy of the service counters.
//
// Counting contract: `queries_total` counts COMPLETED queries — exactly
// queries_ok + queries_failed + deadline_exceeded — and `qps` is
// queries_total / uptime_seconds, so the two always agree.  Requests
// bounced by admission control never reach evaluation and are reported
// only in `queue_rejected`; they are in neither queries_total nor qps.
struct StatsSnapshot {
  uint64_t queries_total = 0;       // completed: ok + failed + deadline
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;      // compile/eval errors
  uint64_t queue_rejected = 0;      // admission control (Unavailable);
                                    // NOT included in queries_total
  uint64_t deadline_exceeded = 0;

  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  // Hash matched a cached entry but the full key material did not (see
  // LruCache / PreparedCache): served as a miss, never as wrong data.
  uint64_t result_cache_key_collisions = 0;
  uint64_t prepared_cache_hits = 0;
  uint64_t prepared_cache_misses = 0;
  uint64_t prepared_cache_key_collisions = 0;

  uint64_t publishes = 0;           // full + delta publications
  uint64_t delta_publishes = 0;     // ApplyDelta publications only
  uint64_t epoch = 0;
  double epoch_age_seconds = 0;     // since last publish; 0 if never

  size_t queue_depth = 0;           // in-flight + queued requests
  double uptime_seconds = 0;
  double qps = 0;                   // queries_total / uptime_seconds

  // Latency percentiles (seconds) over the most recent window.
  size_t latency_samples = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  double latency_max = 0;

  // Cost-based join planning (vadalog::EngineOptions::plan_mode),
  // accumulated over every evaluation that ran with the planner enabled.
  // Rendered as a nested "planner" object in ToJson.
  uint64_t planner_runs = 0;        // engine runs with planning enabled
  uint64_t plans_built = 0;         // plans constructed (incl. replans)
  uint64_t plans_reordered = 0;     // built plans that changed the order
  uint64_t plan_cache_hits = 0;     // PlanFor calls served from cache
  uint64_t plan_replans = 0;        // rebuilds on stats drift / erase
  double est_probes_saved = 0;      // estimator's account of avoided probes

  // Point-query routing (vadalog::magic::EvalPointQuery), accumulated over
  // every bound-argument evaluation.  Rendered as a nested "magic" object
  // in ToJson.  point_queries = the mode counters summed; magic_fallbacks
  // counts only queries that wanted magic but landed on materialize.
  uint64_t point_queries = 0;
  uint64_t point_magic = 0;         // answered by the magic-sets rewrite
  uint64_t point_qsqr = 0;          // answered by the top-down evaluator
  uint64_t point_edb_lookup = 0;    // answered by a direct relation probe
  uint64_t point_materialize = 0;   // fell back to full materialization
  uint64_t magic_rewrites = 0;      // successful magic-sets rewrites
  uint64_t magic_fallbacks = 0;     // wanted magic, got materialize
  uint64_t magic_subqueries = 0;    // adorned predicates / QSQR subqueries
  uint64_t magic_probes = 0;        // join probes spent answering

  std::string ToJson() const;
};

// Thread-safe accumulator.  Record* methods take one mutex briefly;
// latencies go into a fixed ring so memory stays bounded.
class ServiceStats {
 public:
  explicit ServiceStats(size_t latency_window = 4096);

  void RecordOk(double latency_seconds);
  void RecordFailed(double latency_seconds);
  void RecordDeadlineExceeded(double latency_seconds);
  void RecordQueueRejected();
  void RecordResultCache(bool hit);
  void RecordPublish(uint64_t epoch, bool delta = false);
  // Folds one engine run's planner counters into the service aggregates;
  // a no-op unless the run had planning enabled.
  void RecordPlanner(const vadalog::EngineStats& engine_stats);
  // Folds one point-query evaluation's routing outcome and magic counters
  // into the service aggregates.
  void RecordPointQuery(const vadalog::magic::PointQueryStats& pq_stats);

  // Cache counters owned elsewhere, passed in when snapshotting.
  struct ExternalCounters {
    uint64_t prepared_hits = 0;
    uint64_t prepared_misses = 0;
    uint64_t prepared_key_collisions = 0;
    uint64_t result_key_collisions = 0;
  };

  // `queue_depth` and the cache counters live elsewhere; the service
  // passes current values when snapshotting.
  StatsSnapshot Snapshot(size_t queue_depth,
                         const ExternalCounters& external) const;

 private:
  void RecordLatencyLocked(double latency_seconds);

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_publish_{};
  uint64_t queries_ok_ = 0;
  uint64_t queries_failed_ = 0;
  uint64_t queue_rejected_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t result_cache_hits_ = 0;
  uint64_t result_cache_misses_ = 0;
  uint64_t publishes_ = 0;
  uint64_t delta_publishes_ = 0;
  uint64_t epoch_ = 0;
  uint64_t planner_runs_ = 0;
  uint64_t plans_built_ = 0;
  uint64_t plans_reordered_ = 0;
  uint64_t plan_cache_hits_ = 0;
  uint64_t plan_replans_ = 0;
  double est_probes_saved_ = 0;
  uint64_t point_magic_ = 0;
  uint64_t point_qsqr_ = 0;
  uint64_t point_edb_lookup_ = 0;
  uint64_t point_materialize_ = 0;
  uint64_t magic_rewrites_ = 0;
  uint64_t magic_fallbacks_ = 0;
  uint64_t magic_subqueries_ = 0;
  uint64_t magic_probes_ = 0;
  std::vector<double> latencies_;  // ring buffer
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;       // total ever recorded
};

}  // namespace kgm::service

#endif  // KGM_SERVICE_STATS_H_
