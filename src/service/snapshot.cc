#include "service/snapshot.h"

#include <utility>

namespace kgm::service {

vadalog::FactDb Snapshot::CloneFacts() const {
  vadalog::FactDb db;
  for (const auto& [pred, rel] : facts) db.Adopt(pred, rel->Clone());
  return db;
}

size_t Snapshot::TotalFacts() const {
  size_t total = 0;
  for (const auto& [pred, rel] : facts) total += rel->size();
  return total;
}

std::shared_ptr<const Snapshot> BuildSnapshot(pg::PropertyGraph graph,
                                              uint64_t epoch) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch;
  snap->published_at = std::chrono::steady_clock::now();
  snap->graph = std::make_shared<const pg::PropertyGraph>(std::move(graph));
  snap->catalog = metalog::GraphCatalog::FromGraph(*snap->graph);
  snap->catalog_fingerprint = snap->catalog.Fingerprint();
  vadalog::FactDb encoded = metalog::EncodeGraph(*snap->graph, snap->catalog);
  encoded.ForEachRelation([&](const std::string& pred, vadalog::Relation& rel) {
    snap->facts.emplace(
        pred, std::make_shared<const vadalog::Relation>(std::move(rel)));
  });
  snap->num_nodes = snap->graph->num_nodes();
  snap->num_edges = snap->graph->num_edges();
  return snap;
}

bool EncodingCompatible(const metalog::GraphCatalog& base,
                        const metalog::GraphCatalog& extended) {
  for (const std::string& label : base.NodeLabels()) {
    if (extended.NodeProps(label) != base.NodeProps(label)) return false;
  }
  for (const std::string& label : base.EdgeLabels()) {
    if (extended.EdgeProps(label) != base.EdgeProps(label)) return false;
  }
  return true;
}

}  // namespace kgm::service
