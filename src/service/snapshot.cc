#include "service/snapshot.h"

#include <utility>

namespace kgm::service {

std::shared_ptr<const Snapshot> BuildSnapshot(pg::PropertyGraph graph,
                                              uint64_t epoch) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch;
  snap->published_at = std::chrono::steady_clock::now();
  snap->graph = std::move(graph);
  snap->catalog = metalog::GraphCatalog::FromGraph(snap->graph);
  snap->catalog_fingerprint = snap->catalog.Fingerprint();
  snap->facts = metalog::EncodeGraph(snap->graph, snap->catalog);
  snap->num_nodes = snap->graph.num_nodes();
  snap->num_edges = snap->graph.num_edges();
  return snap;
}

bool EncodingCompatible(const metalog::GraphCatalog& base,
                        const metalog::GraphCatalog& extended) {
  for (const std::string& label : base.NodeLabels()) {
    if (extended.NodeProps(label) != base.NodeProps(label)) return false;
  }
  for (const std::string& label : base.EdgeLabels()) {
    if (extended.EdgeProps(label) != base.EdgeProps(label)) return false;
  }
  return true;
}

}  // namespace kgm::service
