// POSIX-robust byte IO for the line-oriented serve protocol.
//
// The helpers are templated on the raw IO callable so tests can inject
// EINTR storms and short reads/writes without a real socket; production
// callers pass thin lambdas over read(2)/write(2).

#ifndef KGM_SERVICE_WIRE_H_
#define KGM_SERVICE_WIRE_H_

#include <sys/types.h>

#include <cerrno>
#include <cstddef>
#include <string>

namespace kgm::service {

// Reads up to `len` bytes via `do_read(buf, len)`, retrying on EINTR.
// Returns >0 bytes read, 0 on EOF, -1 on a real error — an interrupted
// call is never mistaken for connection close.
template <typename ReadFn>
ssize_t ReadSomeWith(ReadFn&& do_read, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = do_read(buf, len);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

// Writes all `len` bytes via `do_write(p, remaining)`, retrying on EINTR
// and continuing after short writes.  Returns true when every byte went
// out, false on a real error (a short write alone is never fatal).
template <typename WriteFn>
bool WriteAllWith(WriteFn&& do_write, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = do_write(p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // no progress possible
    p += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

// Strict TCP port parse: all-digit string in [1, 65535].  Rejects what
// atoi silently maps to 0 (garbage, empty, trailing junk, out of range).
inline bool ParsePort(const std::string& text, int* port) {
  if (text.empty() || text.size() > 5) return false;
  long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value < 1 || value > 65535) return false;
  *port = static_cast<int>(value);
  return true;
}

}  // namespace kgm::service

#endif  // KGM_SERVICE_WIRE_H_
