#include "service/stats.h"

#include <algorithm>
#include <sstream>

namespace kgm::service {

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

std::string StatsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  out << "\"queries_total\":" << queries_total;
  out << ",\"queries_ok\":" << queries_ok;
  out << ",\"queries_failed\":" << queries_failed;
  out << ",\"queue_rejected\":" << queue_rejected;
  out << ",\"deadline_exceeded\":" << deadline_exceeded;
  out << ",\"result_cache_hits\":" << result_cache_hits;
  out << ",\"result_cache_misses\":" << result_cache_misses;
  out << ",\"result_cache_key_collisions\":" << result_cache_key_collisions;
  out << ",\"prepared_cache_hits\":" << prepared_cache_hits;
  out << ",\"prepared_cache_misses\":" << prepared_cache_misses;
  out << ",\"prepared_cache_key_collisions\":"
      << prepared_cache_key_collisions;
  out << ",\"publishes\":" << publishes;
  out << ",\"delta_publishes\":" << delta_publishes;
  out << ",\"epoch\":" << epoch;
  out << ",\"epoch_age_seconds\":" << epoch_age_seconds;
  out << ",\"queue_depth\":" << queue_depth;
  out << ",\"uptime_seconds\":" << uptime_seconds;
  out << ",\"qps\":" << qps;
  out << ",\"latency_samples\":" << latency_samples;
  out << ",\"latency_p50\":" << latency_p50;
  out << ",\"latency_p95\":" << latency_p95;
  out << ",\"latency_p99\":" << latency_p99;
  out << ",\"latency_max\":" << latency_max;
  out << ",\"planner\":{";
  out << "\"runs\":" << planner_runs;
  out << ",\"plans_built\":" << plans_built;
  out << ",\"plans_reordered\":" << plans_reordered;
  out << ",\"cache_hits\":" << plan_cache_hits;
  out << ",\"replans\":" << plan_replans;
  out << ",\"est_probes_saved\":" << est_probes_saved;
  out << "}";
  out << ",\"magic\":{";
  out << "\"point_queries\":" << point_queries;
  out << ",\"magic\":" << point_magic;
  out << ",\"qsqr\":" << point_qsqr;
  out << ",\"edb_lookup\":" << point_edb_lookup;
  out << ",\"materialize\":" << point_materialize;
  out << ",\"rewrites\":" << magic_rewrites;
  out << ",\"fallbacks\":" << magic_fallbacks;
  out << ",\"subqueries\":" << magic_subqueries;
  out << ",\"probes\":" << magic_probes;
  out << "}";
  out << "}";
  return out.str();
}

ServiceStats::ServiceStats(size_t latency_window)
    : start_(std::chrono::steady_clock::now()) {
  latencies_.resize(std::max<size_t>(latency_window, 1));
}

void ServiceStats::RecordLatencyLocked(double latency_seconds) {
  latencies_[latency_next_] = latency_seconds;
  latency_next_ = (latency_next_ + 1) % latencies_.size();
  ++latency_count_;
}

void ServiceStats::RecordOk(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++queries_ok_;
  RecordLatencyLocked(latency_seconds);
}

void ServiceStats::RecordFailed(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++queries_failed_;
  RecordLatencyLocked(latency_seconds);
}

void ServiceStats::RecordDeadlineExceeded(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++deadline_exceeded_;
  RecordLatencyLocked(latency_seconds);
}

void ServiceStats::RecordQueueRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++queue_rejected_;
}

void ServiceStats::RecordResultCache(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++result_cache_hits_;
  } else {
    ++result_cache_misses_;
  }
}

void ServiceStats::RecordPlanner(const vadalog::EngineStats& engine_stats) {
  if (!engine_stats.planner_enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++planner_runs_;
  plans_built_ += engine_stats.plans_built;
  plans_reordered_ += engine_stats.plans_reordered;
  plan_cache_hits_ += engine_stats.plan_cache_hits;
  plan_replans_ += engine_stats.plan_replans;
  est_probes_saved_ += engine_stats.est_probes_saved;
}

void ServiceStats::RecordPointQuery(
    const vadalog::magic::PointQueryStats& pq_stats) {
  using vadalog::magic::PointQueryMode;
  std::lock_guard<std::mutex> lock(mu_);
  switch (pq_stats.mode) {
    case PointQueryMode::kMagic:
      ++point_magic_;
      break;
    case PointQueryMode::kQsqr:
      ++point_qsqr_;
      break;
    case PointQueryMode::kEdbLookup:
      ++point_edb_lookup_;
      break;
    case PointQueryMode::kMaterialize:
      ++point_materialize_;
      break;
    case PointQueryMode::kOff:
      return;  // not a point query; nothing to count
  }
  magic_rewrites_ += pq_stats.engine.magic_rewrites;
  magic_fallbacks_ += pq_stats.engine.magic_fallbacks;
  magic_subqueries_ += pq_stats.engine.magic_subqueries;
  magic_probes_ += pq_stats.engine.join_probes;
}

void ServiceStats::RecordPublish(uint64_t epoch, bool delta) {
  std::lock_guard<std::mutex> lock(mu_);
  ++publishes_;
  if (delta) ++delta_publishes_;
  epoch_ = epoch;
  last_publish_ = std::chrono::steady_clock::now();
}

StatsSnapshot ServiceStats::Snapshot(size_t queue_depth,
                                     const ExternalCounters& external) const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s;
  s.queries_ok = queries_ok_;
  s.queries_failed = queries_failed_;
  s.queue_rejected = queue_rejected_;
  s.deadline_exceeded = deadline_exceeded_;
  // Completed queries only; queue rejections are reported separately (see
  // the StatsSnapshot contract in stats.h) so queries_total and qps share
  // one definition.
  s.queries_total = queries_ok_ + queries_failed_ + deadline_exceeded_;
  s.result_cache_hits = result_cache_hits_;
  s.result_cache_misses = result_cache_misses_;
  s.result_cache_key_collisions = external.result_key_collisions;
  s.prepared_cache_hits = external.prepared_hits;
  s.prepared_cache_misses = external.prepared_misses;
  s.prepared_cache_key_collisions = external.prepared_key_collisions;
  s.publishes = publishes_;
  s.delta_publishes = delta_publishes_;
  s.epoch = epoch_;
  s.queue_depth = queue_depth;
  s.planner_runs = planner_runs_;
  s.plans_built = plans_built_;
  s.plans_reordered = plans_reordered_;
  s.plan_cache_hits = plan_cache_hits_;
  s.plan_replans = plan_replans_;
  s.est_probes_saved = est_probes_saved_;
  s.point_magic = point_magic_;
  s.point_qsqr = point_qsqr_;
  s.point_edb_lookup = point_edb_lookup_;
  s.point_materialize = point_materialize_;
  s.point_queries =
      point_magic_ + point_qsqr_ + point_edb_lookup_ + point_materialize_;
  s.magic_rewrites = magic_rewrites_;
  s.magic_fallbacks = magic_fallbacks_;
  s.magic_subqueries = magic_subqueries_;
  s.magic_probes = magic_probes_;

  const auto now = std::chrono::steady_clock::now();
  s.uptime_seconds = std::chrono::duration<double>(now - start_).count();
  if (last_publish_ != std::chrono::steady_clock::time_point{}) {
    s.epoch_age_seconds =
        std::chrono::duration<double>(now - last_publish_).count();
  }
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(s.queries_total) / s.uptime_seconds
              : 0;

  std::vector<double> window(
      latencies_.begin(),
      latencies_.begin() +
          static_cast<ptrdiff_t>(std::min(latency_count_, latencies_.size())));
  std::sort(window.begin(), window.end());
  s.latency_samples = window.size();
  s.latency_p50 = Percentile(window, 0.50);
  s.latency_p95 = Percentile(window, 0.95);
  s.latency_p99 = Percentile(window, 0.99);
  s.latency_max = window.empty() ? 0 : window.back();
  return s;
}

}  // namespace kgm::service
