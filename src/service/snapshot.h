// Immutable, epoch-stamped view of a materialized knowledge graph.
//
// A Snapshot bundles everything a query needs — the property graph, its
// label catalog, and the relational encoding MTV-compiled programs run
// against — built once at publication time.  Snapshots are shared via
// `shared_ptr<const Snapshot>` and never mutated after publication, so
// readers pin one with a single atomic load and evaluate against it
// without locks while writers materialize the next epoch off to the side.
//
// The relational encoding is held as one immutable `shared_ptr<const
// Relation>` per predicate, so a *delta* snapshot (KgService::ApplyDelta)
// re-encodes only the relations the delta touched and shares every other
// relation — and the graph, and the catalog — with the previous epoch by
// pointer.  Full publications own every relation exclusively.

#ifndef KGM_SERVICE_SNAPSHOT_H_
#define KGM_SERVICE_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "base/status.h"
#include "metalog/catalog.h"
#include "pg/property_graph.h"
#include "vadalog/database.h"

namespace kgm::service {

struct Snapshot {
  uint64_t epoch = 0;
  std::chrono::steady_clock::time_point published_at{};

  // Shared with delta descendants; never null after BuildSnapshot.
  std::shared_ptr<const pg::PropertyGraph> graph;
  // Catalog scanned from `graph` (FromGraph); queries compile against it.
  metalog::GraphCatalog catalog;
  uint64_t catalog_fingerprint = 0;
  // Relational encoding of `graph` per `catalog`, one immutable relation
  // per predicate, precomputed so queries clone facts instead of
  // re-encoding the graph per request.  Delta snapshots alias unchanged
  // relations with the previous epoch.
  std::map<std::string, std::shared_ptr<const vadalog::Relation>> facts;

  // True when this epoch was produced by ApplyDelta: `facts` has diverged
  // from `graph` (the graph still describes the base publication), so
  // queries that would need a fresh graph encoding must be rejected
  // instead of silently reading stale data.
  bool is_delta = false;

  // Sizes of `graph` (stale on delta snapshots, like the graph itself).
  size_t num_nodes = 0;
  size_t num_edges = 0;

  // Deep-copies the encoding into a mutable database for one evaluation.
  vadalog::FactDb CloneFacts() const;
  size_t TotalFacts() const;
};

// Builds a snapshot from a graph (taken by value; callers Clone() first if
// they need to keep their copy).  Pure function of the inputs — safe to
// run while readers serve an older epoch.
std::shared_ptr<const Snapshot> BuildSnapshot(pg::PropertyGraph graph,
                                              uint64_t epoch);

// True when every label of `base` has the same property list in `extended`
// — i.e. the relational encoding produced under `base` is byte-identical
// to the one `extended` would produce for those labels, so facts encoded
// under `base` can be evaluated by a program compiled against `extended`.
// (AbsorbProgram only ever widens the catalog; this detects the rare case
// where a query mentions an unseen property of an extensional label, which
// changes that label's fact arity and forces a fresh encoding.)
bool EncodingCompatible(const metalog::GraphCatalog& base,
                        const metalog::GraphCatalog& extended);

}  // namespace kgm::service

#endif  // KGM_SERVICE_SNAPSHOT_H_
