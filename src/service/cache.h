// Bounded LRU map used for the serving layer's result cache.  Values are
// shared_ptrs to immutable payloads, so a Get returns a handle that stays
// valid after eviction.  All operations take one mutex briefly; payloads
// are never copied under the lock.
//
// Entries are indexed by the key's 64-bit hash but store the FULL key and
// verify equality on every hit: two distinct keys that collide on the hash
// can never serve each other's payload.  A verified mismatch counts as a
// miss (and as a `key_collisions` counter tick); a Put whose hash lands on
// a different key's slot evicts that entry — the cache holds at most one
// entry per hash value.

#ifndef KGM_SERVICE_CACHE_H_
#define KGM_SERVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace kgm::service {

// K must provide `uint64_t Hash() const` and `operator==`.
template <typename K, typename V>
class LruCache {
 public:
  struct Counters {
    size_t hits = 0;
    size_t misses = 0;          // includes collision misses
    size_t key_collisions = 0;  // hash matched, full key did not
    size_t evictions = 0;       // capacity evictions only
  };

  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  // nullptr on miss; promotes the entry on hit.  A hash match with a
  // different full key is a miss, not a hit.
  std::shared_ptr<const V> Get(const K& key) {
    const uint64_t hash = key.Hash();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_hash_.find(hash);
    if (it == by_hash_.end()) {
      ++counters_.misses;
      return nullptr;
    }
    if (!(it->second->key == key)) {
      ++counters_.key_collisions;
      ++counters_.misses;
      return nullptr;
    }
    ++counters_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  void Put(K key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    const uint64_t hash = key.Hash();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      if (!(it->second->key == key)) {
        // A different key hashes here; the newcomer displaces it.
        ++counters_.key_collisions;
        it->second->key = std::move(key);
      }
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{hash, std::move(key), std::move(value)});
    by_hash_[hash] = lru_.begin();
    while (lru_.size() > capacity_) {
      by_hash_.erase(lru_.back().hash);
      lru_.pop_back();
      ++counters_.evictions;
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    by_hash_.clear();
  }

  // Visits every entry, most recently used first, without promoting.
  // `fn(const K&, const std::shared_ptr<const V>&)`.  Used by the serving
  // layer to carry result entries across delta publications.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : lru_) fn(e.key, e.value);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  struct Entry {
    uint64_t hash;
    K key;
    std::shared_ptr<const V> value;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> by_hash_;
  Counters counters_;
};

}  // namespace kgm::service

#endif  // KGM_SERVICE_CACHE_H_
