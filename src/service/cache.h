// Bounded LRU map used for the serving layer's result cache.  Values are
// shared_ptrs to immutable payloads, so a Get returns a handle that stays
// valid after eviction.  All operations take one mutex briefly; payloads
// are never copied under the lock.

#ifndef KGM_SERVICE_CACHE_H_
#define KGM_SERVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace kgm::service {

template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  // nullptr on miss; promotes the entry on hit.
  std::shared_ptr<const V> Get(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it == by_key_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  void Put(uint64_t key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    by_key_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      by_key_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    by_key_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const V>>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> by_key_;
};

}  // namespace kgm::service

#endif  // KGM_SERVICE_CACHE_H_
