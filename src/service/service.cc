#include "service/service.h"

#include <algorithm>
#include <functional>
#include <future>
#include <utility>

#include "base/value.h"
#include "lint/lint.h"
#include "vadalog/parser.h"

namespace kgm::service {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Sorted predicates of `program` that exist in the snapshot encoding —
// the extensional inputs of the evaluation.  Head-only predicates that
// shadow a snapshot relation count too: the engine seeds them from the
// existing rows.
std::vector<std::string> InputPredicates(const vadalog::Program& program,
                                         const Snapshot& snap) {
  std::vector<std::string> preds;
  auto consider = [&](const std::string& pred) {
    if (snap.facts.count(pred) > 0) preds.push_back(pred);
  };
  for (const vadalog::Rule& rule : program.rules) {
    for (const vadalog::Literal& lit : rule.body) consider(lit.atom.predicate);
    for (const vadalog::Atom& head : rule.head) consider(head.predicate);
  }
  for (const vadalog::FactDecl& fact : program.facts) consider(fact.predicate);
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

// Column names of a label's relational encoding; empty for non-labels.
std::vector<std::string> ColumnsFor(const metalog::GraphCatalog& catalog,
                                    const std::string& output) {
  std::vector<std::string> cols;
  if (catalog.HasNodeLabel(output)) {
    cols.push_back("oid");
    for (const std::string& p : catalog.NodeProps(output)) cols.push_back(p);
  } else if (catalog.HasEdgeLabel(output)) {
    cols.push_back("oid");
    cols.push_back("from");
    cols.push_back("to");
    for (const std::string& p : catalog.EdgeProps(output)) cols.push_back(p);
  }
  return cols;
}

}  // namespace

KgService::KgService(KgServiceOptions options)
    : options_(options),
      pool_(std::max<size_t>(options.num_workers, 1)),
      prepared_(options.prepared_cache_capacity),
      results_(options.result_cache_capacity) {
  if (options_.lint_admission) {
    prepared_.set_lint_hook([](const metalog::CompiledMeta& compiled,
                               const metalog::GraphCatalog& base) {
      lint::LintOptions lint_options;
      // Catalog labels are extensional: defined by the graph, not by rules.
      for (const std::string& l : compiled.catalog.NodeLabels()) {
        lint_options.external_predicates.push_back(l);
      }
      for (const std::string& l : compiled.catalog.EdgeLabels()) {
        lint_options.external_predicates.push_back(l);
      }
      return lint::LintCompiledMeta(compiled.meta, compiled.program,
                                    compiled.rule_origin, &base,
                                    lint_options);
    });
  }
}

KgService::~KgService() { pool_.WaitIdle(); }

uint64_t KgService::Publish(pg::PropertyGraph graph) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint64_t epoch = next_epoch_++;
  std::shared_ptr<const Snapshot> snap =
      BuildSnapshot(std::move(graph), epoch);
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  // Results are keyed by epoch, so entries for older epochs can never be
  // returned for queries against this one — the clear just frees capacity.
  // A reader still pinned to an old snapshot may re-insert an old-epoch
  // entry after this; that is correct for its epoch and ages out via LRU.
  results_.Clear();
  stats_.RecordPublish(epoch);
  return epoch;
}

Result<uint64_t> KgService::ApplyDelta(const vadalog::EdbDelta& delta) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  std::shared_ptr<const Snapshot> prev = CurrentSnapshot();
  if (prev == nullptr) {
    return FailedPrecondition("no graph published yet");
  }

  // Validate before touching anything: every delta predicate must name an
  // existing relation and every tuple must match its arity.
  auto validate = [&](const std::map<std::string, std::vector<vadalog::Tuple>>&
                          by_pred) -> Status {
    for (const auto& [pred, tuples] : by_pred) {
      auto it = prev->facts.find(pred);
      if (it == prev->facts.end()) {
        return InvalidArgument("delta names unknown relation '" + pred + "'");
      }
      for (const vadalog::Tuple& t : tuples) {
        if (t.size() != it->second->arity()) {
          return InvalidArgument(
              "delta tuple arity " + std::to_string(t.size()) +
              " != " + std::to_string(it->second->arity()) + " for '" + pred +
              "'");
        }
      }
    }
    return OkStatus();
  };
  KGM_RETURN_IF_ERROR(validate(delta.deletes));
  KGM_RETURN_IF_ERROR(validate(delta.inserts));

  const uint64_t epoch = next_epoch_++;
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch;
  snap->published_at = Clock::now();
  snap->graph = prev->graph;  // shared: the delta lives in the encoding
  snap->catalog = prev->catalog;
  snap->catalog_fingerprint = prev->catalog_fingerprint;
  snap->is_delta = true;
  snap->num_nodes = prev->num_nodes;
  snap->num_edges = prev->num_edges;

  // Re-materialize only the touched relations; alias the rest.  `changed`
  // records relations whose contents actually moved (a delete of an
  // absent tuple or an insert of a present one is a no-op).
  std::set<std::string> changed;
  for (const auto& [pred, rel] : prev->facts) {
    auto del = delta.deletes.find(pred);
    auto ins = delta.inserts.find(pred);
    if (del == delta.deletes.end() && ins == delta.inserts.end()) {
      snap->facts.emplace(pred, rel);  // structural sharing
      continue;
    }
    vadalog::Relation next = rel->Clone();
    if (del != delta.deletes.end()) next.EraseTuples(del->second);
    if (ins != delta.inserts.end()) {
      for (const vadalog::Tuple& t : ins->second) next.Insert(t);
    }
    if (next.version() != rel->version()) changed.insert(pred);
    snap->facts.emplace(
        pred, std::make_shared<const vadalog::Relation>(std::move(next)));
  }

  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    snapshot_ = snap;
  }

  // Carry forward result-cache entries of the previous epoch whose inputs
  // are untouched by the delta: same program + same relation contents =>
  // same rows, so the cached entry is re-keyed to the new epoch.  All
  // other entries age out via their stale epoch key.
  std::vector<std::pair<ResultKeyMaterial, std::shared_ptr<const CachedResult>>>
      carried;
  results_.ForEach([&](const ResultKeyMaterial& key,
                       const std::shared_ptr<const CachedResult>& value) {
    if (key.epoch != prev->epoch) return;
    for (const std::string& pred : value->input_preds) {
      if (changed.count(pred) > 0) return;
    }
    ResultKeyMaterial forwarded = key;
    forwarded.epoch = epoch;
    carried.emplace_back(std::move(forwarded), value);
  });
  results_.Clear();
  for (auto& [key, value] : carried) {
    results_.Put(std::move(key), std::move(value));
  }

  stats_.RecordPublish(epoch, /*delta=*/true);
  return epoch;
}

std::shared_ptr<const Snapshot> KgService::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t KgService::CurrentEpoch() const {
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  return snap == nullptr ? 0 : snap->epoch;
}

bool KgService::ResultKeyMaterial::operator==(
    const ResultKeyMaterial& other) const {
  return program == other.program && output == other.output &&
         language == other.language && epoch == other.epoch &&
         reflexive_star == other.reflexive_star &&
         max_stars_per_rule == other.max_stars_per_rule &&
         binding == other.binding && point_query == other.point_query;
}

uint64_t KgService::ResultKeyMaterial::Hash() const {
  uint64_t key = std::hash<std::string>{}(program);
  key = HashCombine(key, std::hash<std::string>{}(output));
  key = HashCombine(key, static_cast<uint64_t>(language));
  key = HashCombine(key, epoch);
  key = HashCombine(key, reflexive_star ? 1u : 0u);
  key = HashCombine(key, static_cast<uint64_t>(max_stars_per_rule));
  key = HashCombine(key, std::hash<std::string>{}(binding));
  key = HashCombine(key, point_query ? 1u : 0u);
  return key;
}

KgService::ResultKeyMaterial KgService::ResultKey(
    const QueryRequest& request, uint64_t epoch,
    const metalog::MtvOptions& mtv) {
  ResultKeyMaterial key;
  key.program = request.program;
  key.output = request.output;
  key.language = request.language;
  key.epoch = epoch;
  key.reflexive_star = mtv.reflexive_star;
  key.max_stars_per_rule = mtv.max_stars_per_rule;
  if (!request.bound_args.empty()) {
    key.binding =
        vadalog::magic::QueryBinding{request.output, request.bound_args}
            .CacheKey();
    key.point_query = request.use_point_query;
  }
  return key;
}

Status KgService::LintAdmission(const QueryRequest& request,
                                AdmittedCompile* admitted) {
  if (request.language != QueryLanguage::kMetaLog) return OkStatus();
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  if (snap == nullptr) return OkStatus();  // Evaluate reports the real error
  KGM_ASSIGN_OR_RETURN(
      admitted->compiled,
      prepared_.Compile(request.program, snap->catalog, options_.mtv));
  admitted->epoch = snap->epoch;
  if (admitted->compiled->lint.has_errors()) {
    return InvalidArgument("program rejected by lint: " +
                           admitted->compiled->lint.FirstError());
  }
  return OkStatus();
}

Result<QueryResult> KgService::Query(const QueryRequest& request) {
  const Clock::time_point start = Clock::now();
  // Lint before queueing: a program that can never run must not occupy a
  // queue slot or a worker.  The compiled program is carried into
  // evaluation so admission never adds a second cache lookup.
  AdmittedCompile admitted;
  if (options_.lint_admission) {
    Status ok = LintAdmission(request, &admitted);
    if (!ok.ok()) {
      stats_.RecordFailed(Seconds(start, Clock::now()));
      return ok;
    }
  }
  // Admission: reserve a queue slot or reject.  fetch_add + rollback keeps
  // the check race-free without a lock.
  const size_t prev = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= options_.queue_capacity) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordQueueRejected();
    return Unavailable(
        "service queue full (capacity " +
        std::to_string(options_.queue_capacity) + ")");
  }
  const Clock::time_point deadline =
      request.timeout_ms > 0
          ? start + std::chrono::milliseconds(request.timeout_ms)
          : Clock::time_point{};

  std::promise<Result<QueryResult>> promise;
  std::future<Result<QueryResult>> future = promise.get_future();
  pool_.Submit([this, &request, &promise, start, deadline, admitted] {
    Result<QueryResult> result = Evaluate(request, start, deadline, admitted);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    promise.set_value(std::move(result));
  });
  return future.get();
}

Result<QueryResult> KgService::Execute(const QueryRequest& request) {
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      request.timeout_ms > 0
          ? start + std::chrono::milliseconds(request.timeout_ms)
          : Clock::time_point{};
  return Evaluate(request, start, deadline, AdmittedCompile{});
}

Result<QueryResult> KgService::Evaluate(const QueryRequest& request,
                                        Clock::time_point start,
                                        Clock::time_point deadline,
                                        const AdmittedCompile& admitted) {
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // A request can expire while queued; don't start evaluating it.
    if (deadline != Clock::time_point{} && Clock::now() >= deadline) {
      return DeadlineExceeded("deadline expired before evaluation");
    }
    std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
    if (snap == nullptr) {
      return FailedPrecondition("no graph published yet");
    }
    return EvaluateOnSnapshot(request, *snap, deadline, admitted);
  }();

  const double latency = Seconds(start, Clock::now());
  if (result.ok()) {
    stats_.RecordOk(latency);
  } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
    stats_.RecordDeadlineExceeded(latency);
  } else {
    stats_.RecordFailed(latency);
  }
  return result;
}

Result<QueryResult> KgService::EvaluateOnSnapshot(
    const QueryRequest& request, const Snapshot& snap,
    Clock::time_point deadline, const AdmittedCompile& admitted) {
  const ResultKeyMaterial key = ResultKey(request, snap.epoch, options_.mtv);
  if (request.use_result_cache) {
    if (std::shared_ptr<const CachedResult> hit = results_.Get(key)) {
      stats_.RecordResultCache(true);
      QueryResult out;
      out.epoch = snap.epoch;
      out.result_cache_hit = true;
      out.eval_seconds = hit->eval_seconds;
      out.columns = hit->columns;
      out.point_mode = hit->point_mode;
      out.point_fallback = hit->point_fallback;
      out.join_probes = hit->join_probes;
      out.rows = hit->rows;
      return out;
    }
    stats_.RecordResultCache(false);
  }

  const Clock::time_point eval_start = Clock::now();
  QueryResult out;
  out.epoch = snap.epoch;

  vadalog::FactDb db;
  vadalog::Program program;
  if (request.language == QueryLanguage::kMetaLog) {
    std::shared_ptr<const metalog::CompiledMeta> compiled =
        admitted.epoch == snap.epoch ? admitted.compiled : nullptr;
    if (compiled == nullptr) {
      KGM_ASSIGN_OR_RETURN(compiled, prepared_.Compile(request.program,
                                                       snap.catalog,
                                                       options_.mtv));
    }
    // Execute() bypasses Query()'s pre-queue check; the lint result is
    // cached with the compilation, so this re-check costs a flag read.
    if (options_.lint_admission && compiled->lint.has_errors()) {
      return InvalidArgument("program rejected by lint: " +
                             compiled->lint.FirstError());
    }
    if (EncodingCompatible(snap.catalog, compiled->catalog)) {
      db = snap.CloneFacts();
    } else if (snap.is_delta) {
      // The delta lives only in the encoding; re-encoding the (stale)
      // graph would silently drop it.
      return FailedPrecondition(
          "program widens an extensional label but the current epoch is a "
          "delta snapshot; publish a full graph to run it");
    } else {
      db = metalog::EncodeGraph(*snap.graph, compiled->catalog);
      out.fresh_encoding = true;
    }
    program = compiled->program;
    out.columns = ColumnsFor(compiled->catalog, request.output);
  } else {
    KGM_ASSIGN_OR_RETURN(program, vadalog::ParseProgram(request.program));
    if (options_.lint_admission) {
      lint::LintOptions lint_options;
      // The program reads the snapshot's relational encoding: every
      // catalog label is an extensional predicate.
      for (const std::string& l : snap.catalog.NodeLabels()) {
        lint_options.external_predicates.push_back(l);
      }
      for (const std::string& l : snap.catalog.EdgeLabels()) {
        lint_options.external_predicates.push_back(l);
      }
      lint::LintResult lint = lint::RunLints(program, lint_options);
      if (lint.has_errors()) {
        return InvalidArgument("program rejected by lint: " +
                               lint.FirstError());
      }
    }
    db = snap.CloneFacts();
  }
  const std::vector<std::string> input_preds = InputPredicates(program, snap);

  vadalog::EngineOptions engine_options = options_.engine;
  engine_options.deadline = deadline;

  auto rows = std::make_shared<std::vector<vadalog::Tuple>>();
  if (!request.bound_args.empty()) {
    // Point query: route through the magic-sets / QSQR dispatcher against
    // this request's private clone of the pinned snapshot.  With
    // use_point_query=false the dispatcher is forced onto the materialize
    // route, giving benchmarks an apples-to-apples baseline (same entry
    // point, same filter semantics, full bottom-up evaluation).
    vadalog::magic::QueryBinding binding{request.output, request.bound_args};
    vadalog::magic::PointQueryOptions pq_options;
    pq_options.engine = engine_options;
    pq_options.force_materialize = !request.use_point_query;
    vadalog::magic::PointQueryStats pq_stats;
    Result<std::vector<vadalog::Tuple>> answers = vadalog::magic::EvalPointQuery(
        program, binding, &db, pq_options, &pq_stats);
    KGM_RETURN_IF_ERROR(answers.status());
    stats_.RecordPointQuery(pq_stats);
    stats_.RecordPlanner(pq_stats.engine);
    out.point_mode = pq_stats.mode;
    if (pq_stats.fallback != vadalog::magic::FallbackReason::kNone) {
      out.point_fallback =
          vadalog::magic::FallbackReasonName(pq_stats.fallback);
    }
    out.join_probes = pq_stats.engine.join_probes;
    *rows = *std::move(answers);
  } else {
    vadalog::Engine engine(std::move(program), engine_options);
    KGM_RETURN_IF_ERROR(engine.status());
    KGM_RETURN_IF_ERROR(engine.Run(&db));
    stats_.RecordPlanner(engine.stats());
    out.join_probes = engine.stats().join_probes;
    if (const vadalog::Relation* rel = db.Get(request.output)) {
      *rows = rel->tuples();
    }
  }
  out.rows = std::move(rows);
  out.eval_seconds = Seconds(eval_start, Clock::now());

  if (request.use_result_cache) {
    auto cached = std::make_shared<CachedResult>();
    cached->columns = out.columns;
    cached->rows = out.rows;
    cached->eval_seconds = out.eval_seconds;
    cached->input_preds = input_preds;
    cached->point_mode = out.point_mode;
    cached->point_fallback = out.point_fallback;
    cached->join_probes = out.join_probes;
    results_.Put(key, std::move(cached));
  }
  return out;
}

StatsSnapshot KgService::Stats() const {
  const metalog::PreparedCache::Counters prepared = prepared_.counters();
  ServiceStats::ExternalCounters external;
  external.prepared_hits = prepared.hits;
  external.prepared_misses = prepared.misses;
  external.prepared_key_collisions = prepared.key_collisions;
  external.result_key_collisions = results_.counters().key_collisions;
  return stats_.Snapshot(pending_.load(std::memory_order_relaxed), external);
}

}  // namespace kgm::service
