// Structured, source-located diagnostics for program analysis.
//
// A Diagnostic is one finding of one lint pass: a severity, the pass name,
// an anchor in the user's source (SourceLoc + rule index) and a message.
// LintResult collects the findings of a pipeline run; renderers produce the
// compiler-style text form ("file:line:col: severity [pass] message") and a
// machine-readable JSON form.  Both are deterministic: diagnostics are
// sorted by source position before rendering.
//
// This header is deliberately free of parser/engine dependencies so that
// any layer (metalog's prepared cache, the serving layer, tools) can hold a
// LintResult without pulling in the lint passes themselves.

#ifndef KGM_LINT_DIAGNOSTIC_H_
#define KGM_LINT_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "base/source_loc.h"

namespace kgm::lint {

enum class Severity {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

// "note", "warning" or "error".
const char* SeverityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  // Pass identifier, e.g. "safety", "wardedness", "unused-predicate".
  std::string pass;
  // Anchor in the user's source; unknown for programs built
  // programmatically (rendered as "?").
  SourceLoc loc;
  // 0-based index of the offending rule in the *source* program (for
  // compiled MetaLog, the MetaLog rule via MTV provenance); -1 for
  // program-wide findings such as an undefined output predicate.
  int rule_index = -1;
  std::string message;

  // "<line>:<col>: <severity> [<pass>] <message>".
  std::string ToString() const;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;

  void Add(Severity severity, std::string pass, SourceLoc loc, int rule_index,
           std::string message);

  bool has_errors() const { return count(Severity::kError) > 0; }
  bool empty() const { return diagnostics.empty(); }
  size_t count(Severity s) const;
  // Highest severity present; kNote when empty.
  Severity max_severity() const;
  // Message of the first error-severity diagnostic (after sorting), empty
  // string when clean.
  std::string FirstError() const;

  // Deterministic order: source position, then severity (errors first),
  // then pass name, then message.
  void Sort();
};

// Compiler-style text rendering, one line per diagnostic plus a summary
// line.  `file` prefixes each location when non-empty.
std::string RenderText(const LintResult& result, std::string_view file = "");

// JSON rendering: {"file":..., "diagnostics":[{...}], "errors":N,
// "warnings":N, "notes":N}.
std::string RenderJson(const LintResult& result, std::string_view file = "");

// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace kgm::lint

#endif  // KGM_LINT_DIAGNOSTIC_H_
