#include "lint/diagnostic.h"

#include <algorithm>
#include <cstdio>

namespace kgm::lint {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  return loc.ToString() + ": " + SeverityName(severity) + " [" + pass + "] " +
         message;
}

void LintResult::Add(Severity severity, std::string pass, SourceLoc loc,
                     int rule_index, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.pass = std::move(pass);
  d.loc = loc;
  d.rule_index = rule_index;
  d.message = std::move(message);
  diagnostics.push_back(std::move(d));
}

size_t LintResult::count(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

Severity LintResult::max_severity() const {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (static_cast<int>(d.severity) > static_cast<int>(max)) {
      max = d.severity;
    }
  }
  return max;
}

std::string LintResult::FirstError() const {
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (first == nullptr || d.loc < first->loc) first = &d;
  }
  return first == nullptr ? "" : first->ToString();
}

void LintResult::Sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (!(a.loc == b.loc)) return a.loc < b.loc;
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     if (a.pass != b.pass) return a.pass < b.pass;
                     return a.message < b.message;
                   });
}

std::string RenderText(const LintResult& result, std::string_view file) {
  std::string prefix = file.empty() ? "" : std::string(file) + ":";
  std::string out;
  for (const Diagnostic& d : result.diagnostics) {
    out += prefix + d.ToString() + "\n";
  }
  size_t errors = result.count(Severity::kError);
  size_t warnings = result.count(Severity::kWarning);
  if (result.diagnostics.empty()) {
    out += prefix.empty() ? "clean\n" : prefix + " clean\n";
  } else {
    out += std::to_string(errors) + " error(s), " +
           std::to_string(warnings) + " warning(s), " +
           std::to_string(result.count(Severity::kNote)) + " note(s)\n";
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const LintResult& result, std::string_view file) {
  std::string out = "{\"file\":\"" + JsonEscape(file) + "\",\"diagnostics\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"severity\":\"" + std::string(SeverityName(d.severity)) +
           "\",\"pass\":\"" + JsonEscape(d.pass) + "\"";
    if (d.loc.valid()) {
      out += ",\"line\":" + std::to_string(d.loc.line) +
             ",\"column\":" + std::to_string(d.loc.column);
    }
    if (d.rule_index >= 0) {
      out += ",\"rule\":" + std::to_string(d.rule_index);
    }
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"}";
  }
  out += "],\"errors\":" + std::to_string(result.count(Severity::kError)) +
         ",\"warnings\":" + std::to_string(result.count(Severity::kWarning)) +
         ",\"notes\":" + std::to_string(result.count(Severity::kNote)) + "}";
  return out;
}

}  // namespace kgm::lint
