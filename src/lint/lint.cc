#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "metalog/parser.h"
#include "vadalog/analysis.h"
#include "vadalog/magic/magic.h"
#include "vadalog/parser.h"

namespace kgm::lint {

namespace {

using vadalog::Atom;
using vadalog::Literal;
using vadalog::Program;
using vadalog::Rule;
using vadalog::Term;

// Analysis messages carry a "rule N (pred): " prefix; diagnostics anchor the
// rule through loc/rule_index instead, so strip it.
std::string StripRulePrefix(const std::string& message) {
  if (message.rfind("rule ", 0) != 0) return message;
  size_t cut = message.find("): ");
  if (cut == std::string::npos) return message;
  return message.substr(cut + 3);
}

// Lex/parse errors embed "... at <line>:<col>: ..."; recover the position so
// parse diagnostics are source-located too.
SourceLoc ParseErrorLoc(const std::string& message) {
  SourceLoc loc;
  size_t at = message.find(" at ");
  if (at == std::string::npos) return loc;
  size_t i = at + 4;
  int line = 0, col = 0;
  while (i < message.size() && std::isdigit((unsigned char)message[i])) {
    line = line * 10 + (message[i] - '0');
    ++i;
  }
  if (i >= message.size() || message[i] != ':' || line == 0) return loc;
  ++i;
  while (i < message.size() && std::isdigit((unsigned char)message[i])) {
    col = col * 10 + (message[i] - '0');
    ++i;
  }
  if (col == 0) return loc;
  loc.line = line;
  loc.column = col;
  return loc;
}

// Anchor for rule-level findings: the rule's own position.
SourceLoc RuleAnchor(const Rule& r) { return r.loc; }

// Anchor for a finding about one atom: the atom position, falling back to
// the rule (compiled MetaLog atoms carry no positions of their own).
SourceLoc AtomAnchor(const Atom& a, const Rule& r) {
  return a.loc.valid() ? a.loc : r.loc;
}

void SafetyPass(const Program& program, LintResult* out) {
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    Status s = vadalog::ValidateRuleSafety(r, ri);
    if (!s.ok()) {
      out->Add(Severity::kError, "safety", RuleAnchor(r), static_cast<int>(ri),
               StripRulePrefix(s.message()));
    }
  }
}

void StratificationPass(const Program& program, LintResult* out) {
  std::vector<vadalog::StratViolation> violations;
  vadalog::ComputeStratification(program, &violations);
  for (const vadalog::StratViolation& v : violations) {
    const Rule& r = program.rules[v.rule_index];
    out->Add(Severity::kError, "stratification", RuleAnchor(r), v.rule_index,
             StripRulePrefix(v.message));
  }
}

void WardednessPass(const Program& program, LintResult* out) {
  vadalog::WardednessReport report = vadalog::CheckWardedness(program);
  for (size_t i = 0; i < report.violations.size(); ++i) {
    int ri = report.violation_rules[i];
    const Rule& r = program.rules[ri];
    out->Add(Severity::kError, "wardedness", RuleAnchor(r), ri,
             StripRulePrefix(report.violations[i]));
  }
}

void ArityPass(const Program& program, LintResult* out) {
  struct Seen {
    size_t arity;
    bool from_fact;
  };
  std::unordered_map<std::string, Seen> seen;
  auto check = [&](const std::string& pred, size_t arity, SourceLoc loc,
                   int rule_index) {
    auto [it, inserted] = seen.emplace(pred, Seen{arity, rule_index < 0});
    if (inserted || it->second.arity == arity) return;
    out->Add(Severity::kError, "arity", loc, rule_index,
             "predicate " + pred + " used with arity " +
                 std::to_string(arity) + " but previously with arity " +
                 std::to_string(it->second.arity));
  };
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    for (const Literal& l : r.body) {
      check(l.atom.predicate, l.atom.args.size(), AtomAnchor(l.atom, r),
            static_cast<int>(ri));
    }
    for (const Atom& h : r.head) {
      check(h.predicate, h.args.size(), AtomAnchor(h, r),
            static_cast<int>(ri));
    }
  }
  for (const vadalog::FactDecl& f : program.facts) {
    check(f.predicate, f.values.size(), f.loc, -1);
  }
}

void DefinedUsePasses(const Program& program, const LintOptions& options,
                      LintResult* out) {
  std::set<std::string> external(options.external_predicates.begin(),
                                 options.external_predicates.end());
  std::set<std::string> defined;  // heads, facts, inputs
  for (const Rule& r : program.rules) {
    for (const Atom& h : r.head) defined.insert(h.predicate);
  }
  for (const vadalog::FactDecl& f : program.facts) defined.insert(f.predicate);
  for (const std::string& p : program.inputs) defined.insert(p);

  if (options.undefined_predicates) {
    std::set<std::string> reported;
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      const Rule& r = program.rules[ri];
      for (const Literal& l : r.body) {
        const std::string& p = l.atom.predicate;
        if (defined.count(p) > 0 || external.count(p) > 0) continue;
        if (!reported.insert(p).second) continue;
        out->Add(Severity::kWarning, "undefined-predicate",
                 AtomAnchor(l.atom, r), static_cast<int>(ri),
                 "predicate " + p +
                     " is never defined: no rule derives it and it is not "
                     "declared @input or @fact");
      }
    }
    for (size_t i = 0; i < program.outputs.size(); ++i) {
      const std::string& p = program.outputs[i];
      if (defined.count(p) > 0 || external.count(p) > 0) continue;
      SourceLoc loc =
          i < program.output_locs.size() ? program.output_locs[i] : SourceLoc{};
      out->Add(Severity::kError, "undefined-predicate", loc, -1,
               "output predicate " + p + " is never defined");
    }
  }

  // The unused/unreachable passes only make sense against declared outputs:
  // without them every derived predicate is potentially the program's point.
  if (program.outputs.empty()) return;
  std::set<std::string> outputs(program.outputs.begin(),
                                program.outputs.end());

  if (options.unused_predicates) {
    std::set<std::string> used;
    for (const Rule& r : program.rules) {
      for (const Literal& l : r.body) used.insert(l.atom.predicate);
    }
    std::set<std::string> reported;
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      const Rule& r = program.rules[ri];
      for (const Atom& h : r.head) {
        const std::string& p = h.predicate;
        if (used.count(p) > 0 || outputs.count(p) > 0 ||
            external.count(p) > 0) {
          continue;
        }
        if (!reported.insert(p).second) continue;
        out->Add(Severity::kWarning, "unused-predicate", AtomAnchor(h, r),
                 static_cast<int>(ri),
                 "predicate " + p +
                     " is derived but never used and is not an @output");
      }
    }
  }

  if (options.unreachable_rules) {
    // Reverse reachability from the outputs over head -> body edges.
    std::set<std::string> reachable = outputs;
    bool changed = true;
    std::vector<bool> rule_reachable(program.rules.size(), false);
    while (changed) {
      changed = false;
      for (size_t ri = 0; ri < program.rules.size(); ++ri) {
        if (rule_reachable[ri]) continue;
        const Rule& r = program.rules[ri];
        bool hit = false;
        for (const Atom& h : r.head) {
          if (reachable.count(h.predicate) > 0) {
            hit = true;
            break;
          }
        }
        if (!hit) continue;
        rule_reachable[ri] = true;
        changed = true;
        for (const Literal& l : r.body) reachable.insert(l.atom.predicate);
      }
    }
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      if (rule_reachable[ri]) continue;
      const Rule& r = program.rules[ri];
      std::string head = r.head.empty() ? "?" : r.head[0].predicate;
      out->Add(Severity::kWarning, "unreachable-rule", RuleAnchor(r),
               static_cast<int>(ri),
               "rule deriving " + head +
                   " is unreachable from the declared outputs");
    }
  }
}

void SingletonPass(const Program& program, LintResult* out) {
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    std::map<std::string, int> counts;
    auto count_var = [&](const std::string& v) {
      if (!v.empty() && v[0] != '_') ++counts[v];
    };
    auto count_expr = [&](const vadalog::ExprPtr& e) {
      std::vector<std::string> vars;
      e->CollectVars(&vars);
      for (const std::string& v : vars) count_var(v);
    };
    for (const Literal& l : r.body) {
      for (const Term& t : l.atom.args) {
        if (t.is_var()) count_var(t.var);
      }
    }
    for (const Atom& h : r.head) {
      for (const Term& t : h.args) {
        if (t.is_var()) count_var(t.var);
      }
    }
    for (const vadalog::Assignment& a : r.assignments) {
      count_var(a.var);
      count_expr(a.expr);
    }
    for (const vadalog::Condition& c : r.conditions) count_expr(c.expr);
    for (const vadalog::Aggregate& a : r.aggregates) {
      count_var(a.result_var);
      for (const vadalog::ExprPtr& e : a.args) count_expr(e);
      for (const std::string& v : a.contributors) count_var(v);
    }
    for (const vadalog::ExistentialSpec& e : r.existentials) {
      count_var(e.var);
      for (const std::string& v : e.skolem_args) count_var(v);
    }
    for (const auto& [var, n] : counts) {
      if (n != 1) continue;
      out->Add(Severity::kWarning, "singleton-variable", RuleAnchor(r),
               static_cast<int>(ri),
               "variable " + var +
                   " occurs only once in the rule; use '_' if intentional");
    }
  }
}

// Serve-time advice: an @output whose bound queries can never benefit from
// the magic-sets rewrite (see vadalog/magic) always pays the full
// materialization at point-query time — either because no bound argument
// reaches a recursive predicate, or because the output's cone forces a
// fallback (aggregates, restricted-chase existentials).  Only meaningful
// against declared outputs, like the unused/unreachable passes.
void MagicFutilityPass(const Program& program, LintResult* out) {
  for (size_t i = 0; i < program.outputs.size(); ++i) {
    const std::string& pred = program.outputs[i];
    vadalog::magic::MagicOpportunity opp =
        vadalog::magic::AnalyzeMagicOpportunity(program, pred);
    SourceLoc loc =
        i < program.output_locs.size() ? program.output_locs[i] : SourceLoc{};
    if (opp.fallback != vadalog::magic::FallbackReason::kNone) {
      out->Add(Severity::kWarning, "magic-futility", loc, -1,
               "bound queries on " + pred +
                   " always fall back to full materialization: " + opp.detail);
    } else if (opp.recursive_cone && !opp.beneficial) {
      out->Add(Severity::kWarning, "magic-futility", loc, -1, opp.detail);
    }
  }
}

// --- MetaLog-level passes ----------------------------------------------------

using metalog::GraphCatalog;
using metalog::GraphPattern;
using metalog::MetaProgram;
using metalog::MetaRule;
using metalog::PathExpr;
using metalog::PathKind;
using metalog::PathPtr;
using metalog::PgAtom;
using metalog::PgProperty;

void ForEachPatternAtom(
    const GraphPattern& pattern,
    const std::function<void(const PgAtom&, bool inside_star)>& fn) {
  for (const PgAtom& n : pattern.nodes) fn(n, false);
  std::function<void(const PathPtr&, bool)> walk = [&](const PathPtr& p,
                                                       bool in_star) {
    if (p->kind == PathKind::kEdge) {
      fn(p->edge, in_star);
      return;
    }
    bool star = in_star || p->kind == PathKind::kStar;
    for (const PathPtr& c : p->children) walk(c, star);
  };
  for (const PathPtr& p : pattern.paths) walk(p, false);
}

void CatalogPass(const MetaProgram& meta, const GraphCatalog& base,
                 LintResult* out) {
  // Labels derived by any head pattern are intensional: absent from the
  // base catalog by design.
  std::set<std::string> derived;
  for (const MetaRule& rule : meta.rules) {
    for (const GraphPattern& p : rule.head_patterns) {
      ForEachPatternAtom(p, [&](const PgAtom& a, bool) {
        if (!a.label.empty()) derived.insert(a.label);
      });
    }
  }
  std::set<std::pair<std::string, std::string>> reported;
  for (size_t ri = 0; ri < meta.rules.size(); ++ri) {
    const MetaRule& rule = meta.rules[ri];
    auto check_atom = [&](const PgAtom& a, bool) {
      if (a.label.empty()) return;
      const char* kind = a.is_edge ? "edge" : "node";
      bool known = a.is_edge ? base.HasEdgeLabel(a.label)
                             : base.HasNodeLabel(a.label);
      bool other_kind = a.is_edge ? base.HasNodeLabel(a.label)
                                  : base.HasEdgeLabel(a.label);
      if (!known && other_kind) {
        out->Add(Severity::kError, "catalog", a.loc, static_cast<int>(ri),
                 std::string("label ") + a.label + " is a " +
                     (a.is_edge ? "node" : "edge") + " label but used as a " +
                     kind + " label");
        return;
      }
      if (!known) {
        if (derived.count(a.label) > 0) return;  // intensional
        if (!reported.insert({a.label, ""}).second) return;
        out->Add(Severity::kWarning, "catalog", a.loc, static_cast<int>(ri),
                 std::string(kind) + " label " + a.label +
                     " is not in the graph catalog and is not derived by "
                     "any rule");
        return;
      }
      const std::vector<std::string>& props =
          a.is_edge ? base.EdgeProps(a.label) : base.NodeProps(a.label);
      for (const PgProperty& p : a.properties) {
        if (std::find(props.begin(), props.end(), p.name) != props.end()) {
          continue;
        }
        if (!reported.insert({a.label, p.name}).second) continue;
        out->Add(Severity::kWarning, "catalog", a.loc, static_cast<int>(ri),
                 "property " + p.name + " is not in the graph catalog for " +
                     kind + " label " + a.label);
      }
    };
    for (const GraphPattern& p : rule.body_patterns) {
      ForEachPatternAtom(p, check_atom);
    }
    for (const GraphPattern& p : rule.negated_patterns) {
      ForEachPatternAtom(p, check_atom);
    }
    for (const GraphPattern& p : rule.head_patterns) {
      ForEachPatternAtom(p, check_atom);
    }
  }
}

void CollectAtomVars(const PgAtom& a, std::set<std::string>* vars) {
  if (!a.id_var.empty() && a.id_var != "_") vars->insert(a.id_var);
  for (const PgProperty& p : a.properties) {
    if (p.value.is_var() && !p.value.is_anonymous()) {
      vars->insert(p.value.var);
    }
  }
  if (!a.spread_var.empty()) vars->insert(a.spread_var);
}

void PathUnboundPass(const MetaProgram& meta, const LintOptions& options,
                     LintResult* out) {
  for (size_t ri = 0; ri < meta.rules.size(); ++ri) {
    const MetaRule& rule = meta.rules[ri];

    // Variables bound outside any '*' sub-path: node atoms, non-star path
    // parts, negated patterns, assignment targets and aggregate results.
    std::set<std::string> star_vars, bound_outside;
    SourceLoc star_loc;
    auto scan_pattern = [&](const GraphPattern& p) {
      ForEachPatternAtom(p, [&](const PgAtom& a, bool inside_star) {
        std::set<std::string> vars;
        CollectAtomVars(a, &vars);
        if (inside_star) {
          if (!star_loc.valid()) star_loc = a.loc;
          for (const std::string& v : vars) star_vars.insert(v);
        } else {
          for (const std::string& v : vars) bound_outside.insert(v);
        }
      });
    };
    for (const GraphPattern& p : rule.body_patterns) scan_pattern(p);
    for (const GraphPattern& p : rule.negated_patterns) scan_pattern(p);
    for (const vadalog::Assignment& a : rule.assignments) {
      bound_outside.insert(a.var);
    }
    for (const vadalog::Aggregate& a : rule.aggregates) {
      bound_outside.insert(a.result_var);
    }
    if (star_vars.empty()) continue;

    // Variables the rest of the rule consumes.
    std::set<std::string> used;
    for (const GraphPattern& p : rule.head_patterns) {
      ForEachPatternAtom(p,
                         [&](const PgAtom& a, bool) { CollectAtomVars(a, &used); });
    }
    auto use_expr = [&](const vadalog::ExprPtr& e) {
      std::vector<std::string> vars;
      e->CollectVars(&vars);
      used.insert(vars.begin(), vars.end());
    };
    for (const vadalog::Assignment& a : rule.assignments) use_expr(a.expr);
    for (const vadalog::Condition& c : rule.conditions) use_expr(c.expr);
    for (const vadalog::Aggregate& a : rule.aggregates) {
      for (const vadalog::ExprPtr& e : a.args) use_expr(e);
      used.insert(a.contributors.begin(), a.contributors.end());
    }
    for (const vadalog::ExistentialSpec& e : rule.existentials) {
      used.insert(e.skolem_args.begin(), e.skolem_args.end());
    }

    for (const std::string& v : used) {
      if (star_vars.count(v) == 0 || bound_outside.count(v) > 0) continue;
      if (options.mtv.reflexive_star) {
        out->Add(Severity::kError, "path-unbound-variable",
                 rule.loc, static_cast<int>(ri),
                 "variable " + v +
                     " is bound only inside a '*' path; the empty-path "
                     "variant leaves it unbound");
      }
    }
  }
}

LintResult RunLintsImpl(const Program& program, const LintOptions& options) {
  LintResult result;
  if (options.safety) SafetyPass(program, &result);
  if (options.stratification) StratificationPass(program, &result);
  if (options.wardedness) WardednessPass(program, &result);
  if (options.arity) ArityPass(program, &result);
  if (options.undefined_predicates || options.unused_predicates ||
      options.unreachable_rules) {
    DefinedUsePasses(program, options, &result);
  }
  if (options.singleton_variables) SingletonPass(program, &result);
  // Futility analysis runs the adornment machinery; skip it on programs
  // the error passes already rejected.
  if (options.magic_futility && !result.has_errors()) {
    MagicFutilityPass(program, &result);
  }
  return result;
}

void Dedup(LintResult* result) {
  std::set<std::tuple<int, std::string, int, std::string>> seen;
  std::vector<Diagnostic> unique;
  for (Diagnostic& d : result->diagnostics) {
    if (seen.emplace(static_cast<int>(d.severity), d.pass, d.rule_index,
                     d.message)
            .second) {
      unique.push_back(std::move(d));
    }
  }
  result->diagnostics = std::move(unique);
}

}  // namespace

LintResult RunLints(const Program& program, const LintOptions& options) {
  LintResult result = RunLintsImpl(program, options);
  result.Sort();
  return result;
}

LintResult LintCompiledMeta(const MetaProgram& meta,
                            const Program& program,
                            const std::vector<int>& rule_origin,
                            const GraphCatalog* base_catalog,
                            const LintOptions& options) {
  LintResult result = RunLintsImpl(program, options);
  // Remap compiled-rule anchors to the originating MetaLog rules.  The loc
  // is already the MetaLog rule's (MTV stamps it), only the index changes.
  for (Diagnostic& d : result.diagnostics) {
    if (d.rule_index >= 0 &&
        d.rule_index < static_cast<int>(rule_origin.size())) {
      d.rule_index = rule_origin[d.rule_index];
    }
  }
  if (options.catalog && base_catalog != nullptr) {
    CatalogPass(meta, *base_catalog, &result);
  }
  if (options.path_unbound) PathUnboundPass(meta, options, &result);
  // Star-expansion variants and helper rules can repeat one source-level
  // finding; keep the first occurrence of each.
  Dedup(&result);
  result.Sort();
  return result;
}

LintResult LintCompiledMeta(const MetaProgram& meta,
                            const metalog::MtvResult& mtv,
                            const GraphCatalog* base_catalog,
                            const LintOptions& options) {
  return LintCompiledMeta(meta, mtv.program, mtv.rule_origin, base_catalog,
                          options);
}

LintResult LintVadalogSource(std::string_view source,
                             const LintOptions& options) {
  Result<Program> program = vadalog::ParseProgram(source);
  if (!program.ok()) {
    LintResult result;
    result.Add(Severity::kError, "parse",
               ParseErrorLoc(program.status().message()), -1,
               program.status().message());
    return result;
  }
  return RunLints(*program, options);
}

LintResult LintMetaLogSource(std::string_view source,
                             const GraphCatalog* base_catalog,
                             const LintOptions& options) {
  Result<MetaProgram> meta = metalog::ParseMetaProgram(source);
  if (!meta.ok()) {
    LintResult result;
    result.Add(Severity::kError, "parse",
               ParseErrorLoc(meta.status().message()), -1,
               meta.status().message());
    return result;
  }
  GraphCatalog catalog;
  if (base_catalog != nullptr) catalog = *base_catalog;
  Status absorbed = catalog.AbsorbProgram(*meta);
  if (!absorbed.ok()) {
    LintResult result;
    result.Add(Severity::kError, "translate", SourceLoc{}, -1,
               absorbed.message());
    return result;
  }
  LintOptions effective = options;
  // Catalog labels are extensional definitions for the compiled program.
  for (const std::string& l : catalog.NodeLabels()) {
    effective.external_predicates.push_back(l);
  }
  for (const std::string& l : catalog.EdgeLabels()) {
    effective.external_predicates.push_back(l);
  }
  Result<metalog::MtvResult> mtv =
      metalog::TranslateMetaProgram(*meta, catalog, options.mtv);
  if (!mtv.ok()) {
    LintResult result;
    result.Add(Severity::kError, "translate", SourceLoc{}, -1,
               mtv.status().message());
    // The MetaLog-level passes still run: they often explain the failure
    // with a better anchor.
    if (options.catalog && base_catalog != nullptr) {
      CatalogPass(*meta, *base_catalog, &result);
    }
    if (options.path_unbound) PathUnboundPass(*meta, effective, &result);
    result.Sort();
    return result;
  }
  return LintCompiledMeta(*meta, *mtv, base_catalog, effective);
}

}  // namespace kgm::lint
