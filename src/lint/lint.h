// The lint pass pipeline: static analysis over Vadalog and MetaLog
// programs producing structured, source-located diagnostics.
//
// Passes over the (possibly compiled) Vadalog program:
//   * safety           — range restriction per rule (error)
//   * stratification   — negation inside a recursive SCC (error)
//   * wardedness       — dangerous variables without a ward (error)
//   * arity            — one predicate used with different arities (error)
//   * undefined-predicate — body predicate with no rule, @fact, @input or
//                        external definition (warning)
//   * unused-predicate — derived predicate never read and not an @output;
//                        only when the program declares outputs (warning)
//   * unreachable-rule — rule not reachable from any @output; only when
//                        the program declares outputs (warning)
//   * singleton-variable — variable occurring exactly once in a rule;
//                        names starting with '_' are exempt (warning)
//   * magic-futility   — @output whose bound (point) queries can never
//                        benefit from the magic-sets rewrite: either no
//                        bound argument reaches a recursive predicate, or
//                        the output's cone forces a materialize fallback
//                        (aggregates / restricted-chase existentials);
//                        only when the program declares outputs and has
//                        no errors (warning)
//
// MetaLog-level passes (run on the MetaProgram before/independent of MTV):
//   * catalog          — labels/properties absent from the base graph
//                        catalog and not derived by any rule (warning, or
//                        error for a label used as both node and edge)
//   * path-unbound-variable — variable bound only inside a '*' sub-path but
//                        used in the head / conditions / assignments: the
//                        star's empty-path variant leaves it unbound (error)
//
// For compiled MetaLog, diagnostics found on the Vadalog program are
// remapped through MTV provenance (MtvResult::rule_origin) so they anchor
// at the originating MetaLog rule.

#ifndef KGM_LINT_LINT_H_
#define KGM_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"
#include "metalog/ast.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "vadalog/ast.h"

namespace kgm::lint {

struct LintOptions {
  bool safety = true;
  bool stratification = true;
  bool wardedness = true;
  bool arity = true;
  bool undefined_predicates = true;
  bool unused_predicates = true;
  bool unreachable_rules = true;
  bool singleton_variables = true;
  bool magic_futility = true;
  // MetaLog-only passes.
  bool catalog = true;
  bool path_unbound = true;
  // Predicates defined outside the program (e.g. graph-catalog labels):
  // exempt from the undefined/unused passes.
  std::vector<std::string> external_predicates;
  metalog::MtvOptions mtv;  // used when compiling MetaLog sources
};

// Runs the Vadalog passes over `program`.  Diagnostics are sorted.
LintResult RunLints(const vadalog::Program& program,
                    const LintOptions& options = {});

// Lints a MetaLog program that `program` was compiled from: runs the
// Vadalog passes over the compiled program with anchors remapped to the
// MetaLog rules via `rule_origin` (MtvResult::rule_origin), plus the
// MetaLog-level passes.  `base_catalog` is the catalog *before*
// AbsorbProgram (nullptr skips the catalog pass).
LintResult LintCompiledMeta(const metalog::MetaProgram& meta,
                            const vadalog::Program& program,
                            const std::vector<int>& rule_origin,
                            const metalog::GraphCatalog* base_catalog,
                            const LintOptions& options = {});

LintResult LintCompiledMeta(const metalog::MetaProgram& meta,
                            const metalog::MtvResult& mtv,
                            const metalog::GraphCatalog* base_catalog,
                            const LintOptions& options = {});

// Source front doors used by kgmctl and tools: parse (and for MetaLog,
// absorb + translate), then lint.  Parse/translate failures are reported as
// a single error diagnostic of pass "parse" / "translate" instead of a
// Status, so callers always get a renderable result.
LintResult LintVadalogSource(std::string_view source,
                             const LintOptions& options = {});
LintResult LintMetaLogSource(std::string_view source,
                             const metalog::GraphCatalog* base_catalog,
                             const LintOptions& options = {});

}  // namespace kgm::lint

#endif  // KGM_LINT_LINT_H_
