// Relational target support for the instance pipeline: model independence
// of the intensional component (Section 6).
//
// The extensional component may live in a relational database whose schema
// was produced by SSST (Figure 8): one relation per generalization member
// sharing the root key, foreign-key columns for functional edges, junction
// relations for many-to-many edges.  This module maps such a database to
// and from the property-graph form of the same instance, so the identical
// MetaLog program Sigma materializes against either target:
//
//   MaterializeRelational(schema, sigma, &db)
//     == RelationalToGraph -> Materialize (Algorithm 2) -> GraphToRelational

#ifndef KGM_INSTANCE_REL_BRIDGE_H_
#define KGM_INSTANCE_REL_BRIDGE_H_

#include <string>

#include "base/status.h"
#include "core/superschema.h"
#include "instance/pipeline.h"
#include "pg/property_graph.h"
#include "rel/relational.h"

namespace kgm::instance {

// Reconstructs the property-graph instance from a relational database laid
// out per TranslateToRelationalNative: entities are identified by their
// root key across member relations (most specific member wins the primary
// label), functional-edge FK columns and junction relations become edges.
Result<pg::PropertyGraph> RelationalToGraph(const core::SuperSchema& schema,
                                            const rel::Database& db);

// Exports a property-graph instance (including derived components) into a
// fresh relational database with the Figure 8 schema.  Intensional nodes
// without identifying attributes are keyed by their surrogate `_oid`
// column.
Result<rel::Database> GraphToRelational(const core::SuperSchema& schema,
                                        const pg::PropertyGraph& data);

// Algorithm 2 against a relational component: import, materialize, export.
// On success `db` is replaced by the database including the derived
// components.
Result<MaterializeStats> MaterializeRelational(
    const core::SuperSchema& schema, const std::string& sigma_source,
    rel::Database* db, const MaterializeOptions& options = {});

}  // namespace kgm::instance

#endif  // KGM_INSTANCE_REL_BRIDGE_H_
