// Instance loading (Algorithm 2, lines 1-4, and Figure 9).
//
// The extensional component D (a property graph conforming to the
// translated schema) is loaded into *instance super-constructs*: every data
// node becomes an I_SM_Node linked by SM_REFERENCES to its SM_Node in the
// super-schema dictionary; properties become I_SM_Attributes holding the
// value and referencing their SM_Attribute; edges become I_SM_Edges with
// I_SM_FROM / I_SM_TO.  The result is the quasi-inverse image
// (V(M).copy)^-1(D) of Section 6: the copy phase is invertible by
// construction, so loading resolves each datum against the schema
// dictionary and re-expresses it at super-model level.

#ifndef KGM_INSTANCE_LOADER_H_
#define KGM_INSTANCE_LOADER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/superschema.h"
#include "pg/property_graph.h"

namespace kgm::instance {

// Instance-construct labels (Figure 9).
inline constexpr char kISmNode[] = "I_SM_Node";
inline constexpr char kISmEdge[] = "I_SM_Edge";
inline constexpr char kISmAttribute[] = "I_SM_Attribute";
inline constexpr char kISmHasNodeAttr[] = "I_SM_HAS_NODE_ATTR";
inline constexpr char kISmHasEdgeAttr[] = "I_SM_HAS_EDGE_ATTR";
inline constexpr char kISmFrom[] = "I_SM_FROM";
inline constexpr char kISmTo[] = "I_SM_TO";
inline constexpr char kSmReferences[] = "SM_REFERENCES";

// Staging ("output view") labels used before the flush.
inline constexpr char kOSmNode[] = "O_SM_Node";
inline constexpr char kOSmEdge[] = "O_SM_Edge";
inline constexpr char kOSmAttribute[] = "O_SM_Attribute";
inline constexpr char kOSmPropUpdate[] = "O_SM_PropUpdate";
inline constexpr char kOSmHasAttr[] = "O_SM_HAS_ATTR";
inline constexpr char kOFrom[] = "O_FROM";
inline constexpr char kOTo[] = "O_TO";
inline constexpr char kOOn[] = "O_ON";

// The loaded instance: a dictionary graph holding the super-schema plus
// the instance super-constructs, and the correspondence between data nodes
// and I_SM_Nodes.
struct LoadedInstance {
  pg::PropertyGraph dict;
  int64_t instance_oid = 234;  // as in Examples 6.1/6.2
  // data node id -> I_SM_Node id in dict (kInvalidNode when skipped).
  std::vector<pg::NodeId> inode_of_data;
  // I_SM_Node id in dict -> data node id.
  std::map<pg::NodeId, pg::NodeId> data_of_inode;
  // Counts for reporting.
  size_t loaded_nodes = 0;
  size_t loaded_edges = 0;
  size_t loaded_attributes = 0;
};

// Loads `data` into instance super-constructs.  Data nodes are classified
// by their *primary* label (the first label that names a schema node
// type); nodes without one are skipped.  Properties not declared (directly
// or by inheritance) on the node's type are skipped.
Result<LoadedInstance> LoadInstance(const core::SuperSchema& schema,
                                    const pg::PropertyGraph& data,
                                    int64_t instance_oid = 234);

}  // namespace kgm::instance

#endif  // KGM_INSTANCE_LOADER_H_
