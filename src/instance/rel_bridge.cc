#include "instance/rel_bridge.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "base/strings.h"
#include "metalog/catalog.h"  // kOidProperty
#include "translate/native.h"

namespace kgm::instance {

namespace {

using core::AttributeDef;
using core::EdgeDef;
using core::NodeDef;
using core::SuperSchema;

// Encoded entity identity: root type name + key values.
std::string EntityKey(const std::string& root, const rel::Tuple& key) {
  std::string out = root;
  for (const Value& v : key) {
    out += '\x1f';
    out += v.ToString();
  }
  return out;
}

size_t Depth(const SuperSchema& schema, const std::string& node) {
  return schema.AncestorsOf(node).size();
}

// Node types sorted deepest-first, so the most specific member relation
// claims the entity's primary label.
std::vector<const NodeDef*> NodesByDepth(const SuperSchema& schema) {
  std::vector<const NodeDef*> nodes;
  for (const NodeDef& n : schema.nodes()) nodes.push_back(&n);
  std::sort(nodes.begin(), nodes.end(),
            [&schema](const NodeDef* a, const NodeDef* b) {
              size_t da = Depth(schema, a->name);
              size_t db = Depth(schema, b->name);
              if (da != db) return da > db;
              return a->name < b->name;
            });
  return nodes;
}

bool IsSurrogateKey(const SuperSchema& schema, const std::string& node) {
  return schema.EffectiveIdAttributes(node).empty();
}

}  // namespace

Result<pg::PropertyGraph> RelationalToGraph(const SuperSchema& schema,
                                            const rel::Database& db) {
  KGM_RETURN_IF_ERROR(schema.Validate());
  pg::PropertyGraph graph;
  std::map<std::string, pg::NodeId> entity_of;

  // --- entities: deepest member relation wins the primary label ---------------
  for (const NodeDef* node : NodesByDepth(schema)) {
    const rel::Table* table = db.GetTable(ToSnakeCase(node->name));
    if (table == nullptr) continue;
    auto key_cols = translate::RelationalKeyColumns(schema, node->name);
    std::vector<int> key_pos;
    for (const auto& [col, type] : key_cols) {
      int idx = table->schema().ColumnIndex(col);
      if (idx < 0) {
        return FailedPrecondition("table " + table->schema().name +
                                  " lacks key column " + col);
      }
      key_pos.push_back(idx);
    }
    std::string root = schema.RootOf(node->name);
    bool surrogate = IsSurrogateKey(schema, node->name);
    for (const rel::Tuple& row : table->rows()) {
      rel::Tuple key;
      for (int p : key_pos) key.push_back(row[p]);
      std::string ek = EntityKey(root, key);
      auto it = entity_of.find(ek);
      pg::NodeId id;
      if (it == entity_of.end()) {
        std::vector<std::string> labels{node->name};
        for (const std::string& a : schema.AncestorsOf(node->name)) {
          labels.push_back(a);
        }
        id = graph.AddNode(labels);
        entity_of.emplace(ek, id);
        // Identifying attributes (or the surrogate OID) from the key.
        if (surrogate) {
          graph.SetNodeProperty(id, metalog::kOidProperty, key[0]);
        } else {
          auto ids = schema.EffectiveIdAttributes(node->name);
          for (size_t i = 0; i < ids.size(); ++i) {
            graph.SetNodeProperty(id, ids[i].name, key[i]);
          }
        }
      } else {
        id = it->second;
      }
      // Own (non-key) attributes of this member relation.
      for (const AttributeDef& attr : node->attributes) {
        int idx = table->schema().ColumnIndex(ToSnakeCase(attr.name));
        if (idx < 0) continue;
        if (!row[idx].is_null()) {
          graph.SetNodeProperty(id, attr.name, row[idx]);
        }
      }
    }
  }

  // --- edges -------------------------------------------------------------------
  auto resolve = [&](const std::string& node_type,
                     const rel::Tuple& key) -> pg::NodeId {
    auto it = entity_of.find(EntityKey(schema.RootOf(node_type), key));
    return it == entity_of.end() ? pg::kInvalidNode : it->second;
  };
  for (const EdgeDef& edge : schema.edges()) {
    bool from_functional = edge.source.functional;
    bool to_functional = edge.target.functional;
    std::string edge_prefix = ToSnakeCase(edge.name) + "_";
    if (from_functional || to_functional) {
      // FK columns on the owning relation.
      const std::string& owner = from_functional ? edge.from : edge.to;
      const std::string& target = from_functional ? edge.to : edge.from;
      const rel::Table* table = db.GetTable(ToSnakeCase(owner));
      if (table == nullptr) continue;
      auto owner_keys = translate::RelationalKeyColumns(schema, owner);
      auto target_keys = translate::RelationalKeyColumns(schema, target);
      for (const rel::Tuple& row : table->rows()) {
        rel::Tuple owner_key;
        for (const auto& [col, type] : owner_keys) {
          owner_key.push_back(row[table->schema().ColumnIndex(col)]);
        }
        rel::Tuple target_key;
        bool has_null = false;
        for (const auto& [col, type] : target_keys) {
          int idx = table->schema().ColumnIndex(edge_prefix + col);
          if (idx < 0 || row[idx].is_null()) {
            has_null = true;
            break;
          }
          target_key.push_back(row[idx]);
        }
        if (has_null) continue;  // edge absent for this row
        pg::NodeId owner_id = resolve(owner, owner_key);
        pg::NodeId target_id = resolve(target, target_key);
        if (owner_id == pg::kInvalidNode || target_id == pg::kInvalidNode) {
          return FailedPrecondition("dangling " + edge.name +
                                    " foreign key in " +
                                    table->schema().name);
        }
        pg::PropertyMap props;
        for (const AttributeDef& attr : edge.attributes) {
          int idx = table->schema().ColumnIndex(
              edge_prefix + ToSnakeCase(attr.name));
          if (idx >= 0 && !row[idx].is_null()) {
            props[attr.name] = row[idx];
          }
        }
        pg::NodeId from = from_functional ? owner_id : target_id;
        pg::NodeId to = from_functional ? target_id : owner_id;
        graph.AddEdge(from, to, edge.name, std::move(props));
      }
    } else {
      // Junction relation.
      const rel::Table* table = db.GetTable(ToSnakeCase(edge.name));
      if (table == nullptr) continue;
      bool self_edge = edge.from == edge.to;
      std::string from_prefix =
          (self_edge ? "from_" : "") + ToSnakeCase(edge.from) + "_";
      std::string to_prefix =
          (self_edge ? "to_" : "") + ToSnakeCase(edge.to) + "_";
      auto from_keys = translate::RelationalKeyColumns(schema, edge.from);
      auto to_keys = translate::RelationalKeyColumns(schema, edge.to);
      for (const rel::Tuple& row : table->rows()) {
        rel::Tuple from_key;
        for (const auto& [col, type] : from_keys) {
          from_key.push_back(
              row[table->schema().ColumnIndex(from_prefix + col)]);
        }
        rel::Tuple to_key;
        for (const auto& [col, type] : to_keys) {
          to_key.push_back(
              row[table->schema().ColumnIndex(to_prefix + col)]);
        }
        pg::NodeId from = resolve(edge.from, from_key);
        pg::NodeId to = resolve(edge.to, to_key);
        if (from == pg::kInvalidNode || to == pg::kInvalidNode) {
          return FailedPrecondition("dangling junction row in " +
                                    table->schema().name);
        }
        pg::PropertyMap props;
        for (const AttributeDef& attr : edge.attributes) {
          int idx = table->schema().ColumnIndex(ToSnakeCase(attr.name));
          if (idx >= 0 && !row[idx].is_null()) {
            props[attr.name] = row[idx];
          }
        }
        graph.AddEdge(from, to, edge.name, std::move(props));
      }
    }
  }
  return graph;
}

Result<rel::Database> GraphToRelational(const SuperSchema& schema,
                                        const pg::PropertyGraph& data) {
  KGM_ASSIGN_OR_RETURN(std::vector<rel::TableSchema> tables,
                       translate::TranslateToRelationalNative(schema));
  rel::Database db;
  for (rel::TableSchema& t : tables) {
    KGM_RETURN_IF_ERROR(db.CreateTable(std::move(t)));
  }

  // Primary node type of each data node (deepest schema label).
  auto primary_type = [&schema](const pg::Node& node) -> const NodeDef* {
    const NodeDef* best = nullptr;
    for (const std::string& label : node.labels) {
      const NodeDef* def = schema.FindNode(label);
      if (def != nullptr &&
          (best == nullptr ||
           Depth(schema, def->name) > Depth(schema, best->name))) {
        best = def;
      }
    }
    return best;
  };

  // The key tuple of a data node.
  auto node_key = [&schema, &data](pg::NodeId id,
                                   const std::string& type) -> rel::Tuple {
    rel::Tuple key;
    if (IsSurrogateKey(schema, type)) {
      const Value* oid = data.NodeProperty(id, metalog::kOidProperty);
      key.push_back(oid != nullptr
                        ? (oid->is_string() ? *oid : Value(oid->ToString()))
                        : Value("n" + std::to_string(id)));
      return key;
    }
    for (const AttributeDef& attr : schema.EffectiveIdAttributes(type)) {
      const Value* v = data.NodeProperty(id, attr.name);
      key.push_back(v == nullptr ? Value() : *v);
    }
    return key;
  };

  // FK values owned by a member relation: for each functional edge whose
  // owner is `type`, the key of the single neighbour (if present).
  auto fill_fk_columns = [&](pg::NodeId id, const std::string& type,
                             const rel::TableSchema& table,
                             rel::Tuple* row) -> Status {
    for (const EdgeDef& edge : schema.edges()) {
      bool from_functional = edge.source.functional;
      bool to_functional = edge.target.functional;
      if (!from_functional && !to_functional) continue;
      const std::string& owner = from_functional ? edge.from : edge.to;
      if (owner != type) continue;
      const std::string& target = from_functional ? edge.to : edge.from;
      std::string prefix = ToSnakeCase(edge.name) + "_";
      // The single incident edge, if any.
      pg::NodeId neighbour = pg::kInvalidNode;
      const pg::Edge* incident = nullptr;
      const auto& edges =
          from_functional ? data.OutEdges(id) : data.InEdges(id);
      for (pg::EdgeId e : edges) {
        if (!data.HasEdge(e) || data.edge(e).label != edge.name) continue;
        neighbour = from_functional ? data.edge(e).to : data.edge(e).from;
        incident = &data.edge(e);
        break;
      }
      if (neighbour == pg::kInvalidNode) continue;
      rel::Tuple target_key = node_key(neighbour, target);
      auto target_cols = translate::RelationalKeyColumns(schema, target);
      for (size_t i = 0; i < target_cols.size(); ++i) {
        int idx = table.ColumnIndex(prefix + target_cols[i].first);
        if (idx >= 0) (*row)[idx] = target_key[i];
      }
      for (const AttributeDef& attr : edge.attributes) {
        int idx = table.ColumnIndex(prefix + ToSnakeCase(attr.name));
        auto it = incident->props.find(attr.name);
        if (idx >= 0 && it != incident->props.end()) {
          (*row)[idx] = it->second;
        }
      }
    }
    return OkStatus();
  };

  // --- nodes: one row per member relation of the hierarchy --------------------
  for (pg::NodeId id = 0; id < data.node_capacity(); ++id) {
    if (!data.HasNode(id)) continue;
    const NodeDef* type = primary_type(data.node(id));
    if (type == nullptr) continue;
    std::vector<std::string> members{type->name};
    for (const std::string& a : schema.AncestorsOf(type->name)) {
      members.push_back(a);
    }
    rel::Tuple key = node_key(id, type->name);
    for (const std::string& member : members) {
      rel::Table* table = db.GetTable(ToSnakeCase(member));
      KGM_CHECK(table != nullptr);
      rel::Tuple row(table->schema().arity());
      auto key_cols = translate::RelationalKeyColumns(schema, member);
      for (size_t i = 0; i < key_cols.size(); ++i) {
        row[table->schema().ColumnIndex(key_cols[i].first)] = key[i];
      }
      const NodeDef* member_def = schema.FindNode(member);
      for (const AttributeDef& attr : member_def->attributes) {
        int idx = table->schema().ColumnIndex(ToSnakeCase(attr.name));
        const Value* v = data.NodeProperty(id, attr.name);
        if (idx >= 0 && v != nullptr) row[idx] = *v;
      }
      KGM_RETURN_IF_ERROR(
          fill_fk_columns(id, member, table->schema(), &row));
      KGM_RETURN_IF_ERROR(table->Insert(std::move(row)));
    }
  }

  // --- junction rows for many-to-many edges -----------------------------------
  for (const EdgeDef& edge : schema.edges()) {
    if (edge.source.functional || edge.target.functional) continue;
    rel::Table* table = db.GetTable(ToSnakeCase(edge.name));
    KGM_CHECK(table != nullptr);
    bool self_edge = edge.from == edge.to;
    std::string from_prefix =
        (self_edge ? "from_" : "") + ToSnakeCase(edge.from) + "_";
    std::string to_prefix =
        (self_edge ? "to_" : "") + ToSnakeCase(edge.to) + "_";
    auto from_cols = translate::RelationalKeyColumns(schema, edge.from);
    auto to_cols = translate::RelationalKeyColumns(schema, edge.to);
    for (pg::EdgeId e : data.EdgesWithLabel(edge.name)) {
      const pg::Edge& instance = data.edge(e);
      rel::Tuple row(table->schema().arity());
      rel::Tuple from_key = node_key(instance.from, edge.from);
      rel::Tuple to_key = node_key(instance.to, edge.to);
      for (size_t i = 0; i < from_cols.size(); ++i) {
        row[table->schema().ColumnIndex(from_prefix + from_cols[i].first)] =
            from_key[i];
      }
      for (size_t i = 0; i < to_cols.size(); ++i) {
        row[table->schema().ColumnIndex(to_prefix + to_cols[i].first)] =
            to_key[i];
      }
      for (const AttributeDef& attr : edge.attributes) {
        int idx = table->schema().ColumnIndex(ToSnakeCase(attr.name));
        auto it = instance.props.find(attr.name);
        if (idx >= 0 && it != instance.props.end()) row[idx] = it->second;
      }
      Status inserted = table->Insert(std::move(row));
      // Parallel edges collapse onto one junction row.
      if (!inserted.ok() &&
          inserted.code() != StatusCode::kAlreadyExists) {
        return inserted;
      }
    }
  }
  KGM_RETURN_IF_ERROR(db.ValidateForeignKeys());
  return db;
}

Result<MaterializeStats> MaterializeRelational(
    const SuperSchema& schema, const std::string& sigma_source,
    rel::Database* db, const MaterializeOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  KGM_ASSIGN_OR_RETURN(pg::PropertyGraph data,
                       RelationalToGraph(schema, *db));
  auto t1 = Clock::now();
  KGM_ASSIGN_OR_RETURN(MaterializeStats stats,
                       Materialize(schema, sigma_source, &data, options));
  auto t2 = Clock::now();
  KGM_ASSIGN_OR_RETURN(rel::Database result,
                       GraphToRelational(schema, data));
  auto t3 = Clock::now();
  stats.load_seconds += std::chrono::duration<double>(t1 - t0).count();
  stats.flush_seconds += std::chrono::duration<double>(t3 - t2).count();
  *db = std::move(result);
  return stats;
}

}  // namespace kgm::instance
