// The intensional-component materialization pipeline (Algorithm 2).
//
// Materialize() performs the full staged process of Section 6 against a
// property-graph component D:
//
//   load:   D -> instance super-constructs (quasi-inverse of the copy
//           mapping), in a dictionary that also holds the super-schema;
//   reason: V_I (input views) + Sigma + V_O (output views) compiled by MTV
//           and evaluated by the Vadalog engine over the dictionary;
//   flush:  staging constructs (O_SM_*) written back into D in a batch.
//
// The three phases are timed separately: the paper reports ~160 minutes of
// reasoning against ~15 minutes of loading+flushing for the Bank of Italy
// control component (experiment E2 in DESIGN.md).

#ifndef KGM_INSTANCE_PIPELINE_H_
#define KGM_INSTANCE_PIPELINE_H_

#include <string>

#include "base/status.h"
#include "core/superschema.h"
#include "instance/loader.h"
#include "instance/views.h"
#include "metalog/runner.h"
#include "pg/property_graph.h"

namespace kgm::instance {

struct MaterializeOptions {
  vadalog::EngineOptions engine;
  int64_t instance_oid = 234;
  // Optional prepared-program cache: repeated materializations of the same
  // component skip the MetaLog parse and MTV translation of V_I + Sigma +
  // V_O when the dictionary's catalog is unchanged.
  metalog::PreparedCache* prepared = nullptr;
};

struct MaterializeStats {
  double load_seconds = 0;
  double reason_seconds = 0;
  double flush_seconds = 0;
  size_t loaded_nodes = 0;
  size_t loaded_edges = 0;
  size_t loaded_attributes = 0;
  size_t new_nodes = 0;
  size_t new_edges = 0;
  size_t updated_properties = 0;
  size_t vadalog_rules = 0;
  size_t facts_derived = 0;
  // Full engine counters of the reasoning phase (threads used, per-rule
  // firings and probes, per-stratum wall times).
  vadalog::EngineStats engine_stats;
  // Sorted labels whose relational encoding the flush actually changed:
  // every label of a node that gained a property, the labels of new nodes,
  // and the labels of new edges.  A serving layer can feed exactly these
  // relations to KgService::ApplyDelta (or re-encode only them) instead of
  // re-publishing the whole graph after a re-materialization.
  std::vector<std::string> changed_labels;
  // The generated views, for inspection.
  std::string input_views;
  std::string output_views;
};

// Builds the catalog the MTV translation needs for Sigma's labels: node
// labels with their effective attributes, edge labels with their
// attributes, per the super-schema.
metalog::GraphCatalog SchemaCatalog(const core::SuperSchema& schema);

// Runs Algorithm 2: materializes the intensional component `sigma_source`
// (MetaLog) into `data` in place.
Result<MaterializeStats> Materialize(const core::SuperSchema& schema,
                                     const std::string& sigma_source,
                                     pg::PropertyGraph* data,
                                     const MaterializeOptions& options = {});

}  // namespace kgm::instance

#endif  // KGM_INSTANCE_PIPELINE_H_
