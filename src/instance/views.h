// Automatic construction of the input and output views (Algorithm 2,
// lines 5-6).
//
// Given the intensional component Sigma, KGModel generates by static
// analysis:
//
//   * V_I: for every node/edge label in Sigma's body, a MetaLog rule that
//     re-creates label facts from the instance super-constructs.  Per
//     Example 6.2, the rule packs the I_SM_Attribute values of an
//     I_SM_Node into a record and unpacks it into the view atom with the
//     `*p` spread.  Membership respects the generalization hierarchy: an
//     instance referencing SM_Node Business also appears in the Person
//     view, via the reflexive ([: SM_CHILD]- / [: SM_PARENT])* walk of the
//     schema dictionary.  Each view node links back to its instance
//     construct with a VIEW_OF edge.
//
//   * V_O: for every node/edge label in Sigma's head, MetaLog rules that
//     de-normalize the derived facts into staging constructs (O_SM_Node /
//     O_SM_Edge / O_SM_Attribute / O_SM_PropUpdate), distinguishing
//     updates to existing entities (VIEW_OF resolvable) from newly created
//     ones (negated VIEW_OF).
//
// Both generators return MetaLog source text, so the generated views can
// be inspected, printed, and executed by the ordinary MTV pipeline.

#ifndef KGM_INSTANCE_VIEWS_H_
#define KGM_INSTANCE_VIEWS_H_

#include <set>
#include <string>

#include "base/status.h"
#include "core/superschema.h"
#include "metalog/ast.h"

namespace kgm::instance {

// Labels referenced by a MetaLog program, split by construct and role.
struct SigmaAnalysis {
  std::set<std::string> body_node_labels;
  std::set<std::string> body_edge_labels;
  std::set<std::string> head_node_labels;
  std::set<std::string> head_edge_labels;
};

SigmaAnalysis AnalyzeSigma(const metalog::MetaProgram& sigma);

// Generates V_I for `sigma` (MetaLog source).  Fails when sigma uses a
// label unknown to the schema.
Result<std::string> GenerateInputViews(const core::SuperSchema& schema,
                                       const metalog::MetaProgram& sigma,
                                       int64_t instance_oid);

// Generates V_O for `sigma` (MetaLog source).
Result<std::string> GenerateOutputViews(const core::SuperSchema& schema,
                                        const metalog::MetaProgram& sigma,
                                        int64_t instance_oid);

}  // namespace kgm::instance

#endif  // KGM_INSTANCE_VIEWS_H_
