#include "instance/loader.h"

#include "base/check.h"
#include "core/dictionary.h"

namespace kgm::instance {

namespace {

// Index of the super-schema dictionary: node-type name -> SM_Node id, and
// (node-type name, attribute name) -> SM_Attribute id (searching the
// generalization hierarchy upwards for inherited attributes).
struct SchemaIndex {
  std::map<std::string, pg::NodeId> sm_node_of;
  std::map<std::string, pg::NodeId> sm_edge_of;
  std::map<std::pair<std::string, std::string>, pg::NodeId> node_attr_of;
  std::map<std::pair<std::string, std::string>, pg::NodeId> edge_attr_of;
};

SchemaIndex BuildSchemaIndex(const core::SuperSchema& schema,
                             const pg::PropertyGraph& dict) {
  SchemaIndex index;
  auto type_name = [&dict](pg::NodeId construct,
                           const char* link) -> std::string {
    for (pg::EdgeId e : dict.OutEdges(construct)) {
      if (dict.HasEdge(e) && dict.edge(e).label == link) {
        const Value* name = dict.NodeProperty(dict.edge(e).to, "name");
        if (name != nullptr) return name->AsString();
      }
    }
    return "";
  };
  for (pg::NodeId id : dict.NodesWithLabel(core::kSmNode)) {
    std::string name = type_name(id, core::kSmHasNodeType);
    if (name.empty()) continue;
    index.sm_node_of[name] = id;
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e) ||
          dict.edge(e).label != core::kSmHasNodeProperty) {
        continue;
      }
      const Value* attr_name = dict.NodeProperty(dict.edge(e).to, "name");
      if (attr_name != nullptr) {
        index.node_attr_of[{name, attr_name->AsString()}] = dict.edge(e).to;
      }
    }
  }
  for (pg::NodeId id : dict.NodesWithLabel(core::kSmEdge)) {
    std::string name = type_name(id, core::kSmHasEdgeType);
    if (name.empty()) continue;
    index.sm_edge_of[name] = id;
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e) ||
          dict.edge(e).label != core::kSmHasEdgeProperty) {
        continue;
      }
      const Value* attr_name = dict.NodeProperty(dict.edge(e).to, "name");
      if (attr_name != nullptr) {
        index.edge_attr_of[{name, attr_name->AsString()}] = dict.edge(e).to;
      }
    }
  }
  // Resolve inherited attributes: for each node type, fall back to its
  // ancestors' attribute entries.
  for (const core::NodeDef& node : schema.nodes()) {
    for (const std::string& ancestor : schema.AncestorsOf(node.name)) {
      const core::NodeDef* a = schema.FindNode(ancestor);
      if (a == nullptr) continue;
      for (const core::AttributeDef& attr : a->attributes) {
        auto key = std::make_pair(node.name, attr.name);
        auto inherited = index.node_attr_of.find({ancestor, attr.name});
        if (index.node_attr_of.count(key) == 0 &&
            inherited != index.node_attr_of.end()) {
          index.node_attr_of[key] = inherited->second;
        }
      }
    }
  }
  return index;
}

}  // namespace

Result<LoadedInstance> LoadInstance(const core::SuperSchema& schema,
                                    const pg::PropertyGraph& data,
                                    int64_t instance_oid) {
  LoadedInstance out;
  out.instance_oid = instance_oid;
  KGM_RETURN_IF_ERROR(core::StoreSuperSchema(schema, &out.dict));
  SchemaIndex index = BuildSchemaIndex(schema, out.dict);

  Value oid_value(instance_oid);
  out.inode_of_data.assign(data.node_capacity(), pg::kInvalidNode);

  // Pass 1: nodes with their attributes.
  for (pg::NodeId id = 0; id < data.node_capacity(); ++id) {
    if (!data.HasNode(id)) continue;
    const pg::Node& node = data.node(id);
    // Primary label: the first label that names a schema node type.
    std::string type_name;
    for (const std::string& label : node.labels) {
      if (index.sm_node_of.count(label) > 0) {
        type_name = label;
        break;
      }
    }
    if (type_name.empty()) continue;
    pg::NodeId inode = out.dict.AddNode(
        kISmNode, {{"instanceOID", oid_value}});
    out.dict.AddEdge(inode, index.sm_node_of.at(type_name), kSmReferences);
    out.inode_of_data[id] = inode;
    out.data_of_inode[inode] = id;
    ++out.loaded_nodes;
    for (const auto& [key, value] : node.props) {
      auto attr = index.node_attr_of.find({type_name, key});
      if (attr == index.node_attr_of.end()) continue;  // undeclared
      pg::NodeId ia = out.dict.AddNode(
          kISmAttribute, {{"instanceOID", oid_value}, {"value", value}});
      out.dict.AddEdge(inode, ia, kISmHasNodeAttr);
      out.dict.AddEdge(ia, attr->second, kSmReferences);
      ++out.loaded_attributes;
    }
  }
  // Pass 2: edges.
  for (pg::EdgeId id = 0; id < data.edge_capacity(); ++id) {
    if (!data.HasEdge(id)) continue;
    const pg::Edge& edge = data.edge(id);
    auto sm_edge = index.sm_edge_of.find(edge.label);
    if (sm_edge == index.sm_edge_of.end()) continue;
    pg::NodeId from = out.inode_of_data[edge.from];
    pg::NodeId to = out.inode_of_data[edge.to];
    if (from == pg::kInvalidNode || to == pg::kInvalidNode) continue;
    pg::NodeId iedge = out.dict.AddNode(
        kISmEdge, {{"instanceOID", oid_value}});
    out.dict.AddEdge(iedge, sm_edge->second, kSmReferences);
    out.dict.AddEdge(iedge, from, kISmFrom);
    out.dict.AddEdge(iedge, to, kISmTo);
    ++out.loaded_edges;
    for (const auto& [key, value] : edge.props) {
      auto attr = index.edge_attr_of.find({edge.label, key});
      if (attr == index.edge_attr_of.end()) continue;
      pg::NodeId ia = out.dict.AddNode(
          kISmAttribute, {{"instanceOID", oid_value}, {"value", value}});
      out.dict.AddEdge(iedge, ia, kISmHasEdgeAttr);
      out.dict.AddEdge(ia, attr->second, kSmReferences);
      ++out.loaded_attributes;
    }
  }
  return out;
}

}  // namespace kgm::instance
