#include "instance/pipeline.h"

#include <chrono>
#include <map>
#include <set>

#include "base/check.h"
#include "metalog/parser.h"

namespace kgm::instance {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Reads the attributes attached to a staging construct.
pg::PropertyMap StagedAttributes(const pg::PropertyGraph& dict,
                                 pg::NodeId id) {
  pg::PropertyMap out;
  for (pg::EdgeId e : dict.OutEdges(id)) {
    if (!dict.HasEdge(e) || dict.edge(e).label != kOSmHasAttr) continue;
    pg::NodeId attr = dict.edge(e).to;
    const Value* name = dict.NodeProperty(attr, "name");
    const Value* value = dict.NodeProperty(attr, "value");
    if (name != nullptr && name->is_string() && value != nullptr &&
        !value->is_null()) {
      out[name->AsString()] = *value;
    }
  }
  return out;
}

}  // namespace

metalog::GraphCatalog SchemaCatalog(const core::SuperSchema& schema) {
  metalog::GraphCatalog catalog;
  for (const core::NodeDef& node : schema.nodes()) {
    std::vector<std::string> props;
    for (const core::AttributeDef& a : schema.EffectiveAttributes(node.name)) {
      props.push_back(a.name);
    }
    catalog.AddNodeLabel(node.name, props);
  }
  for (const core::EdgeDef& edge : schema.edges()) {
    std::vector<std::string> props;
    for (const core::AttributeDef& a : edge.attributes) {
      props.push_back(a.name);
    }
    catalog.AddEdgeLabel(edge.name, props);
  }
  return catalog;
}

Result<MaterializeStats> Materialize(const core::SuperSchema& schema,
                                     const std::string& sigma_source,
                                     pg::PropertyGraph* data,
                                     const MaterializeOptions& options) {
  MaterializeStats stats;
  KGM_ASSIGN_OR_RETURN(metalog::MetaProgram sigma,
                       metalog::ParseMetaProgram(sigma_source));

  // --- load -------------------------------------------------------------------
  auto t0 = Clock::now();
  KGM_ASSIGN_OR_RETURN(LoadedInstance loaded,
                       LoadInstance(schema, *data, options.instance_oid));
  auto t1 = Clock::now();
  stats.load_seconds = Seconds(t0, t1);
  stats.loaded_nodes = loaded.loaded_nodes;
  stats.loaded_edges = loaded.loaded_edges;
  stats.loaded_attributes = loaded.loaded_attributes;

  // --- reason: V_I + Sigma + V_O over the dictionary --------------------------
  KGM_ASSIGN_OR_RETURN(
      stats.input_views,
      GenerateInputViews(schema, sigma, options.instance_oid));
  KGM_ASSIGN_OR_RETURN(
      stats.output_views,
      GenerateOutputViews(schema, sigma, options.instance_oid));
  metalog::MetaRunOptions run_options;
  run_options.engine = options.engine;
  run_options.extra_catalog = SchemaCatalog(schema);
  run_options.prepared = options.prepared;
  metalog::MetaRunResult reason;
  if (options.prepared != nullptr) {
    // Combined source in the same rule order as the parsed path below, so
    // the prepared cache sees one stable program text per component.
    std::string combined_source =
        stats.input_views + "\n" + sigma_source + "\n" + stats.output_views;
    KGM_ASSIGN_OR_RETURN(
        reason,
        metalog::RunMetaLogSource(combined_source, &loaded.dict, run_options));
  } else {
    KGM_ASSIGN_OR_RETURN(
        metalog::MetaProgram input_views,
        metalog::ParseMetaProgram(stats.input_views));
    KGM_ASSIGN_OR_RETURN(
        metalog::MetaProgram output_views,
        metalog::ParseMetaProgram(stats.output_views));
    metalog::MetaProgram combined;
    for (auto& r : input_views.rules) combined.rules.push_back(std::move(r));
    for (auto& r : sigma.rules) combined.rules.push_back(std::move(r));
    for (auto& r : output_views.rules) combined.rules.push_back(std::move(r));
    KGM_ASSIGN_OR_RETURN(
        reason, metalog::RunMetaLog(combined, &loaded.dict, run_options));
  }
  auto t2 = Clock::now();
  stats.reason_seconds = Seconds(t1, t2);
  stats.vadalog_rules = reason.vadalog_rule_count;
  stats.facts_derived = reason.engine_stats.facts_derived;
  stats.engine_stats = reason.engine_stats;

  // --- flush ------------------------------------------------------------------
  const pg::PropertyGraph& dict = loaded.dict;
  // Labels whose relational encoding this flush changes (see
  // MaterializeStats::changed_labels).
  std::set<std::string> changed_labels;
  // 1. Property updates on existing entities.
  for (pg::NodeId u : dict.NodesWithLabel(kOSmPropUpdate)) {
    const Value* name = dict.NodeProperty(u, "name");
    const Value* value = dict.NodeProperty(u, "value");
    if (name == nullptr || value == nullptr || value->is_null()) continue;
    for (pg::EdgeId e : dict.OutEdges(u)) {
      if (!dict.HasEdge(e) || dict.edge(e).label != kOOn) continue;
      auto it = loaded.data_of_inode.find(dict.edge(e).to);
      if (it == loaded.data_of_inode.end()) continue;
      data->SetNodeProperty(it->second, name->AsString(), *value);
      ++stats.updated_properties;
      // Every label relation of the node re-encodes the updated property.
      for (const std::string& l : data->node(it->second).labels) {
        changed_labels.insert(l);
      }
    }
  }
  // 2. New nodes: label = nodeType plus its ancestors (type accumulation).
  std::map<pg::NodeId, pg::NodeId> data_of_onode;
  for (pg::NodeId o : dict.NodesWithLabel(kOSmNode)) {
    const Value* type = dict.NodeProperty(o, "nodeType");
    if (type == nullptr || !type->is_string()) continue;
    std::vector<std::string> labels{type->AsString()};
    for (const std::string& ancestor :
         schema.AncestorsOf(type->AsString())) {
      labels.push_back(ancestor);
    }
    for (const std::string& l : labels) changed_labels.insert(l);
    pg::NodeId id = data->AddNode(labels, StagedAttributes(dict, o));
    data_of_onode[o] = id;
    ++stats.new_nodes;
  }
  // 3. New edges, deduplicated against existing (label, from, to) triples.
  auto resolve_endpoint = [&](pg::NodeId target) -> pg::NodeId {
    auto inode = loaded.data_of_inode.find(target);
    if (inode != loaded.data_of_inode.end()) return inode->second;
    auto onode = data_of_onode.find(target);
    if (onode != data_of_onode.end()) return onode->second;
    return pg::kInvalidNode;
  };
  for (pg::NodeId o : dict.NodesWithLabel(kOSmEdge)) {
    const Value* type = dict.NodeProperty(o, "edgeType");
    if (type == nullptr || !type->is_string()) continue;
    pg::NodeId from = pg::kInvalidNode;
    pg::NodeId to = pg::kInvalidNode;
    for (pg::EdgeId e : dict.OutEdges(o)) {
      if (!dict.HasEdge(e)) continue;
      if (dict.edge(e).label == kOFrom) {
        from = resolve_endpoint(dict.edge(e).to);
      } else if (dict.edge(e).label == kOTo) {
        to = resolve_endpoint(dict.edge(e).to);
      }
    }
    if (from == pg::kInvalidNode || to == pg::kInvalidNode) {
      std::string detail;
      for (pg::EdgeId e : dict.OutEdges(o)) {
        if (!dict.HasEdge(e)) continue;
        detail += " " + dict.edge(e).label + "->node" +
                  std::to_string(dict.edge(e).to) + "(";
        for (const std::string& l : dict.node(dict.edge(e).to).labels) {
          detail += l + ",";
        }
        detail += ")";
      }
      return Internal("staged edge " + type->AsString() +
                      " has unresolved endpoints:" + detail);
    }
    // Dedup: an identical edge may already exist (e.g. re-materialization).
    bool exists = false;
    for (pg::EdgeId e : data->OutEdges(from)) {
      if (data->HasEdge(e) && data->edge(e).to == to &&
          data->edge(e).label == type->AsString()) {
        exists = true;
        break;
      }
    }
    if (exists) continue;
    data->AddEdge(from, to, type->AsString(), StagedAttributes(dict, o));
    ++stats.new_edges;
    changed_labels.insert(type->AsString());
  }
  stats.changed_labels.assign(changed_labels.begin(), changed_labels.end());
  auto t3 = Clock::now();
  stats.flush_seconds = Seconds(t2, t3);
  return stats;
}

}  // namespace kgm::instance
