#include "instance/views.h"

#include <sstream>

#include "instance/loader.h"

namespace kgm::instance {

namespace {

void CollectAtom(const metalog::PgAtom& atom, bool in_head,
                 SigmaAnalysis* out) {
  if (atom.label.empty()) return;
  auto& target = atom.is_edge
                     ? (in_head ? out->head_edge_labels
                                : out->body_edge_labels)
                     : (in_head ? out->head_node_labels
                                : out->body_node_labels);
  target.insert(atom.label);
}

void CollectPath(const metalog::PathPtr& path, bool in_head,
                 SigmaAnalysis* out) {
  if (path->kind == metalog::PathKind::kEdge) {
    CollectAtom(path->edge, in_head, out);
    return;
  }
  for (const metalog::PathPtr& c : path->children) {
    CollectPath(c, in_head, out);
  }
}

void CollectPattern(const metalog::GraphPattern& pattern, bool in_head,
                    SigmaAnalysis* out) {
  for (const metalog::PgAtom& n : pattern.nodes) {
    CollectAtom(n, in_head, out);
  }
  for (const metalog::PathPtr& p : pattern.paths) {
    CollectPath(p, in_head, out);
  }
}

}  // namespace

SigmaAnalysis AnalyzeSigma(const metalog::MetaProgram& sigma) {
  SigmaAnalysis out;
  for (const metalog::MetaRule& rule : sigma.rules) {
    for (const metalog::GraphPattern& p : rule.body_patterns) {
      CollectPattern(p, /*in_head=*/false, &out);
    }
    for (const metalog::GraphPattern& p : rule.negated_patterns) {
      CollectPattern(p, /*in_head=*/false, &out);
    }
    for (const metalog::GraphPattern& p : rule.head_patterns) {
      CollectPattern(p, /*in_head=*/true, &out);
    }
  }
  return out;
}

Result<std::string> GenerateInputViews(const core::SuperSchema& schema,
                                       const metalog::MetaProgram& sigma,
                                       int64_t instance_oid) {
  SigmaAnalysis analysis = AnalyzeSigma(sigma);
  std::ostringstream os;
  std::string oid = std::to_string(instance_oid);

  for (const std::string& label : analysis.body_node_labels) {
    if (schema.FindNode(label) == nullptr) {
      return InvalidArgument("Sigma uses unknown node label " + label);
    }
    // With attributes: pack them into a record and spread it into the view
    // atom (Example 6.2).  Membership walks the generalization hierarchy
    // upwards, so a Business instance also populates the Person view.
    os << "% V_I: " << label << " node view\n"
       << "(i: I_SM_Node; instanceOID: " << oid << ")"
       << "[: SM_REFERENCES](n: SM_Node)\n"
       << "    ([: SM_CHILD]- / [: SM_PARENT])* (al: SM_Node)\n"
       << "    [: SM_HAS_NODE_TYPE](: SM_Type; name: \"" << label
       << "\"),\n"
       << "(i)[: I_SM_HAS_NODE_ATTR](ia: I_SM_Attribute; value: v)\n"
       << "    [: SM_REFERENCES](na: SM_Attribute; name: m),\n"
       << "p = pack(m, v)\n"
       << "  -> exists c = skView(i) (c: " << label
       << "; *p), (c)[: VIEW_OF](i).\n"
       // Attribute-less instances still appear in the view.
       << "(i: I_SM_Node; instanceOID: " << oid << ")"
       << "[: SM_REFERENCES](n: SM_Node)\n"
       << "    ([: SM_CHILD]- / [: SM_PARENT])* (al: SM_Node)\n"
       << "    [: SM_HAS_NODE_TYPE](: SM_Type; name: \"" << label
       << "\"),\n"
       << "not (i)[: I_SM_HAS_NODE_ATTR]()\n"
       << "  -> exists c = skView(i) (c: " << label
       << "), (c)[: VIEW_OF](i).\n\n";
  }
  for (const std::string& label : analysis.body_edge_labels) {
    if (schema.FindEdge(label) == nullptr) {
      return InvalidArgument("Sigma uses unknown edge label " + label);
    }
    os << "% V_I: " << label << " edge view\n"
       << "(ie: I_SM_Edge; instanceOID: " << oid << ")"
       << "[: SM_REFERENCES](se: SM_Edge)\n"
       << "    [: SM_HAS_EDGE_TYPE](: SM_Type; name: \"" << label
       << "\"),\n"
       << "(ie)[: I_SM_FROM](ix: I_SM_Node),\n"
       << "(ie)[: I_SM_TO](iy: I_SM_Node),\n"
       << "(cx)[: VIEW_OF](ix),\n"
       << "(cy)[: VIEW_OF](iy),\n"
       << "(ie)[: I_SM_HAS_EDGE_ATTR](ia: I_SM_Attribute; value: v)\n"
       << "    [: SM_REFERENCES](ea: SM_Attribute; name: m),\n"
       << "p = pack(m, v)\n"
       << "  -> exists k = skViewE(ie) (cx)[k: " << label << "; *p](cy).\n"
       << "(ie: I_SM_Edge; instanceOID: " << oid << ")"
       << "[: SM_REFERENCES](se: SM_Edge)\n"
       << "    [: SM_HAS_EDGE_TYPE](: SM_Type; name: \"" << label
       << "\"),\n"
       << "(ie)[: I_SM_FROM](ix: I_SM_Node),\n"
       << "(ie)[: I_SM_TO](iy: I_SM_Node),\n"
       << "(cx)[: VIEW_OF](ix),\n"
       << "(cy)[: VIEW_OF](iy),\n"
       << "not (ie)[: I_SM_HAS_EDGE_ATTR]()\n"
       << "  -> exists k = skViewE(ie) (cx)[k: " << label << "](cy).\n\n";
  }
  return os.str();
}

Result<std::string> GenerateOutputViews(const core::SuperSchema& schema,
                                        const metalog::MetaProgram& sigma,
                                        int64_t instance_oid) {
  (void)instance_oid;
  SigmaAnalysis analysis = AnalyzeSigma(sigma);
  std::ostringstream os;

  for (const std::string& label : analysis.head_node_labels) {
    const core::NodeDef* node = schema.FindNode(label);
    if (node == nullptr) {
      return InvalidArgument("Sigma derives unknown node label " + label);
    }
    os << "% V_O: " << label << " node outputs\n";
    // Property updates on existing entities.
    for (const core::AttributeDef& attr :
         schema.EffectiveAttributes(label)) {
      os << "(f: " << label << "; " << attr.name
         << ": v)[: VIEW_OF](i: I_SM_Node), !is_null(v)\n"
         << "  -> exists u = skOUpd_" << label << "_" << attr.name
         << "(f) (u: O_SM_PropUpdate; name: \"" << attr.name
         << "\", value: v), (u)[: O_ON](i).\n";
    }
    // Newly created entities.
    os << "(f: " << label << "), not (f)[: VIEW_OF]()\n"
       << "  -> exists o = skONew(f) (o: O_SM_Node; nodeType: \"" << label
       << "\").\n";
    for (const core::AttributeDef& attr :
         schema.EffectiveAttributes(label)) {
      os << "(f: " << label << "; " << attr.name
         << ": v), not (f)[: VIEW_OF](), !is_null(v)\n"
         << "  -> exists o = skONew(f), exists a = skONewA_" << label << "_"
         << attr.name << "(f)\n"
         << "     (o: O_SM_Node)[: O_SM_HAS_ATTR](a: O_SM_Attribute; "
         << "name: \"" << attr.name << "\", value: v).\n";
    }
    os << "\n";
  }
  for (const std::string& label : analysis.head_edge_labels) {
    const core::EdgeDef* edge = schema.FindEdge(label);
    if (edge == nullptr) {
      return InvalidArgument("Sigma derives unknown edge label " + label);
    }
    os << "% V_O: " << label << " edge outputs\n";
    // Four endpoint-resolution variants: each endpoint is either an
    // existing entity (VIEW_OF resolvable) or a new one.
    const char* kFromExisting = "(cx)[: VIEW_OF](ix: I_SM_Node)";
    const char* kFromNew = "not (cx)[: VIEW_OF]()";
    const char* kToExisting = "(cy)[: VIEW_OF](iy: I_SM_Node)";
    const char* kToNew = "not (cy)[: VIEW_OF]()";
    for (int variant = 0; variant < 4; ++variant) {
      bool from_existing = (variant & 1) == 0;
      bool to_existing = (variant & 2) == 0;
      os << "(cx)[k: " << label << "](cy),\n"
         << (from_existing ? kFromExisting : kFromNew) << ",\n"
         << (to_existing ? kToExisting : kToNew) << "\n"
         << "  -> exists e = skOE(k)";
      if (!from_existing) os << ", exists ox = skONew(cx)";
      if (!to_existing) os << ", exists oy = skONew(cy)";
      os << "\n     (e: O_SM_Edge; edgeType: \"" << label << "\"), "
         << "(e)[: O_FROM]("
         << (from_existing ? "ix" : "ox: O_SM_Node") << "), "
         << "(e)[: O_TO]("
         << (to_existing ? "iy" : "oy: O_SM_Node") << ").\n";
    }
    for (const core::AttributeDef& attr : edge->attributes) {
      os << "(cx)[k: " << label << "; " << attr.name
         << ": v](cy), !is_null(v)\n"
         << "  -> exists e = skOE(k), exists a = skOEA_" << label << "_"
         << attr.name << "(k)\n"
         << "     (e: O_SM_Edge)[: O_SM_HAS_ATTR](a: O_SM_Attribute; "
         << "name: \"" << attr.name << "\", value: v).\n";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace kgm::instance
