#include "vadalog/ast.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace kgm::vadalog {

std::string Term::ToString() const {
  if (is_var()) return var;
  return constant.ToString();
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string Literal::ToString() const {
  return negated ? "not " + atom.ToString() : atom.ToString();
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "&&";
    case BinOp::kOr:
      return "||";
  }
  return "?";
}

ExprPtr Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::Var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(inner);
  return e;
}

ExprPtr Expr::Negate(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNeg;
  e->lhs = std::move(inner);
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->call_name = std::move(name);
  e->call_args = std::move(args);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kVar:
      return var;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpName(op) + " " +
             rhs->ToString() + ")";
    case Kind::kNot:
      return "!(" + lhs->ToString() + ")";
    case Kind::kNeg:
      return "-(" + lhs->ToString() + ")";
    case Kind::kCall: {
      std::string out = call_name + "(";
      for (size_t i = 0; i < call_args.size(); ++i) {
        if (i > 0) out += ",";
        out += call_args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->push_back(var);
      return;
    case Kind::kBinary:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
      return;
    case Kind::kNot:
    case Kind::kNeg:
      lhs->CollectVars(out);
      return;
    case Kind::kCall:
      for (const ExprPtr& a : call_args) a->CollectVars(out);
      return;
  }
}

namespace {

Result<Value> EvalArith(BinOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    if (op == BinOp::kAdd && a.is_string() && b.is_string()) {
      return Value(a.AsString() + b.AsString());
    }
    return InvalidArgument("arithmetic on non-numeric values: " +
                           a.ToString() + " " + BinOpName(op) + " " +
                           b.ToString());
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    switch (op) {
      case BinOp::kAdd:
        return Value(x + y);
      case BinOp::kSub:
        return Value(x - y);
      case BinOp::kMul:
        return Value(x * y);
      case BinOp::kDiv:
        if (y == 0) return InvalidArgument("integer division by zero");
        return Value(x / y);
      case BinOp::kMod:
        if (y == 0) return InvalidArgument("integer modulo by zero");
        return Value(x % y);
      default:
        break;
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case BinOp::kAdd:
      return Value(x + y);
    case BinOp::kSub:
      return Value(x - y);
    case BinOp::kMul:
      return Value(x * y);
    case BinOp::kDiv:
      return Value(x / y);
    case BinOp::kMod:
      return Value(std::fmod(x, y));
    default:
      break;
  }
  return Internal("unhandled arithmetic operator");
}

Result<Value> EvalCompare(BinOp op, const Value& a, const Value& b) {
  // Numeric comparisons coerce int/double; everything else compares by the
  // Value total order within the same kind.
  int cmp;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
  } else if (a.kind() == b.kind()) {
    cmp = (a < b) ? -1 : (b < a) ? 1 : 0;
  } else {
    // Cross-kind (including nulls): only (in)equality is meaningful;
    // ordering comparisons are false, mirroring SQL's null semantics, so
    // that a missing property silently fails a threshold condition instead
    // of aborting the reasoning task.
    if (op == BinOp::kEq) return Value(false);
    if (op == BinOp::kNe) return Value(true);
    return Value(false);
  }
  switch (op) {
    case BinOp::kEq:
      return Value(cmp == 0);
    case BinOp::kNe:
      return Value(cmp != 0);
    case BinOp::kLt:
      return Value(cmp < 0);
    case BinOp::kLe:
      return Value(cmp <= 0);
    case BinOp::kGt:
      return Value(cmp > 0);
    case BinOp::kGe:
      return Value(cmp >= 0);
    default:
      break;
  }
  return Internal("unhandled comparison operator");
}

Result<Value> EvalCall(const Expr& e, const VarLookup& env) {
  std::vector<Value> args;
  for (const ExprPtr& a : e.call_args) {
    KGM_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, env));
    args.push_back(std::move(v));
  }
  const std::string& f = e.call_name;
  auto want = [&](size_t n) -> Status {
    if (args.size() != n) {
      return InvalidArgument("function " + f + " expects " +
                             std::to_string(n) + " arguments");
    }
    return OkStatus();
  };
  if (f == "abs") {
    KGM_RETURN_IF_ERROR(want(1));
    if (args[0].is_int()) {
      int64_t v = args[0].AsInt();
      return Value(v < 0 ? -v : v);
    }
    if (args[0].is_double()) return Value(std::fabs(args[0].AsDouble()));
    return InvalidArgument("abs of non-numeric value");
  }
  if (f == "min" || f == "max") {
    KGM_RETURN_IF_ERROR(want(2));
    if (!args[0].is_numeric() || !args[1].is_numeric()) {
      return InvalidArgument(f + " of non-numeric values");
    }
    bool first = (args[0].AsDouble() < args[1].AsDouble()) == (f == "min");
    return first ? args[0] : args[1];
  }
  if (f == "concat") {
    std::string out;
    for (const Value& v : args) {
      out += v.is_string() ? v.AsString() : v.ToString();
    }
    return Value(out);
  }
  if (f == "substr") {
    KGM_RETURN_IF_ERROR(want(3));
    if (!args[0].is_string() || !args[1].is_int() || !args[2].is_int()) {
      return InvalidArgument("substr(string, int, int)");
    }
    const std::string& s = args[0].AsString();
    int64_t pos = args[1].AsInt();
    int64_t len = args[2].AsInt();
    if (pos < 0 || pos > static_cast<int64_t>(s.size()) || len < 0) {
      return OutOfRange("substr out of range");
    }
    return Value(s.substr(pos, len));
  }
  if (f == "strlen") {
    KGM_RETURN_IF_ERROR(want(1));
    if (!args[0].is_string()) return InvalidArgument("strlen(string)");
    return Value(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (f == "to_string") {
    KGM_RETURN_IF_ERROR(want(1));
    if (args[0].is_string()) return args[0];
    return Value(args[0].ToString());
  }
  if (f == "to_int") {
    KGM_RETURN_IF_ERROR(want(1));
    if (args[0].is_int()) return args[0];
    if (args[0].is_double())
      return Value(static_cast<int64_t>(args[0].AsDouble()));
    if (args[0].is_string()) {
      return Value(static_cast<int64_t>(std::stoll(args[0].AsString())));
    }
    return InvalidArgument("to_int of " + args[0].ToString());
  }
  if (f == "to_double") {
    KGM_RETURN_IF_ERROR(want(1));
    if (args[0].is_numeric()) return Value(args[0].AsDouble());
    if (args[0].is_string()) return Value(std::stod(args[0].AsString()));
    return InvalidArgument("to_double of " + args[0].ToString());
  }
  if (f == "mod") {
    KGM_RETURN_IF_ERROR(want(2));
    return EvalArith(BinOp::kMod, args[0], args[1]);
  }
  if (f == "is_null") {
    KGM_RETURN_IF_ERROR(want(1));
    return Value(args[0].is_null());
  }
  if (f == "get") {
    // get(record, "field"): the field's value, or null when missing.  Used
    // by the MTV compiler to expand the `*p` record spread of Example 6.2.
    KGM_RETURN_IF_ERROR(want(2));
    if (!args[0].is_record() || !args[1].is_string()) {
      return InvalidArgument("get(record, string)");
    }
    for (const auto& [name, value] : *args[0].AsRecord()) {
      if (name == args[1].AsString()) return value;
    }
    return Value();
  }
  return InvalidArgument("unknown function: " + f);
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const VarLookup& env) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.constant;
    case Expr::Kind::kVar: {
      const Value* v = env(e.var);
      if (v == nullptr) return InvalidArgument("unbound variable: " + e.var);
      return *v;
    }
    case Expr::Kind::kNot: {
      KGM_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, env));
      if (!v.is_bool()) return InvalidArgument("! of non-boolean");
      return Value(!v.AsBool());
    }
    case Expr::Kind::kNeg: {
      KGM_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, env));
      if (v.is_int()) return Value(-v.AsInt());
      if (v.is_double()) return Value(-v.AsDouble());
      return InvalidArgument("unary - of non-numeric");
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
        KGM_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.lhs, env));
        if (!l.is_bool()) return InvalidArgument("&&/|| of non-boolean");
        if (e.op == BinOp::kAnd && !l.AsBool()) return Value(false);
        if (e.op == BinOp::kOr && l.AsBool()) return Value(true);
        KGM_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.rhs, env));
        if (!r.is_bool()) return InvalidArgument("&&/|| of non-boolean");
        return r;
      }
      KGM_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.lhs, env));
      KGM_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.rhs, env));
      switch (e.op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod:
          return EvalArith(e.op, l, r);
        default:
          return EvalCompare(e.op, l, r);
      }
    }
    case Expr::Kind::kCall:
      return EvalCall(e, env);
  }
  return Internal("unhandled expression kind");
}

Result<Value> EvalExpr(const Expr& e, const Bindings& env) {
  return EvalExpr(e, [&env](const std::string& name) -> const Value* {
    auto it = env.find(name);
    return it == env.end() ? nullptr : &it->second;
  });
}

std::string Assignment::ToString() const {
  return var + " = " + expr->ToString();
}

std::string Condition::ToString() const { return expr->ToString(); }

std::string Aggregate::ToString() const {
  std::string out = result_var + " = " + func + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i]->ToString();
  }
  if (!contributors.empty()) {
    out += ", <";
    for (size_t i = 0; i < contributors.size(); ++i) {
      if (i > 0) out += ",";
      out += contributors[i];
    }
    out += ">";
  }
  out += ")";
  return out;
}

std::string ExistentialSpec::ToString() const {
  std::string out = "exists " + var;
  if (!skolem_functor.empty()) {
    out += " = " + skolem_functor + "(";
    for (size_t i = 0; i < skolem_args.size(); ++i) {
      if (i > 0) out += ",";
      out += skolem_args[i];
    }
    out += ")";
  }
  return out;
}

std::string Rule::ToString() const {
  std::vector<std::string> parts;
  for (const Literal& l : body) parts.push_back(l.ToString());
  for (const Assignment& a : assignments) parts.push_back(a.ToString());
  for (const Aggregate& a : aggregates) parts.push_back(a.ToString());
  for (const Condition& c : conditions) parts.push_back(c.ToString());
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  out += " -> ";
  for (const ExistentialSpec& e : existentials) out += e.ToString() + " ";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i].ToString();
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const std::string& p : inputs) os << "@input(\"" << p << "\").\n";
  for (const FactDecl& f : facts) {
    os << "@fact " << f.predicate << "(";
    for (size_t i = 0; i < f.values.size(); ++i) {
      if (i > 0) os << ",";
      os << f.values[i].ToString();
    }
    os << ").\n";
  }
  for (const Rule& r : rules) os << r.ToString() << "\n";
  for (const std::string& p : outputs) os << "@output(\"" << p << "\").\n";
  return os.str();
}

}  // namespace kgm::vadalog
