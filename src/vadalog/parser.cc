#include "vadalog/parser.h"

#include <set>

#include "vadalog/lexer.h"

namespace kgm::vadalog {

bool IsAggregateFunction(const std::string& name) {
  static const std::set<std::string>& kNames = *new std::set<std::string>{
      "sum",  "prod",  "count",  "min",  "max",  "pack",
      "msum", "mprod", "mcount", "mmin", "mmax",
  };
  return kNames.count(name) > 0;
}

bool IsMonotonicAggregateName(const std::string& name) {
  return name.size() > 1 && name[0] == 'm' &&
         IsAggregateFunction(name.substr(1));
}

namespace {

class Parser {
 public:
  explicit Parser(TokenStream& ts) : ts_(ts) {}

  Result<Program> ParseProgram();
  Result<Rule> ParseSingleRule();

  Result<ExprPtr> ParseExprPublic() { return ParseExpr(); }
  Result<Term> ParseTermPublic() { return ParseTerm(); }
  Result<Aggregate> ParseAggregatePublic(std::string result_var,
                                         std::string func) {
    return ParseAggregate(std::move(result_var), std::move(func));
  }
  Result<std::vector<ExistentialSpec>> ParseExistentialsPublic();

 private:
  Result<Rule> ParseRuleStatement();
  Status ParseAnnotation(Program* program);
  Status ParseBody(Rule* rule);
  Status ParseBodyElement(Rule* rule);
  Status ParseHead(Rule* rule);
  Result<Atom> ParseAtom();
  Result<Term> ParseTerm();
  Result<Value> ParseConstant();
  Result<Aggregate> ParseAggregate(std::string result_var,
                                   std::string func_name);

  // Expression parsing with precedence climbing.
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAndExpr();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  TokenStream& ts_;
};

Result<Program> Parser::ParseProgram() {
  Program program;
  while (!ts_.AtEnd()) {
    if (ts_.Check(TokKind::kAt)) {
      KGM_RETURN_IF_ERROR(ParseAnnotation(&program));
      continue;
    }
    KGM_ASSIGN_OR_RETURN(Rule rule, ParseRuleStatement());
    rule.label = "r" + std::to_string(program.rules.size() + 1);
    program.rules.push_back(std::move(rule));
  }
  return program;
}

Result<Rule> Parser::ParseSingleRule() {
  KGM_ASSIGN_OR_RETURN(Rule rule, ParseRuleStatement());
  if (!ts_.AtEnd()) return ts_.ErrorHere("trailing input after rule");
  return rule;
}

Status Parser::ParseAnnotation(Program* program) {
  KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kAt, "'@'"));
  if (!ts_.Check(TokKind::kIdent)) {
    return ts_.ErrorHere("expected annotation name after '@'");
  }
  std::string name = ts_.Advance().text;
  if (name == "input" || name == "output") {
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLParen, "'('"));
    if (!ts_.Check(TokKind::kString) && !ts_.Check(TokKind::kIdent)) {
      return ts_.ErrorHere("expected predicate name");
    }
    const SourceLoc pred_loc = ts_.Peek().loc();
    std::string pred = ts_.Advance().text;
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kDot, "'.'"));
    if (name == "input") {
      program->inputs.push_back(std::move(pred));
      program->input_locs.push_back(pred_loc);
    } else {
      program->outputs.push_back(std::move(pred));
      program->output_locs.push_back(pred_loc);
    }
    return OkStatus();
  }
  if (name == "fact") {
    if (!ts_.Check(TokKind::kIdent)) {
      return ts_.ErrorHere("expected predicate name after '@fact'");
    }
    FactDecl fact;
    fact.loc = ts_.Peek().loc();
    fact.predicate = ts_.Advance().text;
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLParen, "'('"));
    if (!ts_.Check(TokKind::kRParen)) {
      while (true) {
        KGM_ASSIGN_OR_RETURN(Value v, ParseConstant());
        fact.values.push_back(std::move(v));
        if (!ts_.Match(TokKind::kComma)) break;
      }
    }
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kDot, "'.'"));
    program->facts.push_back(std::move(fact));
    return OkStatus();
  }
  return ts_.ErrorHere("unknown annotation: @" + name);
}

Result<Rule> Parser::ParseRuleStatement() {
  // Distinguish the two forms by scanning for '->' or ':-' at depth 0 is
  // complex; instead: parse a body first.  If we then see '->', we had the
  // paper form.  If we see ':-', the "body" we parsed must have been a
  // plain atom list and becomes the head.
  const SourceLoc rule_loc = ts_.Peek().loc();
  Rule rule;
  rule.loc = rule_loc;
  KGM_RETURN_IF_ERROR(ParseBody(&rule));
  if (ts_.Match(TokKind::kArrow)) {
    KGM_RETURN_IF_ERROR(ParseHead(&rule));
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kDot, "'.' at end of rule"));
    return rule;
  }
  if (ts_.Match(TokKind::kColonDash)) {
    // What we parsed was the head: it must be pure positive atoms.
    if (!rule.assignments.empty() || !rule.conditions.empty() ||
        !rule.aggregates.empty()) {
      return ts_.ErrorHere("rule head must consist of atoms only");
    }
    Rule real;
    real.loc = rule_loc;
    for (Literal& l : rule.body) {
      if (l.negated) return ts_.ErrorHere("negated atom in rule head");
      real.head.push_back(std::move(l.atom));
    }
    KGM_RETURN_IF_ERROR(ParseBody(&real));
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kDot, "'.' at end of rule"));
    return real;
  }
  // A bodyless "rule" like `p(1,2).` is a fact if all args are constants.
  if (ts_.Match(TokKind::kDot)) {
    if (rule.body.size() >= 1 && rule.assignments.empty() &&
        rule.conditions.empty() && rule.aggregates.empty()) {
      bool all_const = true;
      for (const Literal& l : rule.body) {
        if (l.negated) all_const = false;
        for (const Term& t : l.atom.args) {
          if (t.is_var()) all_const = false;
        }
      }
      if (all_const) {
        Rule fact_rule;
        fact_rule.loc = rule_loc;
        for (Literal& l : rule.body) fact_rule.head.push_back(std::move(l.atom));
        return fact_rule;  // body-free rule: unconditional facts
      }
    }
    return ts_.ErrorHere("expected '->' or ':-' in rule");
  }
  return ts_.ErrorHere("expected '->', ':-' or '.'");
}

Status Parser::ParseBody(Rule* rule) {
  while (true) {
    KGM_RETURN_IF_ERROR(ParseBodyElement(rule));
    if (!ts_.Match(TokKind::kComma)) return OkStatus();
  }
}

Status Parser::ParseBodyElement(Rule* rule) {
  // not atom
  if (ts_.CheckIdent("not")) {
    ts_.Advance();
    KGM_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    Literal lit;
    lit.atom = std::move(atom);
    lit.negated = true;
    rule->body.push_back(std::move(lit));
    return OkStatus();
  }
  // atom: IDENT '('
  if (ts_.Check(TokKind::kIdent) && ts_.Peek(1).kind == TokKind::kLParen) {
    KGM_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    Literal lit;
    lit.atom = std::move(atom);
    rule->body.push_back(std::move(lit));
    return OkStatus();
  }
  // assignment or aggregate: IDENT '=' (single '=')
  if (ts_.Check(TokKind::kIdent) && ts_.Peek(1).kind == TokKind::kAssign) {
    std::string var = ts_.Advance().text;
    ts_.Advance();  // '='
    if (ts_.Check(TokKind::kIdent) && IsAggregateFunction(ts_.Peek().text) &&
        ts_.Peek(1).kind == TokKind::kLParen) {
      std::string func = ts_.Advance().text;
      KGM_ASSIGN_OR_RETURN(Aggregate agg,
                           ParseAggregate(std::move(var), std::move(func)));
      rule->aggregates.push_back(std::move(agg));
      return OkStatus();
    }
    KGM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    rule->assignments.push_back(Assignment{std::move(var), std::move(expr)});
    return OkStatus();
  }
  // otherwise: a condition expression
  KGM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  rule->conditions.push_back(Condition{std::move(expr)});
  return OkStatus();
}

Result<Aggregate> Parser::ParseAggregate(std::string result_var,
                                         std::string func_name) {
  Aggregate agg;
  agg.result_var = std::move(result_var);
  agg.func = std::move(func_name);
  KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLParen, "'('"));
  // Arguments: zero or more exprs, then optionally ", <contributors>".
  bool expect_more = !ts_.Check(TokKind::kRParen);
  while (expect_more) {
    if (ts_.Check(TokKind::kLt)) {
      ts_.Advance();
      while (true) {
        if (!ts_.Check(TokKind::kIdent)) {
          return ts_.ErrorHere("expected contributor variable");
        }
        agg.contributors.push_back(ts_.Advance().text);
        if (!ts_.Match(TokKind::kComma)) break;
      }
      KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kGt, "'>'"));
      break;  // contributor list is last
    }
    KGM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    agg.args.push_back(std::move(arg));
    expect_more = ts_.Match(TokKind::kComma);
  }
  KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
  return agg;
}

Result<std::vector<ExistentialSpec>> Parser::ParseExistentialsPublic() {
  std::vector<ExistentialSpec> out;
  while (ts_.CheckIdent("exists")) {
    ts_.Advance();
    if (!ts_.Check(TokKind::kIdent)) {
      return ts_.ErrorHere("expected variable after 'exists'");
    }
    ExistentialSpec spec;
    spec.var = ts_.Advance().text;
    if (ts_.Match(TokKind::kAssign)) {
      if (!ts_.Check(TokKind::kIdent)) {
        return ts_.ErrorHere("expected Skolem functor name");
      }
      spec.skolem_functor = ts_.Advance().text;
      KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLParen, "'('"));
      if (!ts_.Check(TokKind::kRParen)) {
        while (true) {
          if (!ts_.Check(TokKind::kIdent)) {
            return ts_.ErrorHere("expected variable in Skolem argument list");
          }
          spec.skolem_args.push_back(ts_.Advance().text);
          if (!ts_.Match(TokKind::kComma)) break;
        }
      }
      KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
    }
    out.push_back(std::move(spec));
    ts_.Match(TokKind::kComma);  // optional separator
  }
  return out;
}

Status Parser::ParseHead(Rule* rule) {
  KGM_ASSIGN_OR_RETURN(rule->existentials, ParseExistentialsPublic());
  while (true) {
    KGM_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    rule->head.push_back(std::move(atom));
    if (!ts_.Match(TokKind::kComma)) break;
  }
  if (rule->head.empty()) return ts_.ErrorHere("empty rule head");
  return OkStatus();
}

Result<Atom> Parser::ParseAtom() {
  if (!ts_.Check(TokKind::kIdent)) {
    return ts_.ErrorHere("expected predicate name");
  }
  Atom atom;
  atom.loc = ts_.Peek().loc();
  atom.predicate = ts_.Advance().text;
  KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLParen, "'('"));
  if (!ts_.Check(TokKind::kRParen)) {
    while (true) {
      KGM_ASSIGN_OR_RETURN(Term t, ParseTerm());
      atom.args.push_back(std::move(t));
      if (!ts_.Match(TokKind::kComma)) break;
    }
  }
  KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
  return atom;
}

Result<Term> Parser::ParseTerm() {
  const Token& t = ts_.Peek();
  switch (t.kind) {
    case TokKind::kIdent:
      if (t.text == "true" || t.text == "false") {
        ts_.Advance();
        return Term::Const(Value(t.text == "true"));
      }
      ts_.Advance();
      return Term::Var(t.text);
    case TokKind::kInt:
    case TokKind::kDouble:
    case TokKind::kString:
    case TokKind::kMinus: {
      KGM_ASSIGN_OR_RETURN(Value v, ParseConstant());
      return Term::Const(std::move(v));
    }
    default:
      return ts_.ErrorHere("expected term, got " + t.Describe());
  }
}

Result<Value> Parser::ParseConstant() {
  bool negative = ts_.Match(TokKind::kMinus);
  const Token& t = ts_.Peek();
  switch (t.kind) {
    case TokKind::kInt:
      ts_.Advance();
      return Value(negative ? -t.int_value : t.int_value);
    case TokKind::kDouble:
      ts_.Advance();
      return Value(negative ? -t.double_value : t.double_value);
    case TokKind::kString:
      if (negative) return ts_.ErrorHere("'-' before string");
      ts_.Advance();
      return Value(t.text);
    case TokKind::kIdent:
      if (t.text == "true" || t.text == "false") {
        if (negative) return ts_.ErrorHere("'-' before boolean");
        ts_.Advance();
        return Value(t.text == "true");
      }
      return ts_.ErrorHere("expected constant, got " + t.Describe());
    default:
      return ts_.ErrorHere("expected constant, got " + t.Describe());
  }
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  KGM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
  while (ts_.Match(TokKind::kOr)) {
    KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
    lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAndExpr() {
  KGM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
  while (ts_.Match(TokKind::kAnd)) {
    KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
    lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseComparison() {
  KGM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  BinOp op;
  switch (ts_.Peek().kind) {
    case TokKind::kEq:
      op = BinOp::kEq;
      break;
    case TokKind::kAssign:  // single '=' also accepted as equality test
      op = BinOp::kEq;
      break;
    case TokKind::kNe:
      op = BinOp::kNe;
      break;
    case TokKind::kLt:
      op = BinOp::kLt;
      break;
    case TokKind::kLe:
      op = BinOp::kLe;
      break;
    case TokKind::kGt:
      op = BinOp::kGt;
      break;
    case TokKind::kGe:
      op = BinOp::kGe;
      break;
    default:
      return lhs;
  }
  ts_.Advance();
  KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseAdditive() {
  KGM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    if (ts_.Match(TokKind::kPlus)) {
      KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(BinOp::kAdd, std::move(lhs), std::move(rhs));
    } else if (ts_.Match(TokKind::kMinus)) {
      KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(BinOp::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  KGM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    if (ts_.Match(TokKind::kStar)) {
      KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(BinOp::kMul, std::move(lhs), std::move(rhs));
    } else if (ts_.Match(TokKind::kSlash)) {
      KGM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(BinOp::kDiv, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (ts_.Match(TokKind::kBang)) {
    KGM_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return Expr::Not(std::move(inner));
  }
  if (ts_.Match(TokKind::kMinus)) {
    KGM_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return Expr::Negate(std::move(inner));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = ts_.Peek();
  switch (t.kind) {
    case TokKind::kInt:
      ts_.Advance();
      return Expr::Const(Value(t.int_value));
    case TokKind::kDouble:
      ts_.Advance();
      return Expr::Const(Value(t.double_value));
    case TokKind::kString:
      ts_.Advance();
      return Expr::Const(Value(t.text));
    case TokKind::kIdent: {
      if (t.text == "true" || t.text == "false") {
        ts_.Advance();
        return Expr::Const(Value(t.text == "true"));
      }
      std::string name = ts_.Advance().text;
      if (ts_.Check(TokKind::kLParen)) {
        ts_.Advance();
        std::vector<ExprPtr> args;
        if (!ts_.Check(TokKind::kRParen)) {
          while (true) {
            KGM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!ts_.Match(TokKind::kComma)) break;
          }
        }
        KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
        return Expr::Call(std::move(name), std::move(args));
      }
      return Expr::Var(std::move(name));
    }
    case TokKind::kLParen: {
      ts_.Advance();
      KGM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    default:
      return ts_.ErrorHere("expected expression, got " + t.Describe());
  }
}

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  KGM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenStream ts(std::move(tokens));
  Parser parser(ts);
  return parser.ParseProgram();
}

Result<Rule> ParseRule(std::string_view source) {
  KGM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenStream ts(std::move(tokens));
  Parser parser(ts);
  return parser.ParseSingleRule();
}

Result<ExprPtr> ParseExpression(TokenStream& ts) {
  Parser parser(ts);
  return parser.ParseExprPublic();
}

Result<Term> ParseTermAt(TokenStream& ts) {
  Parser parser(ts);
  return parser.ParseTermPublic();
}

Result<Aggregate> ParseAggregateBody(TokenStream& ts, std::string result_var,
                                     std::string func) {
  Parser parser(ts);
  return parser.ParseAggregatePublic(std::move(result_var), std::move(func));
}

Result<std::vector<ExistentialSpec>> ParseExistentialPrefix(TokenStream& ts) {
  Parser parser(ts);
  return parser.ParseExistentialsPublic();
}

}  // namespace kgm::vadalog
