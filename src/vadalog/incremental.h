// Incremental materialization: maintains the output of a Vadalog program
// under insertions and deletions of extensional facts without re-running
// the whole chase.
//
// The maintainer follows the classic delete-rederive (DRed) algorithm
// adapted to this engine's stratified, deterministic evaluation:
//
//   overdelete   Starting from the deleted EDB tuples, fire every rule with
//                one body literal restricted to the deletions (semi-naive,
//                against the pre-deletion database) and collect the derived
//                heads; iterate to a fixpoint.  This over-approximates the
//                set of facts that may have lost a derivation.
//   rederive     Erase the over-deleted tuples, then probe each one with a
//                seeded evaluation (head variables pre-bound to the tuple):
//                a tuple with a surviving derivation — or post-delta EDB
//                support — is re-inserted.  Iterated until no tuple comes
//                back, so rescue chains inside a recursive stratum resolve.
//   insert       Semi-naive insertion rounds seeded by the inserted EDB
//                tuples and, transitively, by newly derived facts.
//
// Not every program is DRed-maintainable with the engine's semantics, so
// the maintainer picks one of three modes per program (MaintenanceMode):
//
//   kDRed             No aggregates, and existentials (if any) materialize
//                     as content-addressed Skolem terms, so rederivation
//                     reproduces the original witnesses.  Maintains the
//                     database as a set: contents match a from-scratch
//                     materialization exactly; row order may differ.
//                     A stratum that negates a changed predicate falls back
//                     to per-stratum recomputation (negation is not
//                     monotone under deletion).
//   kRecomputeStrata  The program aggregates (deleting one contribution
//                     cannot be undone on a folded accumulator), so each
//                     affected stratum is recomputed from its EDB base
//                     while unaffected strata are skipped.  Change
//                     detection is order-sensitive, which makes the
//                     maintained database bit-identical to a from-scratch
//                     run — including row order and float bits.
//   kFullRerun        Restricted-chase programs with existentials mint
//                     labeled nulls from a run-global counter; any partial
//                     re-evaluation would renumber them.  The maintainer
//                     falls back to a full re-materialization, which the
//                     deterministic engine makes bit-identical by
//                     construction.
//
// Correctness contract: after Apply, db() equals the database produced by
// running the program from scratch on the post-delta EDB — bit-identical
// (ordered) in kRecomputeStrata / kFullRerun modes, equal as a set of
// facts in kDRed mode — at any engine thread count (the engine itself is
// deterministic across worker counts).

#ifndef KGM_VADALOG_INCREMENTAL_H_
#define KGM_VADALOG_INCREMENTAL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "vadalog/database.h"
#include "vadalog/engine.h"

namespace kgm::vadalog {

// A batch of extensional changes: tuples to delete and tuples to insert,
// per predicate.  Deletes apply before inserts; deleting an absent tuple or
// inserting a present one is a no-op (the maintainer normalizes the delta
// against the current EDB).
struct EdbDelta {
  std::map<std::string, std::vector<Tuple>> inserts;
  std::map<std::string, std::vector<Tuple>> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  // Predicates named by the delta (inserts or deletes), sorted.
  std::vector<std::string> TouchedPredicates() const;
};

enum class MaintenanceMode { kDRed, kRecomputeStrata, kFullRerun };

const char* MaintenanceModeName(MaintenanceMode mode);

// Observability for one Apply call.
struct IncrementalStats {
  MaintenanceMode mode = MaintenanceMode::kDRed;
  size_t edb_inserted = 0;     // realized EDB insertions
  size_t edb_deleted = 0;      // realized EDB deletions
  size_t strata_processed = 0; // strata that did incremental work
  size_t strata_skipped = 0;   // strata untouched by the delta
  size_t strata_recomputed = 0;  // strata recomputed from their EDB base
  size_t overdeleted = 0;      // tuples removed by the overdeletion phase
  size_t rederived = 0;        // over-deleted tuples with a surviving proof
  size_t idb_deleted = 0;      // derived tuples permanently removed
  size_t idb_inserted = 0;     // derived tuples newly added
  double apply_seconds = 0;
  // DRed phase breakdown (zero outside kDRed strata).
  double overdelete_seconds = 0;
  double rederive_seconds = 0;
  double insert_seconds = 0;
};

// Owns a materialized database and keeps it consistent with its program as
// EDB deltas arrive.
//
//   IncrementalView view(program, options);
//   KGM_RETURN_IF_ERROR(view.status());
//   KGM_RETURN_IF_ERROR(view.Initialize(std::move(edb)));  // full chase
//   KGM_RETURN_IF_ERROR(view.Apply(delta));                // incremental
//   ... view.db() is the maintained materialization ...
class IncrementalView {
 public:
  explicit IncrementalView(Program program, EngineOptions options = {});
  ~IncrementalView();

  IncrementalView(const IncrementalView&) = delete;
  IncrementalView& operator=(const IncrementalView&) = delete;

  // Construction-time validation outcome (program safety/stratification).
  const Status& status() const;

  // Takes ownership of the extensional database and materializes the
  // program over it (one full engine run).  Must be called once, before
  // Apply.
  Status Initialize(FactDb edb);

  // Applies `delta` to the EDB and incrementally maintains the
  // materialization.  On error the view is left in an unspecified state
  // and must be re-Initialized.
  Status Apply(const EdbDelta& delta);

  // Which maintenance strategy Apply uses for this program.
  MaintenanceMode mode() const;

  // The maintained materialization (EDB + IDB).
  const FactDb& db() const;
  // The maintained extensional database (program facts included).
  const FactDb& edb() const;

  // Predicates whose relation contents actually changed during the last
  // Apply (normalized: a delete of an absent tuple does not count).  This
  // is what the serving layer uses to decide which snapshot relations to
  // re-encode and which cached results to carry forward.
  const std::set<std::string>& last_changed() const;
  const IncrementalStats& last_stats() const;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

// True when both databases hold exactly the same relations with exactly
// the same rows in the same order (the bit-identity check of the
// kRecomputeStrata / kFullRerun contract).  Relations that exist in only
// one database must be empty.
bool DatabasesEqualOrdered(const FactDb& a, const FactDb& b);

// True when both databases hold the same set of facts per predicate,
// ignoring row order (the kDRed contract).
bool DatabasesEqualAsSets(const FactDb& a, const FactDb& b);

// Appends a human-readable description of the first difference to `out`
// (for test diagnostics); returns true when a difference was found.
bool DescribeFirstDifference(const FactDb& a, const FactDb& b, bool ordered,
                             std::string* out);

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_INCREMENTAL_H_
