// Abstract syntax of the Vadalog dialect.
//
// A program is a set of existential rules (Section 4 of the paper,
// "Relational Foundations and Vadalog"):
//
//     body -> exists z1 [= sk(x,y)] ... head
//
// where the body is a conjunction of positive/negated relational atoms,
// conditions, assignments and aggregates, and the head is a conjunction of
// atoms that may use existentially quantified variables, optionally bound to
// linker Skolem functors.  Both the paper's arrow form (`body -> head.`) and
// classic Datalog form (`head :- body.`) are accepted by the parser.

#ifndef KGM_VADALOG_AST_H_
#define KGM_VADALOG_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/value.h"

namespace kgm::vadalog {

// --- terms and atoms ---------------------------------------------------------

struct Term {
  enum class Kind { kVar, kConst };
  Kind kind = Kind::kConst;
  std::string var;  // variable name ("_" denotes an anonymous variable)
  Value constant;

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVar;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(v);
    return t;
  }
  bool is_var() const { return kind == Kind::kVar; }
  bool is_anonymous() const { return is_var() && var == "_"; }
  std::string ToString() const;
};

struct Atom {
  std::string predicate;
  std::vector<Term> args;
  std::string ToString() const;
};

struct Literal {
  Atom atom;
  bool negated = false;
  std::string ToString() const;
};

// --- expressions -------------------------------------------------------------

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinOpName(BinOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { kConst, kVar, kBinary, kNot, kNeg, kCall };
  Kind kind = Kind::kConst;

  Value constant;                // kConst
  std::string var;               // kVar
  BinOp op = BinOp::kAdd;        // kBinary
  ExprPtr lhs, rhs;              // kBinary; kNot/kNeg use lhs
  std::string call_name;         // kCall (scalar builtin)
  std::vector<ExprPtr> call_args;

  static ExprPtr Const(Value v);
  static ExprPtr Var(std::string name);
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr Negate(ExprPtr e);
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args);

  std::string ToString() const;
  // Appends the variables referenced by this expression to `out`.
  void CollectVars(std::vector<std::string>* out) const;
};

// Environment for expression evaluation.
using Bindings = std::unordered_map<std::string, Value>;

// Variable resolution callback: returns nullptr for unbound names.
using VarLookup = std::function<const Value*(const std::string&)>;

// Evaluates `e`, resolving variables through `lookup`; unbound variables and
// type errors are reported through the Result.  Scalar builtins: abs, min,
// max, concat, substr, to_string, to_int, to_double, strlen, mod.
Result<Value> EvalExpr(const Expr& e, const VarLookup& lookup);

// Convenience overload resolving variables from a map.
Result<Value> EvalExpr(const Expr& e, const Bindings& env);

// --- rule components ---------------------------------------------------------

// `var = expr` where expr is a scalar expression.
struct Assignment {
  std::string var;
  ExprPtr expr;
  std::string ToString() const;
};

// A Boolean body condition.
struct Condition {
  ExprPtr expr;
  std::string ToString() const;
};

// `result = func(arg, <contributors>)`.  Functions: sum, prod, count, min,
// max (auto-monotonic when the rule is recursive), their explicitly
// monotonic forms msum/mprod/mcount/mmin/mmax, and pack(name, value) which
// builds a record per group.
struct Aggregate {
  std::string result_var;
  std::string func;
  std::vector<ExprPtr> args;
  std::vector<std::string> contributors;
  std::string ToString() const;
};

// An existentially quantified head variable, optionally with a linker
// Skolem functor (`exists k = skT(t)`; Section 4).
struct ExistentialSpec {
  std::string var;
  std::string skolem_functor;             // empty: plain existential
  std::vector<std::string> skolem_args;   // universally quantified variables
  std::string ToString() const;
};

struct Rule {
  std::vector<Literal> body;
  std::vector<Assignment> assignments;
  std::vector<Condition> conditions;
  std::vector<Aggregate> aggregates;
  std::vector<ExistentialSpec> existentials;
  std::vector<Atom> head;
  std::string label;  // diagnostics; optional

  std::string ToString() const;
};

// A ground fact asserted in the program text via `@fact`.
struct FactDecl {
  std::string predicate;
  std::vector<Value> values;
};

struct Program {
  std::vector<Rule> rules;
  std::vector<FactDecl> facts;
  std::vector<std::string> inputs;   // @input("pred")
  std::vector<std::string> outputs;  // @output("pred")

  std::string ToString() const;
};

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_AST_H_
