#include "vadalog/analysis.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {

namespace {

// Collects all predicates of the program in deterministic order.
std::vector<std::string> CollectPredicates(const Program& program) {
  std::set<std::string> preds;
  for (const Rule& r : program.rules) {
    for (const Literal& l : r.body) preds.insert(l.atom.predicate);
    for (const Atom& a : r.head) preds.insert(a.predicate);
  }
  for (const FactDecl& f : program.facts) preds.insert(f.predicate);
  return {preds.begin(), preds.end()};
}

// Uniform diagnostic prefix: 1-based rule index plus the first head
// predicate, so analysis messages are deterministic and greppable.
std::string RulePrefix(const Rule& r, size_t ri) {
  std::string pred = r.head.empty()
                         ? (r.label.empty() ? "?" : r.label)
                         : r.head[0].predicate;
  return "rule " + std::to_string(ri + 1) + " (" + pred + "): ";
}

// Tarjan SCC over the predicate dependency graph (iterative).
std::vector<int> TarjanScc(int n, const std::vector<std::vector<int>>& adj,
                           int* num_sccs_out) {
  std::vector<int> index(n, -1), low(n, 0), scc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int next_scc = 0;

  struct Frame {
    int v;
    size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        int w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = next_scc;
            if (w == f.v) break;
          }
          ++next_scc;
        }
        int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  *num_sccs_out = next_scc;
  return scc;
}

}  // namespace

Stratification ComputeStratification(const Program& program,
                                     std::vector<StratViolation>* violations) {
  std::vector<std::string> preds = CollectPredicates(program);
  std::unordered_map<std::string, int> id;
  for (size_t i = 0; i < preds.size(); ++i) id[preds[i]] = static_cast<int>(i);
  int n = static_cast<int>(preds.size());

  std::vector<std::vector<int>> adj(n);
  for (const Rule& r : program.rules) {
    for (const Atom& h : r.head) {
      int hid = id[h.predicate];
      for (const Literal& l : r.body) {
        adj[id[l.atom.predicate]].push_back(hid);
      }
      // Multi-head rules: their head predicates are produced together, so
      // force them into the same SCC.
      for (const Atom& h2 : r.head) {
        int hid2 = id[h2.predicate];
        if (hid2 != hid) adj[hid].push_back(hid2);
      }
    }
  }

  int num_sccs = 0;
  std::vector<int> scc_raw = TarjanScc(n, adj, &num_sccs);

  // Topological order of the condensation.  Tarjan emits SCCs in reverse
  // topological order, so renumber.
  std::vector<int> renumber(num_sccs);
  for (int i = 0; i < num_sccs; ++i) renumber[i] = num_sccs - 1 - i;

  Stratification strat;
  strat.num_sccs = num_sccs;
  for (int i = 0; i < n; ++i) {
    strat.pred_scc[preds[i]] = renumber[scc_raw[i]];
  }

  strat.rule_stratum.resize(program.rules.size(), 0);
  strat.rule_recursive.resize(program.rules.size(), false);
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    int stratum = 0;
    if (!r.head.empty()) {
      stratum = strat.pred_scc[r.head[0].predicate];
      for (const Atom& h : r.head) {
        stratum = std::max(stratum, strat.pred_scc[h.predicate]);
      }
    }
    strat.rule_stratum[ri] = stratum;
    for (const Literal& l : r.body) {
      if (strat.pred_scc[l.atom.predicate] == stratum) {
        strat.rule_recursive[ri] = true;
      }
    }
    // pack() inside recursion runs in monotonic mode: the record grows as
    // contributions arrive, and intermediate (partial) records are emitted
    // along the way.  Consumers tolerate this because null-valued fields
    // are ignored on decode and facts deduplicate.
  }

  // Negation must not occur inside an SCC.  Violations are reported per rule
  // in source order so diagnostics are deterministic.
  if (violations != nullptr) {
    for (size_t ri = 0; ri < program.rules.size(); ++ri) {
      const Rule& r = program.rules[ri];
      if (r.head.empty()) continue;
      for (const Literal& l : r.body) {
        if (!l.negated) continue;
        bool same_scc = false;
        for (const Atom& h : r.head) {
          if (strat.pred_scc[l.atom.predicate] ==
              strat.pred_scc[h.predicate]) {
            same_scc = true;
            break;
          }
        }
        if (!same_scc) continue;
        StratViolation v;
        v.rule_index = static_cast<int>(ri);
        v.head_pred = r.head[0].predicate;
        v.negated_pred = l.atom.predicate;
        v.message = RulePrefix(r, ri) + "not stratified: negated dependency on " +
                    l.atom.predicate + " within a recursive SCC";
        violations->push_back(std::move(v));
      }
    }
  }
  return strat;
}

Result<Stratification> Stratify(const Program& program) {
  std::vector<StratViolation> violations;
  Stratification strat = ComputeStratification(program, &violations);
  if (!violations.empty()) {
    return FailedPrecondition("program is not stratified: " +
                              violations.front().message);
  }
  return strat;
}

Status ValidateRuleSafety(const Rule& r, size_t rule_index) {
  const std::string where = RulePrefix(r, rule_index);
  std::unordered_set<std::string> positive_vars;
  for (const Literal& l : r.body) {
    if (l.negated) continue;
    for (const Term& t : l.atom.args) {
      if (t.is_var() && !t.is_anonymous()) positive_vars.insert(t.var);
    }
  }
  std::unordered_set<std::string> bound = positive_vars;
  // Assignments may depend on aggregate results (e.g. the get() calls
  // generated for record spreads); such assignments are evaluated after
  // aggregation, so validate them against the enlarged binding set.
  std::unordered_set<std::string> result_names;
  for (const Aggregate& a : r.aggregates) result_names.insert(a.result_var);
  std::unordered_set<std::string> post_targets;
  for (const Assignment& a : r.assignments) {
    std::vector<std::string> vars;
    a.expr->CollectVars(&vars);
    bool post = false;
    for (const std::string& v : vars) {
      if (result_names.count(v) > 0 || post_targets.count(v) > 0) {
        post = true;
      }
    }
    for (const std::string& v : vars) {
      if (bound.count(v) > 0) continue;
      if (post &&
          (result_names.count(v) > 0 || post_targets.count(v) > 0)) {
        continue;
      }
      return FailedPrecondition(where + "unsafe assignment: variable " + v +
                                " unbound");
    }
    if (post) {
      post_targets.insert(a.var);
    } else {
      bound.insert(a.var);
    }
  }
  std::unordered_set<std::string> agg_results;
  for (const Aggregate& a : r.aggregates) {
    std::vector<std::string> vars;
    for (const ExprPtr& e : a.args) e->CollectVars(&vars);
    for (const std::string& v : a.contributors) vars.push_back(v);
    for (const std::string& v : vars) {
      if (bound.count(v) == 0) {
        return FailedPrecondition(where + "unsafe aggregate: variable " + v +
                                  " unbound");
      }
    }
    if (!IsAggregateFunction(a.func)) {
      return FailedPrecondition(where + "unknown aggregate function " +
                                a.func);
    }
    agg_results.insert(a.result_var);
    bound.insert(a.result_var);
  }
  for (const std::string& v : post_targets) bound.insert(v);
  for (const Condition& c : r.conditions) {
    std::vector<std::string> vars;
    c.expr->CollectVars(&vars);
    for (const std::string& v : vars) {
      if (bound.count(v) == 0) {
        return FailedPrecondition(where + "unsafe condition: variable " + v +
                                  " unbound");
      }
    }
  }
  for (const Literal& l : r.body) {
    if (!l.negated) continue;
    for (const Term& t : l.atom.args) {
      if (t.is_var() && !t.is_anonymous() && bound.count(t.var) == 0) {
        return FailedPrecondition(where + "unsafe negation: variable " +
                                  t.var + " unbound");
      }
    }
  }
  std::unordered_set<std::string> existential;
  for (const ExistentialSpec& e : r.existentials) {
    if (bound.count(e.var) > 0) {
      return FailedPrecondition(where + "existential variable " + e.var +
                                " also bound in body");
    }
    if (!existential.insert(e.var).second) {
      return FailedPrecondition(where + "duplicate existential variable " +
                                e.var);
    }
    for (const std::string& a : e.skolem_args) {
      if (bound.count(a) == 0) {
        return FailedPrecondition(where + "Skolem argument " + a +
                                  " unbound");
      }
    }
  }
  if (r.head.empty()) {
    return FailedPrecondition(where + "rule has no head");
  }
  bool head_uses_existential = r.existentials.empty();
  for (const Atom& h : r.head) {
    for (const Term& t : h.args) {
      if (!t.is_var()) continue;
      if (t.is_anonymous()) {
        return FailedPrecondition(where + "anonymous variable in head");
      }
      if (existential.count(t.var) > 0) {
        head_uses_existential = true;
        continue;
      }
      if (bound.count(t.var) == 0) {
        return FailedPrecondition(where + "unsafe head: variable " + t.var +
                                  " unbound");
      }
    }
  }
  if (!head_uses_existential) {
    return FailedPrecondition(where + "declared existential never used in head");
  }
  return OkStatus();
}

Status ValidateSafety(const Program& program) {
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    KGM_RETURN_IF_ERROR(ValidateRuleSafety(program.rules[ri], ri));
  }
  return OkStatus();
}

WardednessReport CheckWardedness(const Program& program) {
  WardednessReport report;

  // 1. Affected positions: start from positions hosting existential
  //    variables; propagate through rules where a universal variable occurs
  //    *only* in affected body positions.
  std::set<Position> affected;
  for (const Rule& r : program.rules) {
    std::unordered_set<std::string> ex;
    for (const ExistentialSpec& e : r.existentials) ex.insert(e.var);
    for (const Atom& h : r.head) {
      for (size_t i = 0; i < h.args.size(); ++i) {
        const Term& t = h.args[i];
        if (t.is_var() && ex.count(t.var) > 0) {
          affected.insert({h.predicate, static_cast<int>(i)});
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : program.rules) {
      // Occurrences of each variable in positive body atoms.
      std::unordered_map<std::string, std::pair<int, int>> occ;  // all, affected
      for (const Literal& l : r.body) {
        if (l.negated) continue;
        for (size_t i = 0; i < l.atom.args.size(); ++i) {
          const Term& t = l.atom.args[i];
          if (!t.is_var() || t.is_anonymous()) continue;
          auto& counts = occ[t.var];
          ++counts.first;
          if (affected.count({l.atom.predicate, static_cast<int>(i)}) > 0) {
            ++counts.second;
          }
        }
      }
      for (const Atom& h : r.head) {
        for (size_t i = 0; i < h.args.size(); ++i) {
          const Term& t = h.args[i];
          if (!t.is_var()) continue;
          auto it = occ.find(t.var);
          if (it == occ.end()) continue;  // existential or assigned
          const auto& [all, aff] = it->second;
          if (all > 0 && all == aff) {
            if (affected.insert({h.predicate, static_cast<int>(i)}).second) {
              changed = true;
            }
          }
        }
      }
    }
  }
  report.affected = affected;

  // 2. Per-rule ward check.
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];

    // Harmful variables: every body occurrence is in an affected position.
    std::unordered_map<std::string, std::pair<int, int>> occ;
    for (const Literal& l : r.body) {
      if (l.negated) continue;
      for (size_t i = 0; i < l.atom.args.size(); ++i) {
        const Term& t = l.atom.args[i];
        if (!t.is_var() || t.is_anonymous()) continue;
        auto& counts = occ[t.var];
        ++counts.first;
        if (affected.count({l.atom.predicate, static_cast<int>(i)}) > 0) {
          ++counts.second;
        }
      }
    }
    std::unordered_set<std::string> harmful;
    for (const auto& [var, counts] : occ) {
      if (counts.first > 0 && counts.first == counts.second) {
        harmful.insert(var);
      }
    }
    // Dangerous: harmful and propagated to the head.
    std::unordered_set<std::string> head_vars;
    for (const Atom& h : r.head) {
      for (const Term& t : h.args) {
        if (t.is_var()) head_vars.insert(t.var);
      }
    }
    std::unordered_set<std::string> dangerous;
    for (const std::string& v : harmful) {
      if (head_vars.count(v) > 0) dangerous.insert(v);
    }
    if (dangerous.empty()) continue;

    // All dangerous variables must occur in one single body atom (the ward),
    // which shares only harmless variables with the other atoms.
    bool found_ward = false;
    for (size_t wi = 0; wi < r.body.size() && !found_ward; ++wi) {
      const Literal& ward = r.body[wi];
      if (ward.negated) continue;
      std::unordered_set<std::string> ward_vars;
      for (const Term& t : ward.atom.args) {
        if (t.is_var() && !t.is_anonymous()) ward_vars.insert(t.var);
      }
      bool contains_all = true;
      for (const std::string& v : dangerous) {
        if (ward_vars.count(v) == 0) {
          contains_all = false;
          break;
        }
      }
      if (!contains_all) continue;
      bool clean = true;
      for (size_t oi = 0; oi < r.body.size() && clean; ++oi) {
        if (oi == wi || r.body[oi].negated) continue;
        for (const Term& t : r.body[oi].atom.args) {
          if (t.is_var() && !t.is_anonymous() && ward_vars.count(t.var) > 0 &&
              harmful.count(t.var) > 0) {
            clean = false;
            break;
          }
        }
      }
      if (clean) found_ward = true;
    }
    if (!found_ward) {
      report.warded = false;
      std::vector<std::string> sorted_dangerous(dangerous.begin(),
                                                dangerous.end());
      std::sort(sorted_dangerous.begin(), sorted_dangerous.end());
      std::string vars;
      for (const std::string& v : sorted_dangerous) {
        if (!vars.empty()) vars += ", ";
        vars += v;
      }
      report.violations.push_back(RulePrefix(r, ri) +
                                  "no ward for dangerous variables [" + vars +
                                  "]");
      report.violation_rules.push_back(static_cast<int>(ri));
    }
  }
  return report;
}

bool IsPiecewiseLinear(const Program& program) {
  Result<Stratification> strat = Stratify(program);
  if (!strat.ok()) return false;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    int stratum = strat->rule_stratum[ri];
    int recursive_atoms = 0;
    for (const Literal& l : r.body) {
      if (strat->SccOf(l.atom.predicate) == stratum) ++recursive_atoms;
    }
    if (recursive_atoms > 1) return false;
  }
  return true;
}

bool IsRecursive(const Program& program) {
  Result<Stratification> strat = Stratify(program);
  if (!strat.ok()) return true;  // be conservative
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    if (strat->rule_recursive[ri]) return true;
  }
  return false;
}

}  // namespace kgm::vadalog
