#include "vadalog/lexer.h"

#include <cctype>

#include "base/strings.h"

namespace kgm::vadalog {

std::string Token::Describe() const {
  switch (kind) {
    case TokKind::kEnd:
      return "<end>";
    case TokKind::kIdent:
      return "identifier '" + text + "'";
    case TokKind::kInt:
      return "integer " + std::to_string(int_value);
    case TokKind::kDouble:
      return "number";
    case TokKind::kString:
      return "string \"" + text + "\"";
    default:
      return "'" + text + "'";
  }
}

namespace {

Status LexError(int line, int col, std::string_view msg) {
  return InvalidArgument("lex error at " + std::to_string(line) + ":" +
                         std::to_string(col) + ": " + std::string(msg));
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  size_t i = 0;
  // Start position of the token currently being scanned; every token
  // records where its first character sits (multi-character tokens such as
  // strings would otherwise report their end position).
  int tok_line = 1;
  int tok_col = 1;
  size_t tok_off = 0;
  auto push = [&](TokKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line;
    t.column = tok_col;
    t.offset = tok_off;
    out.push_back(std::move(t));
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      ++col;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    tok_line = line;
    tok_col = col;
    tok_off = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < src.size() && IsIdentChar(src[i])) ++i;
      push(TokKind::kIdent, std::string(src.substr(start, i - start)));
      col += static_cast<int>(i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i])))
        ++i;
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_double = true;
        ++i;
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i])))
          ++i;
      }
      if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
        size_t j = i + 1;
        if (j < src.size() && (src[j] == '+' || src[j] == '-')) ++j;
        if (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
          is_double = true;
          i = j;
          while (i < src.size() &&
                 std::isdigit(static_cast<unsigned char>(src[i])))
            ++i;
        }
      }
      std::string text(src.substr(start, i - start));
      Token t;
      t.line = tok_line;
      t.column = tok_col;
      t.offset = tok_off;
      t.text = text;
      if (is_double) {
        t.kind = TokKind::kDouble;
        t.double_value = std::stod(text);
      } else {
        t.kind = TokKind::kInt;
        t.int_value = std::stoll(text);
      }
      out.push_back(std::move(t));
      col += static_cast<int>(i - start);
      continue;
    }
    if (c == '"') {
      ++i;
      ++col;
      std::string text;
      bool closed = false;
      while (i < src.size()) {
        char d = src[i];
        if (d == '"') {
          closed = true;
          ++i;
          ++col;
          break;
        }
        if (d == '\\' && i + 1 < src.size()) {
          char e = src[i + 1];
          switch (e) {
            case 'n':
              text += '\n';
              break;
            case 't':
              text += '\t';
              break;
            case '\\':
              text += '\\';
              break;
            case '"':
              text += '"';
              break;
            default:
              return LexError(line, col, "bad escape in string");
          }
          i += 2;
          col += 2;
          continue;
        }
        if (d == '\n') return LexError(line, col, "unterminated string");
        text += d;
        ++i;
        ++col;
      }
      if (!closed) return LexError(line, col, "unterminated string");
      push(TokKind::kString, std::move(text));
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    TokKind kind;
    std::string text;
    int advance = 1;
    if (two(':', '-')) {
      kind = TokKind::kColonDash;
      text = ":-";
      advance = 2;
    } else if (two('-', '>')) {
      kind = TokKind::kArrow;
      text = "->";
      advance = 2;
    } else if (two('=', '=')) {
      kind = TokKind::kEq;
      text = "==";
      advance = 2;
    } else if (two('!', '=')) {
      kind = TokKind::kNe;
      text = "!=";
      advance = 2;
    } else if (two('<', '=')) {
      kind = TokKind::kLe;
      text = "<=";
      advance = 2;
    } else if (two('>', '=')) {
      kind = TokKind::kGe;
      text = ">=";
      advance = 2;
    } else if (two('&', '&')) {
      kind = TokKind::kAnd;
      text = "&&";
      advance = 2;
    } else if (two('|', '|')) {
      kind = TokKind::kOr;
      text = "||";
      advance = 2;
    } else {
      switch (c) {
        case '(':
          kind = TokKind::kLParen;
          break;
        case ')':
          kind = TokKind::kRParen;
          break;
        case '[':
          kind = TokKind::kLBracket;
          break;
        case ']':
          kind = TokKind::kRBracket;
          break;
        case '{':
          kind = TokKind::kLBrace;
          break;
        case '}':
          kind = TokKind::kRBrace;
          break;
        case ',':
          kind = TokKind::kComma;
          break;
        case '.':
          kind = TokKind::kDot;
          break;
        case ';':
          kind = TokKind::kSemicolon;
          break;
        case ':':
          kind = TokKind::kColon;
          break;
        case '=':
          kind = TokKind::kAssign;
          break;
        case '<':
          kind = TokKind::kLt;
          break;
        case '>':
          kind = TokKind::kGt;
          break;
        case '+':
          kind = TokKind::kPlus;
          break;
        case '-':
          kind = TokKind::kMinus;
          break;
        case '*':
          kind = TokKind::kStar;
          break;
        case '/':
          kind = TokKind::kSlash;
          break;
        case '!':
          kind = TokKind::kBang;
          break;
        case '@':
          kind = TokKind::kAt;
          break;
        case '|':
          kind = TokKind::kPipe;
          break;
        case '?':
          kind = TokKind::kQuestion;
          break;
        default:
          return LexError(line, col, std::string("unexpected character '") +
                                         c + "'");
      }
      text = std::string(1, c);
    }
    push(kind, std::move(text));
    i += advance;
    col += advance;
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.line = line;
  end.column = col;
  end.offset = src.size();
  out.push_back(end);
  return out;
}

const Token& TokenStream::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;
  return tokens_[idx];
}

const Token& TokenStream::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenStream::Match(TokKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

bool TokenStream::MatchIdent(std::string_view word) {
  if (CheckIdent(word)) {
    Advance();
    return true;
  }
  return false;
}

bool TokenStream::CheckIdent(std::string_view word) const {
  const Token& t = Peek();
  return t.kind == TokKind::kIdent && t.text == word;
}

Status TokenStream::Expect(TokKind kind, std::string_view what) {
  if (Match(kind)) return OkStatus();
  return ErrorHere("expected " + std::string(what) + ", got " +
                   Peek().Describe());
}

Status TokenStream::ErrorHere(std::string_view message) const {
  const Token& t = Peek();
  return InvalidArgument("parse error at " + std::to_string(t.line) + ":" +
                         std::to_string(t.column) + ": " +
                         std::string(message));
}

}  // namespace kgm::vadalog
