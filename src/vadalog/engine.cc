#include "vadalog/engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "base/thread_pool.h"
#include "vadalog/parser.h"

namespace kgm::vadalog {

namespace {

struct TupleHashFn {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};

// --- compiled rule representation -------------------------------------------

struct ArgSlot {
  bool is_const = false;
  Value constant;
  int slot = -1;  // -1 for anonymous variables
};

struct CompiledLiteral {
  std::string pred;
  std::vector<ArgSlot> args;
  bool recursive = false;  // predicate in the rule's own SCC
  // Index mask the join will probe for this literal: constants plus
  // variables bound by earlier body literals.  Statically known because
  // literals are joined in textual order.
  uint64_t static_mask = 0;
  // Relation resolved by the last PrepareJoinIndexes call (nullptr when the
  // predicate does not exist yet).  Only trusted under a frozen context —
  // the canonical store cannot gain relations mid-phase there, and the
  // driver refreshes the cache at every barrier; the mutating sequential
  // path re-resolves per probe because head emission can create the
  // relation mid-join.  Relation addresses are stable (node-based map).
  Relation* rel = nullptr;
};

struct CompiledAgg {
  std::string base_func;  // sum / prod / count / min / max / pack
  bool monotonic = false;
  std::vector<ExprPtr> args;
  std::vector<int> contributor_slots;
  int result_slot = -1;
};

struct ExistSlot {
  int slot = -1;
  std::string functor;          // never empty after compilation
  std::vector<int> arg_slots;   // Skolem arguments
};

// Per-group aggregation state.  Persistent across fixpoint iterations for
// monotonic aggregates, per-evaluation for stratified ones.
struct GroupState {
  std::vector<Value> acc;                  // one accumulator per aggregate
  std::vector<bool> has_value;             // accumulator initialized?
  std::vector<Record> packed;              // pack() accumulators
  std::vector<std::unordered_set<Tuple, TupleHashFn>> seen;  // contributions
};

struct CompiledRule {
  const Rule* rule = nullptr;
  int index = 0;
  int stratum = 0;
  bool recursive = false;

  std::vector<std::string> slot_names;
  std::unordered_map<std::string, int> varmap;

  std::vector<CompiledLiteral> positives;
  std::vector<CompiledLiteral> negatives;
  // Assignments evaluated before aggregation, and those that depend
  // (transitively) on aggregate results, evaluated after it.
  std::vector<std::pair<int, ExprPtr>> assignments;       // pre-aggregation
  std::vector<std::pair<int, ExprPtr>> post_assignments;  // post-aggregation
  std::vector<ExprPtr> pre_conditions;
  std::vector<ExprPtr> post_conditions;
  std::vector<CompiledAgg> aggregates;
  std::vector<int> group_slots;
  std::vector<ExistSlot> existentials;
  std::vector<CompiledLiteral> head;  // reuse ArgSlot encoding

  // Per head atom, the statically-known bound mask of the restricted-chase
  // head-satisfaction probe: constants, universal (non-existential) slots,
  // and existential slots fixed by an earlier head atom.  Only computed
  // for rules with existentials; the barrier chase pre-builds indexes for
  // these masks so the frozen screen probes read-only.
  std::vector<uint64_t> head_check_masks;
  // Head relations resolved once per barrier by PrepareJoinIndexes (one
  // entry per head atom, nullptr when the relation does not exist yet) so
  // the head-satisfaction screen skips the by-name lookup on every firing.
  // Readers fall back to FactDb::GetMutable on nullptr: a relation that
  // appears mid-barrier (first mint into a new predicate) must be seen by
  // the replay re-checks that follow it.
  std::vector<Relation*> head_rels;
  // True when no existential's Skolem arguments name another existential
  // of the same rule, so one firing's Skolem terms can intern as a single
  // ordered batch.
  bool skolem_batch_ok = true;

  // Monotonic aggregation state (persists across the whole run).
  std::unordered_map<Tuple, GroupState, TupleHashFn> mono_groups;
};

Result<Value> FoldNumeric(const std::string& func, const Value& acc,
                          const Value& v) {
  if (!v.is_numeric() || !acc.is_numeric()) {
    return InvalidArgument("aggregate " + func + " over non-numeric value " +
                           v.ToString());
  }
  if (acc.is_int() && v.is_int()) {
    int64_t a = acc.AsInt();
    int64_t b = v.AsInt();
    int64_t r = 0;
    if (func == "sum") {
      if (__builtin_add_overflow(a, b, &r)) {
        return InvalidArgument("integer overflow in sum aggregate: " +
                               std::to_string(a) + " + " + std::to_string(b));
      }
      return Value(r);
    }
    if (func == "prod") {
      if (__builtin_mul_overflow(a, b, &r)) {
        return InvalidArgument("integer overflow in prod aggregate: " +
                               std::to_string(a) + " * " + std::to_string(b));
      }
      return Value(r);
    }
    if (func == "min") return Value(std::min(a, b));
    if (func == "max") return Value(std::max(a, b));
  }
  double a = acc.AsDouble();
  double b = v.AsDouble();
  if (func == "sum") return Value(a + b);
  if (func == "prod") return Value(a * b);
  if (func == "min") return Value(std::min(a, b));
  if (func == "max") return Value(std::max(a, b));
  return Internal("unknown numeric aggregate " + func);
}

// All aggregates of a rule share one mode (mixing is rejected at
// construction time).
bool AllMonotonic(const CompiledRule& cr) {
  for (const CompiledAgg& a : cr.aggregates) {
    if (!a.monotonic) return false;
  }
  return true;
}

bool FullyBoundMask(uint64_t mask, size_t n) {
  return n > 0 && n < 64 && mask == (1ULL << n) - 1;
}

// One recorded firing of a rule with monotonic aggregates, produced by a
// parallel join worker and folded into the rule's group state by the
// driver in deterministic work-item order.
struct PendingContribution {
  Tuple group_key;
  // Per aggregate: contributor slot values followed by evaluated argument
  // values (the same encoding ProcessAggregates uses for `seen`).
  std::vector<Tuple> per_agg;
};

// One recorded emission of a barrier-chase work item, replayed by the
// driver at the iteration barrier in ascending (item, seq) order.  kFact
// is a plain derived fact; kCandidate is a restricted-chase firing whose
// head passed the frozen screen and must be re-checked against the live
// database before its existential witnesses are minted.
struct ReplayOp {
  enum class Kind : uint8_t { kFact, kCandidate };
  Kind kind = Kind::kFact;
  const std::string* pred = nullptr;  // kFact: head predicate
  Tuple tuple;                        // kFact: the derived fact
  std::vector<Value> slots;           // kCandidate: binding snapshot
  std::vector<char> bound;            // kCandidate: bound-mask snapshot
};

// One complete body match of a rule evaluated under a REORDERED join plan,
// recorded instead of finishing inline.  `key` is the matched row id per
// positive literal in WRITTEN order: a written-order join enumerates
// firings in exactly the lexicographic order of these keys (it recurses
// per literal over ascending row ids), and a reordered join over the same
// frozen sources finds the same firing set — so sorting the collected
// firings by key and flushing them through FinishBinding reproduces the
// written-order emission sequence bit for bit.  Keys are unique: the rows
// fully determine the binding.
struct CollectedFiring {
  std::vector<uint32_t> key;
  std::vector<Value> slots;
  std::vector<char> bound;
};

// Per-evaluation binding and output state.  Sequential evaluation uses a
// single driver context writing straight into the FactDb; parallel work
// items each own a context that stages derived facts into the sharded
// relations (and records aggregate contributions) for the drain at the
// iteration barrier.
struct EvalContext {
  CompiledRule* rule = nullptr;
  std::vector<Value> slots;
  std::vector<char> bound;

  // Staged mode: facts go through Relation::StageInsert tagged with
  // (item_index, insert_seq) instead of the canonical store.
  bool staged = false;
  uint32_t item_index = 0;
  uint32_t insert_seq = 0;

  // Barrier-chase replay mode (deterministic parallel restricted chase):
  // instead of staging into shards, emissions are recorded in firing order
  // and the driver replays them at the barrier in ascending item order, so
  // head re-checks and null minting are deterministic for any worker
  // count.
  bool replay = false;
  std::vector<ReplayOp> replay_ops;
  size_t chase_candidates = 0;  // candidate firings recorded for replay
  size_t chase_screened = 0;    // firings dropped by the frozen screen
  size_t chase_deduped = 0;     // duplicate firings dropped worker-side
  // Bound-head-argument signatures of the firings this item has already
  // screened or recorded.  A later firing with an identical signature
  // would deterministically drop at the barrier re-check (the earlier
  // candidate either minted a witness for exactly this head or was itself
  // already satisfied), so it can be dropped here without recording.
  std::unordered_set<Tuple, TupleHashFn> chase_seen;
  // Scratch for the signature probed against chase_seen (distinct
  // signatures are copied in; duplicates — the common case in dense
  // chases — cost no allocation).
  Tuple sig_scratch;
  // Worker-side dedup, set per barrier by RunItems from the previous
  // barrier's observed duplicate rate.  Any policy here is output-neutral:
  // a duplicate that is not deduped is dropped by the frozen screen or the
  // barrier re-check instead.
  bool chase_dedup_enabled = true;

  // Deferred aggregation (parallel work items of rules with aggregates):
  // the join records contributions instead of folding them into shared
  // group state.
  bool defer_aggregates = false;
  std::vector<PendingContribution> contributions;

  // Joins must not mutate relations: probe pre-built indexes only.
  bool frozen_db = false;

  // Restricts enumeration of the delta literal to [delta_begin, delta_end).
  size_t delta_begin = 0;
  size_t delta_end = static_cast<size_t>(-1);
  // Phase-A scan partitioning: positive literal whose enumeration is
  // restricted to [delta_begin, delta_end); -1 = none.
  int range_literal = -1;

  // Fact-budget baseline for staged inserts (db size at freeze time).
  size_t budget_base = 0;

  // Join-probe counter driving the periodic deadline/cancellation poll
  // (checked every few tens of thousands of candidate rows).
  size_t checkpoint_tick = 0;

  // Scratch probe reused by the head-satisfaction fast path so screening
  // half a million firings does not allocate a vector per check.
  Tuple head_probe;

  // Per-literal scratch probes for Join, indexed by literal position (the
  // recursion occupies one depth per literal, so frames never alias).
  std::vector<Tuple> join_probes;

  // Cost-based join plan for this evaluation (vadalog/planner.h); nullptr
  // = written order.  Set by the driver at item creation (PlanFor is
  // driver-only); Join maps recursion depth d to plan->order[d].literal.
  const JoinPlan* plan = nullptr;
  // True while evaluating a REORDERED plan: Join records complete matches
  // into `collected` (keyed by written-order row ids) instead of calling
  // FinishBinding inline; the driver sorts and flushes them afterwards,
  // restoring the written-order emission sequence.  Identity-order plans
  // (index-vs-scan selection only) skip the collect machinery — scan and
  // index-bucket row orders are both ascending, so they already enumerate
  // firings in written order.
  bool collect = false;
  std::vector<uint32_t> match_rows;  // scratch: row id per written literal
  std::vector<CollectedFiring> collected;

  // Stratified (non-monotonic) aggregation state of this evaluation.
  std::unordered_map<Tuple, GroupState, TupleHashFn> eval_groups;
  std::vector<Tuple> eval_group_order;

  // Counters, flushed into EngineStats by the driver.
  size_t firings = 0;
  size_t probes = 0;
};

}  // namespace

// --- engine implementation ---------------------------------------------------

struct Engine::Impl {
  Engine* engine;
  FactDb* db = nullptr;
  const EngineOptions& options;
  EngineStats* stats;

  std::vector<CompiledRule> compiled;
  std::map<std::string, size_t> arity;
  NullFactory nulls;

  // Worker pool; null = sequential legacy evaluation (or a single-threaded
  // barrier chase, which runs its work items inline).
  std::unique_ptr<ThreadPool> pool;
  size_t num_workers = 1;

  // Deterministic barrier chase: restricted-chase programs with
  // existentials run the two-phase protocol at every thread count —
  // workers evaluate against the frozen pre-barrier database and record
  // emissions; the driver replays them in ascending (item, seq) order.
  bool barrier_chase = false;

  // Cross-item signature dedup for the barrier chase, sharded by signature
  // hash and cleared at every barrier.  Maps a bound-head-argument
  // signature (prefixed with the rule index) to the smallest packed
  // (item, seq) tag that has claimed it so far.  A firing drops only
  // against a STRICTLY smaller tag, so the minimum-tag copy of every
  // signature is always recorded regardless of thread schedule; larger-tag
  // copies that slip through are dropped deterministically by the barrier
  // re-check.  Outputs are therefore schedule-independent even though the
  // dedup counters are not.
  static constexpr size_t kChaseSeenShards = 16;
  struct ChaseSeenShard {
    std::mutex mu;
    std::unordered_map<Tuple, uint64_t, TupleHashFn> map;
  };
  std::array<ChaseSeenShard, kChaseSeenShards> chase_seen_shared;

  // True when the run has a deadline or a cancellation flag to poll.
  bool checkpoints_armed = false;

  // Cost-based join planner (EngineOptions::plan_mode == kGreedy); null =
  // written-order evaluation.  Greedy runs always use the frozen parallel
  // driver — even at one worker, where items run inline — because the
  // mutating sequential path sees mid-join insertions and would enumerate
  // a different firing set than the plan-order restoration assumes.
  std::unique_ptr<JoinPlanner> planner;
  void BuildPlanner();

  // Cooperative deadline/cancellation poll.  Called at stratum and batch
  // boundaries, at every fixpoint iteration, and (rate-limited) from the
  // join loops; safe on pool threads.
  Status Checkpoint() const {
    if (!checkpoints_armed) return OkStatus();
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return DeadlineExceeded("evaluation cancelled");
    }
    if (options.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= options.deadline) {
      return DeadlineExceeded("engine deadline exceeded");
    }
    return OkStatus();
  }

  // Per-stratum evaluation state.
  const std::set<std::string>* recursive_preds = nullptr;
  std::map<std::string, Relation>* next_delta = nullptr;
  std::map<std::string, Relation>* cur_delta = nullptr;

  // When set, Run evaluates only the strata whose id is in the filter
  // (Engine::RunStrata).
  const std::set<int>* stratum_filter = nullptr;

  // When set, derived facts are handed to the callback instead of being
  // inserted (DeltaEvaluator).  Only meaningful on the sequential
  // InsertShared path — staged/replay contexts never coexist with it.
  std::function<void(const std::string&, Tuple)> emit_override;

  explicit Impl(Engine* e) : engine(e), options(e->options_),
                             stats(&e->stats_) {}

  Status CompileAll();
  Status CompileRule(const Rule& rule, int index);
  Status Run(FactDb* target);
  Status EvalStratum(int stratum, const std::vector<CompiledRule*>& rules);
  Status EvalStratumSequential(int stratum,
                               const std::vector<CompiledRule*>& rules);
  Status EvalStratumParallel(int stratum,
                             const std::vector<CompiledRule*>& rules);
  Status EvalRule(EvalContext& ctx, CompiledRule& cr, int delta_literal);
  Status Join(EvalContext& ctx, CompiledRule& cr, size_t literal_index,
              int delta_literal);
  // Sorts the firings a reordered join collected and runs FinishBinding on
  // each in ascending written-order key — the exact off-mode sequence.
  Status FlushCollected(EvalContext& ctx, CompiledRule& cr);
  Status FinishBinding(EvalContext& ctx, CompiledRule& cr);
  Status ProcessAggregates(EvalContext& ctx, CompiledRule& cr);
  Status ApplyContribution(CompiledRule& cr, const CompiledAgg& agg,
                           GroupState& state, size_t ai,
                           const Tuple& contribution, bool* any_update);
  Status EmitWithAggregates(EvalContext& ctx, CompiledRule& cr,
                            const Tuple& group_key, const GroupState& state);
  Status FinalizeStratifiedAggregates(EvalContext& ctx, CompiledRule& cr);
  Status EmitHeadWithPostConditions(EvalContext& ctx, CompiledRule& cr);
  Status EmitHead(EvalContext& ctx, CompiledRule& cr);
  Status MintAndEmitHead(EvalContext& ctx, CompiledRule& cr);
  bool HeadSatisfied(EvalContext& ctx, CompiledRule& cr);
  Status InsertFact(EvalContext& ctx, const std::string& pred, Tuple t);
  Status InsertShared(const std::string& pred, Tuple t);

  // --- parallel driver ---
  struct WorkItem {
    CompiledRule* rule = nullptr;
    int delta_literal = -1;
    // Overrides the default EvalRule body (used by aggregation-finalize
    // emission items).
    std::function<Status(EvalContext&)> body;
    EvalContext ctx;
    Status status;
  };
  std::vector<std::vector<CompiledRule*>> IndependentBatches(
      const std::vector<CompiledRule*>& rules) const;
  void PrepareJoinIndexes(CompiledRule& cr, const JoinPlan* plan = nullptr);
  size_t PartitionCount(size_t rows) const;
  // Barrier-chase dedup policy carried across barriers: stays true while
  // worker-side signature dedup pays for itself (see RunItems).
  bool chase_dedup_hint = true;
  // Runs the items on the pool and drains the staged inserts at the
  // barrier.  Newly appended canonical rows are mirrored into next_delta
  // for recursive predicates.
  Status RunItems(std::deque<WorkItem>& items);
  Status DrainStagedInserts();
  // Barrier-chase drain: replays the recorded emissions of `items` on the
  // driver in ascending (item, seq) order — facts insert via the shared
  // path, candidates re-check head satisfaction against the live database
  // and mint their existential witnesses in replay order.
  Status ReplayOrderedOps(std::deque<WorkItem>& items);
  // Folds the deferred aggregate contributions of `items` in submission
  // order: monotonic aggregates re-emit through the shared FactDb,
  // stratified ones are folded into a master group map and emitted by
  // parallel finalize items.
  Status FoldItemContributions(std::deque<WorkItem>& items);
  Status FoldAndEmitStratified(CompiledRule& cr, std::deque<WorkItem>& items);
  Status FoldPending(CompiledRule& cr, EvalContext& scratch,
                     const PendingContribution& pc);
  void FlushCtxStats(EvalContext& ctx, const CompiledRule& cr);

  // Count of staged inserts accepted since the last drain (fact budget).
  std::atomic<size_t> staged_total_{0};

  Result<Value> Eval(EvalContext& ctx, const ExprPtr& e) {
    return EvalExpr(*e, [&ctx](const std::string& name) -> const Value* {
      auto it = ctx.rule->varmap.find(name);
      if (it == ctx.rule->varmap.end()) return nullptr;
      if (!ctx.bound[it->second]) return nullptr;
      return &ctx.slots[it->second];
    });
  }
};

Status Engine::Impl::CompileAll() {
  const Program& program = engine->program_;
  // Predicate arities.
  auto note_arity = [this](const std::string& pred,
                           size_t n) -> Status {
    auto [it, inserted] = arity.emplace(pred, n);
    if (!inserted && it->second != n) {
      return FailedPrecondition("predicate " + pred +
                                " used with conflicting arities " +
                                std::to_string(it->second) + " and " +
                                std::to_string(n));
    }
    return OkStatus();
  };
  for (const Rule& r : program.rules) {
    for (const Literal& l : r.body) {
      KGM_RETURN_IF_ERROR(note_arity(l.atom.predicate, l.atom.args.size()));
    }
    for (const Atom& h : r.head) {
      KGM_RETURN_IF_ERROR(note_arity(h.predicate, h.args.size()));
    }
  }
  for (const FactDecl& f : program.facts) {
    KGM_RETURN_IF_ERROR(note_arity(f.predicate, f.values.size()));
  }
  for (size_t i = 0; i < program.rules.size(); ++i) {
    KGM_RETURN_IF_ERROR(CompileRule(program.rules[i], static_cast<int>(i)));
  }
  stats->rule_firings_by_rule.assign(compiled.size(), 0);
  stats->rule_probes_by_rule.assign(compiled.size(), 0);
  return OkStatus();
}

Status Engine::Impl::CompileRule(const Rule& rule, int index) {
  const Stratification& strat = engine->strat_;
  CompiledRule cr;
  cr.rule = &rule;
  cr.index = index;
  cr.stratum = strat.rule_stratum[index];
  cr.recursive = strat.rule_recursive[index];
  std::string where = " (rule " + (rule.label.empty()
                                       ? std::to_string(index + 1)
                                       : rule.label) + ")";

  auto slot_of = [&cr](const std::string& name) -> int {
    auto it = cr.varmap.find(name);
    if (it != cr.varmap.end()) return it->second;
    int s = static_cast<int>(cr.slot_names.size());
    cr.slot_names.push_back(name);
    cr.varmap.emplace(name, s);
    return s;
  };
  auto compile_atom = [&](const Atom& atom,
                          bool recursive) -> CompiledLiteral {
    CompiledLiteral cl;
    cl.pred = atom.predicate;
    cl.recursive = recursive;
    for (const Term& t : atom.args) {
      ArgSlot a;
      if (t.is_var()) {
        a.is_const = false;
        a.slot = t.is_anonymous() ? -1 : slot_of(t.var);
      } else {
        a.is_const = true;
        a.constant = t.constant;
      }
      cl.args.push_back(std::move(a));
    }
    return cl;
  };

  for (const Literal& l : rule.body) {
    bool rec = strat.SccOf(l.atom.predicate) == cr.stratum;
    CompiledLiteral cl = compile_atom(l.atom, rec);
    if (l.negated) {
      cr.negatives.push_back(std::move(cl));
    } else {
      cr.positives.push_back(std::move(cl));
    }
  }

  // Static probe masks: the bound set at literal i is exactly the
  // variables of literals 0..i-1 (assignments run after all positives);
  // negated literals are checked after the full positive join, so every
  // named argument is bound.
  {
    std::set<int> seen_slots;
    for (CompiledLiteral& cl : cr.positives) {
      uint64_t m = 0;
      for (size_t i = 0; i < cl.args.size(); ++i) {
        const ArgSlot& a = cl.args[i];
        if (a.is_const || (a.slot >= 0 && seen_slots.count(a.slot) > 0)) {
          m |= 1ULL << i;
        }
      }
      cl.static_mask = m;
      for (const ArgSlot& a : cl.args) {
        if (a.slot >= 0) seen_slots.insert(a.slot);
      }
    }
    for (CompiledLiteral& cl : cr.negatives) {
      uint64_t m = 0;
      for (size_t i = 0; i < cl.args.size(); ++i) {
        const ArgSlot& a = cl.args[i];
        if (a.is_const || a.slot >= 0) m |= 1ULL << i;
      }
      cl.static_mask = m;
    }
  }

  std::unordered_set<std::string> result_names;
  for (const Aggregate& a : rule.aggregates) {
    result_names.insert(a.result_var);
  }
  std::unordered_set<std::string> post_targets;
  for (const Assignment& a : rule.assignments) {
    std::vector<std::string> vars;
    a.expr->CollectVars(&vars);
    bool post = false;
    for (const std::string& v : vars) {
      if (result_names.count(v) > 0 || post_targets.count(v) > 0) {
        post = true;
      }
    }
    if (post) {
      post_targets.insert(a.var);
      cr.post_assignments.emplace_back(slot_of(a.var), a.expr);
    } else {
      cr.assignments.emplace_back(slot_of(a.var), a.expr);
    }
  }

  std::unordered_set<std::string> result_vars;
  for (const Aggregate& a : rule.aggregates) {
    CompiledAgg ca;
    bool explicit_mono = IsMonotonicAggregateName(a.func);
    ca.base_func = explicit_mono ? a.func.substr(1) : a.func;
    ca.monotonic = explicit_mono || cr.recursive;
    ca.args = a.args;
    size_t want_args = ca.base_func == "pack" ? 2 :
                       ca.base_func == "count" ? 0 : 1;
    if (ca.base_func == "count" && a.args.size() > 1) {
      return FailedPrecondition("count takes at most one argument" + where);
    }
    if (ca.base_func != "count" && a.args.size() != want_args) {
      return FailedPrecondition("aggregate " + a.func + " takes " +
                                std::to_string(want_args) + " argument(s)" +
                                where);
    }
    for (const std::string& c : a.contributors) {
      ca.contributor_slots.push_back(slot_of(c));
    }
    ca.result_slot = slot_of(a.result_var);
    result_vars.insert(a.result_var);
    cr.aggregates.push_back(std::move(ca));
  }

  std::unordered_set<std::string> existential_vars;
  for (const ExistentialSpec& e : rule.existentials) {
    ExistSlot es;
    es.slot = slot_of(e.var);
    existential_vars.insert(e.var);
    if (e.skolem_functor.empty()) {
      es.functor = "_sk_r" + std::to_string(index) + "_" + e.var;
      // Frontier Skolemization: arguments are the universal variables of the
      // head, filled in below once the head is compiled.
    } else {
      es.functor = e.skolem_functor;
      for (const std::string& a : e.skolem_args) {
        es.arg_slots.push_back(slot_of(a));
      }
    }
    cr.existentials.push_back(std::move(es));
  }

  for (const Atom& h : rule.head) {
    cr.head.push_back(compile_atom(h, false));
  }

  // Frontier arguments for auto-Skolemized existentials: the universal
  // variables appearing in the head, in slot order — plus the arguments of
  // any explicit linker Skolem functor in the same head, so that two
  // firings differing only in an explicitly Skolemized sibling (e.g. an
  // edge OID) still mint distinct auto OIDs.
  std::set<int> frontier;
  for (const Atom& h : rule.head) {
    for (const Term& t : h.args) {
      if (!t.is_var()) continue;
      if (existential_vars.count(t.var) > 0) continue;
      frontier.insert(cr.varmap[t.var]);
    }
  }
  for (const ExistentialSpec& e : rule.existentials) {
    if (e.skolem_functor.empty()) continue;
    for (const std::string& a : e.skolem_args) {
      frontier.insert(cr.varmap[a]);
    }
  }
  for (size_t i = 0; i < rule.existentials.size(); ++i) {
    if (rule.existentials[i].skolem_functor.empty()) {
      cr.existentials[i].arg_slots.assign(frontier.begin(), frontier.end());
    }
  }

  // Static bound masks for the restricted-chase head-satisfaction probe.
  // HeadSatisfied searches head atoms left to right, so at atom i every
  // position is bound except existential slots not yet fixed by an earlier
  // atom — which makes the probe masks statically known here.
  if (!cr.existentials.empty()) {
    std::set<int> exist_slots;
    for (const ExistSlot& e : cr.existentials) exist_slots.insert(e.slot);
    std::set<int> fixed;  // existential slots named by earlier head atoms
    for (const CompiledLiteral& h : cr.head) {
      uint64_t m = 0;
      for (size_t i = 0; i < h.args.size(); ++i) {
        const ArgSlot& a = h.args[i];
        if (a.is_const || exist_slots.count(a.slot) == 0 ||
            fixed.count(a.slot) > 0) {
          m |= 1ULL << i;
        }
      }
      cr.head_check_masks.push_back(m);
      for (const ArgSlot& a : h.args) {
        if (!a.is_const && exist_slots.count(a.slot) > 0) {
          fixed.insert(a.slot);
        }
      }
    }
    for (const ExistSlot& e : cr.existentials) {
      for (int s : e.arg_slots) {
        if (exist_slots.count(s) > 0) cr.skolem_batch_ok = false;
      }
    }
  }

  // Split conditions into pre-/post-aggregation.
  for (const Condition& c : rule.conditions) {
    std::vector<std::string> vars;
    c.expr->CollectVars(&vars);
    bool post = false;
    for (const std::string& v : vars) {
      if (result_vars.count(v) > 0) post = true;
    }
    if (post) {
      cr.post_conditions.push_back(c.expr);
    } else {
      cr.pre_conditions.push_back(c.expr);
    }
  }

  // Aggregation group: variables needed after aggregation (head atoms,
  // post-conditions, Skolem arguments) minus results and existentials.
  if (!cr.aggregates.empty()) {
    std::set<int> group;
    std::vector<std::string> needed;
    for (const Atom& h : rule.head) {
      for (const Term& t : h.args) {
        if (t.is_var() && !t.is_anonymous()) needed.push_back(t.var);
      }
    }
    for (const ExprPtr& c : cr.post_conditions) c->CollectVars(&needed);
    for (const ExistentialSpec& e : rule.existentials) {
      for (const std::string& a : e.skolem_args) needed.push_back(a);
    }
    // Post-aggregation assignments consume group values too.
    for (const auto& [slot, expr] : cr.post_assignments) {
      expr->CollectVars(&needed);
    }
    for (const std::string& v : needed) {
      if (result_vars.count(v) > 0 || existential_vars.count(v) > 0 ||
          post_targets.count(v) > 0) {
        continue;
      }
      auto it = cr.varmap.find(v);
      if (it != cr.varmap.end()) group.insert(it->second);
    }
    cr.group_slots.assign(group.begin(), group.end());
  }

  if (cr.slot_names.size() > 64) {
    return FailedPrecondition("rule uses more than 64 variables" + where);
  }
  for (const Literal& l : rule.body) {
    if (l.atom.args.size() > 60) {
      return FailedPrecondition("atom with more than 60 arguments" + where);
    }
  }
  for (const Atom& h : rule.head) {
    if (h.args.size() > 60) {
      return FailedPrecondition("atom with more than 60 arguments" + where);
    }
  }

  compiled.push_back(std::move(cr));
  return OkStatus();
}

Status Engine::Impl::InsertShared(const std::string& pred, Tuple t) {
  if (emit_override) {
    emit_override(pred, std::move(t));
    return OkStatus();
  }
  Relation& rel = db->GetOrCreate(pred, t.size());
  if (rel.Insert(t)) {
    ++stats->facts_derived;
    if (db->TotalFacts() > options.max_facts) {
      return ResourceExhausted(
          "fact budget exceeded (" + std::to_string(options.max_facts) +
          "); the chase may not terminate on this program");
    }
    if (recursive_preds != nullptr && next_delta != nullptr &&
        recursive_preds->count(pred) > 0) {
      auto it = next_delta->find(pred);
      if (it == next_delta->end()) {
        it = next_delta->emplace(pred, Relation(t.size())).first;
      }
      it->second.Insert(std::move(t));
    }
  }
  return OkStatus();
}

Status Engine::Impl::InsertFact(EvalContext& ctx, const std::string& pred,
                                Tuple t) {
  if (ctx.replay) {
    // Barrier chase: record the fact for the ordered replay at the
    // barrier.  `pred` refers into the compiled rule, so the pointer stays
    // valid for the replay.  The budget counts recorded emissions (an
    // overestimate when a barrier derives the same fact twice) so a
    // runaway chase fails inside the barrier, not only at the replay.
    ReplayOp op;
    op.pred = &pred;
    op.tuple = std::move(t);
    ctx.replay_ops.push_back(std::move(op));
    size_t staged = staged_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ctx.budget_base + staged > options.max_facts) {
      return ResourceExhausted(
          "fact budget exceeded (" + std::to_string(options.max_facts) +
          "); the chase may not terminate on this program");
    }
    return OkStatus();
  }
  if (!ctx.staged) return InsertShared(pred, std::move(t));
  // Parallel work item: dedup-on-insert into the relation's shards.  Every
  // head predicate is pre-created in Run, so the map lookup is read-only
  // and safe under concurrency.
  Relation* rel = db->GetMutable(pred);
  KGM_CHECK(rel != nullptr);
  StageTag tag{ctx.item_index, ctx.insert_seq++};
  if (rel->StageInsert(tag, std::move(t))) {
    size_t staged = staged_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ctx.budget_base + staged > options.max_facts) {
      return ResourceExhausted(
          "fact budget exceeded (" + std::to_string(options.max_facts) +
          "); the chase may not terminate on this program");
    }
  }
  return OkStatus();
}

Status Engine::Impl::Run(FactDb* target) {
  db = target;
  checkpoints_armed =
      options.cancel != nullptr ||
      options.deadline != std::chrono::steady_clock::time_point{};
  // Materialize program facts and pre-create relations.
  for (const FactDecl& f : engine->program_.facts) {
    Relation& rel = db->GetOrCreate(f.predicate, f.values.size());
    rel.Insert(Tuple(f.values.begin(), f.values.end()));
  }
  for (const auto& [pred, n] : arity) {
    const Relation* existing = db->Get(pred);
    if (existing != nullptr && existing->arity() != n) {
      return FailedPrecondition("database relation " + pred + " has arity " +
                                std::to_string(existing->arity()) +
                                " but the program expects " +
                                std::to_string(n));
    }
    db->GetOrCreate(pred, n);
  }

  // Decide the evaluation mode.  Skolem-mode programs (and restricted ones
  // without existentials) use the staged-insert parallel path when more
  // than one thread is requested.  Restricted-chase programs with
  // existentials run the deterministic barrier chase at every thread count
  // (including one): head-satisfaction screens evaluate against the frozen
  // pre-barrier database and the driver re-checks candidates and mints
  // nulls in ascending (item, seq) order, so null ids are a pure function
  // of the program and input, independent of the worker count.
  bool has_existentials = false;
  for (const CompiledRule& cr : compiled) {
    if (!cr.existentials.empty()) has_existentials = true;
  }
  barrier_chase =
      options.chase_mode == ChaseMode::kRestricted && has_existentials;
  bool legacy_active = barrier_chase && options.legacy_sequential_chase;
  size_t requested = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                              : options.num_threads;
  stats->requested_threads = requested;
  num_workers = requested;
  if (legacy_active) {
    // Opt-in baseline: the pre-barrier eager chase — live head checks and
    // inline minting on a single thread.  Same output as the barrier
    // protocol; kept for benchmarking and differential tests.
    barrier_chase = false;
    num_workers = 1;
    stats->sequential_fallback = requested > 1;
  }
  if (num_workers > 1) pool = std::make_unique<ThreadPool>(num_workers);
  stats->threads_used = num_workers;
  // Cost-based join planning; the legacy eager chase keeps its historical
  // written-order evaluation (it exists as an exact in-binary baseline).
  if (options.plan_mode == PlanMode::kGreedy && !legacy_active) {
    BuildPlanner();
  }
  if (pool != nullptr && !barrier_chase) {
    // Spread the dedup tables over enough shards that concurrent StageInsert
    // calls rarely collide on a lock.  Barrier-chase runs skip resharding:
    // every insert happens on the driver during the ordered replay.
    size_t shards = options.num_shards != 0
                        ? options.num_shards
                        : std::min<size_t>(num_workers * 4, 64);
    size_t pow2 = 1;
    while (pow2 < shards) pow2 <<= 1;
    db->ReshardAll(pow2);
    stats->shard_count = pow2;
  }

  // Group rules by stratum.
  std::map<int, std::vector<CompiledRule*>> by_stratum;
  for (CompiledRule& cr : compiled) {
    by_stratum[cr.stratum].push_back(&cr);
  }
  stats->strata = static_cast<int>(by_stratum.size());
  for (auto& [stratum, rules] : by_stratum) {
    if (stratum_filter != nullptr && stratum_filter->count(stratum) == 0) {
      continue;
    }
    auto t0 = std::chrono::steady_clock::now();
    Status status = EvalStratum(stratum, rules);
    stats->stratum_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    stats->nulls_minted = nulls.count();
    KGM_RETURN_IF_ERROR(status);
  }
  if (pool != nullptr) {
    std::vector<ShardCounters> by_shard;
    ShardCounters total;
    db->ForEachRelation([&](const std::string&, Relation& rel) {
      rel.AccumulateShardCounters(&by_shard, &total);
    });
    stats->staged_inserts = total.accepted;
    stats->staged_duplicates = total.duplicates;
    stats->shard_contentions = total.contentions;
    stats->inserts_by_shard.resize(by_shard.size());
    for (size_t i = 0; i < by_shard.size(); ++i) {
      stats->inserts_by_shard[i] = by_shard[i].accepted;
    }
  }
  if (planner != nullptr) {
    stats->planner_enabled = true;
    stats->plans_built = planner->plans_built();
    stats->plans_reordered = planner->plans_reordered();
    stats->plan_cache_hits = planner->cache_hits();
    stats->plan_replans = planner->replans();
    stats->rule_plans = planner->Snapshot();
    for (const PlanSnapshot& ps : stats->rule_plans) {
      stats->est_probes_saved +=
          (ps.plan.est_probes_written - ps.plan.est_probes) *
          static_cast<double>(ps.uses);
    }
  }
  return OkStatus();
}

void Engine::Impl::BuildPlanner() {
  std::vector<RuleDesc> descs;
  descs.reserve(compiled.size());
  for (const CompiledRule& cr : compiled) {
    RuleDesc d;
    d.rule_index = cr.index;
    for (const CompiledLiteral& lit : cr.positives) {
      PlanLiteral pl;
      pl.pred = lit.pred;
      pl.args.reserve(lit.args.size());
      for (const ArgSlot& a : lit.args) {
        pl.args.push_back(PlanArg{a.is_const, a.slot});
      }
      d.positives.push_back(std::move(pl));
    }
    for (const CompiledLiteral& h : cr.head) d.head_preds.push_back(h.pred);
    // Reordering is admissible when the collect-and-flush restoration
    // applies cleanly: at least two positive literals (else there is
    // nothing to reorder), no aggregates (their fold order is the firing
    // order, which restoration preserves, but deferring every contribution
    // through the collect buffer buys nothing — and stratified finalize
    // interleaves with the join), and not a restricted-chase existential
    // rule (the barrier protocol's frozen screen + ordered replay is
    // conservative about firing order; Skolem-mode existentials are fine —
    // their terms are content-addressed).  Ineligible rules still get
    // order-neutral index-vs-scan selection on the written order.
    d.reorderable =
        cr.positives.size() >= 2 && cr.aggregates.empty() &&
        !(options.chase_mode == ChaseMode::kRestricted &&
          !cr.existentials.empty());
    descs.push_back(std::move(d));
  }
  planner = std::make_unique<JoinPlanner>(PlanMode::kGreedy, std::move(descs));
}

Status Engine::Impl::EvalStratum(int stratum,
                                 const std::vector<CompiledRule*>& rules) {
  // The barrier chase always uses the parallel driver — with pool == null
  // its work items run inline, keeping the frozen-iteration semantics (and
  // hence minted null ids) identical at every thread count.  Plan mode does
  // NOT change the driver: bit-identity to plan-off is a per-thread-count
  // contract, so greedy single-threaded runs use the same live sequential
  // driver plan-off uses (with the live plan regimes, which never reorder
  // self-feeding calls), and pooled runs plan the frozen regimes.
  return (pool != nullptr || barrier_chase)
             ? EvalStratumParallel(stratum, rules)
             : EvalStratumSequential(stratum, rules);
}

Status Engine::Impl::EvalStratumSequential(
    int stratum, const std::vector<CompiledRule*>& rules) {
  // Predicates recursive in this stratum.
  std::set<std::string> rec_preds;
  for (CompiledRule* cr : rules) {
    for (const CompiledLiteral& l : cr->positives) {
      if (l.recursive) rec_preds.insert(l.pred);
    }
  }
  std::map<std::string, Relation> delta_a, delta_b;
  recursive_preds = &rec_preds;
  next_delta = &delta_a;
  cur_delta = nullptr;

  EvalContext ctx;

  // Phase A: every rule once, full mode.  Live plan regimes: head facts are
  // inserted mid-call, so kFullLive never reorders a rule that reads its
  // own head predicate (the planner keeps such calls in written order —
  // cascaded firings discovered through live index growth stay identical
  // to plan-off), and reordered rules restore written-order emission via
  // collect-and-flush in EvalRule.
  for (CompiledRule* cr : rules) {
    KGM_RETURN_IF_ERROR(Checkpoint());
    ctx.plan = planner != nullptr
                   ? planner->PlanFor(cr->index, PlanRegime::kFullLive,
                                      /*delta_literal=*/-1, *db, nullptr)
                   : nullptr;
    Status status = EvalRule(ctx, *cr, /*delta_literal=*/-1);
    FlushCtxStats(ctx, *cr);
    KGM_RETURN_IF_ERROR(status);
  }

  // Phase B: semi-naive fixpoint over recursive rules.
  std::vector<CompiledRule*> rec_rules;
  for (CompiledRule* cr : rules) {
    bool has_rec_literal = false;
    for (const CompiledLiteral& l : cr->positives) {
      if (l.recursive) has_rec_literal = true;
    }
    if (has_rec_literal) rec_rules.push_back(cr);
  }
  size_t iterations = 0;
  while (!next_delta->empty()) {
    if (++iterations > options.max_iterations) {
      return ResourceExhausted("iteration budget exceeded in stratum " +
                               std::to_string(stratum));
    }
    KGM_RETURN_IF_ERROR(Checkpoint());
    ++stats->iterations;
    // Swap deltas.
    cur_delta = next_delta;
    next_delta = (cur_delta == &delta_a) ? &delta_b : &delta_a;
    next_delta->clear();
    for (CompiledRule* cr : rec_rules) {
      for (size_t li = 0; li < cr->positives.size(); ++li) {
        if (!cr->positives[li].recursive) continue;
        // kDeltaScanLive: the delta literal enumerates an immutable
        // snapshot, so it carries no pin and may move; only live-read
        // head-predicate literals force written order.
        ctx.plan = nullptr;
        if (planner != nullptr) {
          auto dit = cur_delta->find(cr->positives[li].pred);
          if (dit != cur_delta->end()) {
            ctx.plan =
                planner->PlanFor(cr->index, PlanRegime::kDeltaScanLive,
                                 static_cast<int>(li), *db, &dit->second);
          }
        }
        Status status = EvalRule(ctx, *cr, static_cast<int>(li));
        FlushCtxStats(ctx, *cr);
        KGM_RETURN_IF_ERROR(status);
      }
    }
    cur_delta = nullptr;
  }
  recursive_preds = nullptr;
  next_delta = nullptr;
  return OkStatus();
}

// --- parallel driver ---------------------------------------------------------

void Engine::Impl::FlushCtxStats(EvalContext& ctx, const CompiledRule& cr) {
  stats->rule_firings += ctx.firings;
  stats->join_probes += ctx.probes;
  stats->rule_firings_by_rule[cr.index] += ctx.firings;
  stats->rule_probes_by_rule[cr.index] += ctx.probes;
  stats->chase_candidates += ctx.chase_candidates;
  stats->chase_screened += ctx.chase_screened;
  stats->chase_deduped += ctx.chase_deduped;
  ctx.firings = 0;
  ctx.probes = 0;
  ctx.chase_candidates = 0;
  ctx.chase_screened = 0;
  ctx.chase_deduped = 0;
}

// Greedy batching in program order: a rule joins the current batch unless
// it reads a predicate some batch member writes.  Within a batch no rule
// observes another's output — exactly the sequential semantics, since
// earlier rules never see later rules' facts and staged evaluation hides
// same-batch outputs.  Head relations also keep their sequential row
// order: staged inserts (and monotonic-aggregate emissions) drain in
// work-item order.  The one exception is a stratified-aggregate rule,
// whose groups are emitted in a second round after the batch's drain — so
// such a rule must not share a head predicate with any other batch member.
std::vector<std::vector<CompiledRule*>> Engine::Impl::IndependentBatches(
    const std::vector<CompiledRule*>& rules) const {
  std::vector<std::vector<CompiledRule*>> out;
  std::vector<CompiledRule*> current;
  std::set<std::string> current_writes;
  std::set<std::string> current_strat_writes;
  for (CompiledRule* cr : rules) {
    bool stratified = !cr->aggregates.empty() && !AllMonotonic(*cr);
    bool conflict = false;
    for (const CompiledLiteral& l : cr->positives) {
      if (current_writes.count(l.pred) > 0) conflict = true;
    }
    for (const CompiledLiteral& l : cr->negatives) {
      if (current_writes.count(l.pred) > 0) conflict = true;
    }
    for (const CompiledLiteral& h : cr->head) {
      if (current_strat_writes.count(h.pred) > 0) conflict = true;
      if (stratified && current_writes.count(h.pred) > 0) conflict = true;
    }
    if (conflict && !current.empty()) {
      out.push_back(std::move(current));
      current.clear();
      current_writes.clear();
      current_strat_writes.clear();
    }
    current.push_back(cr);
    for (const CompiledLiteral& h : cr->head) {
      current_writes.insert(h.pred);
      if (stratified) current_strat_writes.insert(h.pred);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

void Engine::Impl::PrepareJoinIndexes(CompiledRule& cr, const JoinPlan* plan) {
  auto prepare = [this](CompiledLiteral& lit) {
    lit.rel = db->GetMutable(lit.pred);
    if (lit.rel == nullptr) return;
    size_t n = lit.args.size();
    if (lit.static_mask == 0 || FullyBoundMask(lit.static_mask, n)) return;
    lit.rel->EnsureIndex(lit.static_mask);
  };
  if (plan != nullptr) {
    // Planned evaluation: resolve every positive's relation but build only
    // the masks the plan will actually probe (a literal planned as a scan
    // needs no index).  A plan-mode Join that misses an index anyway —
    // e.g. a regime mismatch — degrades to a filtered scan via
    // TryLookupBuilt rather than mutating shared state.
    for (CompiledLiteral& lit : cr.positives) {
      lit.rel = db->GetMutable(lit.pred);
    }
    for (const PlannedLiteral& pl : plan->order) {
      CompiledLiteral& lit = cr.positives[pl.literal];
      if (lit.rel == nullptr || !pl.use_index) continue;
      if (pl.mask == 0 || FullyBoundMask(pl.mask, lit.args.size())) continue;
      lit.rel->EnsureIndex(pl.mask);
    }
  } else {
    for (CompiledLiteral& lit : cr.positives) prepare(lit);
  }
  for (CompiledLiteral& lit : cr.negatives) prepare(lit);
  // Barrier chase: pre-build the head-satisfaction probe indexes so the
  // frozen screen in the workers is read-only (if a mask is missing
  // anyway, HeadSatisfied degrades to a masked scan rather than mutating
  // shared state), and re-resolve the cached head relations — Relation
  // addresses are stable (node-based map) but a predicate minted for the
  // first time last barrier only appears now.
  if (!cr.head_check_masks.empty()) {
    cr.head_rels.assign(cr.head.size(), nullptr);
    for (size_t i = 0; i < cr.head.size(); ++i) {
      Relation* rel = db->GetMutable(cr.head[i].pred);
      cr.head_rels[i] = rel;
      uint64_t mask = cr.head_check_masks[i];
      size_t n = cr.head[i].args.size();
      if (!barrier_chase || mask == 0 || FullyBoundMask(mask, n)) continue;
      if (rel != nullptr) rel->EnsureIndex(mask);
    }
  }
}

size_t Engine::Impl::PartitionCount(size_t rows) const {
  // Small deltas are not worth splitting; large ones are over-partitioned
  // a little so a slow chunk cannot straggle the whole iteration.
  constexpr size_t kMinChunkRows = 64;
  if (rows == 0) return 1;
  size_t parts = std::min(num_workers,
                          (rows + kMinChunkRows - 1) / kMinChunkRows);
  return std::max<size_t>(parts, 1);
}

Status Engine::Impl::RunItems(std::deque<WorkItem>& items) {
  staged_total_.store(0, std::memory_order_relaxed);
  if (barrier_chase) {
    // Stale entries would still be output-neutral (their signatures are
    // satisfied in the live database by now, so the frozen screen would
    // drop the copies anyway), but clearing per barrier keeps the maps
    // bounded and the tag comparisons meaningful.
    for (ChaseSeenShard& shard : chase_seen_shared) shard.map.clear();
  }
  size_t budget_base = db->TotalFacts();
  uint32_t index = 0;
  auto run_item = [this](WorkItem& item) {
    item.status = item.body != nullptr
                      ? item.body(item.ctx)
                      : EvalRule(item.ctx, *item.rule, item.delta_literal);
  };
  for (WorkItem& item : items) {
    item.ctx.staged = !barrier_chase;
    item.ctx.replay = barrier_chase;
    item.ctx.frozen_db = true;
    item.ctx.budget_base = budget_base;
    item.ctx.item_index = index++;
    item.ctx.chase_dedup_enabled = chase_dedup_hint;
  }
  size_t screened0 = stats->chase_screened;
  size_t deduped0 = stats->chase_deduped;
  size_t candidates0 = stats->chase_candidates;
  size_t recheck_drops0 = stats->chase_recheck_drops;
  auto eval_start = std::chrono::steady_clock::now();
  if (pool != nullptr) {
    for (WorkItem& item : items) {
      pool->Submit([&run_item, &item] { run_item(item); });
    }
    pool->WaitIdle();
  } else {
    // Single-threaded barrier chase: same frozen-iteration semantics,
    // items run inline in submission order.
    for (WorkItem& item : items) run_item(item);
  }
  stats->eval_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    eval_start)
          .count();
  Status first_error = OkStatus();
  for (WorkItem& item : items) {
    if (item.rule != nullptr) FlushCtxStats(item.ctx, *item.rule);
    if (first_error.ok() && !item.status.ok()) first_error = item.status;
  }
  if (first_error.ok()) {
    // Monotonic-aggregate contributions fold at the barrier in work-item
    // order; the emissions are staged (or recorded) under the folding
    // item's tag, so the drain interleaves them exactly where the
    // sequential evaluation would have inserted them.
    first_error = FoldItemContributions(items);
  }
  if (!first_error.ok()) {
    db->ForEachRelation(
        [](const std::string&, Relation& rel) { rel.DiscardStaged(); });
    return first_error;
  }
  Status drained =
      barrier_chase ? ReplayOrderedOps(items) : DrainStagedInserts();
  if (barrier_chase && drained.ok()) {
    // Adapt the worker-side dedup to the program, in both directions:
    // when few of this barrier's firings were wasted (dropped as
    // duplicates, screened, or re-check-dropped), the next barrier skips
    // the per-firing signature probe and lets the frozen screen / barrier
    // re-check absorb the rare repeats; when waste is high — including
    // after dedup was switched off, where duplicates surface as screens
    // and re-check drops instead — it switches back on.  Measured after
    // the replay so same-barrier duplicates count as waste either way.
    // Output-neutral by construction (see EmitHead), so the policy is
    // free to depend on partition- or thread-count-specific counters.
    size_t fired = (stats->chase_screened - screened0) +
                   (stats->chase_deduped - deduped0) +
                   (stats->chase_candidates - candidates0);
    size_t wasted = (stats->chase_screened - screened0) +
                    (stats->chase_deduped - deduped0) +
                    (stats->chase_recheck_drops - recheck_drops0);
    if (fired >= 4096) chase_dedup_hint = wasted * 4 >= fired;
  }
  return drained;
}

Status Engine::Impl::ReplayOrderedOps(std::deque<WorkItem>& items) {
  auto t0 = std::chrono::steady_clock::now();
  // Replay in ascending (item, seq) order: item creation order is rule /
  // partition order, with partitions covering ascending ranges, so the
  // concatenated op sequence is independent of how many partitions (and
  // threads) the iteration used.  Candidates re-check against the live
  // database, so a head satisfied by a tuple minted earlier in the same
  // barrier drops instead of minting a redundant null.
  EvalContext scratch;
  Status status = OkStatus();
  size_t tick = 0;
  for (WorkItem& item : items) {
    for (ReplayOp& op : item.ctx.replay_ops) {
      // Replays can insert millions of rows between barriers; poll the
      // deadline/cancel flag like the join loops do.
      if (checkpoints_armed && (++tick & 0x3FFF) == 0) {
        status = Checkpoint();
        if (!status.ok()) break;
      }
      if (op.kind == ReplayOp::Kind::kFact) {
        status = InsertShared(*op.pred, std::move(op.tuple));
      } else {
        CompiledRule& cr = *item.rule;
        scratch.rule = &cr;
        scratch.slots = std::move(op.slots);
        scratch.bound = std::move(op.bound);
        ++stats->chase_rechecks;
        if (HeadSatisfied(scratch, cr)) {
          ++stats->chase_recheck_drops;
          continue;
        }
        status = MintAndEmitHead(scratch, cr);
      }
      if (!status.ok()) break;
    }
    item.ctx.replay_ops.clear();
    if (!status.ok()) break;
  }
  stats->chase_replay_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return status;
}

Status Engine::Impl::FoldItemContributions(std::deque<WorkItem>& items) {
  auto t0 = std::chrono::steady_clock::now();
  EvalContext scratch;
  scratch.staged = !barrier_chase;
  scratch.replay = barrier_chase;
  scratch.frozen_db = true;
  size_t tick = 0;
  for (WorkItem& item : items) {
    if (item.ctx.contributions.empty()) continue;
    CompiledRule& cr = *item.rule;
    // Stratified contributions are folded by FoldAndEmitStratified after
    // the whole batch has drained.
    if (!AllMonotonic(cr)) continue;
    scratch.rule = &cr;
    scratch.slots.assign(cr.slot_names.size(), Value());
    scratch.bound.assign(cr.slot_names.size(), 0);
    scratch.item_index = item.ctx.item_index;
    scratch.insert_seq = item.ctx.insert_seq;
    scratch.budget_base = item.ctx.budget_base;
    for (const PendingContribution& pc : item.ctx.contributions) {
      // Folds between barriers can run long; poll the deadline/cancel
      // flag every ~16k contributions like the join loops do.
      if (checkpoints_armed && (++tick & 0x3FFF) == 0) {
        KGM_RETURN_IF_ERROR(Checkpoint());
      }
      KGM_RETURN_IF_ERROR(FoldPending(cr, scratch, pc));
    }
    item.ctx.contributions.clear();
    if (barrier_chase && !scratch.replay_ops.empty()) {
      // Splice the fold's emissions into the owning item's log so the
      // barrier replay interleaves them exactly where the staged drain
      // would have placed them.
      std::move(scratch.replay_ops.begin(), scratch.replay_ops.end(),
                std::back_inserter(item.ctx.replay_ops));
      scratch.replay_ops.clear();
    }
  }
  stats->agg_finalize_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return OkStatus();
}

Status Engine::Impl::DrainStagedInserts() {
  auto t0 = std::chrono::steady_clock::now();
  // Snapshot the dirty relations first: the relation map must not change
  // while the per-relation drains run on the pool.
  struct Dirty {
    const std::string* pred;
    Relation* rel;
    size_t before;
    size_t added = 0;
  };
  std::vector<Dirty> dirty;
  db->ForEachRelation([&](const std::string& pred, Relation& rel) {
    if (rel.StagedCount() > 0) {
      dirty.push_back(Dirty{&pred, &rel, rel.size()});
    }
  });
  // Phase 1 — sort/dedup/hash, one pool task per dirty (relation, shard):
  // a stratum dominated by a single huge relation still spreads its drain
  // work (the hashing dominates) across the pool.
  std::vector<std::pair<Relation*, size_t>> prep;
  for (Dirty& d : dirty) {
    for (size_t s = 0; s < d.rel->shard_count(); ++s) {
      if (d.rel->StagedCountShard(s) > 0) prep.emplace_back(d.rel, s);
    }
  }
  if (pool != nullptr && prep.size() > 1) {
    pool->ParallelFor(prep.size(), [&prep](size_t i) {
      prep[i].first->PrepareStagedShard(prep[i].second);
    });
  } else {
    for (auto& [rel, s] : prep) rel->PrepareStagedShard(s);
  }
  // Phase 2 — tag-ordered merge-append, parallel across relations (the
  // append order within a relation is inherently sequential).
  if (pool != nullptr && dirty.size() > 1) {
    pool->ParallelFor(dirty.size(), [&dirty](size_t i) {
      dirty[i].added = dirty[i].rel->DrainPrepared();
    });
  } else {
    for (Dirty& d : dirty) d.added = d.rel->DrainPrepared();
  }
  for (Dirty& d : dirty) {
    stats->facts_derived += d.added;
    if (recursive_preds == nullptr || next_delta == nullptr ||
        recursive_preds->count(*d.pred) == 0) {
      continue;
    }
    // Mirror the fresh canonical rows into the next-iteration delta.
    auto it = next_delta->find(*d.pred);
    if (it == next_delta->end()) {
      it = next_delta->emplace(*d.pred, Relation(d.rel->arity())).first;
    }
    for (size_t row = d.before; row < d.rel->size(); ++row) {
      it->second.Insert(d.rel->tuple(row));
    }
  }
  stats->merge_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (db->TotalFacts() > options.max_facts) {
    return ResourceExhausted(
        "fact budget exceeded (" + std::to_string(options.max_facts) +
        "); the chase may not terminate on this program");
  }
  return OkStatus();
}

Status Engine::Impl::FoldAndEmitStratified(CompiledRule& cr,
                                           std::deque<WorkItem>& items) {
  auto t0 = std::chrono::steady_clock::now();
  // Fold in work-item order: the rule's items cover ascending scan ranges
  // of its first body literal, so this replays exactly the sequential
  // contribution order (float sums are bit-identical).
  std::unordered_map<Tuple, GroupState, TupleHashFn> groups;
  std::vector<Tuple> order;
  size_t tick = 0;
  for (WorkItem& item : items) {
    if (item.rule != &cr || item.ctx.contributions.empty()) continue;
    for (const PendingContribution& pc : item.ctx.contributions) {
      // Stratified folds can dominate a barrier (one contribution per
      // firing); keep them cancellable like the join loops.
      if (checkpoints_armed && (++tick & 0x3FFF) == 0) {
        KGM_RETURN_IF_ERROR(Checkpoint());
      }
      auto [it, inserted] = groups.try_emplace(pc.group_key);
      GroupState& state = it->second;
      if (inserted) {
        state.acc.resize(cr.aggregates.size());
        state.has_value.resize(cr.aggregates.size(), false);
        state.packed.resize(cr.aggregates.size());
        state.seen.resize(cr.aggregates.size());
        order.push_back(pc.group_key);
      }
      bool any_update = false;
      for (size_t ai = 0; ai < cr.aggregates.size(); ++ai) {
        KGM_RETURN_IF_ERROR(ApplyContribution(cr, cr.aggregates[ai], state,
                                              ai, pc.per_agg[ai],
                                              &any_update));
      }
    }
    item.ctx.contributions.clear();
  }
  stats->agg_finalize_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (order.empty()) return OkStatus();
  // Emit the groups in first-seen order, partitioned across the pool.
  // Staged inserts keep each head relation's row order identical to the
  // sequential finalize loop.
  size_t parts = PartitionCount(order.size());
  size_t chunk = (order.size() + parts - 1) / parts;
  std::deque<WorkItem> emit;
  for (size_t p = 0; p < parts; ++p) {
    size_t begin = p * chunk;
    if (begin >= order.size()) break;
    size_t end = std::min(order.size(), begin + chunk);
    WorkItem& item = emit.emplace_back();
    item.rule = &cr;
    item.body = [this, &cr, &groups, &order, begin, end](
                    EvalContext& ctx) -> Status {
      ctx.rule = &cr;
      ctx.slots.assign(cr.slot_names.size(), Value());
      for (size_t g = begin; g < end; ++g) {
        if (checkpoints_armed && (++ctx.checkpoint_tick & 0x3FFF) == 0) {
          KGM_RETURN_IF_ERROR(Checkpoint());
        }
        ctx.bound.assign(cr.slot_names.size(), 0);
        auto it = groups.find(order[g]);
        KGM_CHECK(it != groups.end());
        KGM_RETURN_IF_ERROR(
            EmitWithAggregates(ctx, cr, order[g], it->second));
      }
      return OkStatus();
    };
  }
  return RunItems(emit);
}

// Folds one recorded firing into the rule's monotonic group state and
// re-emits the head when an accumulator improves — the deferred twin of
// ProcessAggregates' monotonic path.
Status Engine::Impl::FoldPending(CompiledRule& cr, EvalContext& scratch,
                                 const PendingContribution& pc) {
  auto [it, inserted] = cr.mono_groups.try_emplace(pc.group_key);
  GroupState& state = it->second;
  if (inserted) {
    state.acc.resize(cr.aggregates.size());
    state.has_value.resize(cr.aggregates.size(), false);
    state.packed.resize(cr.aggregates.size());
    state.seen.resize(cr.aggregates.size());
  }
  bool any_update = false;
  for (size_t ai = 0; ai < cr.aggregates.size(); ++ai) {
    KGM_RETURN_IF_ERROR(ApplyContribution(cr, cr.aggregates[ai], state, ai,
                                          pc.per_agg[ai], &any_update));
  }
  if (!any_update && !inserted) return OkStatus();
  scratch.bound.assign(cr.slot_names.size(), 0);
  return EmitWithAggregates(scratch, cr, pc.group_key, state);
}

Status Engine::Impl::EvalStratumParallel(
    int stratum, const std::vector<CompiledRule*>& rules) {
  std::set<std::string> rec_preds;
  for (CompiledRule* cr : rules) {
    for (const CompiledLiteral& l : cr->positives) {
      if (l.recursive) rec_preds.insert(l.pred);
    }
  }
  std::map<std::string, Relation> delta_a, delta_b;
  recursive_preds = &rec_preds;
  next_delta = &delta_a;
  cur_delta = nullptr;

  // Phase A: independent-rule batches.  Each rule fans out into
  // (rule x scan partition) items: the first body literal is
  // range-restricted like a delta literal, so large scans split across the
  // pool while the concatenation of the partitions preserves the
  // sequential enumeration order.
  for (std::vector<CompiledRule*>& batch : IndependentBatches(rules)) {
    KGM_RETURN_IF_ERROR(Checkpoint());
    // Plans are fetched at the barrier (PlanFor is driver-only; it may
    // refresh stale statistics) and handed to the items; kFull keeps
    // written literal 0 outermost, so the scan partitioning below — and
    // with it the cross-item emission order — is identical to plan-off.
    std::vector<const JoinPlan*> plans(batch.size(), nullptr);
    for (size_t b = 0; b < batch.size(); ++b) {
      if (planner != nullptr) {
        plans[b] = planner->PlanFor(batch[b]->index, PlanRegime::kFull,
                                    /*delta_literal=*/-1, *db, nullptr);
      }
      PrepareJoinIndexes(*batch[b], plans[b]);
    }
    std::deque<WorkItem> items;
    std::vector<CompiledRule*> stratified;
    for (size_t b = 0; b < batch.size(); ++b) {
      CompiledRule* cr = batch[b];
      bool defer = !cr->aggregates.empty();
      if (defer && !AllMonotonic(*cr)) stratified.push_back(cr);
      if (cr->positives.empty()) {
        WorkItem& item = items.emplace_back();
        item.rule = cr;
        item.delta_literal = -1;
        item.ctx.defer_aggregates = defer;
        continue;
      }
      const Relation* scan = db->Get(cr->positives[0].pred);
      size_t rows = scan == nullptr ? 0 : scan->size();
      if (rows == 0) continue;  // empty scan: the rule cannot fire
      size_t parts = PartitionCount(rows);
      size_t chunk = (rows + parts - 1) / parts;
      for (size_t p = 0; p < parts; ++p) {
        size_t begin = p * chunk;
        if (begin >= rows) break;
        WorkItem& item = items.emplace_back();
        item.rule = cr;
        item.delta_literal = -1;
        item.ctx.range_literal = 0;
        item.ctx.delta_begin = begin;
        item.ctx.delta_end = std::min(rows, begin + chunk);
        item.ctx.defer_aggregates = defer;
        item.ctx.plan = plans[b];
      }
    }
    KGM_RETURN_IF_ERROR(RunItems(items));
    for (CompiledRule* cr : stratified) {
      KGM_RETURN_IF_ERROR(FoldAndEmitStratified(*cr, items));
    }
  }

  // Phase B: semi-naive fixpoint; work items are (rule x recursive
  // literal x delta partition), all joining against the frozen database
  // and the current delta, merged at the iteration barrier.
  std::vector<std::pair<CompiledRule*, int>> rec_slots;
  for (CompiledRule* cr : rules) {
    for (size_t li = 0; li < cr->positives.size(); ++li) {
      if (cr->positives[li].recursive) {
        rec_slots.emplace_back(cr, static_cast<int>(li));
      }
    }
  }
  size_t iterations = 0;
  while (!next_delta->empty()) {
    if (++iterations > options.max_iterations) {
      recursive_preds = nullptr;
      next_delta = nullptr;
      return ResourceExhausted("iteration budget exceeded in stratum " +
                               std::to_string(stratum));
    }
    if (Status s = Checkpoint(); !s.ok()) {
      recursive_preds = nullptr;
      next_delta = nullptr;
      return s;
    }
    ++stats->iterations;
    cur_delta = next_delta;
    next_delta = (cur_delta == &delta_a) ? &delta_b : &delta_a;
    next_delta->clear();

    std::deque<WorkItem> items;
    for (auto& [cr, li] : rec_slots) {
      const CompiledLiteral& lit = cr->positives[li];
      auto dit = cur_delta->find(lit.pred);
      if (dit == cur_delta->end()) continue;
      // Plan the iteration: kDeltaScan pins the delta literal outermost
      // (its size anchors the estimate) and the delta-row partitioning
      // below stays identical to plan-off, so item boundaries — and hence
      // (item, seq) staging tags — do not depend on the plan.
      const JoinPlan* plan =
          planner != nullptr
              ? planner->PlanFor(cr->index, PlanRegime::kDeltaScan, li, *db,
                                 &dit->second)
              : nullptr;
      // Indexes on the database relations this rule probes (no-ops after
      // the first iteration: Insert maintains built indexes), and on the
      // fresh delta relation when the delta literal itself is probed.
      PrepareJoinIndexes(*cr, plan);
      size_t n = lit.args.size();
      if (plan != nullptr) {
        for (const PlannedLiteral& pl : plan->order) {
          if (pl.literal != static_cast<size_t>(li) || !pl.use_index) {
            continue;
          }
          if (pl.mask != 0 && !FullyBoundMask(pl.mask, n)) {
            dit->second.EnsureIndex(pl.mask);
          }
        }
      } else if (lit.static_mask != 0 && !FullyBoundMask(lit.static_mask, n)) {
        dit->second.EnsureIndex(lit.static_mask);
      }
      size_t rows = dit->second.size();
      size_t parts = PartitionCount(rows);
      size_t chunk = (rows + parts - 1) / parts;
      for (size_t p = 0; p < parts; ++p) {
        size_t begin = p * chunk;
        if (begin >= rows) break;
        WorkItem& item = items.emplace_back();
        item.rule = cr;
        item.delta_literal = li;
        item.ctx.delta_begin = begin;
        item.ctx.delta_end = std::min(rows, begin + chunk);
        item.ctx.defer_aggregates = !cr->aggregates.empty();
        item.ctx.plan = plan;
      }
    }
    Status status = RunItems(items);
    cur_delta = nullptr;
    if (!status.ok()) {
      recursive_preds = nullptr;
      next_delta = nullptr;
      return status;
    }
  }
  recursive_preds = nullptr;
  next_delta = nullptr;
  return OkStatus();
}

// --- rule evaluation ---------------------------------------------------------

Status Engine::Impl::EvalRule(EvalContext& ctx, CompiledRule& cr,
                              int delta_literal) {
  ctx.rule = &cr;
  ctx.slots.assign(cr.slot_names.size(), Value());
  ctx.bound.assign(cr.slot_names.size(), 0);
  // Deferred evaluation records contributions instead of grouping inline;
  // the driver folds and finalizes them at the barrier.
  bool stratified_inline =
      !cr.aggregates.empty() && !AllMonotonic(cr) && !ctx.defer_aggregates;
  if (stratified_inline) {
    ctx.eval_groups.clear();
    ctx.eval_group_order.clear();
  }
  // A reordered plan enumerates the same firing set in a different order;
  // collect the matches and flush them in written-order key order so every
  // emission happens in exactly the off-mode sequence.  Identity-order
  // plans finish inline — scan and index-bucket orders are both ascending,
  // so their enumeration already matches written order.
  bool collect = ctx.plan != nullptr && ctx.plan->reordered;
  ctx.collect = collect;
  if (collect) {
    ctx.match_rows.assign(cr.positives.size(), 0);
    ctx.collected.clear();
  }
  KGM_RETURN_IF_ERROR(Join(ctx, cr, 0, delta_literal));
  if (collect) {
    KGM_RETURN_IF_ERROR(FlushCollected(ctx, cr));
  }
  if (stratified_inline) {
    KGM_RETURN_IF_ERROR(FinalizeStratifiedAggregates(ctx, cr));
  }
  return OkStatus();
}

Status Engine::Impl::Join(EvalContext& ctx, CompiledRule& cr,
                          size_t literal_index, int delta_literal) {
  if (literal_index == cr.positives.size()) {
    if (ctx.collect) {
      // Reordered plan: defer the finish; FlushCollected restores the
      // written-order emission sequence after the join completes.
      ctx.collected.push_back(CollectedFiring{ctx.match_rows, ctx.slots,
                                              ctx.bound});
      if (ctx.collected.size() > options.max_facts) {
        return ResourceExhausted(
            "collected firings exceed the fact budget (" +
            std::to_string(options.max_facts) + ")");
      }
      return OkStatus();
    }
    return FinishBinding(ctx, cr);
  }
  // Under a plan, recursion depth d evaluates literal plan->order[d];
  // everything below keys on the ACTUAL written literal index (delta /
  // range checks, probe scratch, row bookkeeping).
  const PlannedLiteral* planned =
      ctx.plan != nullptr ? &ctx.plan->order[literal_index] : nullptr;
  const size_t actual = planned != nullptr ? planned->literal : literal_index;
  const CompiledLiteral& lit = cr.positives[actual];
  bool is_delta = static_cast<int>(actual) == delta_literal;
  // Scan-partitioned literals (Phase A) are range-restricted exactly like
  // the delta literal of a semi-naive item.
  bool is_ranged =
      is_delta || static_cast<int>(actual) == ctx.range_literal;
  Relation* source = nullptr;
  if (is_delta) {
    KGM_CHECK(cur_delta != nullptr);
    auto it = cur_delta->find(lit.pred);
    if (it == cur_delta->end()) return OkStatus();
    source = &it->second;
  } else if (ctx.frozen_db) {
    // Frozen phase: no relation can appear mid-phase, so the pointer
    // cached by PrepareJoinIndexes at the barrier is authoritative — this
    // skips a string-map lookup per recursive Join call, which profiles as
    // a top cost of delta-heavy joins.
    source = lit.rel;
    if (source == nullptr) return OkStatus();
  } else {
    source = db->GetMutable(lit.pred);
    if (source == nullptr) return OkStatus();
  }
  // Build the bound mask and probe.  The probe is per-literal scratch: the
  // recursion touches one depth per literal, and a fresh Tuple here costs
  // an allocation per outer-row visit.  Sized to the full literal count up
  // front so deeper recursion never reallocates the vector under a
  // shallower frame's reference.
  size_t n = lit.args.size();
  uint64_t mask = 0;
  if (ctx.join_probes.size() < cr.positives.size()) {
    ctx.join_probes.resize(cr.positives.size());
  }
  Tuple& probe = ctx.join_probes[actual];
  probe.clear();
  probe.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const ArgSlot& a = lit.args[i];
    if (a.is_const) {
      mask |= 1ULL << i;
      probe[i] = a.constant;
    } else if (a.slot >= 0 && ctx.bound[a.slot]) {
      mask |= 1ULL << i;
      probe[i] = ctx.slots[a.slot];
    }
  }

  // Partition filter: only the delta / scan-partitioned literal is
  // range-restricted.
  size_t range_begin = is_ranged ? ctx.delta_begin : 0;
  size_t range_end = is_ranged ? ctx.delta_end : static_cast<size_t>(-1);

  // Frozen contexts (parallel / barrier-chase work items) never mutate
  // relations mid-join, so rows bind by reference; the mutating sequential
  // path copies each row first because head emission may insert into
  // `source` itself, reallocating its tuple storage under us.
  auto try_row = [&](const Tuple& row) -> Status {
    // A single fixpoint iteration can run for minutes on a bad join order;
    // poll the deadline/cancel flag every ~16k candidate rows so such
    // iterations stay cancellable.
    if (checkpoints_armed && (++ctx.checkpoint_tick & 0x3FFF) == 0) {
      KGM_RETURN_IF_ERROR(Checkpoint());
    }
    // Bind free positions, checking intra-atom repeated variables.  The
    // bound-slot scratch is a fixed array: arity is capped at 64 by the
    // uint64_t position masks, and a heap vector here costs an allocation
    // per candidate row.
    std::array<int, 64> bound_here;
    size_t bound_count = 0;
    bool ok = true;
    for (size_t i = 0; i < n && ok; ++i) {
      const ArgSlot& a = lit.args[i];
      if (a.is_const) {
        if (!(row[i] == a.constant)) ok = false;
      } else if (a.slot < 0) {
        // anonymous: matches anything
      } else if (ctx.bound[a.slot]) {
        if (!(row[i] == ctx.slots[a.slot])) ok = false;
      } else {
        ctx.slots[a.slot] = row[i];
        ctx.bound[a.slot] = 1;
        bound_here[bound_count++] = a.slot;
      }
    }
    Status status = OkStatus();
    if (ok) status = Join(ctx, cr, literal_index + 1, delta_literal);
    for (size_t i = 0; i < bound_count; ++i) ctx.bound[bound_here[i]] = 0;
    return status;
  };

  if (FullyBoundMask(mask, n)) {
    // Fully bound: containment test (by row so the partition filter
    // applies — a fully bound delta literal must match in exactly one
    // partition, not every one).
    ++ctx.probes;
    size_t row = source->RowOf(probe);
    if (row != Relation::kNoRow && row >= range_begin && row < range_end) {
      if (ctx.collect) ctx.match_rows[actual] = static_cast<uint32_t>(row);
      return Join(ctx, cr, literal_index + 1, delta_literal);
    }
    return OkStatus();
  }
  // Index-vs-scan: the plan's per-literal choice is trusted when the
  // dynamic mask matches the planned one (it always does under a
  // regime-consistent plan); on a mismatch, default to the index.
  bool use_index =
      mask != 0 &&
      (planned == nullptr || planned->mask != mask || planned->use_index);
  if (use_index) {
    const std::vector<uint32_t>* rows_ptr;
    if (!ctx.frozen_db) {
      rows_ptr = &source->Lookup(mask, probe);
    } else if (ctx.plan != nullptr) {
      // Plan-mode frozen probes tolerate a missing index (a mask the
      // barrier did not pre-build, e.g. after a regime mismatch): fall
      // back to the filtered scan below instead of CHECK-failing or
      // mutating shared state.
      rows_ptr = source->TryLookupBuilt(mask, probe);
    } else {
      rows_ptr = &source->LookupBuilt(mask, probe);
    }
    if (rows_ptr != nullptr) {
      const std::vector<uint32_t>& rows = *rows_ptr;
      // Lookup results can grow while we iterate if the same relation
      // receives inserts from head emission; index by position
      // defensively.
      for (size_t k = 0; k < rows.size(); ++k) {
        uint32_t rowi = rows[k];
        if (rowi < range_begin || rowi >= range_end) continue;
        ++ctx.probes;
        if (!source->MatchesMasked(rowi, mask, probe)) continue;
        if (ctx.collect) ctx.match_rows[actual] = rowi;
        if (ctx.frozen_db) {
          KGM_RETURN_IF_ERROR(try_row(source->tuple(rowi)));
        } else {
          Tuple row = source->tuple(rowi);
          KGM_RETURN_IF_ERROR(try_row(row));
        }
      }
      return OkStatus();
    }
  }
  // Full or filtered scan: mask == 0, a plan that chose the scan, or a
  // missing planned index.  try_row re-validates constants and bound
  // slots, so scanning with a nonzero mask is correct, just unindexed.
  size_t scan_end = std::min(source->size(), range_end);
  for (size_t k = range_begin; k < scan_end; ++k) {
    ++ctx.probes;
    if (ctx.collect) ctx.match_rows[actual] = static_cast<uint32_t>(k);
    if (ctx.frozen_db) {
      KGM_RETURN_IF_ERROR(try_row(source->tuple(k)));
    } else {
      Tuple row = source->tuple(k);
      KGM_RETURN_IF_ERROR(try_row(row));
    }
  }
  return OkStatus();
}

Status Engine::Impl::FlushCollected(EvalContext& ctx, CompiledRule& cr) {
  ctx.collect = false;
  if (ctx.collected.empty()) return OkStatus();
  // Keys are unique (the matched rows determine the binding), so a plain
  // sort yields exactly the written-order enumeration sequence.
  std::sort(ctx.collected.begin(), ctx.collected.end(),
            [](const CollectedFiring& a, const CollectedFiring& b) {
              return a.key < b.key;
            });
  Status status = OkStatus();
  for (CollectedFiring& f : ctx.collected) {
    if (checkpoints_armed && (++ctx.checkpoint_tick & 0x3FFF) == 0) {
      status = Checkpoint();
      if (!status.ok()) break;
    }
    ctx.slots = std::move(f.slots);
    ctx.bound = std::move(f.bound);
    status = FinishBinding(ctx, cr);
    if (!status.ok()) break;
  }
  ctx.collected.clear();
  return status;
}

Status Engine::Impl::FinishBinding(EvalContext& ctx, CompiledRule& cr) {
  ++ctx.firings;
  // Negated literals: named arguments are bound (safety-validated);
  // anonymous positions act as wildcards, so the check is a masked
  // existence test.
  for (const CompiledLiteral& lit : cr.negatives) {
    size_t n = lit.args.size();
    Tuple probe(n);
    uint64_t mask = 0;
    for (size_t i = 0; i < n; ++i) {
      const ArgSlot& a = lit.args[i];
      if (a.is_const) {
        probe[i] = a.constant;
        mask |= 1ULL << i;
      } else if (a.slot >= 0) {
        KGM_CHECK(ctx.bound[a.slot]);
        probe[i] = ctx.slots[a.slot];
        mask |= 1ULL << i;
      }
    }
    Relation* rel = db->GetMutable(lit.pred);
    if (rel == nullptr) continue;  // empty relation: negation holds
    if (mask == (n < 64 ? (1ULL << n) - 1 : ~0ULL)) {
      if (rel->Contains(probe)) return OkStatus();
    } else if (mask == 0) {
      if (rel->size() > 0) return OkStatus();
    } else {
      bool found = false;
      const std::vector<uint32_t>& rows = ctx.frozen_db
                                              ? rel->LookupBuilt(mask, probe)
                                              : rel->Lookup(mask, probe);
      for (uint32_t row : rows) {
        if (rel->MatchesMasked(row, mask, probe)) {
          found = true;
          break;
        }
      }
      if (found) return OkStatus();
    }
  }
  // Assignments, in order.
  std::vector<int> bound_here;
  auto cleanup = [&]() {
    for (int s : bound_here) ctx.bound[s] = 0;
  };
  for (const auto& [slot, expr] : cr.assignments) {
    Result<Value> v = Eval(ctx, expr);
    if (!v.ok()) {
      cleanup();
      return v.status();
    }
    if (!ctx.bound[slot]) {
      ctx.slots[slot] = std::move(v).value();
      ctx.bound[slot] = 1;
      bound_here.push_back(slot);
    } else if (!(ctx.slots[slot] == v.value())) {
      cleanup();
      return OkStatus();  // equality constraint failed
    }
  }
  // Pre-aggregation conditions.
  for (const ExprPtr& c : cr.pre_conditions) {
    Result<Value> v = Eval(ctx, c);
    if (!v.ok()) {
      cleanup();
      return v.status();
    }
    if (!v.value().is_bool()) {
      cleanup();
      return InvalidArgument("condition is not boolean: " + c->ToString());
    }
    if (!v.value().AsBool()) {
      cleanup();
      return OkStatus();
    }
  }

  Status status = cr.aggregates.empty() ? EmitHeadWithPostConditions(ctx, cr)
                                        : ProcessAggregates(ctx, cr);
  cleanup();
  return status;
}

// Dedups `contribution` against the group's seen-set and folds it into
// accumulator `ai`.  Shared by the inline (sequential / Phase A) and
// deferred (parallel Phase B) aggregation paths.
Status Engine::Impl::ApplyContribution(CompiledRule& cr,
                                       const CompiledAgg& agg,
                                       GroupState& state, size_t ai,
                                       const Tuple& contribution,
                                       bool* any_update) {
  (void)cr;
  if (!state.seen[ai].insert(contribution).second) {
    return OkStatus();  // duplicate
  }
  *any_update = true;
  size_t nc = agg.contributor_slots.size();
  if (agg.base_func == "count") {
    state.acc[ai] =
        Value(state.has_value[ai] ? state.acc[ai].AsInt() + 1 : int64_t{1});
    state.has_value[ai] = true;
  } else if (agg.base_func == "pack") {
    const Value& name = contribution[nc];
    state.packed[ai].emplace_back(
        name.is_string() ? name.AsString() : name.ToString(),
        contribution[nc + 1]);
    state.has_value[ai] = true;
  } else {
    const Value& v = contribution[nc];
    if (!state.has_value[ai]) {
      if (!v.is_numeric()) {
        return InvalidArgument("aggregate " + agg.base_func +
                               " over non-numeric value " + v.ToString());
      }
      state.acc[ai] = v;
      state.has_value[ai] = true;
    } else {
      KGM_ASSIGN_OR_RETURN(state.acc[ai],
                           FoldNumeric(agg.base_func, state.acc[ai], v));
    }
  }
  return OkStatus();
}

Status Engine::Impl::ProcessAggregates(EvalContext& ctx, CompiledRule& cr) {
  // Group key.
  Tuple group_key;
  group_key.reserve(cr.group_slots.size());
  for (int s : cr.group_slots) {
    KGM_CHECK(ctx.bound[s]);
    group_key.push_back(ctx.slots[s]);
  }
  bool monotonic = AllMonotonic(cr);

  if (ctx.defer_aggregates) {
    // Parallel work item: record the contribution; the driver folds it
    // into the group state at the barrier (FoldItemContributions for
    // monotonic rules, FoldAndEmitStratified for stratified ones).
    PendingContribution pc;
    pc.per_agg.reserve(cr.aggregates.size());
    for (size_t ai = 0; ai < cr.aggregates.size(); ++ai) {
      CompiledAgg& agg = cr.aggregates[ai];
      Tuple contribution;
      for (int s : agg.contributor_slots) {
        KGM_CHECK(ctx.bound[s]);
        contribution.push_back(ctx.slots[s]);
      }
      for (const ExprPtr& a : agg.args) {
        KGM_ASSIGN_OR_RETURN(Value v, Eval(ctx, a));
        contribution.push_back(std::move(v));
      }
      pc.per_agg.push_back(std::move(contribution));
    }
    if (monotonic) {
      // Skip contributions the (frozen) group state has already folded in
      // a previous iteration; the fold dedups same-barrier duplicates.
      auto git = cr.mono_groups.find(group_key);
      if (git != cr.mono_groups.end()) {
        bool all_seen = true;
        for (size_t ai = 0; ai < cr.aggregates.size(); ++ai) {
          if (git->second.seen[ai].count(pc.per_agg[ai]) == 0) {
            all_seen = false;
          }
        }
        if (all_seen) return OkStatus();
      }
    }
    pc.group_key = std::move(group_key);
    ctx.contributions.push_back(std::move(pc));
    return OkStatus();
  }

  auto& groups = monotonic ? cr.mono_groups : ctx.eval_groups;
  auto [it, inserted] = groups.try_emplace(group_key);
  GroupState& state = it->second;
  if (inserted) {
    state.acc.resize(cr.aggregates.size());
    state.has_value.resize(cr.aggregates.size(), false);
    state.packed.resize(cr.aggregates.size());
    state.seen.resize(cr.aggregates.size());
    if (!monotonic) ctx.eval_group_order.push_back(group_key);
  }

  bool any_update = false;
  for (size_t ai = 0; ai < cr.aggregates.size(); ++ai) {
    CompiledAgg& agg = cr.aggregates[ai];
    // Contribution identity: contributor values plus argument values.
    Tuple contribution;
    for (int s : agg.contributor_slots) {
      KGM_CHECK(ctx.bound[s]);
      contribution.push_back(ctx.slots[s]);
    }
    for (const ExprPtr& a : agg.args) {
      KGM_ASSIGN_OR_RETURN(Value v, Eval(ctx, a));
      contribution.push_back(std::move(v));
    }
    KGM_RETURN_IF_ERROR(
        ApplyContribution(cr, agg, state, ai, contribution, &any_update));
  }

  if (!monotonic) return OkStatus();  // finalized later
  if (!any_update && !inserted) return OkStatus();
  return EmitWithAggregates(ctx, cr, group_key, state);
}

Status Engine::Impl::EmitWithAggregates(EvalContext& ctx, CompiledRule& cr,
                                        const Tuple& group_key,
                                        const GroupState& state) {
  // Rebind the binding from the group key (the caller's binding may already
  // match, but in the finalize path slots are stale).
  std::vector<int> bound_here;
  auto cleanup = [&]() {
    for (int s : bound_here) ctx.bound[s] = 0;
  };
  for (size_t i = 0; i < cr.group_slots.size(); ++i) {
    int s = cr.group_slots[i];
    if (!ctx.bound[s]) {
      ctx.bound[s] = 1;
      bound_here.push_back(s);
    }
    ctx.slots[s] = group_key[i];
  }
  for (size_t ai = 0; ai < cr.aggregates.size(); ++ai) {
    const CompiledAgg& agg = cr.aggregates[ai];
    int s = agg.result_slot;
    if (!ctx.bound[s]) {
      ctx.bound[s] = 1;
      bound_here.push_back(s);
    }
    if (agg.base_func == "pack") {
      ctx.slots[s] = MakeRecord(state.packed[ai]);
    } else if (agg.base_func == "count" && !state.has_value[ai]) {
      ctx.slots[s] = Value(int64_t{0});
    } else {
      ctx.slots[s] = state.acc[ai];
    }
  }
  // Post-aggregation assignments (e.g. record-spread get() calls).
  for (const auto& [slot, expr] : cr.post_assignments) {
    Result<Value> v = Eval(ctx, expr);
    if (!v.ok()) {
      cleanup();
      return v.status();
    }
    if (!ctx.bound[slot]) {
      ctx.bound[slot] = 1;
      bound_here.push_back(slot);
    }
    ctx.slots[slot] = std::move(v).value();
  }
  Status status = EmitHeadWithPostConditions(ctx, cr);
  cleanup();
  return status;
}

Status Engine::Impl::FinalizeStratifiedAggregates(EvalContext& ctx,
                                                  CompiledRule& cr) {
  for (const Tuple& key : ctx.eval_group_order) {
    // Finalize loops emit one head per group and can run long between
    // barriers; poll the deadline/cancel flag like the join loops do.
    if (checkpoints_armed && (++ctx.checkpoint_tick & 0x3FFF) == 0) {
      KGM_RETURN_IF_ERROR(Checkpoint());
    }
    auto it = ctx.eval_groups.find(key);
    KGM_CHECK(it != ctx.eval_groups.end());
    // Clear all slots: only group + results are meaningful now.
    ctx.bound.assign(cr.slot_names.size(), 0);
    KGM_RETURN_IF_ERROR(EmitWithAggregates(ctx, cr, key, it->second));
  }
  ctx.eval_groups.clear();
  ctx.eval_group_order.clear();
  return OkStatus();
}

Status Engine::Impl::EmitHeadWithPostConditions(EvalContext& ctx,
                                                CompiledRule& cr) {
  for (const ExprPtr& c : cr.post_conditions) {
    KGM_ASSIGN_OR_RETURN(Value v, Eval(ctx, c));
    if (!v.is_bool()) {
      return InvalidArgument("condition is not boolean: " + c->ToString());
    }
    if (!v.AsBool()) return OkStatus();
  }
  return EmitHead(ctx, cr);
}

bool Engine::Impl::HeadSatisfied(EvalContext& ctx, CompiledRule& cr) {
  // Backtracking search for an assignment of the existential slots such
  // that every head atom is already present in the database.  With a
  // frozen context (barrier-chase workers) every probe is read-only: the
  // dynamic masks below coincide with CompiledRule::head_check_masks,
  // whose indexes PrepareJoinIndexes pre-builds; should an index be
  // missing anyway, the probe degrades to a masked scan instead of
  // building one on shared state.
  // Single-atom heads (the common case) skip the backtracking machinery:
  // one masked probe decides satisfaction, with repeated existential slots
  // within the atom checked directly on each candidate row.
  if (cr.head.size() == 1 && cr.head[0].args.size() <= 64) {
    const CompiledLiteral& h = cr.head[0];
    // Prefer the relation pointer cached at the last PrepareJoinIndexes; a
    // nullptr entry means the predicate may have been created mid-barrier
    // (first mint during replay), so re-resolve it.
    Relation* rel = cr.head_rels.size() == 1 ? cr.head_rels[0] : nullptr;
    if (rel == nullptr) rel = db->GetMutable(h.pred);
    if (rel == nullptr) return false;
    size_t n = h.args.size();
    uint64_t mask = 0;
    Tuple& probe = ctx.head_probe;
    probe.clear();
    probe.resize(n);
    // (position, slot) pairs left free for the existential witness.
    size_t free_count = 0;
    std::array<std::pair<size_t, int>, 64> free_positions;
    for (size_t i = 0; i < n; ++i) {
      const ArgSlot& a = h.args[i];
      if (a.is_const) {
        mask |= 1ULL << i;
        probe[i] = a.constant;
      } else if (ctx.bound[a.slot]) {
        mask |= 1ULL << i;
        probe[i] = ctx.slots[a.slot];
      } else {
        free_positions[free_count++] = {i, a.slot};
      }
    }
    if (free_count == 0) return rel->Contains(probe);
    auto row_ok = [&](uint32_t rowi) -> bool {
      if (mask != 0 && !rel->MatchesMasked(rowi, mask, probe)) return false;
      const Tuple& row = rel->tuple(rowi);
      // A repeated existential slot must take one value across positions.
      for (size_t i = 1; i < free_count; ++i) {
        for (size_t j = 0; j < i; ++j) {
          if (free_positions[i].second == free_positions[j].second &&
              !(row[free_positions[i].first] == row[free_positions[j].first])) {
            return false;
          }
        }
      }
      return true;
    };
    if (mask != 0) {
      const std::vector<uint32_t>* rows = nullptr;
      if (ctx.frozen_db) {
        rows = rel->TryLookupBuilt(mask, probe);
      } else {
        rows = &rel->Lookup(mask, probe);
      }
      if (rows != nullptr) {
        for (uint32_t rowi : *rows) {
          if (row_ok(rowi)) return true;
        }
        return false;
      }
    }
    for (size_t i = 0; i < rel->size(); ++i) {
      if (row_ok(static_cast<uint32_t>(i))) return true;
    }
    return false;
  }
  std::unordered_map<int, Value> assignment;
  std::function<bool(size_t)> solve = [&](size_t atom_index) -> bool {
    if (atom_index == cr.head.size()) return true;
    const CompiledLiteral& h = cr.head[atom_index];
    Relation* rel = db->GetMutable(h.pred);
    if (rel == nullptr) return false;
    size_t n = h.args.size();
    uint64_t mask = 0;
    Tuple probe(n);
    std::vector<std::pair<size_t, int>> free_positions;  // (pos, slot)
    for (size_t i = 0; i < n; ++i) {
      const ArgSlot& a = h.args[i];
      if (a.is_const) {
        mask |= 1ULL << i;
        probe[i] = a.constant;
      } else if (ctx.bound[a.slot]) {
        mask |= 1ULL << i;
        probe[i] = ctx.slots[a.slot];
      } else if (assignment.count(a.slot) > 0) {
        mask |= 1ULL << i;
        probe[i] = assignment[a.slot];
      } else {
        free_positions.emplace_back(i, a.slot);
      }
    }
    if (free_positions.empty()) {
      return rel->Contains(probe) && solve(atom_index + 1);
    }
    auto try_rows = [&](const std::vector<uint32_t>& rows) -> bool {
      for (uint32_t rowi : rows) {
        if (mask != 0 && !rel->MatchesMasked(rowi, mask, probe)) continue;
        const Tuple& row = rel->tuple(rowi);
        // Bind free positions consistently.
        std::vector<int> assigned_here;
        bool ok = true;
        for (const auto& [pos, slot] : free_positions) {
          auto it = assignment.find(slot);
          if (it != assignment.end()) {
            if (!(it->second == row[pos])) {
              ok = false;
              break;
            }
          } else {
            assignment.emplace(slot, row[pos]);
            assigned_here.push_back(slot);
          }
        }
        if (ok && solve(atom_index + 1)) return true;
        for (int s : assigned_here) assignment.erase(s);
      }
      return false;
    };
    if (mask != 0) {
      if (ctx.frozen_db) {
        const std::vector<uint32_t>* rows = rel->TryLookupBuilt(mask, probe);
        if (rows != nullptr) return try_rows(*rows);
      } else {
        return try_rows(rel->Lookup(mask, probe));
      }
    }
    std::vector<uint32_t> all(rel->size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
    return try_rows(all);
  };
  return solve(0);
}

Status Engine::Impl::EmitHead(EvalContext& ctx, CompiledRule& cr) {
  if (!cr.existentials.empty() &&
      options.chase_mode == ChaseMode::kRestricted) {
    if (ctx.replay) {
      // Dedup before anything else: both the frozen screen's verdict and
      // the barrier re-check's fate are functions of the bound-head-
      // argument signature alone (the screen reads only the frozen
      // database; a duplicate of a recorded candidate re-checks after the
      // earlier copy either minted a witness for exactly this head or was
      // itself found satisfied), so a repeated signature within this work
      // item can only ever drop.  Dense chases fire the same head many
      // times per barrier — one hash probe here replaces a screen (and
      // possibly a recorded op plus a replay re-check) per repeat, without
      // changing the surviving-candidate order or the minted null ids.
      // Dropping a duplicate is output-neutral either way, so whether to
      // pay for the dedup set is purely a cost heuristic: RunItems turns
      // it off for later barriers when the observed duplicate rate is low,
      // and the screen / re-check absorb the (rare) repeats instead.
      if (ctx.chase_dedup_enabled) {
        // The signature carries the rule index so two rules whose heads
        // happen to bind equal values never collide in the shared map.
        Tuple& signature = ctx.sig_scratch;
        signature.clear();
        signature.push_back(Value(static_cast<int64_t>(cr.index)));
        for (const CompiledLiteral& h : cr.head) {
          for (const ArgSlot& a : h.args) {
            if (!a.is_const && a.slot >= 0 && ctx.bound[a.slot]) {
              signature.push_back(ctx.slots[a.slot]);
            }
          }
        }
        if (ctx.chase_seen.find(signature) != ctx.chase_seen.end()) {
          ++ctx.chase_deduped;
          return OkStatus();
        }
        ctx.chase_seen.insert(signature);
        // Cross-item level (multi-threaded runs only — a single worker's
        // local sets already see every firing): drop only against a
        // strictly smaller (item, seq) tag.  The minimum-tag copy of a
        // signature can never observe a smaller tag, so it is always
        // recorded no matter how the pool schedules items; any larger-tag
        // copy that records before the minimum arrives is dropped by the
        // barrier re-check.  Future copies within this item drop on the
        // local set above.
        if (pool != nullptr) {
          uint64_t tag = (static_cast<uint64_t>(ctx.item_index) << 32) |
                         (ctx.replay_ops.size() & 0xFFFFFFFFull);
          ChaseSeenShard& shard =
              chase_seen_shared[TupleHashFn{}(signature) % kChaseSeenShards];
          bool drop = false;
          {
            // try_lock: a contended shard is skipped rather than waited
            // on — the copy is recorded and the barrier re-check drops
            // it, so blocking (and on an oversubscribed host, a futex
            // sleep) would buy nothing correctness needs.
            std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
            if (lock.owns_lock()) {
              auto [it, inserted] = shard.map.try_emplace(signature, tag);
              if (!inserted) {
                if (it->second < tag) {
                  drop = true;
                } else {
                  it->second = tag;
                }
              }
            }
          }
          if (drop) {
            ++ctx.chase_deduped;
            return OkStatus();
          }
        }
      }
      // Screen against the frozen pre-barrier database.  Satisfaction is
      // monotone (facts are never retracted), so a head satisfied here
      // stays satisfied at the barrier and the firing drops immediately;
      // unsatisfied heads become candidates the driver re-checks against
      // the live database in replay order.
      if (HeadSatisfied(ctx, cr)) {
        ++ctx.chase_screened;
        return OkStatus();
      }
      ++ctx.chase_candidates;
      ReplayOp op;
      op.kind = ReplayOp::Kind::kCandidate;
      op.slots = ctx.slots;
      op.bound = ctx.bound;
      ctx.replay_ops.push_back(std::move(op));
      size_t staged =
          staged_total_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (ctx.budget_base + staged > options.max_facts) {
        return ResourceExhausted(
            "fact budget exceeded (" + std::to_string(options.max_facts) +
            "); the chase may not terminate on this program");
      }
      return OkStatus();
    }
    // Driver-side (candidate replay): live head-satisfaction check.
    if (HeadSatisfied(ctx, cr)) return OkStatus();
  }
  return MintAndEmitHead(ctx, cr);
}

// Binds the existential slots — fresh labeled nulls for restricted-chase
// automatic existentials, interned Skolem terms otherwise — and inserts
// the head atoms.  The caller has already decided the head must fire.
Status Engine::Impl::MintAndEmitHead(EvalContext& ctx, CompiledRule& cr) {
  std::vector<int> bound_here;
  auto cleanup = [&]() {
    for (int s : bound_here) ctx.bound[s] = 0;
  };
  if (!cr.existentials.empty()) {
    auto bind = [&](int slot, Value v) {
      KGM_CHECK(!ctx.bound[slot]);
      ctx.slots[slot] = std::move(v);
      ctx.bound[slot] = 1;
      bound_here.push_back(slot);
    };
    auto gather_args = [&](const ExistSlot& e) {
      std::vector<Value> args;
      args.reserve(e.arg_slots.size());
      for (int s : e.arg_slots) {
        KGM_CHECK(ctx.bound[s]);
        args.push_back(ctx.slots[s]);
      }
      return args;
    };
    // One firing's Skolem terms intern as a single ordered batch (one lock
    // acquisition) unless an existential's arguments name another
    // existential of the rule, which forces in-order interleaving.
    std::vector<std::pair<std::string, std::vector<Value>>> batch;
    std::vector<int> batch_slots;
    for (const ExistSlot& e : cr.existentials) {
      bool fresh_null =
          options.chase_mode == ChaseMode::kRestricted &&
          cr.rule->existentials[&e - cr.existentials.data()]
              .skolem_functor.empty();
      if (fresh_null) {
        bind(e.slot, nulls.Fresh());
      } else if (cr.skolem_batch_ok) {
        batch.emplace_back(e.functor, gather_args(e));
        batch_slots.push_back(e.slot);
      } else {
        bind(e.slot,
             SkolemTable::Global().Intern(e.functor, gather_args(e)));
      }
    }
    if (!batch.empty()) {
      std::vector<Value> interned = SkolemTable::Global().InternBatch(batch);
      for (size_t i = 0; i < batch_slots.size(); ++i) {
        bind(batch_slots[i], std::move(interned[i]));
      }
    }
  }
  for (const CompiledLiteral& h : cr.head) {
    Tuple t(h.args.size());
    for (size_t i = 0; i < h.args.size(); ++i) {
      const ArgSlot& a = h.args[i];
      if (a.is_const) {
        t[i] = a.constant;
      } else {
        KGM_CHECK_MSG(a.slot >= 0 && ctx.bound[a.slot],
                      (cr.slot_names[a.slot] + " unbound in head of: " +
                       cr.rule->ToString())
                          .c_str());
        t[i] = ctx.slots[a.slot];
      }
    }
    Status status = InsertFact(ctx, h.pred, std::move(t));
    if (!status.ok()) {
      cleanup();
      return status;
    }
  }
  cleanup();
  return OkStatus();
}

// --- Engine public interface --------------------------------------------------

Engine::Engine(Program program, EngineOptions options)
    : program_(std::move(program)), options_(options) {
  init_status_ = ValidateSafety(program_);
  if (!init_status_.ok()) return;
  Result<Stratification> strat = Stratify(program_);
  if (!strat.ok()) {
    init_status_ = strat.status();
    return;
  }
  strat_ = std::move(strat).value();
  // Reject rules mixing monotonic and stratified aggregates.
  for (size_t i = 0; i < program_.rules.size(); ++i) {
    const Rule& r = program_.rules[i];
    if (r.aggregates.size() < 2) continue;
    bool rec = strat_.rule_recursive[i];
    bool any_mono = false;
    bool any_strat = false;
    for (const Aggregate& a : r.aggregates) {
      bool mono = rec || IsMonotonicAggregateName(a.func);
      (mono ? any_mono : any_strat) = true;
    }
    if (any_mono && any_strat) {
      init_status_ = FailedPrecondition(
          "rule " + r.label +
          " mixes monotonic and stratified aggregates");
      return;
    }
  }
}

Status Engine::Run(FactDb* db) {
  KGM_RETURN_IF_ERROR(init_status_);
  Impl impl(this);
  KGM_RETURN_IF_ERROR(impl.CompileAll());
  return impl.Run(db);
}

Status Engine::RunStrata(FactDb* db, const std::set<int>& strata) {
  KGM_RETURN_IF_ERROR(init_status_);
  Impl impl(this);
  KGM_RETURN_IF_ERROR(impl.CompileAll());
  impl.stratum_filter = &strata;
  return impl.Run(db);
}

// --- DeltaEvaluator -----------------------------------------------------------

struct DeltaEvaluator::State {
  Engine::Impl impl;
  Status init;

  explicit State(Engine* engine) : impl(engine) {}
};

DeltaEvaluator::DeltaEvaluator(Engine* engine, FactDb* db)
    : state_(std::make_unique<State>(engine)) {
  state_->init = engine->status();
  if (state_->init.ok()) state_->init = state_->impl.CompileAll();
  // Sequential, mutating evaluation: no pool, no staging, no barrier chase.
  state_->impl.db = db;
  state_->impl.num_workers = 1;
  // Rule-at-a-time calls still benefit from planning: EvalRuleDelta joins
  // are kDeltaPrebound plans (delta variables bound up front).  The
  // database is stable during each call, so the deferred collect-and-flush
  // restoration applies exactly as in the frozen driver.
  if (state_->init.ok() &&
      engine->options_.plan_mode == PlanMode::kGreedy) {
    state_->impl.BuildPlanner();
  }
}

DeltaEvaluator::~DeltaEvaluator() = default;

const Status& DeltaEvaluator::status() const { return state_->init; }

Status DeltaEvaluator::EvalRuleDelta(size_t rule_index, size_t literal_index,
                                     std::map<std::string, Relation>& delta_rels,
                                     const EmitFn& emit) {
  KGM_RETURN_IF_ERROR(state_->init);
  Engine::Impl& impl = state_->impl;
  KGM_CHECK(rule_index < impl.compiled.size());
  CompiledRule& cr = impl.compiled[rule_index];
  KGM_CHECK(literal_index < cr.positives.size());
  const CompiledLiteral& lit = cr.positives[literal_index];
  auto it = delta_rels.find(lit.pred);
  if (it == delta_rels.end()) return OkStatus();
  const Relation& delta_rel = it->second;

  impl.cur_delta = &delta_rels;
  impl.emit_override = emit;
  // Plan once per call: the delta literal's variables are pre-bound, so a
  // kDeltaPrebound plan orders the REMAINING literals by selectivity.  The
  // database is not mutated during the call (emissions go through `emit`),
  // so per-row collect-and-flush restores the written-order emission
  // sequence exactly.
  const JoinPlan* plan =
      impl.planner != nullptr
          ? impl.planner->PlanFor(rule_index, PlanRegime::kDeltaPrebound,
                                  static_cast<int>(literal_index), *impl.db,
                                  &delta_rel)
          : nullptr;
  bool collect = plan != nullptr && plan->reordered;
  Status status = OkStatus();
  // Enumerate the delta outermost, pre-binding the delta literal's
  // variables, so Join probes the other literals through their indexes on
  // the shared variables instead of scanning an unrestricted first literal.
  // With a small delta this makes the evaluation cost proportional to the
  // delta's join partners, not to the database.  The delta literal itself
  // stays range-restricted inside Join (a fully bound containment probe);
  // anonymous positions in it are left free, which can revisit a sibling
  // delta row — emissions are idempotent for every caller, so that costs
  // duplicate work, never duplicate facts.
  for (size_t row = 0; row < delta_rel.size() && status.ok(); ++row) {
    const Tuple& t = delta_rel.tuple(row);
    EvalContext ctx;
    ctx.rule = &cr;
    ctx.slots.assign(cr.slot_names.size(), Value());
    ctx.bound.assign(cr.slot_names.size(), 0);
    ctx.plan = plan;
    ctx.collect = collect;
    if (collect) ctx.match_rows.assign(cr.positives.size(), 0);
    bool ok = true;
    for (size_t i = 0; i < lit.args.size() && ok; ++i) {
      const ArgSlot& a = lit.args[i];
      if (a.is_const) {
        ok = a.constant == t[i];
      } else if (a.slot < 0) {
        // anonymous: matches anything
      } else if (ctx.bound[a.slot]) {
        ok = ctx.slots[a.slot] == t[i];
      } else {
        ctx.slots[a.slot] = t[i];
        ctx.bound[a.slot] = 1;
      }
    }
    if (!ok) continue;
    status = impl.Join(ctx, cr, 0, static_cast<int>(literal_index));
    if (status.ok() && collect) status = impl.FlushCollected(ctx, cr);
  }
  impl.emit_override = nullptr;
  impl.cur_delta = nullptr;
  return status;
}

Status DeltaEvaluator::EvalRuleSeeded(size_t rule_index, size_t head_index,
                                      const Tuple& target, const EmitFn& emit) {
  KGM_RETURN_IF_ERROR(state_->init);
  Engine::Impl& impl = state_->impl;
  KGM_CHECK(rule_index < impl.compiled.size());
  CompiledRule& cr = impl.compiled[rule_index];
  KGM_CHECK(head_index < cr.head.size());
  const CompiledLiteral& head = cr.head[head_index];
  KGM_CHECK(target.size() == head.args.size());

  // Existential slots stay free: MintAndEmitHead re-interns their Skolem
  // terms, which are content-addressed, so a matching body reproduces the
  // original values.
  std::set<int> existential_slots;
  for (const ExistSlot& e : cr.existentials) existential_slots.insert(e.slot);

  EvalContext ctx;
  ctx.rule = &cr;
  ctx.slots.assign(cr.slot_names.size(), Value());
  ctx.bound.assign(cr.slot_names.size(), 0);
  for (size_t i = 0; i < head.args.size(); ++i) {
    const ArgSlot& a = head.args[i];
    if (a.is_const) {
      if (!(a.constant == target[i])) return OkStatus();
      continue;
    }
    if (a.slot < 0 || existential_slots.count(a.slot) > 0) continue;
    if (ctx.bound[a.slot]) {
      // Repeated head variable: the target must agree with itself.
      if (!(ctx.slots[a.slot] == target[i])) return OkStatus();
    } else {
      ctx.slots[a.slot] = target[i];
      ctx.bound[a.slot] = 1;
    }
  }
  // Join builds probe masks from the live bound-state, so the pre-bound
  // head variables restrict every literal they appear in — this is a
  // targeted derivability probe, not a full rule evaluation.
  impl.emit_override = emit;
  Status status = impl.Join(ctx, cr, 0, /*delta_literal=*/-1);
  impl.emit_override = nullptr;
  return status;
}

Status RunProgram(std::string_view source, FactDb* db,
                  EngineOptions options) {
  KGM_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  Engine engine(std::move(program), options);
  return engine.Run(db);
}

}  // namespace kgm::vadalog

