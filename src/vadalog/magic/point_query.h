// Point-query dispatcher: routes a bound-argument query to the cheapest
// admissible evaluation mode.
//
//   kEdbLookup    the query predicate has no defining rules — answer with
//                 one (indexed) relation probe, no reasoning at all;
//   kMagic        magic-sets rewrite (magic.h) + the ordinary bottom-up
//                 engine over the rewritten program;
//   kQsqr         on-demand top-down evaluation (qsqr.h), tried when the
//                 rewrite gave up (adornment explosion / rejected program)
//                 and the cone fits QSQR's fragment;
//   kMaterialize  full bottom-up evaluation, then filter the output
//                 relation by the binding — the always-correct fallback,
//                 and the differential baseline the harness compares
//                 every other mode against.
//
// All modes answer against the caller's FactDb (the serving layer passes
// a throwaway clone of the pinned epoch snapshot) and produce answer sets
// identical to `materialize then filter` — including Skolem terms, which
// the rewrite pins to the original program's functors (see
// magic::PinSkolemSpecs).

#ifndef KGM_VADALOG_MAGIC_POINT_QUERY_H_
#define KGM_VADALOG_MAGIC_POINT_QUERY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "vadalog/database.h"
#include "vadalog/engine.h"
#include "vadalog/magic/magic.h"

namespace kgm::vadalog::magic {

enum class PointQueryMode {
  kOff = 0,      // not a point query (no binding given)
  kEdbLookup,    // direct indexed lookup on an extensional predicate
  kMagic,        // magic-sets rewrite + bottom-up engine
  kQsqr,         // on-demand top-down evaluation
  kMaterialize,  // full evaluation + scan filter (fallback / baseline)
};

const char* PointQueryModeName(PointQueryMode m);

struct PointQueryOptions {
  // Engine options for whichever evaluation runs (deadline, cancel,
  // threads, chase mode, planner all honored).
  EngineOptions engine;
  RewriteOptions rewrite;
  bool allow_magic = true;
  bool allow_qsqr = true;
  // Diagnostics/benchmarks: skip straight to a specific route.
  bool force_qsqr = false;
  bool force_materialize = false;
};

struct PointQueryStats {
  PointQueryMode mode = PointQueryMode::kOff;
  FallbackReason fallback = FallbackReason::kNone;
  std::string fallback_detail;
  // Rewrite summary for explain-style output (empty unless kMagic ran or
  // was attempted).
  std::vector<AdornedPredicate> adorned;
  std::vector<std::string> full_required;
  // Engine/evaluator counters with the magic_* fields filled in; for
  // kMaterialize, join_probes additionally counts the final filter scan
  // (that's the honest materialize-then-scan cost).
  EngineStats engine;
  size_t answers = 0;
};

// Evaluates `query` over `program` against `db` (mutated: derived facts,
// memo tables and program facts land in it — pass a throwaway clone for
// isolation).  Answer tuples agree with every bound position of the
// binding; their order is deterministic for a given (program, db,
// options) but differs between modes.
Result<std::vector<Tuple>> EvalPointQuery(const Program& program,
                                          const QueryBinding& query,
                                          FactDb* db,
                                          const PointQueryOptions& options,
                                          PointQueryStats* stats);

}  // namespace kgm::vadalog::magic

#endif  // KGM_VADALOG_MAGIC_POINT_QUERY_H_
