// Magic-sets rewriting for point queries (query-driven reasoning).
//
// Serving answers bound-argument queries — "who controls company X?" —
// against a materialized snapshot by scanning the full output relation.
// The magic-sets transformation makes such queries cheap without
// materializing anything irrelevant: given a query atom with some
// arguments bound (`controls(c123, ?y)`), the rewriter
//
//   1. *adorns* predicates with a bound/free pattern per argument
//      position ("bf" for `controls(c123, ?y)`), propagating bindings
//      sideways through each rule body left to right (the SIP strategy,
//      refined with assignment/condition information),
//   2. generates a *magic* predicate per adornment whose extension is
//      the set of bindings the top-down evaluation would ask about, and
//   3. emits guarded variants of the original rules: each adorned rule
//      fires only for bindings seeded by its magic predicate.
//
// Bottom-up (semi-naive) evaluation of the rewritten program then
// touches only the query-relevant slice of the database, with the
// existing engine — parallelism, planner, deadline polls and all —
// unchanged.  Answers equal the full materialization filtered by the
// binding (the classic magic-sets theorem; the differential tests in
// tests/finkg/pointquery_differential_test.cc assert set-identity).
//
// Supported fragment and fallbacks.  Rules reachable from the query
// predicate may use positive/negated literals, conditions, assignments
// and Skolem-mode existentials.  The rewrite *falls back* — reporting a
// FallbackReason instead of a program — for aggregates (monotonic
// aggregation is not magic-preserving), for existentials under the
// restricted chase (fresh nulls are not comparable across runs), when
// the query has no bound argument, or when the adornment worklist
// explodes past RewriteOptions::max_adorned_predicates.  Negated or
// all-free intensional subgoals are handled by marking their cones
// "full-required": those predicates keep their original rules unguarded
// (complete evaluation), which preserves stratification because magic
// predicates never appear under negation.
//
// Skolem determinism.  The engine auto-Skolemizes `exists z` heads with
// a functor derived from the *rule index* (`_sk_r<N>_<var>`), and the
// rewritten program renumbers rules.  To keep answer tuples
// value-identical to the full run, the rewriter pins every included
// rule's existentials to explicit specs replicating exactly the
// functor and frontier-argument order the original program would have
// used (see PinSkolemSpecs).

#ifndef KGM_VADALOG_MAGIC_MAGIC_H_
#define KGM_VADALOG_MAGIC_MAGIC_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/value.h"
#include "vadalog/ast.h"

namespace kgm::vadalog::magic {

// A point query: an output predicate with a constant pinned at each
// bound position.  `args` has one entry per argument position; engaged
// entries are bound.
struct QueryBinding {
  std::string predicate;
  std::vector<std::optional<Value>> args;

  size_t BoundCount() const;
  // "bf..b" — one letter per position, 'b' bound, 'f' free.
  std::string Adornment() const;
  // Human-readable text form, e.g. `controls("c12",?)`, for explain and
  // log output.  NOT collision-free: Value::ToString prints doubles at
  // default ostream precision, so 1.0 renders exactly like the int 1 and
  // distinct doubles can merge.  Never use as cache-key material.
  std::string Render() const;
  // Collision-free serialization for result-cache keys: every constant
  // carries a kind tag, strings (and Skolem functors / record field
  // names) are length-prefixed, and doubles print shortest-round-trip,
  // so bindings with different answer sets never share key material
  // (1, 1.0 and "1" all key differently).  Stable across processes for
  // every kind a client binding can carry.
  std::string CacheKey() const;
  // True when `t` (of matching arity) agrees with every bound position.
  bool Matches(const std::vector<Value>& t) const;
};

// Parses a comma-separated binding list: `_` marks a free position,
// `"quoted"` a string (backslash escapes), `true`/`false` booleans,
// and numeric tokens ints/doubles; any other bare token is taken as a
// string constant.  `c12,_` -> [Value("c12"), nullopt].
Result<std::vector<std::optional<Value>>> ParseBoundArgs(
    std::string_view csv);

// Why a rewrite (or the whole point-query route) fell back to full
// materialization.
enum class FallbackReason {
  kNone = 0,
  kNoBoundArgument,         // every query position is free
  kAggregates,              // an aggregate rule is in the query's cone
  kRestrictedExistentials,  // existentials under ChaseMode::kRestricted
  kAdornmentExplosion,      // > max_adorned_predicates distinct adornments
  kRewriteRejected,         // rewritten program failed engine validation
};

const char* FallbackReasonName(FallbackReason r);

struct RewriteOptions {
  // Cap on distinct (predicate, adornment) pairs before giving up.
  size_t max_adorned_predicates = 128;
  // True when the evaluation will run under ChaseMode::kRestricted:
  // any existential in the cone then forces a fallback.
  bool restricted_chase = false;
};

// One adorned predicate, for explain output.
struct AdornedPredicate {
  std::string pred;        // original predicate
  std::string adornment;   // "bf..." pattern
  std::string magic_pred;  // its magic predicate's name
};

struct MagicRewrite {
  // kNone: `program` is valid.  Anything else: fallback; `program` is
  // untouched and `detail` says what triggered it.
  FallbackReason fallback = FallbackReason::kNone;
  std::string detail;

  Program program;            // the rewritten program
  std::string query_pred;     // adorned name of the query predicate
  std::vector<AdornedPredicate> adorned;  // worklist-order summary
  // Predicates whose cones are evaluated unguarded (negated or
  // all-free intensional occurrences).
  std::vector<std::string> full_required;
  size_t magic_rules = 0;   // magic-defining rules emitted
  size_t guarded_rules = 0; // adorned variants of original rules
  size_t copy_rules = 0;    // guarded EDB->adorned copy rules

  bool ok() const { return fallback == FallbackReason::kNone; }
};

// Rewrites `program` for the bound query `query`.  `edb_preds` is the
// extensional base: predicates present in the database, declared
// @input, or asserted via @fact (an adorned predicate with both rules
// and an extensional base gets a guarded copy rule).  Never fails hard:
// out-of-fragment programs come back with `fallback` set.
MagicRewrite RewriteForQuery(const Program& program,
                             const QueryBinding& query,
                             const std::set<std::string>& edb_preds,
                             const RewriteOptions& options = {});

// Rewrites the existential specs of `rule` (the rule at `rule_index` of
// its program) so that auto-Skolemized existentials carry the explicit
// functor and frontier-argument order the engine would synthesize for
// that index.  Skolem terms minted by the pinned rule are
// value-identical to the original's regardless of where the rule lands
// in a rewritten program.  No-op for rules without auto existentials.
void PinSkolemSpecs(Rule* rule, size_t rule_index);

// Lint support: would ANY bound binding pattern on `output_pred`
// benefit from the magic rewrite?  "Benefit" means the all-bound
// adornment propagates at least one bound argument into a recursive
// predicate's subgoals; programs where it cannot (or whose cone forces
// a fallback) always evaluate the full recursion at serve time.
struct MagicOpportunity {
  bool recursive_cone = false;  // the output depends on recursion
  bool beneficial = false;      // bindings reach a recursive predicate
  FallbackReason fallback = FallbackReason::kNone;  // cone-level fallback
  std::string detail;
};

MagicOpportunity AnalyzeMagicOpportunity(const Program& program,
                                         const std::string& output_pred,
                                         bool restricted_chase = false);

}  // namespace kgm::vadalog::magic

#endif  // KGM_VADALOG_MAGIC_MAGIC_H_
