#include "vadalog/magic/magic.h"

#include <algorithm>
#include <charconv>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "vadalog/analysis.h"

namespace kgm::vadalog::magic {

namespace {

std::string AdornmentOf(uint64_t mask, size_t arity) {
  std::string s(arity, 'f');
  for (size_t i = 0; i < arity; ++i) {
    if (mask & (1ULL << i)) s[i] = 'b';
  }
  return s;
}

// '@' cannot appear in a parsed identifier, so generated names never
// collide with user predicates (or with each other across kinds).
std::string AdornedName(const std::string& pred, const std::string& adorn) {
  return pred + "@" + adorn;
}
std::string MagicName(const std::string& pred, const std::string& adorn) {
  return "m@" + pred + "@" + adorn;
}

}  // namespace

size_t QueryBinding::BoundCount() const {
  size_t n = 0;
  for (const auto& a : args) {
    if (a.has_value()) ++n;
  }
  return n;
}

std::string QueryBinding::Adornment() const {
  std::string s(args.size(), 'f');
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].has_value()) s[i] = 'b';
  }
  return s;
}

std::string QueryBinding::Render() const {
  std::string s = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) s += ",";
    s += args[i].has_value() ? args[i]->ToString() : std::string("?");
  }
  s += ")";
  return s;
}

namespace {

// Appends a collision-free encoding of one constant: a kind letter, then
// a representation injective within the kind.  Doubles use to_chars
// (shortest round-trip form — distinct doubles never merge, unlike
// ToString's default ostream precision); strings, Skolem functors and
// record field names are length-prefixed so embedded commas, parens or
// quotes cannot imitate the surrounding structure.  The encoding is
// prefix-decodable, so equal keys imply equal bindings.
void AppendKeyValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kNull:
      out->push_back('n');
      return;
    case ValueKind::kBool:
      *out += v.AsBool() ? "b1" : "b0";
      return;
    case ValueKind::kInt:
      out->push_back('i');
      *out += std::to_string(v.AsInt());
      return;
    case ValueKind::kDouble: {
      char buf[64];
      auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v.AsDoubleExact());
      out->push_back('d');
      out->append(buf, end);
      return;
    }
    case ValueKind::kString:
      out->push_back('s');
      *out += std::to_string(v.AsString().size());
      out->push_back(':');
      *out += v.AsString();
      return;
    case ValueKind::kLabeledNull:
      out->push_back('l');
      *out += std::to_string(v.AsLabeledNull().id);
      return;
    case ValueKind::kSkolem: {
      const SkolemTable& table = SkolemTable::Global();
      const std::string& functor = table.FunctorOf(v.AsSkolem());
      out->push_back('k');
      *out += std::to_string(functor.size());
      out->push_back(':');
      *out += functor;
      out->push_back('(');
      const std::vector<Value>& args = table.ArgsOf(v.AsSkolem());
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out->push_back(',');
        AppendKeyValue(args[i], out);
      }
      out->push_back(')');
      return;
    }
    case ValueKind::kRecord:
      *out += "r{";
      for (const auto& [name, value] : *v.AsRecord()) {
        *out += std::to_string(name.size());
        out->push_back(':');
        *out += name;
        out->push_back('=');
        AppendKeyValue(value, out);
        out->push_back(',');
      }
      out->push_back('}');
      return;
  }
  out->push_back('?');
}

}  // namespace

std::string QueryBinding::CacheKey() const {
  std::string s = predicate;
  s.push_back('/');
  s += std::to_string(args.size());
  s.push_back('(');
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) s.push_back(',');
    if (args[i].has_value()) {
      AppendKeyValue(*args[i], &s);
    } else {
      s.push_back('_');
    }
  }
  s.push_back(')');
  return s;
}

bool QueryBinding::Matches(const std::vector<Value>& t) const {
  if (t.size() != args.size()) return false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].has_value() && !(t[i] == *args[i])) return false;
  }
  return true;
}

Result<std::vector<std::optional<Value>>> ParseBoundArgs(
    std::string_view csv) {
  std::vector<std::optional<Value>> out;
  if (csv.empty()) return out;
  size_t i = 0;
  const size_t n = csv.size();
  while (true) {
    while (i < n && (csv[i] == ' ' || csv[i] == '\t')) ++i;
    if (i < n && csv[i] == '"') {
      std::string s;
      ++i;
      bool closed = false;
      while (i < n) {
        char c = csv[i++];
        if (c == '\\' && i < n) {
          s.push_back(csv[i++]);
        } else if (c == '"') {
          closed = true;
          break;
        } else {
          s.push_back(c);
        }
      }
      if (!closed) {
        return InvalidArgument("unterminated quoted string in binding list");
      }
      out.emplace_back(Value(std::move(s)));
      while (i < n && (csv[i] == ' ' || csv[i] == '\t')) ++i;
      if (i == n) break;
      if (csv[i] != ',') {
        return InvalidArgument("expected ',' after quoted binding");
      }
      ++i;
      continue;
    }
    size_t start = i;
    while (i < n && csv[i] != ',') ++i;
    std::string_view tok = csv.substr(start, i - start);
    while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t')) {
      tok.remove_suffix(1);
    }
    if (tok.empty()) {
      return InvalidArgument("empty binding entry (use _ for a free position)");
    }
    if (tok == "_") {
      out.emplace_back(std::nullopt);
    } else if (tok == "true") {
      out.emplace_back(Value(true));
    } else if (tok == "false") {
      out.emplace_back(Value(false));
    } else {
      int64_t iv = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        out.emplace_back(Value(iv));
      } else {
        double dv = 0;
        auto [pd, ecd] =
            std::from_chars(tok.data(), tok.data() + tok.size(), dv);
        if (ecd == std::errc() && pd == tok.data() + tok.size()) {
          out.emplace_back(Value(dv));
        } else {
          out.emplace_back(Value(std::string(tok)));
        }
      }
    }
    if (i == n) break;
    ++i;
  }
  return out;
}

const char* FallbackReasonName(FallbackReason r) {
  switch (r) {
    case FallbackReason::kNone:
      return "none";
    case FallbackReason::kNoBoundArgument:
      return "no_bound_argument";
    case FallbackReason::kAggregates:
      return "aggregates";
    case FallbackReason::kRestrictedExistentials:
      return "restricted_existentials";
    case FallbackReason::kAdornmentExplosion:
      return "adornment_explosion";
    case FallbackReason::kRewriteRejected:
      return "rewrite_rejected";
  }
  return "unknown";
}

void PinSkolemSpecs(Rule* rule, size_t rule_index) {
  bool has_auto = false;
  for (const ExistentialSpec& e : rule->existentials) {
    if (e.skolem_functor.empty()) has_auto = true;
  }
  if (!has_auto) return;

  // Replicate the engine's variable-slot assignment order (engine.cc,
  // CompileRule): body literals in written order (args left to right),
  // assignment targets, aggregate contributors then results, existential
  // variables and explicit Skolem arguments, head atoms.
  std::unordered_map<std::string, int> slot;
  int next = 0;
  auto slot_of = [&](const std::string& v) {
    auto [it, inserted] = slot.emplace(v, next);
    if (inserted) ++next;
    return it->second;
  };
  for (const Literal& l : rule->body) {
    for (const Term& t : l.atom.args) {
      if (t.is_var() && !t.is_anonymous()) slot_of(t.var);
    }
  }
  for (const Assignment& a : rule->assignments) slot_of(a.var);
  for (const Aggregate& a : rule->aggregates) {
    for (const std::string& c : a.contributors) slot_of(c);
    slot_of(a.result_var);
  }
  std::unordered_set<std::string> exist_vars;
  for (const ExistentialSpec& e : rule->existentials) {
    slot_of(e.var);
    exist_vars.insert(e.var);
    if (!e.skolem_functor.empty()) {
      for (const std::string& a : e.skolem_args) slot_of(a);
    }
  }
  for (const Atom& h : rule->head) {
    for (const Term& t : h.args) {
      if (t.is_var() && !t.is_anonymous()) slot_of(t.var);
    }
  }

  // The auto frontier: universal head variables plus the arguments of
  // explicit sibling functors, in ascending slot order.
  std::map<int, std::string> frontier;
  for (const Atom& h : rule->head) {
    for (const Term& t : h.args) {
      if (t.is_var() && !t.is_anonymous() && exist_vars.count(t.var) == 0) {
        frontier[slot.at(t.var)] = t.var;
      }
    }
  }
  for (const ExistentialSpec& e : rule->existentials) {
    if (e.skolem_functor.empty()) continue;
    for (const std::string& a : e.skolem_args) frontier[slot.at(a)] = a;
  }
  std::vector<std::string> frontier_vars;
  frontier_vars.reserve(frontier.size());
  for (const auto& [s, v] : frontier) frontier_vars.push_back(v);

  for (ExistentialSpec& e : rule->existentials) {
    if (!e.skolem_functor.empty()) continue;
    e.skolem_functor = "_sk_r" + std::to_string(rule_index) + "_" + e.var;
    e.skolem_args = frontier_vars;
  }
}

namespace {

// Shared state of one rewrite (or one opportunity analysis, which runs
// the same adornment propagation without materializing rules).
struct RewriteState {
  const Program* program = nullptr;
  RewriteOptions options;
  // Head predicate -> indices of rules defining it.
  std::map<std::string, std::vector<size_t>> defs;
  std::set<std::string> edb;

  // Adorned worklist: (pred, bound mask) -> arity.
  std::map<std::pair<std::string, uint64_t>, size_t> adorned;
  std::deque<std::pair<std::string, uint64_t>> work;
  std::vector<AdornedPredicate> adorned_order;

  std::set<std::string> full_required;
  std::deque<std::string> full_work;

  // Skolem-pinned, single-head splits per predicate (built lazily).
  std::map<std::string, std::vector<Rule>> split_defs;
  std::set<std::string> split_built;

  std::vector<Rule> magic_rules;
  std::vector<Rule> guarded_rules;
  std::vector<Rule> copy_rules;
  std::set<std::string> magic_rule_dedup;

  bool build_rules = true;  // false for opportunity analysis
  bool exploded = false;

  bool Intensional(const std::string& pred) const {
    return defs.count(pred) > 0;
  }

  void Enqueue(const std::string& pred, uint64_t mask, size_t arity) {
    auto key = std::make_pair(pred, mask);
    if (adorned.count(key) > 0) return;
    if (adorned.size() >= options.max_adorned_predicates) {
      exploded = true;
      return;
    }
    adorned.emplace(key, arity);
    work.push_back(key);
    std::string a = AdornmentOf(mask, arity);
    adorned_order.push_back({pred, a, MagicName(pred, a)});
  }

  void RequireFull(const std::string& pred) {
    if (!Intensional(pred)) return;
    if (full_required.insert(pred).second) full_work.push_back(pred);
  }

  const std::vector<Rule>& SplitsOf(const std::string& pred) {
    if (split_built.insert(pred).second) {
      auto it = defs.find(pred);
      if (it != defs.end()) {
        for (size_t idx : it->second) {
          Rule pinned = program->rules[idx];
          PinSkolemSpecs(&pinned, idx);
          for (const Atom& h : pinned.head) {
            if (h.predicate != pred) continue;
            Rule s = pinned;
            s.head = {h};
            // Keep only the existentials this head atom uses; safety
            // requires at least one declared existential in the head.
            std::vector<ExistentialSpec> kept;
            for (const ExistentialSpec& e : pinned.existentials) {
              bool used = false;
              for (const Term& t : h.args) {
                if (t.is_var() && t.var == e.var) used = true;
              }
              if (used) kept.push_back(e);
            }
            s.existentials = std::move(kept);
            split_defs[pred].push_back(std::move(s));
          }
        }
      }
    }
    static const std::vector<Rule> kEmpty;
    auto it = split_defs.find(pred);
    return it == split_defs.end() ? kEmpty : it->second;
  }

  // Processes one adorned predicate: emits guarded variants of its
  // defining rules plus the magic rules seeding its subgoals.
  void ProcessAdorned(const std::string& pred, uint64_t mask, size_t arity);
  void ProcessFullRequired();
};

uint64_t LiteralMask(const Atom& atom,
                     const std::unordered_set<std::string>& bound) {
  uint64_t m = 0;
  for (size_t i = 0; i < atom.args.size() && i < 60; ++i) {
    const Term& t = atom.args[i];
    if (!t.is_var()) {
      m |= 1ULL << i;
    } else if (!t.is_anonymous() && bound.count(t.var) > 0) {
      m |= 1ULL << i;
    }
  }
  return m;
}

// One element of the growing body prefix used to define magic rules.
struct PrefixItem {
  enum Kind { kLit, kAssign, kCond } kind = kLit;
  Literal lit;
  Assignment assign;
  Condition cond;

  static PrefixItem Lit(Literal l) {
    PrefixItem item;
    item.kind = kLit;
    item.lit = std::move(l);
    return item;
  }
  static PrefixItem Assign(Assignment a) {
    PrefixItem item;
    item.kind = kAssign;
    item.assign = std::move(a);
    return item;
  }
  static PrefixItem Cond(Condition c) {
    PrefixItem item;
    item.kind = kCond;
    item.cond = std::move(c);
    return item;
  }
};

void RewriteState::ProcessAdorned(const std::string& pred, uint64_t mask,
                                  size_t arity) {
  const std::string adorn = AdornmentOf(mask, arity);
  for (const Rule& s : SplitsOf(pred)) {
    const Atom& h = s.head[0];
    if (h.args.size() != arity) continue;  // arity mismatch: engine rejects
    std::unordered_set<std::string> exist_vars;
    for (const ExistentialSpec& e : s.existentials) exist_vars.insert(e.var);

    // The guard: one argument per bound head position.  Universal head
    // variables propagate the binding into the body; constants are
    // matched; existential positions cannot constrain the magic tuple
    // and stay anonymous (a weaker guard, still sound — the final
    // answers are filtered by the query binding anyway).
    Atom guard;
    guard.predicate = MagicName(pred, adorn);
    std::unordered_set<std::string> bound;
    for (size_t i = 0; i < arity; ++i) {
      if (!(mask & (1ULL << i))) continue;
      const Term& t = h.args[i];
      if (!t.is_var()) {
        guard.args.push_back(t);
      } else if (exist_vars.count(t.var) > 0) {
        guard.args.push_back(Term::Var("_"));
      } else {
        guard.args.push_back(Term::Var(t.var));
        bound.insert(t.var);
      }
    }

    Rule out;
    out.label = s.label;
    out.loc = s.loc;
    out.head = {Atom{AdornedName(pred, adorn), h.args, h.loc}};
    out.existentials = s.existentials;
    out.assignments = s.assignments;
    out.conditions = s.conditions;
    out.body.push_back(Literal{guard, false});

    std::vector<PrefixItem> prefix;
    prefix.push_back(PrefixItem::Lit(Literal{guard, false}));

    // Sideways information passing, refined with assignments and
    // conditions: an assignment whose inputs are bound binds (or
    // constrains) its target; a fully bound condition prunes magic
    // tuples the original body could never satisfy.
    std::vector<char> assign_done(s.assignments.size(), 0);
    std::vector<char> cond_done(s.conditions.size(), 0);
    auto sweep = [&]() {
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t i = 0; i < s.assignments.size(); ++i) {
          if (assign_done[i]) continue;
          std::vector<std::string> vars;
          s.assignments[i].expr->CollectVars(&vars);
          bool all = true;
          for (const std::string& v : vars) {
            if (bound.count(v) == 0) all = false;
          }
          if (!all) continue;
          assign_done[i] = 1;
          prefix.push_back(PrefixItem::Assign(s.assignments[i]));
          bound.insert(s.assignments[i].var);
          changed = true;
        }
        for (size_t i = 0; i < s.conditions.size(); ++i) {
          if (cond_done[i]) continue;
          std::vector<std::string> vars;
          s.conditions[i].expr->CollectVars(&vars);
          bool all = true;
          for (const std::string& v : vars) {
            if (bound.count(v) == 0) all = false;
          }
          if (!all) continue;
          cond_done[i] = 1;
          prefix.push_back(PrefixItem::Cond(s.conditions[i]));
          changed = true;
        }
      }
    };
    sweep();

    for (const Literal& l : s.body) {
      if (l.negated) {
        // Negated subgoals are never guarded: their cones evaluate in
        // full (original names, original rules), which preserves
        // stratification — magic predicates never sit under negation.
        RequireFull(l.atom.predicate);
        out.body.push_back(l);
        continue;
      }
      Literal rewritten = l;
      if (Intensional(l.atom.predicate)) {
        uint64_t lmask = LiteralMask(l.atom, bound);
        if (lmask != 0) {
          std::string la = AdornmentOf(lmask, l.atom.args.size());
          Enqueue(l.atom.predicate, lmask, l.atom.args.size());
          rewritten.atom.predicate = AdornedName(l.atom.predicate, la);
          if (build_rules) {
            Rule mr;
            mr.label = "magic";
            Atom mh;
            mh.predicate = MagicName(l.atom.predicate, la);
            for (size_t i = 0; i < l.atom.args.size(); ++i) {
              if (lmask & (1ULL << i)) mh.args.push_back(l.atom.args[i]);
            }
            mr.head = {mh};
            for (const PrefixItem& pi : prefix) {
              switch (pi.kind) {
                case PrefixItem::kLit:
                  mr.body.push_back(pi.lit);
                  break;
                case PrefixItem::kAssign:
                  mr.assignments.push_back(pi.assign);
                  break;
                case PrefixItem::kCond:
                  mr.conditions.push_back(pi.cond);
                  break;
              }
            }
            std::string key = mr.ToString();
            if (magic_rule_dedup.insert(key).second) {
              magic_rules.push_back(std::move(mr));
            }
          }
        } else {
          RequireFull(l.atom.predicate);
        }
      }
      out.body.push_back(rewritten);
      prefix.push_back(PrefixItem::Lit(rewritten));
      for (const Term& t : l.atom.args) {
        if (t.is_var() && !t.is_anonymous()) bound.insert(t.var);
      }
      sweep();
    }
    if (build_rules) guarded_rules.push_back(std::move(out));
  }

  // An adorned predicate with an extensional base (database relation,
  // @input, @fact) needs its base tuples too — copied under the guard.
  if (build_rules && edb.count(pred) > 0) {
    Rule cr;
    cr.label = "magic-copy";
    Atom head;
    head.predicate = AdornedName(pred, adorn);
    Atom base;
    base.predicate = pred;
    Atom guard;
    guard.predicate = MagicName(pred, adorn);
    for (size_t i = 0; i < arity; ++i) {
      Term v = Term::Var("v" + std::to_string(i));
      head.args.push_back(v);
      base.args.push_back(v);
      if (mask & (1ULL << i)) guard.args.push_back(v);
    }
    cr.head = {head};
    cr.body.push_back(Literal{guard, false});
    cr.body.push_back(Literal{base, false});
    copy_rules.push_back(std::move(cr));
  }
}

void RewriteState::ProcessFullRequired() {
  std::set<size_t> included;
  while (!full_work.empty()) {
    std::string pred = full_work.front();
    full_work.pop_front();
    auto it = defs.find(pred);
    if (it == defs.end()) continue;
    for (size_t idx : it->second) {
      if (!included.insert(idx).second) continue;
      if (build_rules) {
        Rule pinned = program->rules[idx];
        PinSkolemSpecs(&pinned, idx);
        guarded_rules.push_back(std::move(pinned));
      }
      for (const Literal& l : program->rules[idx].body) {
        RequireFull(l.atom.predicate);
      }
      // Multi-head rules materialize sibling predicates too; their
      // cones are already covered by this rule's body.
    }
  }
}

void BuildDefs(const Program& program, RewriteState* st) {
  for (size_t i = 0; i < program.rules.size(); ++i) {
    std::set<std::string> seen;
    for (const Atom& h : program.rules[i].head) {
      if (seen.insert(h.predicate).second) {
        st->defs[h.predicate].push_back(i);
      }
    }
  }
}

// Relevance cone of `pred`: everything reachable through defining
// rules, polarity-ignored.
std::set<std::string> ConeOf(const RewriteState& st, const std::string& pred) {
  std::set<std::string> cone{pred};
  std::deque<std::string> work{pred};
  while (!work.empty()) {
    std::string p = work.front();
    work.pop_front();
    auto it = st.defs.find(p);
    if (it == st.defs.end()) continue;
    for (size_t idx : it->second) {
      for (const Literal& l : st.program->rules[idx].body) {
        if (cone.insert(l.atom.predicate).second) {
          work.push_back(l.atom.predicate);
        }
      }
    }
  }
  return cone;
}

// Cone-level fragment check shared by the rewrite and the lint
// analysis.  Returns kNone when every rule in the cone is admissible.
FallbackReason CheckCone(const RewriteState& st,
                         const std::set<std::string>& cone,
                         std::string* detail) {
  for (size_t i = 0; i < st.program->rules.size(); ++i) {
    const Rule& r = st.program->rules[i];
    bool relevant = false;
    for (const Atom& h : r.head) {
      if (cone.count(h.predicate) > 0) relevant = true;
    }
    if (!relevant) continue;
    if (!r.aggregates.empty()) {
      *detail = "rule " + std::to_string(i) + " (" + r.head[0].predicate +
                ") aggregates inside the query's cone";
      return FallbackReason::kAggregates;
    }
    if (st.options.restricted_chase && !r.existentials.empty()) {
      *detail = "rule " + std::to_string(i) + " (" + r.head[0].predicate +
                ") has existentials under the restricted chase";
      return FallbackReason::kRestrictedExistentials;
    }
  }
  return FallbackReason::kNone;
}

}  // namespace

MagicRewrite RewriteForQuery(const Program& program,
                             const QueryBinding& query,
                             const std::set<std::string>& edb_preds,
                             const RewriteOptions& options) {
  MagicRewrite out;
  if (query.BoundCount() == 0) {
    out.fallback = FallbackReason::kNoBoundArgument;
    out.detail = "every argument position of " + query.predicate + " is free";
    return out;
  }

  RewriteState st;
  st.program = &program;
  st.options = options;
  st.edb = edb_preds;
  for (const std::string& p : program.inputs) st.edb.insert(p);
  for (const FactDecl& f : program.facts) st.edb.insert(f.predicate);
  BuildDefs(program, &st);

  std::set<std::string> cone = ConeOf(st, query.predicate);
  FallbackReason cone_check = CheckCone(st, cone, &out.detail);
  if (cone_check != FallbackReason::kNone) {
    out.fallback = cone_check;
    return out;
  }

  uint64_t qmask = 0;
  for (size_t i = 0; i < query.args.size() && i < 60; ++i) {
    if (query.args[i].has_value()) qmask |= 1ULL << i;
  }
  st.Enqueue(query.predicate, qmask, query.args.size());
  while (!st.work.empty()) {
    auto [pred, mask] = st.work.front();
    st.work.pop_front();
    st.ProcessAdorned(pred, mask, st.adorned.at({pred, mask}));
    if (st.exploded) {
      out.fallback = FallbackReason::kAdornmentExplosion;
      out.detail = "more than " +
                   std::to_string(options.max_adorned_predicates) +
                   " adorned predicates";
      return out;
    }
  }
  st.ProcessFullRequired();

  out.program.rules.reserve(st.magic_rules.size() + st.copy_rules.size() +
                            st.guarded_rules.size());
  for (Rule& r : st.magic_rules) out.program.rules.push_back(std::move(r));
  for (Rule& r : st.copy_rules) out.program.rules.push_back(std::move(r));
  for (Rule& r : st.guarded_rules) out.program.rules.push_back(std::move(r));
  out.program.facts = program.facts;
  FactDecl seed;
  seed.predicate = MagicName(query.predicate, query.Adornment());
  for (const auto& a : query.args) {
    if (a.has_value()) seed.values.push_back(*a);
  }
  out.program.facts.push_back(std::move(seed));
  out.program.inputs = program.inputs;
  out.query_pred = AdornedName(query.predicate, query.Adornment());
  out.program.outputs = {out.query_pred};
  out.adorned = std::move(st.adorned_order);
  out.full_required.assign(st.full_required.begin(), st.full_required.end());
  out.magic_rules = st.magic_rules.size();
  out.guarded_rules = st.guarded_rules.size();
  out.copy_rules = st.copy_rules.size();
  return out;
}

MagicOpportunity AnalyzeMagicOpportunity(const Program& program,
                                         const std::string& output_pred,
                                         bool restricted_chase) {
  MagicOpportunity out;
  RewriteState st;
  st.program = &program;
  st.options.restricted_chase = restricted_chase;
  st.build_rules = false;
  BuildDefs(program, &st);
  if (!st.Intensional(output_pred)) {
    // Extensional output: a bound query is a plain index lookup.
    out.beneficial = true;
    out.detail = "extensional output; point queries are index lookups";
    return out;
  }

  Stratification strat = ComputeStratification(program, nullptr);
  std::set<std::string> recursive_preds;
  for (size_t i = 0; i < program.rules.size(); ++i) {
    if (i < strat.rule_recursive.size() && strat.rule_recursive[i]) {
      for (const Atom& h : program.rules[i].head) {
        recursive_preds.insert(h.predicate);
      }
    }
  }

  std::set<std::string> cone = ConeOf(st, output_pred);
  for (const std::string& p : cone) {
    if (recursive_preds.count(p) > 0) out.recursive_cone = true;
  }
  out.fallback = CheckCone(st, cone, &out.detail);
  if (out.fallback != FallbackReason::kNone) return out;
  if (!out.recursive_cone) {
    out.detail = "no recursion in the output's cone";
    return out;
  }

  // Propagate the most favourable (all-bound) adornment and see whether
  // any bound pattern lands on a recursive predicate.
  size_t arity = 0;
  for (size_t idx : st.defs.at(output_pred)) {
    for (const Atom& h : program.rules[idx].head) {
      if (h.predicate == output_pred) arity = h.args.size();
    }
  }
  uint64_t qmask = arity >= 60 ? ~0ULL : ((1ULL << arity) - 1);
  st.Enqueue(output_pred, qmask, arity);
  while (!st.work.empty() && !st.exploded) {
    auto [pred, mask] = st.work.front();
    st.work.pop_front();
    st.ProcessAdorned(pred, mask, st.adorned.at({pred, mask}));
  }
  for (const auto& [key, a] : st.adorned) {
    if (key.second != 0 && recursive_preds.count(key.first) > 0) {
      out.beneficial = true;
    }
  }
  if (!out.beneficial) {
    out.detail =
        "no bound argument reaches a recursive predicate; bound queries "
        "on " +
        output_pred + " evaluate the full recursion";
  }
  return out;
}

}  // namespace kgm::vadalog::magic
