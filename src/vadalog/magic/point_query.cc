#include "vadalog/magic/point_query.h"

#include <optional>
#include <utility>

#include "vadalog/magic/qsqr.h"

namespace kgm::vadalog::magic {

namespace {

constexpr size_t kIndexMinRows = 8;

bool IsIntensional(const Program& program, const std::string& pred) {
  for (const Rule& r : program.rules) {
    for (const Atom& h : r.head) {
      if (h.predicate == pred) return true;
    }
  }
  return false;
}

Result<std::vector<Tuple>> FilterRelation(const Relation* rel,
                                          const QueryBinding& query,
                                          size_t* probes) {
  std::vector<Tuple> out;
  if (rel == nullptr) return out;
  if (rel->arity() != query.args.size()) {
    return InvalidArgument("binding arity " +
                           std::to_string(query.args.size()) +
                           " does not match " + query.predicate + "/" +
                           std::to_string(rel->arity()));
  }
  for (const Tuple& t : rel->tuples()) {
    ++*probes;
    if (query.Matches(t)) out.push_back(t);
  }
  return out;
}

Result<std::vector<Tuple>> RunMaterialize(const Program& program,
                                          const QueryBinding& query,
                                          FactDb* db,
                                          const PointQueryOptions& options,
                                          PointQueryStats* stats) {
  stats->mode = PointQueryMode::kMaterialize;
  Engine engine(program, options.engine);
  KGM_RETURN_IF_ERROR(engine.status());
  Status run = engine.Run(db);
  stats->engine = engine.stats();
  KGM_RETURN_IF_ERROR(run);
  // The scan over the full output relation is part of this route's cost.
  return FilterRelation(db->Get(query.predicate), query,
                        &stats->engine.join_probes);
}

Result<std::vector<Tuple>> RunQsqr(const Program& program,
                                   const QueryBinding& query, FactDb* db,
                                   const PointQueryOptions& options,
                                   PointQueryStats* stats) {
  stats->mode = PointQueryMode::kQsqr;
  QsqrEvaluator eval(program, db, options.engine);
  KGM_RETURN_IF_ERROR(eval.status());
  Result<std::vector<Tuple>> answers = eval.Query(query);
  const QsqrEvaluator::Stats& qs = eval.stats();
  stats->engine.join_probes = qs.probes;
  stats->engine.iterations = qs.passes;
  stats->engine.facts_derived = qs.answers;
  stats->engine.plans_reordered = qs.plans_reordered;
  stats->engine.planner_enabled = options.engine.plan_mode != PlanMode::kOff;
  stats->engine.magic_subqueries = qs.subqueries;
  return answers;
}

Result<std::vector<Tuple>> RunEdbLookup(const Program& program,
                                        const QueryBinding& query, FactDb* db,
                                        PointQueryStats* stats) {
  stats->mode = PointQueryMode::kEdbLookup;
  for (const FactDecl& f : program.facts) {
    if (f.predicate == query.predicate) {
      db->GetOrCreate(f.predicate, f.values.size()).Insert(f.values);
    }
  }
  Relation* rel = db->GetMutable(query.predicate);
  std::vector<Tuple> out;
  if (rel == nullptr) return out;
  if (rel->arity() != query.args.size()) {
    return InvalidArgument("binding arity " +
                           std::to_string(query.args.size()) +
                           " does not match " + query.predicate + "/" +
                           std::to_string(rel->arity()));
  }
  uint64_t mask = 0;
  Tuple probe(rel->arity());
  for (size_t i = 0; i < query.args.size() && i < 60; ++i) {
    if (query.args[i].has_value()) {
      mask |= 1ULL << i;
      probe[i] = *query.args[i];
    }
  }
  if (mask != 0 && rel->size() >= kIndexMinRows) {
    for (uint32_t row : rel->Lookup(mask, probe)) {
      ++stats->engine.join_probes;
      if (rel->MatchesMasked(row, mask, probe)) out.push_back(rel->tuple(row));
    }
    return out;
  }
  return FilterRelation(rel, query, &stats->engine.join_probes);
}

}  // namespace

const char* PointQueryModeName(PointQueryMode m) {
  switch (m) {
    case PointQueryMode::kOff:
      return "off";
    case PointQueryMode::kEdbLookup:
      return "edb_lookup";
    case PointQueryMode::kMagic:
      return "magic";
    case PointQueryMode::kQsqr:
      return "qsqr";
    case PointQueryMode::kMaterialize:
      return "materialize";
  }
  return "unknown";
}

Result<std::vector<Tuple>> EvalPointQuery(const Program& program,
                                          const QueryBinding& query,
                                          FactDb* db,
                                          const PointQueryOptions& options,
                                          PointQueryStats* stats) {
  PointQueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = PointQueryStats{};
  stats->engine.point_query = true;

  // Binding arity is validated up front so every route rejects a
  // mismatched binding identically.  Without this the magic route masks
  // the client error as an empty answer set: the rewriter skips each
  // mismatched rule, the adorned output relation never exists, and the
  // final filter over a missing relation yields zero rows — while the
  // materialize and EDB routes return InvalidArgument for the same
  // query.
  std::optional<size_t> declared;
  for (const Rule& r : program.rules) {
    for (const Atom& h : r.head) {
      if (h.predicate == query.predicate) declared = h.args.size();
    }
  }
  if (!declared.has_value()) {
    for (const FactDecl& f : program.facts) {
      if (f.predicate == query.predicate) declared = f.values.size();
    }
  }
  if (!declared.has_value()) {
    const Relation* rel = db->Get(query.predicate);
    if (rel != nullptr) declared = rel->arity();
  }
  if (declared.has_value() && *declared != query.args.size()) {
    return InvalidArgument("binding arity " +
                           std::to_string(query.args.size()) +
                           " does not match " + query.predicate + "/" +
                           std::to_string(*declared));
  }

  auto finish = [&](Result<std::vector<Tuple>> r) {
    stats->engine.point_query = true;
    stats->engine.magic_fallbacks =
        (stats->mode == PointQueryMode::kMaterialize &&
         stats->fallback != FallbackReason::kNone)
            ? 1
            : 0;
    if (r.ok()) stats->answers = r->size();
    return r;
  };

  if (options.force_materialize) {
    return finish(RunMaterialize(program, query, db, options, stats));
  }
  if (query.BoundCount() == 0) {
    stats->fallback = FallbackReason::kNoBoundArgument;
    stats->fallback_detail =
        "every argument position of " + query.predicate + " is free";
    return finish(RunMaterialize(program, query, db, options, stats));
  }
  if (!IsIntensional(program, query.predicate)) {
    return finish(RunEdbLookup(program, query, db, stats));
  }
  const bool qsqr_ok =
      options.allow_qsqr && QsqrEvaluator::Supports(program, query.predicate);
  if (options.force_qsqr && qsqr_ok) {
    return finish(RunQsqr(program, query, db, options, stats));
  }

  if (options.allow_magic) {
    RewriteOptions rw_options = options.rewrite;
    rw_options.restricted_chase =
        options.engine.chase_mode == ChaseMode::kRestricted;
    std::set<std::string> edb;
    for (const std::string& p : db->Predicates()) edb.insert(p);
    MagicRewrite rw = RewriteForQuery(program, query, edb, rw_options);
    stats->fallback = rw.fallback;
    stats->fallback_detail = rw.detail;
    if (rw.ok()) {
      stats->adorned = rw.adorned;
      stats->full_required = rw.full_required;
      Engine engine(std::move(rw.program), options.engine);
      if (engine.status().ok()) {
        stats->mode = PointQueryMode::kMagic;
        Status run = engine.Run(db);
        stats->engine = engine.stats();
        stats->engine.point_query = true;
        stats->engine.magic_rewrites = 1;
        stats->engine.magic_subqueries = rw.adorned.size();
        stats->engine.magic_rules =
            rw.magic_rules + rw.guarded_rules + rw.copy_rules;
        KGM_RETURN_IF_ERROR(run);
        // Belt and braces: the adorned output already respects the
        // binding, but filtering is one cheap pass over a small relation.
        return finish(FilterRelation(db->Get(rw.query_pred), query,
                                     &stats->engine.join_probes));
      }
      stats->fallback = FallbackReason::kRewriteRejected;
      stats->fallback_detail = engine.status().message();
    }
    // The structural fallbacks (aggregates, restricted existentials, no
    // bound argument) are out of QSQR's fragment too; only the rewrite-
    // specific failures are worth a top-down retry.
    if ((stats->fallback == FallbackReason::kAdornmentExplosion ||
         stats->fallback == FallbackReason::kRewriteRejected) &&
        qsqr_ok) {
      return finish(RunQsqr(program, query, db, options, stats));
    }
  }
  return finish(RunMaterialize(program, query, db, options, stats));
}

}  // namespace kgm::vadalog::magic
