#include "vadalog/magic/qsqr.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "vadalog/planner.h"

namespace kgm::vadalog::magic {

namespace {

constexpr size_t kProbePollInterval = 8192;
constexpr size_t kIndexMinRows = 8;

std::string AnsName(const std::string& pred) { return "ans@" + pred; }

// One compiled body literal: predicate plus the constant/slot shape.
struct CLit {
  std::string pred;
  bool intensional = false;
  std::vector<char> is_const;
  std::vector<Value> consts;  // parallel; valid where is_const
  std::vector<int> slots;     // parallel; -1 = anonymous
};

struct CRule {
  std::string head_pred;
  std::vector<CLit> body;
  std::vector<char> head_is_const;
  std::vector<Value> head_consts;
  std::vector<int> head_slots;
  // Written order; applied greedily as inputs become bound (binding when
  // the target is free, equality check when it is already bound — the
  // firing-level semantics of the bottom-up engine).
  std::vector<std::pair<int, ExprPtr>> assigns;  // target slot, expr
  std::vector<std::vector<int>> assign_inputs;   // expr var slots
  std::vector<ExprPtr> conds;
  std::vector<std::vector<int>> cond_inputs;
  std::vector<std::string> slot_names;
};

using Env = std::vector<std::optional<Value>>;

struct SubqueryKey {
  std::string pred;
  uint64_t mask;
  Tuple bound;

  bool operator<(const SubqueryKey& o) const {
    if (pred != o.pred) return pred < o.pred;
    if (mask != o.mask) return mask < o.mask;
    return std::lexicographical_compare(bound.begin(), bound.end(),
                                        o.bound.begin(), o.bound.end());
  }
};

}  // namespace

struct QsqrEvaluator::Impl {
  const Program* program;
  FactDb* db;
  EngineOptions options;
  Status init_status = OkStatus();
  Stats stats;

  std::map<std::string, std::vector<CRule>> defs;
  std::set<std::string> intensional;

  bool changed = false;
  std::set<SubqueryKey> seen;  // per-pass
  size_t probes_since_poll = 0;
  // Literal evaluation order per (rule address, bound-slot mask); cleared
  // at pass boundaries so the planner re-costs against the grown memos.
  std::map<std::pair<const CRule*, uint64_t>, std::vector<size_t>> plan_cache;

  Status Compile();
  Status CheckLimits() {
    if (options.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= options.deadline) {
      return DeadlineExceeded("qsqr evaluation deadline exceeded");
    }
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return DeadlineExceeded("qsqr evaluation cancelled");
    }
    return OkStatus();
  }
  Status PollProbe() {
    if (++probes_since_poll >= kProbePollInterval) {
      probes_since_poll = 0;
      return CheckLimits();
    }
    return OkStatus();
  }

  const std::vector<size_t>& PlanOrder(const CRule& r, uint64_t bound_slots);
  Status Solve(const std::string& pred, uint64_t mask, const Tuple& bound);
  Status JoinRec(const CRule& r, const std::vector<size_t>& order,
                 size_t depth, Env env, std::vector<char> assign_done,
                 std::vector<char> cond_done);
  // Greedy assignment application + early condition checks; returns false
  // when a check failed (the branch is pruned).
  bool ApplyBound(const CRule& r, Env* env, std::vector<char>* assign_done,
                  std::vector<char>* cond_done, Status* error);
  Status Emit(const CRule& r, const Env& env);
};

Status QsqrEvaluator::Impl::Compile() {
  for (const Rule& rule : program->rules) {
    for (const Atom& h : rule.head) intensional.insert(h.predicate);
  }
  for (const Rule& rule : program->rules) {
    if (!rule.aggregates.empty() || !rule.existentials.empty()) {
      return FailedPrecondition("qsqr: aggregates/existentials unsupported");
    }
    for (const Literal& l : rule.body) {
      if (l.negated) {
        return FailedPrecondition("qsqr: negation unsupported");
      }
    }
    for (const Atom& h : rule.head) {
      CRule cr;
      cr.head_pred = h.predicate;
      std::unordered_map<std::string, int> varmap;
      auto slot_of = [&](const std::string& v) {
        auto [it, inserted] =
            varmap.emplace(v, static_cast<int>(cr.slot_names.size()));
        if (inserted) cr.slot_names.push_back(v);
        return it->second;
      };
      for (const Literal& l : rule.body) {
        CLit cl;
        cl.pred = l.atom.predicate;
        cl.intensional = intensional.count(l.atom.predicate) > 0;
        for (const Term& t : l.atom.args) {
          if (t.is_var()) {
            cl.is_const.push_back(0);
            cl.consts.emplace_back();
            cl.slots.push_back(t.is_anonymous() ? -1 : slot_of(t.var));
          } else {
            cl.is_const.push_back(1);
            cl.consts.push_back(t.constant);
            cl.slots.push_back(-1);
          }
        }
        cr.body.push_back(std::move(cl));
      }
      for (const Assignment& a : rule.assignments) {
        std::vector<std::string> vars;
        a.expr->CollectVars(&vars);
        std::vector<int> inputs;
        for (const std::string& v : vars) inputs.push_back(slot_of(v));
        cr.assigns.emplace_back(slot_of(a.var), a.expr);
        cr.assign_inputs.push_back(std::move(inputs));
      }
      for (const Condition& c : rule.conditions) {
        std::vector<std::string> vars;
        c.expr->CollectVars(&vars);
        std::vector<int> inputs;
        for (const std::string& v : vars) inputs.push_back(slot_of(v));
        cr.conds.push_back(c.expr);
        cr.cond_inputs.push_back(std::move(inputs));
      }
      for (const Term& t : h.args) {
        if (t.is_var()) {
          if (t.is_anonymous()) {
            return FailedPrecondition("qsqr: anonymous variable in head");
          }
          cr.head_is_const.push_back(0);
          cr.head_consts.emplace_back();
          cr.head_slots.push_back(slot_of(t.var));
        } else {
          cr.head_is_const.push_back(1);
          cr.head_consts.push_back(t.constant);
          cr.head_slots.push_back(-1);
        }
      }
      defs[h.predicate].push_back(std::move(cr));
    }
  }
  return OkStatus();
}

const std::vector<size_t>& QsqrEvaluator::Impl::PlanOrder(
    const CRule& r, uint64_t bound_slots) {
  auto key = std::make_pair(&r, bound_slots);
  auto it = plan_cache.find(key);
  if (it != plan_cache.end()) return it->second;

  std::vector<size_t> order(r.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.plan_mode == PlanMode::kGreedy && r.body.size() >= 2) {
    // Present the subquery to the PR 7 planner: call-time-bound slots
    // become constants (MaskFor then treats them as bound at depth 0),
    // intensional literals read their memo relations.
    RuleDesc desc;
    desc.rule_index = 0;
    desc.reorderable = true;
    for (const CLit& cl : r.body) {
      PlanLiteral pl;
      pl.pred = cl.intensional ? AnsName(cl.pred) : cl.pred;
      for (size_t i = 0; i < cl.slots.size(); ++i) {
        PlanArg a;
        int slot = cl.slots[i];
        // Slots past the 64-bit mask are always presented as free (see
        // Solve): a weaker hint, never a wrong one.
        bool bound =
            slot >= 0 && slot < 64 && (bound_slots & (1ULL << slot)) != 0;
        a.is_const = cl.is_const[i] != 0 || bound;
        a.slot = a.is_const ? -1 : slot;
        pl.args.push_back(a);
      }
      desc.positives.push_back(std::move(pl));
    }
    JoinPlanner planner(PlanMode::kGreedy, {desc});
    const JoinPlan* plan =
        planner.PlanFor(0, PlanRegime::kFullLive, -1, *db, nullptr);
    if (plan != nullptr) {
      order.clear();
      for (const PlannedLiteral& pl : plan->order) order.push_back(pl.literal);
      if (plan->reordered) ++stats.plans_reordered;
    }
  }
  return plan_cache.emplace(key, std::move(order)).first->second;
}

bool QsqrEvaluator::Impl::ApplyBound(const CRule& r, Env* env,
                                     std::vector<char>* assign_done,
                                     std::vector<char>* cond_done,
                                     Status* error) {
  auto lookup = [&](const std::string& name) -> const Value* {
    auto it = std::find(r.slot_names.begin(), r.slot_names.end(), name);
    if (it == r.slot_names.end()) return nullptr;
    const auto& v = (*env)[it - r.slot_names.begin()];
    return v.has_value() ? &*v : nullptr;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < r.assigns.size(); ++i) {
      if ((*assign_done)[i]) continue;
      bool ready = true;
      for (int s : r.assign_inputs[i]) {
        if (!(*env)[s].has_value()) ready = false;
      }
      if (!ready) continue;
      (*assign_done)[i] = 1;
      progress = true;
      Result<Value> v = EvalExpr(*r.assigns[i].second, lookup);
      if (!v.ok()) {
        *error = v.status();
        return false;
      }
      auto& target = (*env)[r.assigns[i].first];
      if (target.has_value()) {
        if (!(*target == *v)) return false;  // equality-check semantics
      } else {
        target = *v;
      }
    }
    for (size_t i = 0; i < r.conds.size(); ++i) {
      if ((*cond_done)[i]) continue;
      bool ready = true;
      for (int s : r.cond_inputs[i]) {
        if (!(*env)[s].has_value()) ready = false;
      }
      if (!ready) continue;
      (*cond_done)[i] = 1;
      progress = true;
      Result<Value> v = EvalExpr(*r.conds[i], lookup);
      if (!v.ok()) {
        *error = v.status();
        return false;
      }
      if (!v->is_bool() || !v->AsBool()) return false;
    }
  }
  return true;
}

Status QsqrEvaluator::Impl::Emit(const CRule& r, const Env& env) {
  Tuple t;
  t.reserve(r.head_slots.size());
  for (size_t i = 0; i < r.head_slots.size(); ++i) {
    if (r.head_is_const[i]) {
      t.push_back(r.head_consts[i]);
    } else {
      const auto& v = env[r.head_slots[i]];
      if (!v.has_value()) {
        return Internal("qsqr: unbound head variable " +
                        r.slot_names[r.head_slots[i]]);
      }
      t.push_back(*v);
    }
  }
  Relation& ans = db->GetOrCreate(AnsName(r.head_pred), t.size());
  if (ans.Insert(std::move(t))) {
    changed = true;
    ++stats.answers;
  }
  return OkStatus();
}

Status QsqrEvaluator::Impl::JoinRec(const CRule& r,
                                    const std::vector<size_t>& order,
                                    size_t depth, Env env,
                                    std::vector<char> assign_done,
                                    std::vector<char> cond_done) {
  Status err = OkStatus();
  if (!ApplyBound(r, &env, &assign_done, &cond_done, &err)) return err;
  if (depth == order.size()) {
    for (char done : cond_done) {
      if (!done) {
        return Internal("qsqr: condition with unbound variables at emit");
      }
    }
    return Emit(r, env);
  }

  const CLit& lit = r.body[order[depth]];
  const size_t arity = lit.slots.size();
  uint64_t pmask = 0;
  Tuple probe(arity);
  for (size_t i = 0; i < arity && i < 60; ++i) {
    if (lit.is_const[i]) {
      pmask |= 1ULL << i;
      probe[i] = lit.consts[i];
    } else if (lit.slots[i] >= 0 && env[lit.slots[i]].has_value()) {
      pmask |= 1ULL << i;
      probe[i] = *env[lit.slots[i]];
    }
  }

  std::string rel_name = lit.pred;
  if (lit.intensional) {
    Tuple bound;
    for (size_t i = 0; i < arity; ++i) {
      if (pmask & (1ULL << i)) bound.push_back(probe[i]);
    }
    KGM_RETURN_IF_ERROR(Solve(lit.pred, pmask, bound));
    rel_name = AnsName(lit.pred);
  }
  Relation* rel = db->GetMutable(rel_name);
  if (rel == nullptr) return OkStatus();

  // Snapshot the candidate row ids: deeper recursion may insert into this
  // very relation (self-recursive rules), growing/rehashing live storage.
  std::vector<uint32_t> rows;
  if (pmask != 0 && rel->size() >= kIndexMinRows) {
    rows = rel->Lookup(pmask, probe);
  } else {
    rows.resize(rel->size());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }

  for (uint32_t row : rows) {
    ++stats.probes;
    KGM_RETURN_IF_ERROR(PollProbe());
    if (pmask != 0 && !rel->MatchesMasked(row, pmask, probe)) continue;
    Tuple t = rel->tuple(row);  // copy: storage may move during recursion
    Env next = env;
    bool ok = true;
    for (size_t i = 0; i < arity && ok; ++i) {
      int slot = lit.slots[i];
      if (lit.is_const[i]) {
        if (!(t[i] == lit.consts[i])) ok = false;
      } else if (slot >= 0) {
        auto& v = next[slot];
        if (v.has_value()) {
          if (!(*v == t[i])) ok = false;
        } else {
          v = t[i];
        }
      }
    }
    if (!ok) continue;
    KGM_RETURN_IF_ERROR(
        JoinRec(r, order, depth + 1, std::move(next), assign_done, cond_done));
  }
  return OkStatus();
}

Status QsqrEvaluator::Impl::Solve(const std::string& pred, uint64_t mask,
                                  const Tuple& bound) {
  KGM_RETURN_IF_ERROR(CheckLimits());
  SubqueryKey key{pred, mask, bound};
  if (!seen.insert(std::move(key)).second) return OkStatus();
  ++stats.subqueries;

  auto it = defs.find(pred);
  if (it == defs.end()) return OkStatus();
  for (const CRule& r : it->second) {
    Env env(r.slot_names.size());
    bool ok = true;
    size_t bi = 0;
    uint64_t bound_slots = 0;
    for (size_t pos = 0; pos < r.head_slots.size() && ok; ++pos) {
      if (!(mask & (1ULL << pos))) continue;
      const Value& v = bound[bi++];
      if (r.head_is_const[pos]) {
        if (!(r.head_consts[pos] == v)) ok = false;
      } else {
        auto& e = env[r.head_slots[pos]];
        if (e.has_value()) {
          if (!(*e == v)) ok = false;
        } else {
          e = v;
          // bound_slots is a planner hint (and plan_cache key), not a
          // correctness input — JoinRec validates every binding against
          // env.  Rules with 64+ distinct variables don't fit the mask,
          // so higher slots are simply not hinted; masking with `& 63`
          // instead would alias a free slot onto a bound bit and present
          // it to the planner as a constant.
          if (r.head_slots[pos] < 64) {
            bound_slots |= 1ULL << r.head_slots[pos];
          }
        }
      }
    }
    if (!ok) continue;
    const std::vector<size_t>& order = PlanOrder(r, bound_slots);
    KGM_RETURN_IF_ERROR(JoinRec(r, order, 0, std::move(env),
                                std::vector<char>(r.assigns.size(), 0),
                                std::vector<char>(r.conds.size(), 0)));
  }
  return OkStatus();
}

QsqrEvaluator::QsqrEvaluator(const Program& program, FactDb* db,
                             EngineOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = &program;
  impl_->db = db;
  impl_->options = std::move(options);
  impl_->init_status = impl_->Compile();
}

QsqrEvaluator::~QsqrEvaluator() = default;

const Status& QsqrEvaluator::status() const { return impl_->init_status; }

const QsqrEvaluator::Stats& QsqrEvaluator::stats() const {
  return impl_->stats;
}

bool QsqrEvaluator::Supports(const Program& program,
                             const std::string& query_pred) {
  std::map<std::string, std::vector<size_t>> defs;
  for (size_t i = 0; i < program.rules.size(); ++i) {
    for (const Atom& h : program.rules[i].head) {
      defs[h.predicate].push_back(i);
    }
  }
  std::set<std::string> cone{query_pred};
  std::deque<std::string> work{query_pred};
  while (!work.empty()) {
    std::string p = work.front();
    work.pop_front();
    auto it = defs.find(p);
    if (it == defs.end()) continue;
    for (size_t idx : it->second) {
      const Rule& r = program.rules[idx];
      if (!r.aggregates.empty() || !r.existentials.empty()) return false;
      for (const Literal& l : r.body) {
        if (l.negated) return false;
        if (cone.insert(l.atom.predicate).second) {
          work.push_back(l.atom.predicate);
        }
      }
    }
  }
  return true;
}

Result<std::vector<Tuple>> QsqrEvaluator::Query(const QueryBinding& query) {
  KGM_RETURN_IF_ERROR(impl_->init_status);
  // Program facts are part of the EDB, exactly as in Engine::Run.
  for (const FactDecl& f : impl_->program->facts) {
    impl_->db->GetOrCreate(f.predicate, f.values.size()).Insert(f.values);
  }
  uint64_t qmask = 0;
  Tuple bound;
  for (size_t i = 0; i < query.args.size() && i < 60; ++i) {
    if (query.args[i].has_value()) {
      qmask |= 1ULL << i;
      bound.push_back(*query.args[i]);
    }
  }
  std::vector<Tuple> out;
  if (impl_->defs.count(query.predicate) == 0) {
    // Extensional query predicate: the memo machinery has nothing to do.
    const Relation* rel = impl_->db->Get(query.predicate);
    if (rel != nullptr) {
      for (const Tuple& t : rel->tuples()) {
        ++impl_->stats.probes;
        if (query.Matches(t)) out.push_back(t);
      }
    }
    return out;
  }
  do {
    impl_->changed = false;
    impl_->seen.clear();
    impl_->plan_cache.clear();
    ++impl_->stats.passes;
    KGM_RETURN_IF_ERROR(impl_->Solve(query.predicate, qmask, bound));
  } while (impl_->changed);

  const Relation* ans = impl_->db->Get(AnsName(query.predicate));
  if (ans != nullptr) {
    for (const Tuple& t : ans->tuples()) {
      if (query.Matches(t)) out.push_back(t);
    }
  }
  return out;
}

}  // namespace kgm::vadalog::magic
