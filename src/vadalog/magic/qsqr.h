// QSQR-style on-demand (top-down) evaluation for point queries.
//
// The fallback companion to the magic-sets rewrite (vadalog/magic/magic.h):
// where the rewrite pre-generates one guarded rule set per adornment — and
// gives up past RewriteOptions::max_adorned_predicates — QSQR generates
// subqueries lazily at runtime, so the number of *distinct* binding
// patterns actually reached bounds the work, not the number expressible.
//
// The evaluator memoizes answers per predicate in reserved relations
// (`ans@<pred>`) inside the caller's FactDb, so the existing hash-index
// and cardinality-statistics machinery serves subquery probes, and the
// PR 7 cost-based planner orders each rule body for the call-time bound
// set (bound head variables are presented to the planner as constants).
// Evaluation runs recursive solve passes to a global fixpoint: within a
// pass each (predicate, adornment, bound-values) subquery is entered once
// (recursive re-entry reads the partial memo), and passes repeat until no
// relation gains an answer — the standard QSQR iteration.
//
// Supported fragment: positive literals, assignments and conditions —
// no negation, no aggregates, no existentials (Supports() checks the
// query's cone).  Deadline/cancel options are polled at every subquery
// entry and every few thousand probes, like the bottom-up engine.

#ifndef KGM_VADALOG_MAGIC_QSQR_H_
#define KGM_VADALOG_MAGIC_QSQR_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "vadalog/database.h"
#include "vadalog/engine.h"
#include "vadalog/magic/magic.h"

namespace kgm::vadalog::magic {

class QsqrEvaluator {
 public:
  struct Stats {
    size_t subqueries = 0;  // (pred, adornment, bound-values) solves entered
    size_t probes = 0;      // candidate rows examined
    size_t passes = 0;      // global fixpoint restarts
    size_t answers = 0;     // answer tuples memoized across all predicates
    size_t plans_reordered = 0;  // subquery bodies the planner reordered
  };

  // `db` holds the EDB and receives the `ans@` memo relations; it must
  // outlive the evaluator.  Honors options.deadline / options.cancel /
  // options.plan_mode; evaluation itself is sequential.
  QsqrEvaluator(const Program& program, FactDb* db, EngineOptions options);
  ~QsqrEvaluator();

  QsqrEvaluator(const QsqrEvaluator&) = delete;
  QsqrEvaluator& operator=(const QsqrEvaluator&) = delete;

  // Construction-time validation outcome.
  const Status& status() const;

  // True when every rule in `query_pred`'s cone is inside the supported
  // fragment (positive literals + assignments + conditions only).
  static bool Supports(const Program& program, const std::string& query_pred);

  // Answers for `query` (each tuple agrees with every bound position).
  // Repeatable: later queries reuse the memo tables.
  Result<std::vector<Tuple>> Query(const QueryBinding& query);

  const Stats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace kgm::vadalog::magic

#endif  // KGM_VADALOG_MAGIC_QSQR_H_
