// Parser for the Vadalog dialect.
//
// Grammar sketch (see ast.h for semantics):
//
//   program     := (rule | annotation)*
//   annotation  := '@' 'input' '(' STRING ')' '.'
//                | '@' 'output' '(' STRING ')' '.'
//                | '@' 'fact' IDENT '(' const (',' const)* ')' '.'
//   rule        := body '->' head '.'            (paper form)
//                | head ':-' body '.'            (Datalog form)
//   body        := element (',' element)*
//   element     := 'not' atom | atom | VAR '=' (aggregate | expr) | expr
//   head        := ('exists' exist_spec ','?)* atom (',' atom)*
//   exist_spec  := VAR ('=' IDENT '(' VAR (',' VAR)* ')')?
//   aggregate   := AGG '(' expr? (',' '<' VAR (',' VAR)* '>')? ')'
//
// Bare identifiers in argument positions are variables ('_' anonymous);
// constants are numbers, strings, true/false.  The aggregate functions are
// sum, prod, count, min, max, their monotonic m- forms, and pack.

#ifndef KGM_VADALOG_PARSER_H_
#define KGM_VADALOG_PARSER_H_

#include <string>

#include "base/status.h"
#include "vadalog/ast.h"

namespace kgm::vadalog {

// True if `name` is an aggregate function name.
bool IsAggregateFunction(const std::string& name);

// True if `name` is an explicitly monotonic aggregate (m-prefixed).
bool IsMonotonicAggregateName(const std::string& name);

// Parses a full program.
Result<Program> ParseProgram(std::string_view source);

// Parses a single rule (no trailing annotations).
Result<Rule> ParseRule(std::string_view source);

class TokenStream;

// Building blocks shared with the MetaLog parser.  Each consumes tokens from
// `ts` starting at the current position.
Result<ExprPtr> ParseExpression(TokenStream& ts);
Result<Term> ParseTermAt(TokenStream& ts);
// Parses the parenthesized argument part of `result_var = func(...)`; the
// caller has already consumed `result_var`, `=` and `func`.
Result<Aggregate> ParseAggregateBody(TokenStream& ts, std::string result_var,
                                     std::string func);
// Parses a (possibly empty) `exists v [= sk(args)]` prefix list.
Result<std::vector<ExistentialSpec>> ParseExistentialPrefix(TokenStream& ts);

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_PARSER_H_
