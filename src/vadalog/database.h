// Fact storage for the Vadalog engine.
//
// A FactDb maps predicate names to relations; a Relation is a deduplicated
// append-only tuple store with lazily built hash indexes over arbitrary
// position masks (used by the join in the semi-naive evaluator).
//
// Sharding & concurrent staging.  Each Relation is internally sharded:
// full-tuple hashes route dedup entries to one of N shards (N a power of
// two), and every shard owns its slice of the dedup table, a mutex, and a
// staging area for concurrent inserts.  The canonical tuple store — the
// `tuples()` vector, row ids, and the secondary hash indexes — stays
// unsharded and is only written single-threaded.  During a parallel engine
// phase the canonical store is frozen; work items call StageInsert, which
// dedups against the canonical store under only that shard's lock.  Every
// staged tuple carries a (work-item, sequence) tag.  At the barrier
// DrainStaged appends the staged tuples to the canonical store in ascending
// tag order, dropping same-barrier duplicates as they surface — so the
// minimum-tag copy of every tuple survives regardless of thread scheduling,
// which makes canonical row order — and therefore everything downstream of
// it — deterministic for any worker count.

#ifndef KGM_VADALOG_DATABASE_H_
#define KGM_VADALOG_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/value.h"

namespace kgm::vadalog {

using Tuple = std::vector<Value>;

size_t HashTuple(const Tuple& t);

// Hashes only positions selected by `mask` (bit i set = position i).
size_t HashTupleMasked(const Tuple& t, uint64_t mask);

// Caches the per-position value hashes of one tuple so that the full hash
// and any number of masked hashes can be derived without rehashing the
// values (string hashing dominates Insert otherwise).  Produces exactly the
// same hashes as HashTuple / HashTupleMasked.
class TupleHasher {
 public:
  explicit TupleHasher(const Tuple& t);

  size_t full() const { return full_; }
  size_t Masked(uint64_t mask) const;

 private:
  static constexpr size_t kInline = 16;
  size_t n_;
  size_t full_;
  const size_t* hashes_;
  size_t inline_[kInline];
  std::vector<size_t> heap_;
};

// Deterministic ordering tag for one staged insert: the submitting work
// item's submission index plus a per-item sequence number.
struct StageTag {
  uint32_t item = 0;
  uint32_t seq = 0;

  friend bool operator<(const StageTag& a, const StageTag& b) {
    return a.item != b.item ? a.item < b.item : a.seq < b.seq;
  }
};

// Approximate distinct-value counter for one tuple position: a 64-register
// HyperLogLog.  Add() folds in a value hash; Merge() takes the register-wise
// max, so per-shard register files built under the shard locks combine into
// the canonical file at drain time without any ordering constraint.  The
// register state is a pure function of the SET of hashes added — duplicate
// adds and add order are invisible — which keeps the estimates identical
// across thread and shard counts.  The relation feeds Value::StableHash so
// the estimates are also independent of process history (Skolem terms hash
// by content, not by intern-table index).
class DistinctSketch {
 public:
  static constexpr size_t kRegisters = 64;

  void Add(size_t hash);
  void Merge(const DistinctSketch& other);
  void Clear();

  // Approximate number of distinct hashes added.  Standard HLL estimator
  // with linear counting in the small range; exact 0 for an empty sketch.
  double Estimate() const;

 private:
  uint8_t regs_[kRegisters] = {0};
};

// Per-shard insert counters, accumulated into EngineStats after a run.
struct ShardCounters {
  size_t accepted = 0;     // staged inserts that were new tuples
  size_t duplicates = 0;   // staged inserts dropped as duplicates
  size_t contentions = 0;  // lock acquisitions that had to wait
};

class Relation {
 public:
  explicit Relation(size_t arity, size_t shard_count = 1);

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  // Deep copy: canonical tuples, dedup shards, and built indexes.  Much
  // cheaper than re-inserting (no value is rehashed).  Must not be called
  // with staged tuples pending.  The serving layer uses this to evaluate
  // queries against a cloned snapshot without mutating the published one.
  Relation Clone() const;

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  // Inserts (deduplicated); returns true if the tuple is new.  Not
  // thread-safe; must not run while staged tuples are pending.
  bool Insert(Tuple t);

  // Removes every listed tuple that is present; returns the number actually
  // removed (duplicates in `ts` and absent tuples are ignored).  Surviving
  // rows keep their relative order — row ids compact downwards — and the
  // dedup table plus every built index are rebuilt.  Not thread-safe; must
  // not run while staged tuples are pending.  Erasure is the one mutation
  // that invalidates previously observed row ids; it exists for incremental
  // maintenance (DRed overdeletion), not for the engine's fixpoint loop,
  // which remains append-only.
  size_t EraseTuples(const std::vector<Tuple>& ts);

  bool Contains(const Tuple& t) const;

  // Monotonic mutation counter: bumped every time the canonical store gains
  // or loses rows (an Insert that was new, a drain that appended, an erase
  // that removed).  Lets callers detect "relation unchanged" without
  // comparing contents.  Clone preserves the counter.
  uint64_t version() const { return version_; }

  // Order-independent content fingerprint: XOR of the full-tuple hashes of
  // the canonical rows, maintained incrementally by Insert / drains /
  // EraseTuples.  Two relations holding the same set of tuples have equal
  // fingerprints regardless of insertion order; unequal fingerprints imply
  // different contents (equal fingerprints can collide and callers needing
  // certainty must compare tuples).
  uint64_t content_hash() const { return fingerprint_; }

  // Row index of `t`, or kNoRow if absent.
  static constexpr size_t kNoRow = static_cast<size_t>(-1);
  size_t RowOf(const Tuple& t) const { return FindRow(t); }

  // Row indices whose masked positions equal the corresponding positions of
  // `probe`.  Builds (and afterwards maintains) a hash index for `mask` on
  // first use.  mask must have at least one bit set and fit the arity.
  const std::vector<uint32_t>& Lookup(uint64_t mask, const Tuple& probe);

  // Pre-builds the hash index for `mask` (no-op if already built).  Once
  // built, indexes are maintained incrementally by Insert and DrainStaged,
  // so the engine calls this before a parallel phase and probes with
  // LookupBuilt.
  void EnsureIndex(uint64_t mask);

  // Read-only probe: like Lookup, but requires EnsureIndex(mask) to have
  // been called.  Safe to call concurrently with other const methods.
  const std::vector<uint32_t>& LookupBuilt(uint64_t mask,
                                           const Tuple& probe) const;

  // Read-only probe that tolerates a missing index: returns nullptr when
  // no index has been built for `mask` (the caller falls back to a masked
  // scan) instead of CHECK-failing like LookupBuilt.  Safe to call
  // concurrently with other const methods.
  const std::vector<uint32_t>* TryLookupBuilt(uint64_t mask,
                                              const Tuple& probe) const;

  // True if row `i`'s masked positions equal those of `probe`.  Inline:
  // this is the verification step of every index probe, one of the
  // hottest paths of the join and the chase head-satisfaction screen.
  bool MatchesMasked(size_t i, uint64_t mask, const Tuple& probe) const {
    const Tuple& t = tuples_[i];
    for (size_t p = 0; mask != 0; ++p, mask >>= 1) {
      if ((mask & 1) && !(t[p] == probe[p])) return false;
    }
    return true;
  }

  // --- cardinality statistics -----------------------------------------------
  //
  // Cheap per-relation statistics for the cost-based join planner: the row
  // count (size()) plus a per-position approximate distinct count.  The
  // distinct-count registers are maintained incrementally — Insert folds the
  // per-position hashes it already computes, StageInsert updates a per-shard
  // register file under the shard lock, and DrainStaged / DrainPrepared merge
  // the shard files into the canonical one — so keeping them costs a few
  // table lookups per new tuple.  EraseTuples only marks them stale (HLL
  // registers cannot subtract); RefreshStats rebuilds from the surviving
  // rows on demand.

  // Approximate distinct-value count at position `pos`, clamped to
  // [1, size()] for a non-empty relation (0 when empty).  Meaningless while
  // stats_stale() — callers refresh first.
  double DistinctEstimate(size_t pos) const;

  // True after an erase invalidated the distinct-count registers.
  bool stats_stale() const { return stats_stale_; }

  // Rebuilds the distinct-count registers from the canonical rows when
  // stale (O(rows x arity) hashing); no-op otherwise.  Must not be called
  // with staged tuples pending.
  void RefreshStats();

  // --- sharded concurrent staging -------------------------------------------

  size_t shard_count() const { return shards_.size(); }

  // Redistributes the dedup table over `shard_count` shards (rounded up to
  // a power of two).  Buckets move by hash; tuples are not rehashed.  Must
  // not be called with staged tuples pending.  Resets the shard counters.
  void Reshard(size_t shard_count);

  // Thread-safe dedup-on-insert into the staging area.  Returns true if
  // the tuple was staged (i.e. absent from the canonical store); tuples
  // staged more than once within a barrier are resolved at DrainStaged,
  // where the minimum-tag copy wins, so canonical order stays
  // schedule-independent.  The caller must keep the canonical store frozen
  // (no Insert / EnsureIndex / DrainStaged) while stagings are in flight.
  bool StageInsert(StageTag tag, Tuple t);

  // Number of staged tuples.  Driver-only: not safe while StageInsert
  // calls are in flight.
  size_t StagedCount() const;

  // Staged tuples in one shard.  Driver-only.
  size_t StagedCountShard(size_t shard_index) const {
    return shards_[shard_index]->staged.size();
  }

  // Appends the staged tuples to the canonical store in ascending tag
  // order, dropping same-barrier duplicates and maintaining the dedup
  // table and every built index; returns the number of rows appended
  // (their row ids are [old size, new size)).  Reclassifies dropped
  // duplicates in the shard counters.  Driver-only.  Equivalent to
  // PrepareStagedShard on every shard followed by DrainPrepared.
  size_t DrainStaged();

  // Phase 1 of a two-phase drain, parallelizable per shard: sorts shard
  // `shard_index`'s staged tuples by tag, drops same-barrier duplicates
  // (equal tuples share a full hash, so every copy routes to the same
  // shard — dedup is shard-local and the minimum-tag copy survives), and
  // precomputes the hash every built index will need.  Tasks for distinct
  // shards of one relation may run concurrently; the canonical store must
  // stay frozen until DrainPrepared.
  void PrepareStagedShard(size_t shard_index);

  // Phase 2: merges the prepared shards into the canonical store in
  // ascending tag order.  After PrepareStagedShard every surviving tuple
  // is globally unique and absent from the canonical store, so this is a
  // pure merge-append — no hashing, no tuple comparisons.  Driver-only
  // (one caller per relation); returns the number of rows appended.
  size_t DrainPrepared();

  // Drops all staged tuples (used on error paths).  Driver-only.
  void DiscardStaged();

  // Adds this relation's per-shard counters into `by_shard` (resized as
  // needed) and the totals into `total`.  Driver-only.
  void AccumulateShardCounters(std::vector<ShardCounters>* by_shard,
                               ShardCounters* total) const;

 private:
  struct Bucket {
    std::vector<uint32_t> rows;
  };
  using HashIndex = std::unordered_map<size_t, Bucket>;

  // One staged (not yet canonical) tuple.
  struct Staged {
    StageTag tag;
    size_t hash = 0;
    Tuple tuple;
    // Filled by PrepareStagedShard: per-built-index masked hashes (in
    // indexes_ iteration order), and whether the entry lost a same-barrier
    // dedup race to a smaller-tag copy.
    std::vector<size_t> index_hashes;
    bool duplicate = false;
  };

  struct Shard {
    std::mutex mu;
    HashIndex dedup;  // full-tuple hash -> canonical rows (this shard's keys)
    std::vector<Staged> staged;
    ShardCounters counters;
    // Per-position distinct-count registers for tuples accepted into this
    // shard's staging area; merged into stats_sketches_ at drain.
    std::vector<DistinctSketch> staged_sketches;
  };

  Shard& ShardFor(size_t hash) const { return *shards_[hash & shard_mask_]; }
  size_t FindRow(const Tuple& t) const;
  // Canonical-store membership by precomputed hash.  Read-only.
  bool CanonicalContains(const Shard& shard, size_t hash,
                         const Tuple& t) const;

  size_t arity_;
  uint64_t version_ = 0;
  uint64_t fingerprint_ = 0;
  std::vector<Tuple> tuples_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  std::map<uint64_t, HashIndex> indexes_;  // mask -> index
  // Per-position distinct-count registers over the canonical rows (plus,
  // between StageInsert and drain, nothing — staged contributions live in
  // the shards until merged).  Invalid while stats_stale_.
  std::vector<DistinctSketch> stats_sketches_;
  bool stats_stale_ = false;
  static const std::vector<uint32_t> kEmptyRows;
};

class FactDb {
 public:
  FactDb() = default;
  FactDb(FactDb&&) = default;
  FactDb& operator=(FactDb&&) = default;
  FactDb(const FactDb&) = delete;
  FactDb& operator=(const FactDb&) = delete;

  // Deep copy of every relation (see Relation::Clone).
  FactDb Clone() const;

  // The relation for `pred`, created with `arity` if absent.  Aborts on an
  // arity conflict (callers validate programs first).
  Relation& GetOrCreate(const std::string& pred, size_t arity);

  // nullptr if the predicate has no facts.
  const Relation* Get(const std::string& pred) const;
  Relation* GetMutable(const std::string& pred);

  // Convenience: insert one fact.
  bool Add(const std::string& pred, Tuple t);

  // Moves a whole relation in under `pred`; aborts if the predicate
  // already exists.  Used to assemble a database from independently built
  // relations (e.g. cloning a snapshot's shared per-relation encoding).
  void Adopt(const std::string& pred, Relation rel);

  std::vector<std::string> Predicates() const;
  size_t TotalFacts() const;

  // Reshards every relation to `shard_count` (see Relation::Reshard) and
  // makes it the default for relations created afterwards.
  void ReshardAll(size_t shard_count);
  size_t default_shard_count() const { return default_shard_count_; }

  // Visits every relation in predicate order.  Driver-only.
  template <typename Fn>
  void ForEachRelation(Fn&& fn) {
    for (auto& [pred, rel] : relations_) fn(pred, rel);
  }

  std::string DebugString() const;

 private:
  std::map<std::string, Relation> relations_;
  size_t default_shard_count_ = 1;
};

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_DATABASE_H_
