// Fact storage for the Vadalog engine.
//
// A FactDb maps predicate names to relations; a Relation is a deduplicated
// append-only tuple store with lazily built hash indexes over arbitrary
// position masks (used by the join in the semi-naive evaluator).

#ifndef KGM_VADALOG_DATABASE_H_
#define KGM_VADALOG_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/value.h"

namespace kgm::vadalog {

using Tuple = std::vector<Value>;

size_t HashTuple(const Tuple& t);

// Hashes only positions selected by `mask` (bit i set = position i).
size_t HashTupleMasked(const Tuple& t, uint64_t mask);

class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  // Inserts (deduplicated); returns true if the tuple is new.
  bool Insert(Tuple t);

  bool Contains(const Tuple& t) const;

  // Row index of `t`, or kNoRow if absent.
  static constexpr size_t kNoRow = static_cast<size_t>(-1);
  size_t RowOf(const Tuple& t) const { return FindRow(t); }

  // Row indices whose masked positions equal the corresponding positions of
  // `probe`.  Builds (and afterwards maintains) a hash index for `mask` on
  // first use.  mask must have at least one bit set and fit the arity.
  const std::vector<uint32_t>& Lookup(uint64_t mask, const Tuple& probe);

  // Pre-builds the hash index for `mask` (no-op if already built).  Once
  // built, indexes are maintained incrementally by Insert, so the engine
  // calls this before a parallel join phase and probes with LookupBuilt.
  void EnsureIndex(uint64_t mask);

  // Read-only probe: like Lookup, but requires EnsureIndex(mask) to have
  // been called.  Safe to call concurrently with other const methods.
  const std::vector<uint32_t>& LookupBuilt(uint64_t mask,
                                           const Tuple& probe) const;

  // True if row `i`'s masked positions equal those of `probe`.
  bool MatchesMasked(size_t i, uint64_t mask, const Tuple& probe) const;

 private:
  struct Bucket {
    std::vector<uint32_t> rows;
  };
  using HashIndex = std::unordered_map<size_t, Bucket>;

  size_t FindRow(const Tuple& t) const;

  size_t arity_;
  std::vector<Tuple> tuples_;
  HashIndex dedup_;                          // full-tuple hash -> rows
  std::map<uint64_t, HashIndex> indexes_;    // mask -> index
  static const std::vector<uint32_t> kEmptyRows;
};

class FactDb {
 public:
  FactDb() = default;
  FactDb(FactDb&&) = default;
  FactDb& operator=(FactDb&&) = default;
  FactDb(const FactDb&) = delete;
  FactDb& operator=(const FactDb&) = delete;

  // The relation for `pred`, created with `arity` if absent.  Aborts on an
  // arity conflict (callers validate programs first).
  Relation& GetOrCreate(const std::string& pred, size_t arity);

  // nullptr if the predicate has no facts.
  const Relation* Get(const std::string& pred) const;
  Relation* GetMutable(const std::string& pred);

  // Convenience: insert one fact.
  bool Add(const std::string& pred, Tuple t);

  std::vector<std::string> Predicates() const;
  size_t TotalFacts() const;

  std::string DebugString() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_DATABASE_H_
