// The Vadalog reasoning engine.
//
// Semi-naive, stratified, bottom-up evaluation of existential rule programs
// (the chase).  Features, following Section 4 of the paper:
//
//  * existential quantification, materialized either through linker Skolem
//    functors (explicit `exists v = sk(x)` or automatic frontier
//    Skolemization) or through fresh labeled nulls with a restricted-chase
//    satisfaction check;
//  * stratified negation;
//  * aggregation: ordinary group-by semantics in non-recursive rules,
//    Vadalog-style *monotonic* aggregation inside recursion (this is what
//    makes the company-control program of Example 4.1/4.2 converge);
//  * scalar assignments and Boolean conditions;
//  * a fact budget that turns runaway chases into ResourceExhausted errors.
//
// Usage:
//   KGM_ASSIGN_OR_RETURN(Program p, ParseProgram(src));
//   Engine engine(std::move(p));
//   KGM_RETURN_IF_ERROR(engine.Run(&db));   // db: EDB in, EDB+IDB out

#ifndef KGM_VADALOG_ENGINE_H_
#define KGM_VADALOG_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "vadalog/analysis.h"
#include "vadalog/ast.h"
#include "vadalog/database.h"
#include "vadalog/planner.h"

namespace kgm::vadalog {

enum class ChaseMode {
  // Existentials become deterministic Skolem terms over the rule frontier.
  kSkolem,
  // Existentials become fresh labeled nulls, guarded by a head-satisfaction
  // check (the restricted / standard chase).
  kRestricted,
};

struct EngineOptions {
  ChaseMode chase_mode = ChaseMode::kSkolem;
  // Hard ceiling on the total number of facts in the database.
  size_t max_facts = 50'000'000;
  // Hard ceiling on fixpoint iterations per stratum.
  size_t max_iterations = 10'000'000;
  // Worker threads for rule evaluation.  0 = hardware_concurrency.
  // 1 = single-threaded evaluation.  With more than one thread the engine
  // evaluates Phase-A (rule x scan-partition) and Phase-B (rule x
  // delta-literal x delta-partition) work items concurrently.  Work items
  // insert derived facts directly into the sharded FactDb (dedup-on-insert
  // under per-shard locks, tagged with the work-item submission order); at
  // the iteration barrier the shards are drained into the canonical store
  // in tag order, so results are deterministic for any worker count (see
  // DESIGN.md, "Sharded FactDb & deterministic merge").  Restricted-chase
  // programs with existentials instead run the deterministic barrier
  // chase at every thread count, including 1: workers record candidate
  // firings against the frozen pre-barrier database and the driver
  // re-checks head satisfaction and mints nulls in ascending (item, seq)
  // order, so minted null ids — and all downstream tuples — are
  // bit-identical for any worker count (see DESIGN.md, "Deterministic
  // parallel restricted chase").
  size_t num_threads = 0;
  // Opt back into the pre-barrier eager restricted chase: single-threaded,
  // with a live head-satisfaction check and null minting inline at each
  // firing.  Output is identical to the barrier chase (the differential
  // test asserts it); the engine forces one worker and reports
  // sequential_fallback = true.  Exists as an in-binary baseline for
  // benchmarking and differential testing — not recommended otherwise:
  // the barrier chase screens and dedups firings in bulk and is faster
  // even single-threaded.  Ignored unless the program has existentials
  // under ChaseMode::kRestricted.
  bool legacy_sequential_chase = false;
  // Shards per relation for the parallel path (rounded up to a power of
  // two).  0 = auto: scales with the worker count.  Ignored by sequential
  // runs, which keep single-shard relations.
  size_t num_shards = 0;
  // Cooperative deadline: when set (non-default time_point), the engine
  // polls the clock at evaluation checkpoints — stratum/batch boundaries,
  // every fixpoint iteration, and every few tens of thousands of join
  // probes — and Run returns DeadlineExceeded with the stats gathered so
  // far.  Derived facts of completed barriers stay in the database;
  // callers that need isolation evaluate against a throwaway FactDb (the
  // serving layer clones the snapshot).
  std::chrono::steady_clock::time_point deadline{};
  // Cooperative cancellation: polled at the same checkpoints as
  // `deadline`; setting the flag makes Run return DeadlineExceeded.  The
  // flag is read with relaxed ordering, so it may take one checkpoint for
  // a store from another thread to be observed.
  std::shared_ptr<const std::atomic<bool>> cancel;
  // Cost-based join planning (vadalog/planner.h).  kGreedy reorders rule
  // bodies by estimated selectivity and picks index-vs-scan per literal;
  // materialized output stays bit-identical to kOff at every thread count
  // (reordered rules collect firings and flush them in written-literal row
  // order, restoring the exact off-mode emission sequence).  Ignored for
  // legacy_sequential_chase runs.
  PlanMode plan_mode = PlanMode::kOff;
};

struct EngineStats {
  size_t facts_derived = 0;    // new facts added by rules
  size_t rule_firings = 0;     // satisfied body matches
  size_t iterations = 0;       // fixpoint rounds across all strata
  int strata = 0;
  size_t join_probes = 0;      // candidate rows examined by joins
  // Effective worker count of the run: equals requested_threads unless the
  // engine had to force a smaller count.  A user-requested num_threads=1 is
  // NOT a fallback — see sequential_fallback.
  size_t threads_used = 1;
  size_t requested_threads = 1;  // pool size the options asked for
  // True only when the engine forced fewer threads than requested.  Since
  // the deterministic barrier chase landed this happens only when the
  // caller opts into EngineOptions::legacy_sequential_chase; restricted-
  // chase programs with existentials otherwise run multi-threaded.
  bool sequential_fallback = false;
  // Deterministic restricted chase (barrier protocol) observability.
  size_t chase_candidates = 0;     // firings recorded for barrier re-check
  size_t chase_screened = 0;       // firings dropped by the frozen pre-check
  size_t chase_deduped = 0;        // duplicate firings dropped worker-side
  size_t chase_rechecks = 0;       // candidates re-checked at barriers
  size_t chase_recheck_drops = 0;  // dropped: satisfied by same-barrier facts
  size_t nulls_minted = 0;         // fresh labeled nulls created by the run
  double chase_replay_seconds = 0; // ordered candidate replay at barriers
  // Wall-clock seconds spent in the (possibly pooled) join phase between
  // barriers — the part of an iteration that scales with worker count.
  double eval_seconds = 0;
  // Sharded-insert observability (parallel runs only).
  size_t shard_count = 1;         // shards per relation
  size_t staged_inserts = 0;      // concurrent inserts accepted by shards
  size_t staged_duplicates = 0;   // concurrent inserts dropped as duplicates
  size_t shard_contentions = 0;   // shard lock acquisitions that had to wait
  std::vector<size_t> inserts_by_shard;  // accepted inserts per shard index
  double merge_seconds = 0;        // barrier drains (canonical + delta)
  double agg_finalize_seconds = 0; // aggregate fold + finalize at barriers
  // Indexed by rule position in the program.
  std::vector<size_t> rule_firings_by_rule;
  std::vector<size_t> rule_probes_by_rule;
  // Wall-clock seconds per stratum, in evaluation order.
  std::vector<double> stratum_seconds;
  // Cost-based join planning observability (EngineOptions::plan_mode).
  bool planner_enabled = false;
  size_t plans_built = 0;      // plans constructed (incl. replans)
  size_t plans_reordered = 0;  // built plans whose order differs from text
  size_t plan_cache_hits = 0;  // PlanFor calls served from cache
  size_t plan_replans = 0;     // rebuilds triggered by stats drift / erase
  // Sum over cached plans of (est_probes_written - est_probes) * uses:
  // the estimator's own account of probes avoided by reordering.
  double est_probes_saved = 0;
  // Every cached plan (per rule / regime / delta literal) with estimates
  // and usage counters.
  std::vector<PlanSnapshot> rule_plans;
  // Query-driven point-query observability (vadalog/magic/point_query.h).
  // Engine::Run never touches these; the magic::EvalPointQuery dispatcher
  // fills them on the stats it reports, so service/bench counters read one
  // struct whichever route a query took.
  bool point_query = false;    // stats describe a point-query evaluation
  size_t magic_rewrites = 0;   // magic-sets rewrites applied (0 or 1)
  size_t magic_fallbacks = 0;  // fell back to full materialization (0 or 1)
  size_t magic_subqueries = 0; // adorned predicates / QSQR subqueries
  size_t magic_rules = 0;      // magic + guarded + copy rules emitted
};

class Engine {
 public:
  // Validates and stratifies `program`; check status() before Run.
  explicit Engine(Program program, EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Construction-time validation outcome.
  const Status& status() const { return init_status_; }

  const Program& program() const { return program_; }
  const Stratification& stratification() const { return strat_; }

  // Evaluates the program to fixpoint against `db`.  Facts declared in the
  // program text are inserted first.  Derived facts are added in place.
  Status Run(FactDb* db);

  // Evaluates only the strata whose SCC ids appear in `strata` (see
  // stratification()), assuming every lower stratum is already materialized
  // in `db`.  Program facts are (re-)inserted first; inserts are
  // deduplicated, so re-running a stratum whose head relations were reset
  // to their EDB base reproduces exactly the evaluation a full Run would
  // perform at that stratum.  Used by incremental maintenance
  // (vadalog/incremental.h) to recompute a suffix of the program after a
  // delta.
  Status RunStrata(FactDb* db, const std::set<int>& strata);

  const EngineStats& stats() const { return stats_; }

 private:
  friend class DeltaEvaluator;
  struct Impl;

  Program program_;
  EngineOptions options_;
  Status init_status_;
  Stratification strat_;
  EngineStats stats_;
};

// Convenience: parse, validate and run `source` against `db`.
Status RunProgram(std::string_view source, FactDb* db,
                  EngineOptions options = {});

// Rule-at-a-time evaluation over a validated engine's compiled program,
// built for the DRed incremental maintainer (vadalog/incremental.h).
// Instead of inserting derived facts into the database, every head
// derivation is reported through an emit callback, so the caller can run
// overdeletion (collect heads reachable from deleted tuples), rederivation
// (probe whether a specific tuple is still derivable) and semi-naive insert
// rounds without the engine's fixpoint driver.
//
// Evaluation is sequential and reuses the engine's own join/binding/emit
// machinery — assignments-as-equality-constraints, condition splits and
// Skolem interning behave exactly as in Engine::Run, which is what makes
// the maintained database converge to the from-scratch result.  The
// database may be mutated between calls (the maintainer erases and inserts
// tuples as phases complete); it must not be mutated during a call.
class DeltaEvaluator {
 public:
  // `engine` must have ok status and outlive the evaluator; `db` is the
  // database joins read.  Compiles the program once.
  DeltaEvaluator(Engine* engine, FactDb* db);
  ~DeltaEvaluator();

  DeltaEvaluator(const DeltaEvaluator&) = delete;
  DeltaEvaluator& operator=(const DeltaEvaluator&) = delete;

  // Construction-time compilation outcome.
  const Status& status() const;

  using EmitFn = std::function<void(const std::string& pred, Tuple t)>;

  // Evaluates rule `rule_index` with its `literal_index`-th *positive* body
  // literal restricted to the tuples of `delta_rels[pred]` (the literal's
  // predicate; absent predicate = no matches); every other literal joins
  // against the live database.  Calls `emit` once per derived head atom.
  Status EvalRuleDelta(size_t rule_index, size_t literal_index,
                       std::map<std::string, Relation>& delta_rels,
                       const EmitFn& emit);

  // Evaluates rule `rule_index` with the universal variables of head atom
  // `head_index` pre-bound from `target` (a tuple of that head predicate's
  // arity).  Existential head positions are left free — their Skolem terms
  // re-intern to the original values when the body matches.  Calls `emit`
  // for every derivation; the caller checks whether any emission equals
  // `target` to decide rederivability.  A constant head position that
  // conflicts with `target` simply produces no emissions.
  Status EvalRuleSeeded(size_t rule_index, size_t head_index,
                        const Tuple& target, const EmitFn& emit);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_ENGINE_H_
