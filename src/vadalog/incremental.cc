#include "vadalog/incremental.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "base/check.h"

namespace kgm::vadalog {

namespace {

struct TupleHashFn {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};

using TupleSet = std::unordered_set<Tuple, TupleHashFn>;
using TupleListMap = std::map<std::string, std::vector<Tuple>>;

bool NonEmpty(const TupleListMap& m, const std::string& pred) {
  auto it = m.find(pred);
  return it != m.end() && !it->second.empty();
}

}  // namespace

std::vector<std::string> EdbDelta::TouchedPredicates() const {
  std::set<std::string> preds;
  for (const auto& [p, ts] : inserts) {
    if (!ts.empty()) preds.insert(p);
  }
  for (const auto& [p, ts] : deletes) {
    if (!ts.empty()) preds.insert(p);
  }
  return std::vector<std::string>(preds.begin(), preds.end());
}

const char* MaintenanceModeName(MaintenanceMode mode) {
  switch (mode) {
    case MaintenanceMode::kDRed:
      return "dred";
    case MaintenanceMode::kRecomputeStrata:
      return "recompute-strata";
    case MaintenanceMode::kFullRerun:
      return "full-rerun";
  }
  return "unknown";
}

// --- State -------------------------------------------------------------------

struct IncrementalView::State {
  EngineOptions options;
  Engine engine;
  Status init;
  bool initialized = false;
  MaintenanceMode mode = MaintenanceMode::kDRed;

  FactDb edb;  // extensional base, program facts included
  FactDb db;   // maintained materialization

  std::set<std::string> last_changed;
  IncrementalStats last_stats;

  // --- static program metadata (derived once at construction) ---
  struct StratumInfo {
    std::vector<size_t> rules;      // rule indices, program order
    std::set<std::string> heads;    // head predicates of those rules
    std::set<std::string> pos_body; // positive body predicates
    std::set<std::string> neg_body; // negated body predicates
  };
  std::map<int, StratumInfo> strata;        // rule strata only, ascending
  std::set<std::string> all_heads;          // IDB predicates
  std::map<std::string, size_t> pred_arity; // from the program text
  // Per rule: predicate of each positive body literal (in literal order —
  // matching DeltaEvaluator's positive indexing) and of each head atom.
  std::vector<std::vector<std::string>> rule_positives;
  std::vector<std::vector<std::string>> rule_heads;

  State(Program program, EngineOptions opts)
      : options(opts), engine(std::move(program), opts) {
    init = engine.status();
    if (!init.ok()) return;
    const Program& p = engine.program();
    const Stratification& strat = engine.stratification();
    rule_positives.resize(p.rules.size());
    rule_heads.resize(p.rules.size());
    bool has_existentials = false;
    bool has_aggregates = false;
    for (size_t i = 0; i < p.rules.size(); ++i) {
      const Rule& r = p.rules[i];
      StratumInfo& info = strata[strat.rule_stratum[i]];
      info.rules.push_back(i);
      for (const Literal& l : r.body) {
        pred_arity.emplace(l.atom.predicate, l.atom.args.size());
        if (l.negated) {
          info.neg_body.insert(l.atom.predicate);
        } else {
          info.pos_body.insert(l.atom.predicate);
          rule_positives[i].push_back(l.atom.predicate);
        }
      }
      for (const Atom& h : r.head) {
        pred_arity.emplace(h.predicate, h.args.size());
        info.heads.insert(h.predicate);
        all_heads.insert(h.predicate);
        rule_heads[i].push_back(h.predicate);
      }
      if (!r.existentials.empty()) has_existentials = true;
      if (!r.aggregates.empty()) has_aggregates = true;
    }
    for (const FactDecl& f : p.facts) {
      pred_arity.emplace(f.predicate, f.values.size());
    }
    if (options.chase_mode == ChaseMode::kRestricted && has_existentials) {
      // Labeled nulls come from a run-global counter; partial re-evaluation
      // would renumber them.
      mode = MaintenanceMode::kFullRerun;
    } else if (has_aggregates) {
      // A folded accumulator cannot un-fold a deleted contribution.
      mode = MaintenanceMode::kRecomputeStrata;
    } else {
      mode = MaintenanceMode::kDRed;
    }
  }

  size_t ArityOf(const std::string& pred, size_t fallback) const {
    auto it = pred_arity.find(pred);
    return it != pred_arity.end() ? it->second : fallback;
  }

  // Normalizes `delta` against the current EDB and applies the net change
  // to it: d_del gets the deletions that removed a present tuple, d_ins the
  // insertions that added an absent one, with delete+reinsert pairs of
  // present tuples cancelled (deletes apply before inserts).  After the
  // call d_del[p] and d_ins[p] are disjoint and exactly describe how
  // edb[p] changed.
  Status NormalizeAndApplyEdb(const EdbDelta& delta, TupleListMap* d_del,
                              TupleListMap* d_ins);

  Status ApplyFullRerun();
  Status ApplyRecompute(TupleListMap& d_del, TupleListMap& d_ins);
  Status ApplyDRed(TupleListMap& d_del, TupleListMap& d_ins);

  // Applies the net EDB change to the materialized db for predicates that
  // are not IDB heads (head predicates are handled by their stratum).
  void ApplyEdbToDbForNonHeads(const TupleListMap& d_del,
                               const TupleListMap& d_ins);

  // Recomputes one stratum from its EDB base via Engine::RunStrata.  When
  // `diffs` is true (DRed negation fallback) the set-level differences of
  // each head predicate are written back into d_del / d_ins for downstream
  // strata.
  Status RecomputeStratum(int stratum, const StratumInfo& info, bool diffs,
                          TupleListMap* d_del, TupleListMap* d_ins);

  Status DRedStratum(const StratumInfo& info, DeltaEvaluator& dev,
                     TupleListMap* d_del, TupleListMap* d_ins);
};

Status IncrementalView::State::NormalizeAndApplyEdb(const EdbDelta& delta,
                                                    TupleListMap* d_del,
                                                    TupleListMap* d_ins) {
  std::set<std::string> preds;
  for (const auto& [p, ts] : delta.deletes) {
    if (!ts.empty()) preds.insert(p);
  }
  for (const auto& [p, ts] : delta.inserts) {
    if (!ts.empty()) preds.insert(p);
  }
  for (const std::string& pred : preds) {
    // Arity validation: against the program first, then against any
    // existing relation, then internal consistency of the delta itself.
    size_t arity = 0;
    bool have_arity = false;
    if (auto it = pred_arity.find(pred); it != pred_arity.end()) {
      arity = it->second;
      have_arity = true;
    } else if (const Relation* rel = edb.Get(pred); rel != nullptr) {
      arity = rel->arity();
      have_arity = true;
    }
    auto check = [&](const std::vector<Tuple>& ts) -> Status {
      for (const Tuple& t : ts) {
        if (!have_arity) {
          arity = t.size();
          have_arity = true;
        }
        if (t.size() != arity) {
          return InvalidArgument("delta tuple for predicate " + pred +
                                 " has arity " + std::to_string(t.size()) +
                                 " but " + std::to_string(arity) +
                                 " was expected");
        }
      }
      return OkStatus();
    };
    if (auto it = delta.deletes.find(pred); it != delta.deletes.end()) {
      KGM_RETURN_IF_ERROR(check(it->second));
    }
    if (auto it = delta.inserts.find(pred); it != delta.inserts.end()) {
      KGM_RETURN_IF_ERROR(check(it->second));
    }

    const Relation* existing = edb.Get(pred);
    TupleSet del_set;
    std::vector<Tuple> dels;
    if (auto it = delta.deletes.find(pred); it != delta.deletes.end()) {
      for (const Tuple& t : it->second) {
        if (existing == nullptr || !existing->Contains(t)) continue;
        if (!del_set.insert(t).second) continue;
        dels.push_back(t);
      }
    }
    TupleSet ins_set;
    std::vector<Tuple> inss;
    if (auto it = delta.inserts.find(pred); it != delta.inserts.end()) {
      for (const Tuple& t : it->second) {
        bool present =
            existing != nullptr && existing->Contains(t) && del_set.count(t) == 0;
        if (present) continue;
        if (!ins_set.insert(t).second) continue;
        inss.push_back(t);
      }
    }
    // Cancel delete+reinsert pairs: net effect on the EDB is none.
    std::vector<Tuple> net_del;
    for (Tuple& t : dels) {
      if (ins_set.count(t) == 0) net_del.push_back(std::move(t));
    }
    std::vector<Tuple> net_ins;
    for (Tuple& t : inss) {
      if (del_set.count(t) == 0) net_ins.push_back(std::move(t));
    }
    if (net_del.empty() && net_ins.empty()) continue;
    Relation& rel = edb.GetOrCreate(pred, ArityOf(pred, net_del.empty()
                                                            ? net_ins[0].size()
                                                            : net_del[0].size()));
    size_t erased = rel.EraseTuples(net_del);
    KGM_CHECK(erased == net_del.size());
    for (const Tuple& t : net_ins) rel.Insert(t);
    last_stats.edb_deleted += net_del.size();
    last_stats.edb_inserted += net_ins.size();
    if (!net_del.empty()) (*d_del)[pred] = std::move(net_del);
    if (!net_ins.empty()) (*d_ins)[pred] = std::move(net_ins);
  }
  return OkStatus();
}

void IncrementalView::State::ApplyEdbToDbForNonHeads(
    const TupleListMap& d_del, const TupleListMap& d_ins) {
  for (const auto& [pred, ts] : d_del) {
    if (all_heads.count(pred) > 0) continue;
    Relation* rel = db.GetMutable(pred);
    if (rel != nullptr) rel->EraseTuples(ts);
    last_changed.insert(pred);
  }
  for (const auto& [pred, ts] : d_ins) {
    if (all_heads.count(pred) > 0) continue;
    Relation& rel = db.GetOrCreate(pred, ts[0].size());
    for (const Tuple& t : ts) rel.Insert(t);
    last_changed.insert(pred);
  }
}

Status IncrementalView::State::ApplyFullRerun() {
  FactDb fresh = edb.Clone();
  KGM_RETURN_IF_ERROR(engine.Run(&fresh));
  // Diff against the previous materialization so the serving layer learns
  // which relations to re-encode; order-sensitive on purpose.
  for (const std::string& pred : fresh.Predicates()) {
    const Relation* now = fresh.Get(pred);
    const Relation* was = db.Get(pred);
    if (was == nullptr || was->size() != now->size() ||
        was->content_hash() != now->content_hash() ||
        was->tuples() != now->tuples()) {
      last_changed.insert(pred);
    }
  }
  for (const std::string& pred : db.Predicates()) {
    if (fresh.Get(pred) == nullptr && db.Get(pred)->size() > 0) {
      last_changed.insert(pred);
    }
  }
  db = std::move(fresh);
  return OkStatus();
}

Status IncrementalView::State::RecomputeStratum(int stratum,
                                                const StratumInfo& info,
                                                bool diffs,
                                                TupleListMap* d_del,
                                                TupleListMap* d_ins) {
  std::map<std::string, Relation> old;
  for (const std::string& pred : info.heads) {
    Relation& rel = db.GetOrCreate(pred, ArityOf(pred, 0));
    size_t arity = rel.arity();
    old.emplace(pred, std::move(rel));
    const Relation* base = edb.Get(pred);
    rel = base != nullptr ? base->Clone() : Relation(arity);
  }
  KGM_RETURN_IF_ERROR(engine.RunStrata(&db, {stratum}));
  for (const std::string& pred : info.heads) {
    const Relation& now = *db.Get(pred);
    const Relation& was = old.at(pred);
    bool same_ordered = was.size() == now.size() &&
                        was.content_hash() == now.content_hash() &&
                        was.tuples() == now.tuples();
    if (!same_ordered) last_changed.insert(pred);
    if (!diffs) continue;
    // Set-level differences feed the DRed deltas of downstream strata.
    std::vector<Tuple> added;
    for (const Tuple& t : now.tuples()) {
      if (!was.Contains(t)) added.push_back(t);
    }
    std::vector<Tuple> removed;
    for (const Tuple& t : was.tuples()) {
      if (!now.Contains(t)) removed.push_back(t);
    }
    last_stats.idb_inserted += added.size();
    last_stats.idb_deleted += removed.size();
    if (!added.empty()) {
      (*d_ins)[pred] = std::move(added);
    } else {
      d_ins->erase(pred);
    }
    if (!removed.empty()) {
      (*d_del)[pred] = std::move(removed);
    } else {
      d_del->erase(pred);
    }
  }
  return OkStatus();
}

Status IncrementalView::State::ApplyRecompute(TupleListMap& d_del,
                                              TupleListMap& d_ins) {
  ApplyEdbToDbForNonHeads(d_del, d_ins);
  for (const auto& [stratum, info] : strata) {
    bool head_delta = false;
    for (const std::string& p : info.heads) {
      if (NonEmpty(d_del, p) || NonEmpty(d_ins, p)) head_delta = true;
    }
    bool inputs_changed = false;
    for (const std::string& p : info.pos_body) {
      if (last_changed.count(p) > 0) inputs_changed = true;
    }
    for (const std::string& p : info.neg_body) {
      if (last_changed.count(p) > 0) inputs_changed = true;
    }
    if (!head_delta && !inputs_changed) {
      ++last_stats.strata_skipped;
      continue;
    }
    KGM_RETURN_IF_ERROR(
        RecomputeStratum(stratum, info, /*diffs=*/false, &d_del, &d_ins));
    ++last_stats.strata_recomputed;
    ++last_stats.strata_processed;
  }
  return OkStatus();
}

Status IncrementalView::State::DRedStratum(const StratumInfo& info,
                                           DeltaEvaluator& dev,
                                           TupleListMap* d_del,
                                           TupleListMap* d_ins) {
  using PhaseClock = std::chrono::steady_clock;
  auto phase_start = PhaseClock::now();
  auto take_phase = [&phase_start]() {
    auto now = PhaseClock::now();
    double s = std::chrono::duration<double>(now - phase_start).count();
    phase_start = now;
    return s;
  };
  auto make_delta_rels = [&](const TupleListMap& frontier) {
    std::map<std::string, Relation> rels;
    for (const auto& [pred, ts] : frontier) {
      Relation rel(ts[0].size());
      for (const Tuple& t : ts) rel.Insert(t);
      rels.emplace(pred, std::move(rel));
    }
    return rels;
  };

  // --- overdeletion ----------------------------------------------------------
  // Deleted upstream tuples were already erased from db when their stratum
  // (or the EDB application) ran; re-insert them for the duration of the
  // overdeletion evaluation so every invalidated derivation — including
  // ones that used several deleted facts at once — is still joinable.
  TupleListMap tmp_inserted;
  for (const std::string& pred : info.pos_body) {
    if (info.heads.count(pred) > 0) continue;
    auto it = d_del->find(pred);
    if (it == d_del->end() || it->second.empty()) continue;
    Relation& rel = db.GetOrCreate(pred, it->second[0].size());
    for (const Tuple& t : it->second) {
      if (rel.Insert(t)) tmp_inserted[pred].push_back(t);
    }
  }

  TupleListMap over;             // overdeleted tuples per head pred, in order
  std::map<std::string, TupleSet> over_sets;
  TupleListMap frontier;
  for (const std::string& pred : info.pos_body) {
    auto it = d_del->find(pred);
    if (it != d_del->end() && !it->second.empty()) frontier[pred] = it->second;
  }
  for (const std::string& pred : info.heads) {
    auto it = d_del->find(pred);
    if (it == d_del->end() || it->second.empty()) continue;
    // EDB deletions of an IDB predicate: the tuples lose their base support
    // and enter overdeletion; rederivation decides whether a rule still
    // proves them.  They also seed rule firings (handled via `frontier`
    // when the predicate occurs in a body).
    for (const Tuple& t : it->second) {
      if (over_sets[pred].insert(t).second) over[pred].push_back(t);
    }
    if (info.pos_body.count(pred) == 0) frontier[pred] = it->second;
  }
  while (!frontier.empty()) {
    std::map<std::string, Relation> delta_rels = make_delta_rels(frontier);
    TupleListMap next;
    for (size_t ri : info.rules) {
      const std::vector<std::string>& pos = rule_positives[ri];
      for (size_t li = 0; li < pos.size(); ++li) {
        if (frontier.find(pos[li]) == frontier.end()) continue;
        KGM_RETURN_IF_ERROR(dev.EvalRuleDelta(
            ri, li, delta_rels, [&](const std::string& hp, Tuple t) {
              if (over_sets[hp].count(t) > 0) return;
              const Relation* cur = db.Get(hp);
              if (cur == nullptr || !cur->Contains(t)) return;
              over_sets[hp].insert(t);
              over[hp].push_back(t);
              next[hp].push_back(std::move(t));
            }));
      }
    }
    frontier = std::move(next);
  }

  // Erase the overdeletions and drop the temporary re-inserts: from here on
  // the database reflects the post-deletion world.
  for (auto& [pred, ts] : over) {
    db.GetMutable(pred)->EraseTuples(ts);
    last_stats.overdeleted += ts.size();
  }
  for (auto& [pred, ts] : tmp_inserted) {
    db.GetMutable(pred)->EraseTuples(ts);
  }
  last_stats.overdelete_seconds += take_phase();

  // --- rederivation ----------------------------------------------------------
  // A tuple comes back when the post-delta EDB still supports it or some
  // rule still derives it from surviving facts.  Each rescue can enable
  // another, so iterate to a fixpoint.
  std::map<std::string, std::vector<char>> alive;
  for (const auto& [pred, ts] : over) alive[pred].assign(ts.size(), 0);
  bool again = true;
  while (again) {
    again = false;
    for (const auto& [pred, ts] : over) {
      std::vector<char>& flags = alive[pred];
      const Relation* base = edb.Get(pred);
      for (size_t i = 0; i < ts.size(); ++i) {
        if (flags[i]) continue;
        const Tuple& t = ts[i];
        bool derivable = base != nullptr && base->Contains(t);
        for (size_t ri : info.rules) {
          if (derivable) break;
          const std::vector<std::string>& heads = rule_heads[ri];
          for (size_t hi = 0; hi < heads.size() && !derivable; ++hi) {
            if (heads[hi] != pred) continue;
            bool found = false;
            KGM_RETURN_IF_ERROR(dev.EvalRuleSeeded(
                ri, hi, t, [&](const std::string& ep, Tuple et) {
                  if (!found && ep == pred && et == t) found = true;
                }));
            derivable = found;
          }
        }
        if (derivable) {
          db.GetMutable(pred)->Insert(t);
          flags[i] = 1;
          ++last_stats.rederived;
          again = true;
        }
      }
    }
  }

  last_stats.rederive_seconds += take_phase();

  // Permanent deletions of this stratum's head predicates.
  TupleListMap perm;
  for (auto& [pred, ts] : over) {
    const std::vector<char>& flags = alive[pred];
    for (size_t i = 0; i < ts.size(); ++i) {
      if (!flags[i]) perm[pred].push_back(std::move(ts[i]));
    }
  }

  // --- insertion -------------------------------------------------------------
  TupleListMap new_ins;
  frontier.clear();
  for (const std::string& pred : info.pos_body) {
    if (info.heads.count(pred) > 0) continue;
    auto it = d_ins->find(pred);
    if (it != d_ins->end() && !it->second.empty()) frontier[pred] = it->second;
  }
  for (const std::string& pred : info.heads) {
    auto it = d_ins->find(pred);
    if (it == d_ins->end() || it->second.empty()) continue;
    Relation& rel = db.GetOrCreate(pred, it->second[0].size());
    for (const Tuple& t : it->second) {
      // May already be derived, in which case the EDB insert changes
      // nothing.
      if (rel.Insert(t)) {
        new_ins[pred].push_back(t);
        frontier[pred].push_back(t);
      }
    }
  }
  while (!frontier.empty()) {
    std::map<std::string, Relation> delta_rels = make_delta_rels(frontier);
    TupleListMap next;
    for (size_t ri : info.rules) {
      const std::vector<std::string>& pos = rule_positives[ri];
      for (size_t li = 0; li < pos.size(); ++li) {
        if (frontier.find(pos[li]) == frontier.end()) continue;
        KGM_RETURN_IF_ERROR(dev.EvalRuleDelta(
            ri, li, delta_rels, [&](const std::string& hp, Tuple t) {
              if (db.GetOrCreate(hp, t.size()).Insert(t)) {
                next[hp].push_back(t);
                new_ins[hp].push_back(std::move(t));
              }
            }));
      }
    }
    frontier = std::move(next);
  }

  // Publish this stratum's net change for downstream strata, cancelling
  // tuples that were deleted and then re-derived within the stratum (their
  // net effect is nil).
  for (const std::string& pred : info.heads) {
    TupleSet perm_set;
    if (auto it = perm.find(pred); it != perm.end()) {
      for (const Tuple& t : it->second) perm_set.insert(t);
    }
    TupleSet ins_set;
    if (auto it = new_ins.find(pred); it != new_ins.end()) {
      for (const Tuple& t : it->second) ins_set.insert(t);
    }
    std::vector<Tuple> net_del;
    if (auto it = perm.find(pred); it != perm.end()) {
      for (Tuple& t : it->second) {
        if (ins_set.count(t) == 0) net_del.push_back(std::move(t));
      }
    }
    std::vector<Tuple> net_ins;
    if (auto it = new_ins.find(pred); it != new_ins.end()) {
      for (Tuple& t : it->second) {
        if (perm_set.count(t) == 0) net_ins.push_back(std::move(t));
      }
    }
    // Order may have churned even when the pair cancelled; be conservative
    // for the serving layer.
    if (NonEmpty(over, pred) || NonEmpty(new_ins, pred)) {
      last_changed.insert(pred);
    }
    last_stats.idb_deleted += net_del.size();
    last_stats.idb_inserted += net_ins.size();
    if (!net_del.empty()) {
      (*d_del)[pred] = std::move(net_del);
    } else {
      d_del->erase(pred);
    }
    if (!net_ins.empty()) {
      (*d_ins)[pred] = std::move(net_ins);
    } else {
      d_ins->erase(pred);
    }
  }
  last_stats.insert_seconds += take_phase();
  return OkStatus();
}

Status IncrementalView::State::ApplyDRed(TupleListMap& d_del,
                                         TupleListMap& d_ins) {
  ApplyEdbToDbForNonHeads(d_del, d_ins);
  DeltaEvaluator dev(&engine, &db);
  KGM_RETURN_IF_ERROR(dev.status());
  for (const auto& [stratum, info] : strata) {
    bool relevant = false;
    auto touched = [&](const std::string& p) {
      return NonEmpty(d_del, p) || NonEmpty(d_ins, p);
    };
    for (const std::string& p : info.pos_body) relevant = relevant || touched(p);
    for (const std::string& p : info.heads) relevant = relevant || touched(p);
    bool neg_changed = false;
    for (const std::string& p : info.neg_body) {
      if (touched(p)) neg_changed = true;
    }
    if (!relevant && !neg_changed) {
      ++last_stats.strata_skipped;
      continue;
    }
    if (neg_changed) {
      // Negation is not monotone under deletion; recompute the stratum from
      // its base instead of trying to patch it.
      KGM_RETURN_IF_ERROR(
          RecomputeStratum(stratum, info, /*diffs=*/true, &d_del, &d_ins));
      ++last_stats.strata_recomputed;
      ++last_stats.strata_processed;
      continue;
    }
    KGM_RETURN_IF_ERROR(DRedStratum(info, dev, &d_del, &d_ins));
    ++last_stats.strata_processed;
  }
  return OkStatus();
}

// --- IncrementalView ---------------------------------------------------------

IncrementalView::IncrementalView(Program program, EngineOptions options)
    : state_(std::make_unique<State>(std::move(program), options)) {}

IncrementalView::~IncrementalView() = default;

const Status& IncrementalView::status() const { return state_->init; }

Status IncrementalView::Initialize(FactDb edb) {
  KGM_RETURN_IF_ERROR(state_->init);
  state_->edb = std::move(edb);
  // Fold program facts into the EDB base so that rederivation's base-
  // support check sees them; Engine::Run re-inserts them idempotently.
  for (const FactDecl& f : state_->engine.program().facts) {
    state_->edb.Add(f.predicate, Tuple(f.values.begin(), f.values.end()));
  }
  state_->db = state_->edb.Clone();
  KGM_RETURN_IF_ERROR(state_->engine.Run(&state_->db));
  state_->initialized = true;
  return OkStatus();
}

Status IncrementalView::Apply(const EdbDelta& delta) {
  KGM_RETURN_IF_ERROR(state_->init);
  if (!state_->initialized) {
    return FailedPrecondition("IncrementalView::Apply before Initialize");
  }
  auto t0 = std::chrono::steady_clock::now();
  state_->last_changed.clear();
  state_->last_stats = IncrementalStats{};
  state_->last_stats.mode = state_->mode;

  TupleListMap d_del;
  TupleListMap d_ins;
  Status status = state_->NormalizeAndApplyEdb(delta, &d_del, &d_ins);
  if (status.ok() && !(d_del.empty() && d_ins.empty())) {
    switch (state_->mode) {
      case MaintenanceMode::kFullRerun:
        status = state_->ApplyFullRerun();
        break;
      case MaintenanceMode::kRecomputeStrata:
        status = state_->ApplyRecompute(d_del, d_ins);
        break;
      case MaintenanceMode::kDRed:
        status = state_->ApplyDRed(d_del, d_ins);
        break;
    }
  }
  state_->last_stats.apply_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!status.ok()) state_->initialized = false;
  return status;
}

MaintenanceMode IncrementalView::mode() const { return state_->mode; }

const FactDb& IncrementalView::db() const { return state_->db; }

const FactDb& IncrementalView::edb() const { return state_->edb; }

const std::set<std::string>& IncrementalView::last_changed() const {
  return state_->last_changed;
}

const IncrementalStats& IncrementalView::last_stats() const {
  return state_->last_stats;
}

// --- database comparison helpers ---------------------------------------------

namespace {

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ",";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

bool CompareDatabases(const FactDb& a, const FactDb& b, bool ordered,
                      std::string* out) {
  std::set<std::string> preds;
  for (const std::string& p : a.Predicates()) preds.insert(p);
  for (const std::string& p : b.Predicates()) preds.insert(p);
  for (const std::string& pred : preds) {
    const Relation* ra = a.Get(pred);
    const Relation* rb = b.Get(pred);
    size_t na = ra != nullptr ? ra->size() : 0;
    size_t nb = rb != nullptr ? rb->size() : 0;
    if (na != nb) {
      if (out != nullptr) {
        *out += pred + ": " + std::to_string(na) + " vs " +
                std::to_string(nb) + " rows";
      }
      return false;
    }
    if (na == 0) continue;
    if (ordered) {
      for (size_t i = 0; i < na; ++i) {
        if (!(ra->tuple(i) == rb->tuple(i))) {
          if (out != nullptr) {
            *out += pred + " row " + std::to_string(i) + ": " +
                    TupleToString(ra->tuple(i)) + " vs " +
                    TupleToString(rb->tuple(i));
          }
          return false;
        }
      }
    } else {
      // Relations are deduplicated, so equal sizes plus containment one way
      // is set equality.
      for (const Tuple& t : ra->tuples()) {
        if (!rb->Contains(t)) {
          if (out != nullptr) {
            *out += pred + ": " + TupleToString(t) + " missing from second";
          }
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

bool DatabasesEqualOrdered(const FactDb& a, const FactDb& b) {
  return CompareDatabases(a, b, /*ordered=*/true, nullptr);
}

bool DatabasesEqualAsSets(const FactDb& a, const FactDb& b) {
  return CompareDatabases(a, b, /*ordered=*/false, nullptr);
}

bool DescribeFirstDifference(const FactDb& a, const FactDb& b, bool ordered,
                             std::string* out) {
  return !CompareDatabases(a, b, ordered, out);
}

}  // namespace kgm::vadalog
