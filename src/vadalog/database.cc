#include "vadalog/database.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "base/check.h"

namespace kgm::vadalog {

namespace {

size_t RoundUpPow2(size_t n) {
  if (n <= 1) return 1;
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const std::vector<uint32_t> Relation::kEmptyRows;

size_t HashTuple(const Tuple& t) {
  size_t h = 0x8f3a7b12;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

size_t HashTupleMasked(const Tuple& t, uint64_t mask) {
  size_t h = 0x51ab03c7;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1ULL << i)) h = HashCombine(h, t[i].Hash());
  }
  return h;
}

TupleHasher::TupleHasher(const Tuple& t) : n_(t.size()) {
  size_t* hs = inline_;
  if (n_ > kInline) {
    heap_.resize(n_);
    hs = heap_.data();
  }
  size_t h = 0x8f3a7b12;
  for (size_t i = 0; i < n_; ++i) {
    hs[i] = t[i].Hash();
    h = HashCombine(h, hs[i]);
  }
  hashes_ = hs;
  full_ = h;
}

size_t TupleHasher::Masked(uint64_t mask) const {
  size_t h = 0x51ab03c7;
  for (size_t i = 0; i < n_; ++i) {
    if (mask & (1ULL << i)) h = HashCombine(h, hashes_[i]);
  }
  return h;
}

void DistinctSketch::Add(size_t hash) {
  // Low 6 bits pick the register; the rank is the position of the lowest
  // set bit among the remaining 58, capped so it fits the register width.
  size_t idx = hash & (kRegisters - 1);
  uint64_t rest = static_cast<uint64_t>(hash) >> 6;
  uint8_t rank =
      rest == 0 ? 59 : static_cast<uint8_t>(std::countr_zero(rest) + 1);
  if (rank > regs_[idx]) regs_[idx] = rank;
}

void DistinctSketch::Merge(const DistinctSketch& other) {
  for (size_t i = 0; i < kRegisters; ++i) {
    if (other.regs_[i] > regs_[i]) regs_[i] = other.regs_[i];
  }
}

void DistinctSketch::Clear() {
  for (uint8_t& r : regs_) r = 0;
}

double DistinctSketch::Estimate() const {
  double inv_sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : regs_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  if (zeros == kRegisters) return 0.0;
  constexpr double kM = static_cast<double>(kRegisters);
  // alpha_64 * m^2 / sum(2^-reg); linear counting below 2.5m where the
  // raw HLL estimator is biased.
  double raw = 0.709 * kM * kM / inv_sum;
  if (raw <= 2.5 * kM && zeros > 0) {
    return kM * std::log(kM / static_cast<double>(zeros));
  }
  return raw;
}

Relation::Relation(size_t arity, size_t shard_count) : arity_(arity) {
  shard_count = RoundUpPow2(shard_count);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shard_count - 1;
  stats_sketches_.resize(arity_);
}

Relation Relation::Clone() const {
  KGM_CHECK(StagedCount() == 0);
  Relation out(arity_, shards_.size());
  out.version_ = version_;
  out.fingerprint_ = fingerprint_;
  out.tuples_ = tuples_;
  // Dedup buckets are keyed by full-tuple hash and the shard layout is
  // identical, so they copy wholesale — nothing is rehashed.
  for (size_t i = 0; i < shards_.size(); ++i) {
    out.shards_[i]->dedup = shards_[i]->dedup;
  }
  out.indexes_ = indexes_;
  out.stats_sketches_ = stats_sketches_;
  out.stats_stale_ = stats_stale_;
  return out;
}

bool Relation::CanonicalContains(const Shard& shard, size_t hash,
                                 const Tuple& t) const {
  auto it = shard.dedup.find(hash);
  if (it == shard.dedup.end()) return false;
  for (uint32_t row : it->second.rows) {
    if (tuples_[row] == t) return true;
  }
  return false;
}

size_t Relation::FindRow(const Tuple& t) const {
  size_t h = HashTuple(t);
  const Shard& shard = ShardFor(h);
  auto it = shard.dedup.find(h);
  if (it == shard.dedup.end()) return kNoRow;
  for (uint32_t row : it->second.rows) {
    if (tuples_[row] == t) return row;
  }
  return kNoRow;
}

bool Relation::Insert(Tuple t) {
  KGM_CHECK(t.size() == arity_);
  // Position hashes are computed once and reused for the dedup hash and
  // every maintained index mask.
  TupleHasher hasher(t);
  size_t h = hasher.full();
  Shard& shard = ShardFor(h);
  Bucket& bucket = shard.dedup[h];
  for (uint32_t row : bucket.rows) {
    if (tuples_[row] == t) return false;
  }
  uint32_t row = static_cast<uint32_t>(tuples_.size());
  bucket.rows.push_back(row);
  for (auto& [mask, index] : indexes_) {
    index[hasher.Masked(mask)].rows.push_back(row);
  }
  // Sketches fold in the process-history-independent StableHash (not the
  // cached position hash) so distinct estimates — and the join plans built
  // from them — are reproducible per instance; see Value::StableHash.
  for (size_t i = 0; i < arity_; ++i) {
    stats_sketches_[i].Add(t[i].StableHash());
  }
  tuples_.push_back(std::move(t));
  ++version_;
  fingerprint_ ^= h;
  return true;
}

size_t Relation::EraseTuples(const std::vector<Tuple>& ts) {
  KGM_CHECK(StagedCount() == 0);
  std::vector<char> dead(tuples_.size(), 0);
  size_t erased = 0;
  for (const Tuple& t : ts) {
    if (t.size() != arity_) continue;
    size_t row = FindRow(t);
    if (row == kNoRow || dead[row]) continue;
    dead[row] = 1;
    fingerprint_ ^= HashTuple(t);
    ++erased;
  }
  if (erased == 0) return 0;
  // Order-preserving compaction shifts the surviving row ids, but every
  // content hash stays the same, so the dedup shards and built indexes are
  // patched in place: drop dead entries, remap the rest.  This keeps a
  // deletion at O(entries) integer work instead of rehashing every tuple —
  // the difference dominates incremental maintenance, which erases from
  // large relations on every delta batch.
  std::vector<uint32_t> remap(tuples_.size());
  uint32_t next = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    remap[i] = next;
    if (!dead[i]) ++next;
  }
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size() - erased);
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(tuples_[i]));
  }
  tuples_ = std::move(kept);
  auto patch_rows = [&](std::vector<uint32_t>& rows) {
    size_t w = 0;
    for (uint32_t row : rows) {
      if (!dead[row]) rows[w++] = remap[row];
    }
    rows.resize(w);
  };
  for (auto& shard : shards_) {
    for (auto it = shard->dedup.begin(); it != shard->dedup.end();) {
      patch_rows(it->second.rows);
      it = it->second.rows.empty() ? shard->dedup.erase(it) : std::next(it);
    }
  }
  for (auto& [mask, index] : indexes_) {
    (void)mask;
    for (auto it = index.begin(); it != index.end();) {
      patch_rows(it->second.rows);
      it = it->second.rows.empty() ? index.erase(it) : std::next(it);
    }
  }
  // HLL registers cannot subtract; the planner rebuilds them on demand via
  // RefreshStats before trusting any estimate again.
  stats_stale_ = true;
  ++version_;
  return erased;
}

bool Relation::Contains(const Tuple& t) const {
  return FindRow(t) != kNoRow;
}

void Relation::EnsureIndex(uint64_t mask) {
  KGM_CHECK(mask != 0);
  if (indexes_.count(mask) > 0) return;
  HashIndex index;
  for (size_t row = 0; row < tuples_.size(); ++row) {
    index[HashTupleMasked(tuples_[row], mask)].rows.push_back(
        static_cast<uint32_t>(row));
  }
  indexes_.emplace(mask, std::move(index));
}

const std::vector<uint32_t>& Relation::Lookup(uint64_t mask,
                                              const Tuple& probe) {
  EnsureIndex(mask);
  return LookupBuilt(mask, probe);
}

const std::vector<uint32_t>& Relation::LookupBuilt(uint64_t mask,
                                                   const Tuple& probe) const {
  auto it = indexes_.find(mask);
  KGM_CHECK(it != indexes_.end());
  auto bucket = it->second.find(HashTupleMasked(probe, mask));
  if (bucket == it->second.end()) return kEmptyRows;
  return bucket->second.rows;
}

const std::vector<uint32_t>* Relation::TryLookupBuilt(
    uint64_t mask, const Tuple& probe) const {
  auto it = indexes_.find(mask);
  if (it == indexes_.end()) return nullptr;
  auto bucket = it->second.find(HashTupleMasked(probe, mask));
  if (bucket == it->second.end()) return &kEmptyRows;
  return &bucket->second.rows;
}

void Relation::Reshard(size_t shard_count) {
  shard_count = RoundUpPow2(shard_count);
  KGM_CHECK(StagedCount() == 0);
  std::vector<std::unique_ptr<Shard>> fresh;
  fresh.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    fresh.push_back(std::make_unique<Shard>());
  }
  size_t mask = shard_count - 1;
  // Buckets are keyed by full-tuple hash, so they move wholesale; no tuple
  // is rehashed.
  for (auto& shard : shards_) {
    for (auto& [h, bucket] : shard->dedup) {
      fresh[h & mask]->dedup.emplace(h, std::move(bucket));
    }
  }
  shards_ = std::move(fresh);
  shard_mask_ = mask;
}

bool Relation::StageInsert(StageTag tag, Tuple t) {
  KGM_CHECK(t.size() == arity_);
  TupleHasher hasher(t);
  size_t h = hasher.full();
  Shard& shard = ShardFor(h);
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock.lock();
    ++shard.counters.contentions;
  }
  // The canonical store is frozen while stagings are in flight, so reading
  // the shard's dedup slice under the shard lock is race-free.
  if (CanonicalContains(shard, h, t)) {
    ++shard.counters.duplicates;
    return false;
  }
  // The distinct-count registers are updated per shard under the same lock;
  // same-barrier duplicates fold in identical hashes, which the sketch
  // absorbs (register state is set-pure), so no dedup is needed here.
  // StableHash (not the cached position hash) keeps the estimates
  // independent of process history; see Value::StableHash.
  if (shard.staged_sketches.size() < arity_) {
    shard.staged_sketches.resize(arity_);
  }
  for (size_t i = 0; i < arity_; ++i) {
    shard.staged_sketches[i].Add(t[i].StableHash());
  }
  // Duplicates *within* the barrier are not chased here: DrainStaged
  // appends in ascending tag order and drops any tuple already appended,
  // so the minimum-tag occurrence survives without a staging-side index.
  // That keeps this hot path to one hash, one lock, and one push.
  shard.staged.push_back(Staged{tag, h, std::move(t), {}, false});
  ++shard.counters.accepted;
  return true;
}

size_t Relation::StagedCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->staged.size();
  return n;
}

void Relation::PrepareStagedShard(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  if (shard.staged.empty()) return;
  std::sort(
      shard.staged.begin(), shard.staged.end(),
      [](const Staged& a, const Staged& b) { return a.tag < b.tag; });
  // Same-barrier duplicates are shard-local (equal tuples share a full
  // hash), so after the sort the first — minimum-tag — copy of every
  // tuple survives and later copies are flagged.  StageInsert already
  // rejected tuples present in the (frozen) canonical store.
  std::unordered_map<size_t, std::vector<const Staged*>> firsts_by_hash;
  firsts_by_hash.reserve(shard.staged.size());
  for (Staged& e : shard.staged) {
    e.duplicate = false;
    std::vector<const Staged*>& firsts = firsts_by_hash[e.hash];
    for (const Staged* f : firsts) {
      if (f->tuple == e.tuple) {
        e.duplicate = true;
        break;
      }
    }
    if (e.duplicate) {
      ++shard.counters.duplicates;
      --shard.counters.accepted;
      continue;
    }
    firsts.push_back(&e);
    // Precompute the masked hashes the merge will need, so DrainPrepared
    // never rehashes a value: this is the expensive part of a drain, and
    // it now runs per shard in parallel.
    if (!indexes_.empty()) {
      TupleHasher hasher(e.tuple);
      e.index_hashes.clear();
      e.index_hashes.reserve(indexes_.size());
      for (const auto& [mask, index] : indexes_) {
        (void)index;
        e.index_hashes.push_back(hasher.Masked(mask));
      }
    }
  }
}

size_t Relation::DrainPrepared() {
  size_t total = StagedCount();
  if (total == 0) return 0;
  // K-way merge of the per-shard tag-sorted runs.
  struct Cursor {
    std::vector<Staged>* run;
    size_t pos;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(shards_.size());
  for (auto& shard : shards_) {
    if (!shard->staged.empty()) cursors.push_back(Cursor{&shard->staged, 0});
  }
  auto greater = [](const Cursor& a, const Cursor& b) {
    return (*b.run)[b.pos].tag < (*a.run)[a.pos].tag;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater, std::move(cursors));
  tuples_.reserve(tuples_.size() + total);
  size_t appended = 0;
  while (!heap.empty()) {
    Cursor cur = heap.top();
    heap.pop();
    Staged& e = (*cur.run)[cur.pos];
    if (++cur.pos < cur.run->size()) heap.push(cur);
    if (e.duplicate) continue;
    uint32_t row = static_cast<uint32_t>(tuples_.size());
    ShardFor(e.hash).dedup[e.hash].rows.push_back(row);
    size_t ii = 0;
    for (auto& [mask, index] : indexes_) {
      (void)mask;
      index[e.index_hashes[ii++]].rows.push_back(row);
    }
    tuples_.push_back(std::move(e.tuple));
    fingerprint_ ^= e.hash;
    ++appended;
  }
  for (auto& shard : shards_) {
    shard->staged.clear();
    if (!shard->staged_sketches.empty()) {
      for (size_t i = 0; i < arity_; ++i) {
        stats_sketches_[i].Merge(shard->staged_sketches[i]);
      }
      shard->staged_sketches.clear();
    }
  }
  if (appended > 0) ++version_;
  return appended;
}

size_t Relation::DrainStaged() {
  for (size_t i = 0; i < shards_.size(); ++i) PrepareStagedShard(i);
  return DrainPrepared();
}

void Relation::DiscardStaged() {
  for (auto& shard : shards_) {
    shard->staged.clear();
    shard->staged_sketches.clear();
  }
}

double Relation::DistinctEstimate(size_t pos) const {
  KGM_CHECK(pos < arity_);
  if (tuples_.empty()) return 0.0;
  double est = stats_sketches_[pos].Estimate();
  double n = static_cast<double>(tuples_.size());
  return std::min(n, std::max(1.0, est));
}

void Relation::RefreshStats() {
  if (!stats_stale_) return;
  KGM_CHECK(StagedCount() == 0);
  for (DistinctSketch& s : stats_sketches_) s.Clear();
  for (const Tuple& t : tuples_) {
    for (size_t i = 0; i < arity_; ++i) {
      stats_sketches_[i].Add(t[i].StableHash());
    }
  }
  stats_stale_ = false;
}

void Relation::AccumulateShardCounters(std::vector<ShardCounters>* by_shard,
                                       ShardCounters* total) const {
  if (by_shard->size() < shards_.size()) by_shard->resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardCounters& c = shards_[i]->counters;
    (*by_shard)[i].accepted += c.accepted;
    (*by_shard)[i].duplicates += c.duplicates;
    (*by_shard)[i].contentions += c.contentions;
    total->accepted += c.accepted;
    total->duplicates += c.duplicates;
    total->contentions += c.contentions;
  }
}

FactDb FactDb::Clone() const {
  FactDb out;
  out.default_shard_count_ = default_shard_count_;
  for (const auto& [pred, rel] : relations_) {
    out.relations_.emplace(pred, rel.Clone());
  }
  return out;
}

Relation& FactDb::GetOrCreate(const std::string& pred, size_t arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_.emplace(pred, Relation(arity, default_shard_count_)).first;
  }
  KGM_CHECK_MSG(it->second.arity() == arity,
                ("arity conflict for predicate " + pred).c_str());
  return it->second;
}

const Relation* FactDb::Get(const std::string& pred) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Relation* FactDb::GetMutable(const std::string& pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

bool FactDb::Add(const std::string& pred, Tuple t) {
  return GetOrCreate(pred, t.size()).Insert(std::move(t));
}

void FactDb::Adopt(const std::string& pred, Relation rel) {
  const bool inserted = relations_.emplace(pred, std::move(rel)).second;
  KGM_CHECK(inserted);
}

std::vector<std::string> FactDb::Predicates() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [pred, rel] : relations_) out.push_back(pred);
  return out;
}

size_t FactDb::TotalFacts() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.size();
  return n;
}

void FactDb::ReshardAll(size_t shard_count) {
  default_shard_count_ = shard_count;
  for (auto& [pred, rel] : relations_) rel.Reshard(shard_count);
}

std::string FactDb::DebugString() const {
  std::ostringstream os;
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      os << pred << "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) os << ",";
        os << t[i].ToString();
      }
      os << ")\n";
    }
  }
  return os.str();
}

}  // namespace kgm::vadalog
