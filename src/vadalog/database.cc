#include "vadalog/database.h"

#include <sstream>

#include "base/check.h"

namespace kgm::vadalog {

const std::vector<uint32_t> Relation::kEmptyRows;

size_t HashTuple(const Tuple& t) {
  size_t h = 0x8f3a7b12;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

size_t HashTupleMasked(const Tuple& t, uint64_t mask) {
  size_t h = 0x51ab03c7;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1ULL << i)) h = HashCombine(h, t[i].Hash());
  }
  return h;
}

size_t Relation::FindRow(const Tuple& t) const {
  auto it = dedup_.find(HashTuple(t));
  if (it == dedup_.end()) return static_cast<size_t>(-1);
  for (uint32_t row : it->second.rows) {
    if (tuples_[row] == t) return row;
  }
  return static_cast<size_t>(-1);
}

bool Relation::Insert(Tuple t) {
  KGM_CHECK(t.size() == arity_);
  size_t h = HashTuple(t);
  Bucket& bucket = dedup_[h];
  for (uint32_t row : bucket.rows) {
    if (tuples_[row] == t) return false;
  }
  uint32_t row = static_cast<uint32_t>(tuples_.size());
  bucket.rows.push_back(row);
  // Maintain already-built secondary indexes.
  for (auto& [mask, index] : indexes_) {
    index[HashTupleMasked(t, mask)].rows.push_back(row);
  }
  tuples_.push_back(std::move(t));
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  return FindRow(t) != static_cast<size_t>(-1);
}

void Relation::EnsureIndex(uint64_t mask) {
  KGM_CHECK(mask != 0);
  if (indexes_.count(mask) > 0) return;
  HashIndex index;
  for (size_t row = 0; row < tuples_.size(); ++row) {
    index[HashTupleMasked(tuples_[row], mask)].rows.push_back(
        static_cast<uint32_t>(row));
  }
  indexes_.emplace(mask, std::move(index));
}

const std::vector<uint32_t>& Relation::Lookup(uint64_t mask,
                                              const Tuple& probe) {
  EnsureIndex(mask);
  return LookupBuilt(mask, probe);
}

const std::vector<uint32_t>& Relation::LookupBuilt(uint64_t mask,
                                                   const Tuple& probe) const {
  auto it = indexes_.find(mask);
  KGM_CHECK(it != indexes_.end());
  auto bucket = it->second.find(HashTupleMasked(probe, mask));
  if (bucket == it->second.end()) return kEmptyRows;
  return bucket->second.rows;
}

bool Relation::MatchesMasked(size_t i, uint64_t mask,
                             const Tuple& probe) const {
  const Tuple& t = tuples_[i];
  for (size_t p = 0; p < t.size(); ++p) {
    if ((mask & (1ULL << p)) && !(t[p] == probe[p])) return false;
  }
  return true;
}

Relation& FactDb::GetOrCreate(const std::string& pred, size_t arity) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_.emplace(pred, Relation(arity)).first;
  }
  KGM_CHECK_MSG(it->second.arity() == arity,
                ("arity conflict for predicate " + pred).c_str());
  return it->second;
}

const Relation* FactDb::Get(const std::string& pred) const {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Relation* FactDb::GetMutable(const std::string& pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

bool FactDb::Add(const std::string& pred, Tuple t) {
  return GetOrCreate(pred, t.size()).Insert(std::move(t));
}

std::vector<std::string> FactDb::Predicates() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [pred, rel] : relations_) out.push_back(pred);
  return out;
}

size_t FactDb::TotalFacts() const {
  size_t n = 0;
  for (const auto& [pred, rel] : relations_) n += rel.size();
  return n;
}

std::string FactDb::DebugString() const {
  std::ostringstream os;
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      os << pred << "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) os << ",";
        os << t[i].ToString();
      }
      os << ")\n";
    }
  }
  return os.str();
}

}  // namespace kgm::vadalog
