#include "vadalog/planner.h"

#include <algorithm>
#include <cmath>

#include "base/status.h"

namespace kgm::vadalog {

const char* PlanRegimeName(PlanRegime regime) {
  switch (regime) {
    case PlanRegime::kFull:
      return "full";
    case PlanRegime::kDeltaScan:
      return "delta_scan";
    case PlanRegime::kFullLive:
      return "full_live";
    case PlanRegime::kDeltaScanLive:
      return "delta_scan_live";
    case PlanRegime::kDeltaPrebound:
      return "delta_prebound";
  }
  return "unknown";
}

namespace {

// Scan beats a hash-index probe on tiny relations: the probe's hashing and
// bucket chase cost more than touching every row.
constexpr size_t kIndexMinRows = 8;

// Working view of one literal while planning: resolved relation + size.
struct LitInfo {
  const Relation* rel = nullptr;
  size_t rows = 0;
};

uint64_t MaskFor(const PlanLiteral& lit, const std::vector<char>& bound) {
  uint64_t mask = 0;
  for (size_t p = 0; p < lit.args.size(); ++p) {
    const PlanArg& a = lit.args[p];
    if (a.is_const ||
        (a.slot >= 0 && a.slot < (int)bound.size() && bound[a.slot])) {
      mask |= uint64_t{1} << p;
    }
  }
  return mask;
}

bool FullyBound(const PlanLiteral& lit, uint64_t mask) {
  return lit.args.empty() ||
         mask == ((uint64_t{1} << lit.args.size()) - 1);
}

// Estimated rows matching one probe of `lit` with `mask` bound: the
// independence assumption N * prod(1/d_p) over bound positions, clamped to
// [~0, N]; a fully bound probe is a containment check expecting <= 1 row.
double EstRows(const PlanLiteral& lit, const LitInfo& info, uint64_t mask) {
  double est = static_cast<double>(info.rows);
  if (info.rel != nullptr) {
    for (size_t p = 0; p < lit.args.size(); ++p) {
      if (mask & (uint64_t{1} << p)) {
        est /= std::max(1.0, info.rel->DistinctEstimate(p));
      }
    }
  }
  est = std::min(est, static_cast<double>(info.rows));
  if (FullyBound(lit, mask)) est = std::min(est, 1.0);
  return est;
}

bool ChooseIndex(const LitInfo& info, uint64_t mask, bool fully_bound) {
  if (mask == 0 || fully_bound) return false;  // scan / containment probe
  return info.rows >= kIndexMinRows;
}

// Per-probe candidate-row cost of evaluating `lit` the chosen way.
double ProbeCost(const LitInfo& info, uint64_t /*mask*/, bool fully_bound,
                 bool use_index, double est_rows) {
  if (fully_bound) return 1.0;
  if (use_index) return std::max(1.0, est_rows);
  return static_cast<double>(info.rows);  // (filtered) scan touches all rows
}

void BindSlots(const PlanLiteral& lit, std::vector<char>& bound) {
  for (const PlanArg& a : lit.args) {
    if (a.slot >= 0 && a.slot < (int)bound.size()) bound[a.slot] = 1;
  }
}

int MaxSlot(const RuleDesc& rule) {
  int mx = -1;
  for (const PlanLiteral& lit : rule.positives) {
    for (const PlanArg& a : lit.args) mx = std::max(mx, a.slot);
  }
  return mx;
}

// Costs a fixed evaluation order with the estimator, filling mask /
// use_index / est_rows per literal.  `bound` carries pre-bound slots in
// and ends with every body slot bound.  Literals flagged in `force_index`
// (may be null) must keep the engine's plan-off access path — index
// whenever any position is bound — because their relation grows during a
// live call and scan/index enumeration diverge on live growth.
double CostOrder(const RuleDesc& rule, const std::vector<LitInfo>& infos,
                 const std::vector<size_t>& order, std::vector<char>& bound,
                 const std::vector<char>* force_index,
                 std::vector<PlannedLiteral>* out, double* est_firings) {
  double probes = 0;
  double prefix = 1;
  for (size_t li : order) {
    const PlanLiteral& lit = rule.positives[li];
    uint64_t mask = MaskFor(lit, bound);
    bool fb = FullyBound(lit, mask);
    double est = EstRows(lit, infos[li], mask);
    bool use_index = force_index != nullptr && (*force_index)[li]
                         ? mask != 0
                         : ChooseIndex(infos[li], mask, fb);
    probes += prefix * ProbeCost(infos[li], mask, fb, use_index, est);
    prefix *= est;
    if (out != nullptr) {
      out->push_back(PlannedLiteral{li, mask, use_index, est});
    }
    BindSlots(lit, bound);
  }
  if (est_firings != nullptr) *est_firings = prefix;
  return probes;
}

}  // namespace

JoinPlanner::JoinPlanner(PlanMode mode, std::vector<RuleDesc> rules)
    : mode_(mode), rules_(std::move(rules)) {}

std::vector<size_t> JoinPlanner::SizeSnapshot(
    const RuleDesc& rule, FactDb& db, const Relation* delta_rel) const {
  std::vector<size_t> sizes;
  sizes.reserve(rule.positives.size() + 1);
  for (const PlanLiteral& lit : rule.positives) {
    const Relation* rel = db.Get(lit.pred);
    sizes.push_back(rel == nullptr ? 0 : rel->size());
  }
  if (delta_rel != nullptr) sizes.push_back(delta_rel->size());
  return sizes;
}

const JoinPlan* JoinPlanner::PlanFor(size_t rule_index, PlanRegime regime,
                                     int delta_literal, FactDb& db,
                                     const Relation* delta_rel) {
  if (mode_ != PlanMode::kGreedy) return nullptr;
  KGM_CHECK(rule_index < rules_.size());
  const RuleDesc& rule = rules_[rule_index];
  if (rule.positives.empty()) return nullptr;

  // Erases mark sketches stale; rebuild them before estimating so the
  // planner never works from inflated distinct counts (satellite fix for
  // EraseTuples).  Driver-only call sites guarantee no staged tuples.
  bool stats_refreshed = false;
  for (const PlanLiteral& lit : rule.positives) {
    Relation* rel = db.GetMutable(lit.pred);
    if (rel != nullptr && rel->stats_stale()) {
      rel->RefreshStats();
      stats_refreshed = true;
    }
  }

  CacheKey key{rule_index, regime, delta_literal};
  std::vector<size_t> sizes = SizeSnapshot(rule, db, delta_rel);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    CacheEntry& entry = it->second;
    entry.uses++;
    bool drifted = stats_refreshed;
    for (size_t i = 0; !drifted && i < sizes.size(); ++i) {
      size_t snap =
          i < entry.size_snapshot.size() ? entry.size_snapshot[i] : 0;
      if (sizes[i] > 2 * snap + 16 || sizes[i] < snap / 2) drifted = true;
    }
    if (!drifted) {
      cache_hits_++;
      return &entry.plan;
    }
    entry.plan = BuildPlan(rule, regime, delta_literal, db, delta_rel);
    entry.size_snapshot = std::move(sizes);
    entry.replans++;
    replans_++;
    plans_built_++;
    if (entry.plan.reordered) plans_reordered_++;
    return &entry.plan;
  }

  CacheEntry entry;
  entry.plan = BuildPlan(rule, regime, delta_literal, db, delta_rel);
  entry.size_snapshot = std::move(sizes);
  entry.uses = 1;
  plans_built_++;
  if (entry.plan.reordered) plans_reordered_++;
  auto [pos, inserted] = cache_.emplace(key, std::move(entry));
  (void)inserted;
  return &pos->second.plan;
}

JoinPlan JoinPlanner::BuildPlan(const RuleDesc& rule, PlanRegime regime,
                                int delta_literal, FactDb& db,
                                const Relation* delta_rel) const {
  const size_t n = rule.positives.size();
  std::vector<LitInfo> infos(n);
  for (size_t i = 0; i < n; ++i) {
    // The delta literal enumerates (or probes) the delta relation, not the
    // canonical store — its size anchors the whole estimate.
    if ((int)i == delta_literal && regime != PlanRegime::kFull &&
        delta_rel != nullptr) {
      infos[i].rel = delta_rel;
    } else {
      infos[i].rel = db.Get(rule.positives[i].pred);
    }
    infos[i].rows = infos[i].rel == nullptr ? 0 : infos[i].rel->size();
  }

  std::vector<char> initial_bound(static_cast<size_t>(MaxSlot(rule) + 1), 0);
  if (regime == PlanRegime::kDeltaPrebound && delta_literal >= 0 &&
      delta_literal < (int)n) {
    // EvalRuleDelta binds the delta literal's variables to one delta tuple
    // before the join starts.
    for (const PlanArg& a : rule.positives[delta_literal].args) {
      if (a.slot >= 0) initial_bound[a.slot] = 1;
    }
  }

  // Live regimes: the sequential driver inserts head facts mid-call, so a
  // body literal whose predicate the rule writes (other than the delta
  // literal, which reads an immutable snapshot) observes its own rule's
  // emissions.  Such calls keep written order AND the plan-off access path
  // on the live-fed literals — off-mode discovers cascaded firings through
  // live index-bucket growth, which any other enumeration would miss.
  const bool live = regime == PlanRegime::kFullLive ||
                    regime == PlanRegime::kDeltaScanLive;
  std::vector<char> live_fed(n, 0);
  bool self_feeding = false;
  if (live) {
    for (size_t i = 0; i < n; ++i) {
      if ((int)i == delta_literal) continue;
      for (const std::string& head : rule.head_preds) {
        if (rule.positives[i].pred == head) {
          live_fed[i] = 1;
          self_feeding = true;
          break;
        }
      }
    }
  }
  const std::vector<char>* force_index = live ? &live_fed : nullptr;

  // Written-order baseline (identity permutation) under the same initial
  // bindings — the comparison point for est_probes_saved.
  std::vector<size_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = i;
  JoinPlan plan;
  {
    std::vector<char> bound = initial_bound;
    plan.est_probes_written =
        CostOrder(rule, infos, identity, bound, force_index, nullptr,
                  nullptr);
  }

  std::vector<size_t> order;
  order.reserve(n);
  std::vector<char> chosen(n, 0);
  std::vector<char> bound = initial_bound;
  if (!rule.reorderable || (live && self_feeding)) {
    // Ineligible rules keep written order; the plan still carries per-depth
    // masks and index-vs-scan choices (order-neutral, so always safe).
    order = identity;
  } else {
    // Regime pins: kFull keeps literal 0 outermost (Phase A partitions its
    // scan range, and the cross-item emission order keys on it); kDeltaScan
    // pins the delta literal (delta-row partitioning ranges over it) and
    // kDeltaPrebound puts its containment probe first.  The live regimes
    // carry no partition pin, so the greedy choice starts from scratch.
    int pinned = -1;
    if (regime == PlanRegime::kFull) {
      pinned = 0;
    } else if ((regime == PlanRegime::kDeltaScan ||
                regime == PlanRegime::kDeltaPrebound) &&
               delta_literal >= 0 && delta_literal < (int)n) {
      pinned = delta_literal;
    }
    if (pinned >= 0) {
      order.push_back(static_cast<size_t>(pinned));
      chosen[pinned] = 1;
      BindSlots(rule.positives[pinned], bound);
    }
    while (order.size() < n) {
      // Greedy: smallest estimated result cardinality next; break ties on
      // cheaper probes, then on written position (determinism).
      size_t best = n;
      double best_rows = 0, best_cost = 0;
      for (size_t i = 0; i < n; ++i) {
        if (chosen[i]) continue;
        const PlanLiteral& lit = rule.positives[i];
        uint64_t mask = MaskFor(lit, bound);
        bool fb = FullyBound(lit, mask);
        double est = EstRows(lit, infos[i], mask);
        bool use_index = ChooseIndex(infos[i], mask, fb);
        double cost = ProbeCost(infos[i], mask, fb, use_index, est);
        if (best == n || est < best_rows ||
            (est == best_rows && cost < best_cost)) {
          best = i;
          best_rows = est;
          best_cost = cost;
        }
      }
      order.push_back(best);
      chosen[best] = 1;
      BindSlots(rule.positives[best], bound);
    }
  }

  std::vector<char> cost_bound = initial_bound;
  plan.est_probes = CostOrder(rule, infos, order, cost_bound, force_index,
                              &plan.order, &plan.est_firings);
  plan.reordered = order != identity;
  return plan;
}

std::vector<PlanSnapshot> JoinPlanner::Snapshot() const {
  std::vector<PlanSnapshot> out;
  out.reserve(cache_.size());
  for (const auto& [key, entry] : cache_) {
    PlanSnapshot snap;
    snap.rule_index = static_cast<int>(key.rule_index);
    snap.regime = key.regime;
    snap.delta_literal = key.delta_literal;
    snap.plan = entry.plan;
    const RuleDesc& rule = rules_[key.rule_index];
    for (const PlannedLiteral& pl : entry.plan.order) {
      snap.preds.push_back(rule.positives[pl.literal].pred);
    }
    snap.uses = entry.uses;
    snap.replans = entry.replans;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace kgm::vadalog
