// Tokenizer shared by the Vadalog and MetaLog parsers.
//
// Comments run from '%' to end of line.  Numbers are 64-bit integers or
// doubles; strings are double-quoted with \" \\ \n \t escapes.

#ifndef KGM_VADALOG_LEXER_H_
#define KGM_VADALOG_LEXER_H_

#include <string>
#include <vector>

#include "base/source_loc.h"
#include "base/status.h"
#include "base/value.h"

namespace kgm::vadalog {

enum class TokKind {
  kEnd,
  kIdent,      // identifier (variables, predicates, labels, keywords)
  kInt,
  kDouble,
  kString,
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLBrace,     // {
  kRBrace,     // }
  kComma,      // ,
  kDot,        // .
  kSemicolon,  // ;
  kColon,      // :
  kColonDash,  // :-
  kArrow,      // ->
  kAssign,     // =
  kEq,         // ==
  kNe,         // !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kBang,       // !
  kAnd,        // &&
  kOr,         // ||
  kAt,         // @
  kPipe,       // |
  kQuestion,   // ?
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier or string contents
  int64_t int_value = 0;
  double double_value = 0;
  // Position of the token's first character.
  int line = 0;
  int column = 0;
  size_t offset = 0;

  SourceLoc loc() const { return SourceLoc{line, column, offset}; }

  std::string Describe() const;
};

// Tokenizes `src`; on error returns InvalidArgument with line/column info.
Result<std::vector<Token>> Tokenize(std::string_view src);

// A cursor over a token stream with the usual peek/advance helpers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool Check(TokKind kind) const { return Peek().kind == kind; }
  // True (and advances) if the next token has `kind`.
  bool Match(TokKind kind);
  // True (and advances) if the next token is the identifier `word`.
  bool MatchIdent(std::string_view word);
  bool CheckIdent(std::string_view word) const;

  // Errors mention the offending token's position.
  Status Expect(TokKind kind, std::string_view what);
  Status ErrorHere(std::string_view message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_LEXER_H_
