// Cost-based join planner for the Vadalog engine.
//
// Rule bodies are written for readability, not for evaluation cost: a badly
// ordered literal can multiply join-probe counts by orders of magnitude
// (the canonical offender is a node-label atom scanned outermost while the
// selective relationship atom sits behind it).  The planner estimates
// per-literal selectivity from the FactDb's cardinality statistics — row
// counts plus per-position approximate distinct counts (see
// Relation::DistinctEstimate) — greedily reorders body literals, and picks
// index-lookup vs. full-scan per literal.
//
// Determinism contract.  Plans change PROBE order only, never output: the
// engine evaluates reordered rules with collect-and-flush firing
// restoration (emissions are keyed by the matched row ids in WRITTEN
// literal order and flushed in ascending key order, which is exactly the
// sequence a written-order join would have produced), so materialization is
// bit-identical to what plan_mode = kOff produces at the same thread count.
// (Emission order is a per-thread-count contract engine-wide: the parallel
// driver's partition boundaries scale with the worker count, so even kOff
// output differs between worker counts; the planner preserves each count's
// order exactly.)  Because output is invariant under ANY plan, the planner
// is free to use whatever statistics are current — plan quality affects
// probe counts, not results.
//
// Plans are cached per (rule, regime, delta literal) and re-planned when a
// body relation's size drifts past 2x of the planning-time snapshot, or
// when an erase left its distinct-count registers stale.

#ifndef KGM_VADALOG_PLANNER_H_
#define KGM_VADALOG_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vadalog/database.h"

namespace kgm::vadalog {

enum class PlanMode {
  kOff,     // written-order evaluation (today's behavior, the default)
  kGreedy,  // greedy cost-based reordering + index-vs-scan selection
};

// Iteration regime a plan is built for.  The bound-variable set at each
// join depth — and hence every selectivity estimate — depends on it, and
// so does the set of admissible orders: the frozen regimes (parallel /
// barrier driver) evaluate against an immutable pre-barrier database, while
// the live regimes (sequential driver) emit straight into the FactDb, so a
// rule reading its own head predicate can observe its own emissions
// mid-call ("self-feeding").  Reordering such a call would change which
// cascaded firings the call discovers, so live plans keep it in written
// order (see BuildPlan).
enum class PlanRegime {
  // Parallel Phase A full evaluation (frozen): nothing bound initially;
  // literal 0 stays outermost (scan partitioning ranges over it, so moving
  // it would break the cross-item emission order the flush restoration
  // relies on).
  kFull,
  // Parallel Phase B semi-naive iteration (frozen): the delta literal is
  // forced outermost (delta-row partitioning ranges over it) and its
  // variables are bound for everything after it.
  kDeltaScan,
  // Sequential Phase A (live): no partition pin, so literal 0 is free to
  // move; self-feeding rules keep written order.
  kFullLive,
  // Sequential Phase B (live): the delta literal enumerates an immutable
  // snapshot and carries no partition pin, so it too is free to move;
  // self-feeding calls (head predicate read live by a non-delta literal)
  // keep written order.
  kDeltaScanLive,
  // DeltaEvaluator::EvalRuleDelta: the delta literal's variables are
  // pre-bound to one delta tuple before the join starts; the delta literal
  // itself degenerates to a containment probe.  Emissions go to a callback
  // (never into the database), so there is no self-feeding hazard.
  kDeltaPrebound,
};

const char* PlanRegimeName(PlanRegime regime);

// One positive body literal as the planner sees it: predicate plus the
// constant/variable-slot shape (a mirror of the engine's compiled literal,
// kept engine-independent so the planner is testable on its own).
struct PlanArg {
  bool is_const = false;
  int slot = -1;  // -1 = anonymous variable
};

struct PlanLiteral {
  std::string pred;
  std::vector<PlanArg> args;
};

struct RuleDesc {
  int rule_index = 0;
  std::vector<PlanLiteral> positives;
  // Head-atom predicates, used by the live regimes to detect self-feeding
  // calls (a body literal reading a predicate the rule writes).
  std::vector<std::string> head_preds;
  // Computed by the engine: body reordering is admissible (two or more
  // positive literals, no aggregates, not a restricted-chase existential
  // rule).  Ineligible rules still get per-literal index-vs-scan selection
  // on the written order, which is order-neutral.
  bool reorderable = false;
};

// One literal of a chosen plan.
struct PlannedLiteral {
  size_t literal = 0;     // index into the rule's positives (written order)
  uint64_t mask = 0;      // expected bound mask at this depth
  bool use_index = true;  // probe the mask's hash index vs. filtered scan
  double est_rows = 0;    // estimated matching rows per probe
};

struct JoinPlan {
  std::vector<PlannedLiteral> order;  // evaluation order, outermost first
  bool reordered = false;             // order differs from written order
  double est_probes = 0;          // estimated candidate rows, chosen order
  double est_probes_written = 0;  // same estimator on the written order
  double est_firings = 0;         // estimated complete body matches
};

// Cache-entry snapshot for observability (EngineStats::rule_plans).
struct PlanSnapshot {
  int rule_index = 0;
  PlanRegime regime = PlanRegime::kFull;
  int delta_literal = -1;
  JoinPlan plan;
  // Predicate of each planned literal, parallel to plan.order.
  std::vector<std::string> preds;
  size_t uses = 0;     // PlanFor calls served by this entry
  size_t replans = 0;  // times the entry was rebuilt on stats drift
};

// Builds, caches and serves join plans.  Driver-only: PlanFor runs at
// barrier boundaries (work-item creation), never on pool threads.
class JoinPlanner {
 public:
  JoinPlanner(PlanMode mode, std::vector<RuleDesc> rules);

  // The plan for evaluating `rule_index` under `regime`.  `delta_literal`
  // is the semi-naive delta literal (-1 for kFull); `delta_rel` is the
  // delta relation it enumerates (kDeltaScan/kDeltaPrebound; its size
  // anchors the outermost cardinality).  Returns nullptr when planning is
  // off or the rule has no positive literals — the engine then evaluates
  // exactly as it does today.  The pointer stays valid until the next
  // PlanFor call for the same key.  Refreshes stale relation statistics
  // (so it must not run while staged tuples are pending).
  const JoinPlan* PlanFor(size_t rule_index, PlanRegime regime,
                          int delta_literal, FactDb& db,
                          const Relation* delta_rel);

  size_t plans_built() const { return plans_built_; }
  size_t plans_reordered() const { return plans_reordered_; }
  size_t cache_hits() const { return cache_hits_; }
  size_t replans() const { return replans_; }

  // Every cached plan with its usage counters, for EngineStats.
  std::vector<PlanSnapshot> Snapshot() const;

 private:
  struct CacheKey {
    size_t rule_index;
    PlanRegime regime;
    int delta_literal;
    bool operator<(const CacheKey& o) const {
      if (rule_index != o.rule_index) return rule_index < o.rule_index;
      if (regime != o.regime) return regime < o.regime;
      return delta_literal < o.delta_literal;
    }
  };
  struct CacheEntry {
    JoinPlan plan;
    // Body-relation sizes at planning time (delta relation included as the
    // last entry for delta regimes); >2x drift triggers a re-plan.
    std::vector<size_t> size_snapshot;
    size_t uses = 0;
    size_t replans = 0;
  };

  JoinPlan BuildPlan(const RuleDesc& rule, PlanRegime regime,
                     int delta_literal, FactDb& db,
                     const Relation* delta_rel) const;
  std::vector<size_t> SizeSnapshot(const RuleDesc& rule, FactDb& db,
                                   const Relation* delta_rel) const;

  PlanMode mode_;
  std::vector<RuleDesc> rules_;
  std::map<CacheKey, CacheEntry> cache_;
  size_t plans_built_ = 0;
  size_t plans_reordered_ = 0;
  size_t cache_hits_ = 0;
  size_t replans_ = 0;
};

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_PLANNER_H_
