// Static analysis of Vadalog programs.
//
// Implements the checks the paper relies on (Section 4):
//   * safety / range-restriction validation,
//   * predicate dependency graph, SCC condensation and stratification
//     (negation must not cross an SCC; aggregation inside an SCC switches the
//     engine to monotonic semantics),
//   * wardedness (affected positions, harmful/dangerous variables, ward
//     existence) — the syntactic restriction that keeps reasoning decidable
//     and PTIME,
//   * piecewise linearity (at most one recursive body atom per rule), the
//     fragment Non-Recursive Warded Datalog+- with transitive closure reduces
//     to [Berger et al., PODS'19].

#ifndef KGM_VADALOG_ANALYSIS_H_
#define KGM_VADALOG_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "vadalog/ast.h"

namespace kgm::vadalog {

// Result of stratification.
struct Stratification {
  // Predicate -> SCC id (dense, 0-based, topologically ordered:
  // dependencies first).
  std::map<std::string, int> pred_scc;
  int num_sccs = 0;
  // Rule index -> stratum (= SCC id of its head predicates; multi-head rules
  // force their head predicates into one SCC).
  std::vector<int> rule_stratum;
  // Rule index -> true when some body predicate shares the head's SCC.
  std::vector<bool> rule_recursive;

  int SccOf(const std::string& pred) const {
    auto it = pred_scc.find(pred);
    return it == pred_scc.end() ? -1 : it->second;
  }
};

// A stratification violation: a negated body literal whose predicate sits in
// the same SCC as the rule's head (negation inside recursion).
struct StratViolation {
  int rule_index = -1;       // 0-based index of the offending rule
  std::string head_pred;     // first head predicate of that rule
  std::string negated_pred;  // the negated body predicate
  std::string message;       // "rule N (pred): ..." — deterministic
};

// Builds the dependency graph and computes SCC condensation, per-rule strata
// and recursion flags unconditionally.  When `violations` is non-null, any
// stratification violations are appended in rule order (deterministic)
// instead of aborting the analysis.
Stratification ComputeStratification(const Program& program,
                                     std::vector<StratViolation>* violations);

// Builds the dependency graph and stratifies the program.  Fails on the
// first stratification violation (negation inside a recursive SCC).
Result<Stratification> Stratify(const Program& program);

// Validates range restriction for one rule: head/condition/assignment/
// aggregate/negation variables must be bound by positive literals or prior
// assignments; existential variables must be fresh and appear only in the
// head.  `rule_index` is 0-based and used for the "rule N (pred):" message
// prefix.
Status ValidateRuleSafety(const Rule& r, size_t rule_index);

// Validates every rule; fails with the first violation in rule order.
Status ValidateSafety(const Program& program);

// A predicate position (predicate name, 0-based argument index).
struct Position {
  std::string pred;
  int index;
  bool operator<(const Position& o) const {
    if (pred != o.pred) return pred < o.pred;
    return index < o.index;
  }
  bool operator==(const Position& o) const {
    return pred == o.pred && index == o.index;
  }
};

struct WardednessReport {
  bool warded = true;
  // Affected positions: those where labeled nulls may appear.
  std::set<Position> affected;
  // Human-readable violations (empty when warded), in rule order.
  std::vector<std::string> violations;
  // 0-based rule index per violation, parallel to `violations`.
  std::vector<int> violation_rules;
};

// Checks wardedness of the program's rules.
WardednessReport CheckWardedness(const Program& program);

// True if every rule has at most one body atom mutually recursive with its
// head (piecewise-linear Datalog+-).
bool IsPiecewiseLinear(const Program& program);

// True if the program's dependency graph has a cycle (self-loops count).
bool IsRecursive(const Program& program);

}  // namespace kgm::vadalog

#endif  // KGM_VADALOG_ANALYSIS_H_
