#include "metalog/catalog.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>

#include "base/check.h"

namespace kgm::metalog {

namespace {

const std::vector<std::string> kNoProps;

void MergeProps(std::map<std::string, std::vector<std::string>>* labels,
                const std::string& label,
                const std::vector<std::string>& props) {
  std::vector<std::string>& existing = (*labels)[label];
  std::set<std::string> merged(existing.begin(), existing.end());
  merged.insert(props.begin(), props.end());
  existing.assign(merged.begin(), merged.end());
}

}  // namespace

GraphCatalog GraphCatalog::FromGraph(const pg::PropertyGraph& graph) {
  GraphCatalog catalog;
  for (pg::NodeId id = 0; id < graph.node_capacity(); ++id) {
    if (!graph.HasNode(id)) continue;
    const pg::Node& n = graph.node(id);
    std::vector<std::string> props;
    for (const auto& [k, v] : n.props) {
      if (k != kOidProperty) props.push_back(k);
    }
    for (const std::string& label : n.labels) {
      MergeProps(&catalog.node_labels_, label, props);
    }
  }
  for (pg::EdgeId id = 0; id < graph.edge_capacity(); ++id) {
    if (!graph.HasEdge(id)) continue;
    const pg::Edge& e = graph.edge(id);
    std::vector<std::string> props;
    for (const auto& [k, v] : e.props) {
      if (k != kOidProperty) props.push_back(k);
    }
    MergeProps(&catalog.edge_labels_, e.label, props);
  }
  return catalog;
}

void GraphCatalog::AddNodeLabel(const std::string& label,
                                const std::vector<std::string>& props) {
  MergeProps(&node_labels_, label, props);
}

void GraphCatalog::AddEdgeLabel(const std::string& label,
                                const std::vector<std::string>& props) {
  MergeProps(&edge_labels_, label, props);
}

Status GraphCatalog::AbsorbProgram(const MetaProgram& program) {
  auto absorb_atom = [this](const PgAtom& atom) {
    if (atom.label.empty()) return;
    std::vector<std::string> props;
    for (const PgProperty& p : atom.properties) props.push_back(p.name);
    if (atom.is_edge) {
      MergeProps(&edge_labels_, atom.label, props);
    } else {
      MergeProps(&node_labels_, atom.label, props);
    }
  };
  std::function<void(const PathPtr&)> absorb_path =
      [&](const PathPtr& path) {
        if (path->kind == PathKind::kEdge) {
          absorb_atom(path->edge);
          return;
        }
        for (const PathPtr& c : path->children) absorb_path(c);
      };
  auto absorb_pattern = [&](const GraphPattern& pattern) {
    for (const PgAtom& n : pattern.nodes) absorb_atom(n);
    for (const PathPtr& p : pattern.paths) absorb_path(p);
  };
  for (const MetaRule& rule : program.rules) {
    for (const GraphPattern& p : rule.body_patterns) absorb_pattern(p);
    for (const GraphPattern& p : rule.negated_patterns) absorb_pattern(p);
    for (const GraphPattern& p : rule.head_patterns) absorb_pattern(p);
  }
  for (const auto& [label, props] : node_labels_) {
    if (edge_labels_.count(label) > 0) {
      return FailedPrecondition("label used for both nodes and edges: " +
                                label);
    }
  }
  return OkStatus();
}

void GraphCatalog::Merge(const GraphCatalog& other) {
  for (const auto& [label, props] : other.node_labels_) {
    MergeProps(&node_labels_, label, props);
  }
  for (const auto& [label, props] : other.edge_labels_) {
    MergeProps(&edge_labels_, label, props);
  }
}

uint64_t GraphCatalog::Fingerprint() const {
  // The label maps are ordered, so hashing in iteration order is already
  // deterministic and content-defined.
  std::hash<std::string> hs;
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto fold = [&h, &hs](
      const std::map<std::string, std::vector<std::string>>& labels,
      uint64_t salt) {
    h = HashCombine(h, salt);
    for (const auto& [label, props] : labels) {
      h = HashCombine(h, hs(label));
      for (const std::string& p : props) h = HashCombine(h, hs(p));
      h = HashCombine(h, props.size());
    }
  };
  fold(node_labels_, 0x6e6f6465);  // "node"
  fold(edge_labels_, 0x65646765);  // "edge"
  return h;
}

bool GraphCatalog::HasNodeLabel(const std::string& label) const {
  return node_labels_.count(label) > 0;
}

bool GraphCatalog::HasEdgeLabel(const std::string& label) const {
  return edge_labels_.count(label) > 0;
}

const std::vector<std::string>& GraphCatalog::NodeProps(
    const std::string& label) const {
  auto it = node_labels_.find(label);
  return it == node_labels_.end() ? kNoProps : it->second;
}

const std::vector<std::string>& GraphCatalog::EdgeProps(
    const std::string& label) const {
  auto it = edge_labels_.find(label);
  return it == edge_labels_.end() ? kNoProps : it->second;
}

int GraphCatalog::NodePropColumn(const std::string& label,
                                 const std::string& prop) const {
  const std::vector<std::string>& props = NodeProps(label);
  for (size_t i = 0; i < props.size(); ++i) {
    if (props[i] == prop) return static_cast<int>(1 + i);
  }
  return -1;
}

int GraphCatalog::EdgePropColumn(const std::string& label,
                                 const std::string& prop) const {
  const std::vector<std::string>& props = EdgeProps(label);
  for (size_t i = 0; i < props.size(); ++i) {
    if (props[i] == prop) return static_cast<int>(3 + i);
  }
  return -1;
}

size_t GraphCatalog::NodeArity(const std::string& label) const {
  return 1 + NodeProps(label).size();
}

size_t GraphCatalog::EdgeArity(const std::string& label) const {
  return 3 + EdgeProps(label).size();
}

std::vector<std::string> GraphCatalog::NodeLabels() const {
  std::vector<std::string> out;
  for (const auto& [label, props] : node_labels_) out.push_back(label);
  return out;
}

std::vector<std::string> GraphCatalog::EdgeLabels() const {
  std::vector<std::string> out;
  for (const auto& [label, props] : edge_labels_) out.push_back(label);
  return out;
}

namespace {

// The OID a node/edge carries in the relational encoding: its preserved
// chase OID when present, its integer id otherwise.
Value NodeOid(const pg::Node& n) {
  auto it = n.props.find(kOidProperty);
  if (it != n.props.end()) return it->second;
  return Value(static_cast<int64_t>(n.id));
}

Value EdgeOid(const pg::Edge& e) {
  auto it = e.props.find(kOidProperty);
  if (it != e.props.end()) return it->second;
  return Value(static_cast<int64_t>(e.id));
}

}  // namespace

vadalog::FactDb EncodeGraph(const pg::PropertyGraph& graph,
                            const GraphCatalog& catalog) {
  vadalog::FactDb db;
  for (pg::NodeId id = 0; id < graph.node_capacity(); ++id) {
    if (!graph.HasNode(id)) continue;
    const pg::Node& n = graph.node(id);
    Value oid = NodeOid(n);
    for (const std::string& label : n.labels) {
      if (!catalog.HasNodeLabel(label)) continue;
      const std::vector<std::string>& props = catalog.NodeProps(label);
      vadalog::Tuple t;
      t.reserve(1 + props.size());
      t.push_back(oid);
      for (const std::string& prop : props) {
        auto it = n.props.find(prop);
        t.push_back(it == n.props.end() ? Value() : it->second);
      }
      db.Add(label, std::move(t));
    }
  }
  for (pg::EdgeId id = 0; id < graph.edge_capacity(); ++id) {
    if (!graph.HasEdge(id)) continue;
    const pg::Edge& e = graph.edge(id);
    if (!catalog.HasEdgeLabel(e.label)) continue;
    const std::vector<std::string>& props = catalog.EdgeProps(e.label);
    vadalog::Tuple t;
    t.reserve(3 + props.size());
    t.push_back(EdgeOid(e));
    t.push_back(NodeOid(graph.node(e.from)));
    t.push_back(NodeOid(graph.node(e.to)));
    for (const std::string& prop : props) {
      auto it = e.props.find(prop);
      t.push_back(it == e.props.end() ? Value() : it->second);
    }
    db.Add(e.label, std::move(t));
  }
  return db;
}

Result<DecodeStats> DecodeGraph(const vadalog::FactDb& db,
                                const GraphCatalog& catalog,
                                pg::PropertyGraph* graph) {
  DecodeStats stats;
  std::unordered_map<Value, pg::NodeId, ValueHash> node_of;
  // Edge identity is the full (oid, from, to) triple: under frontier
  // Skolemization two derived edges may share an OID while differing in
  // their endpoints.
  auto edge_key = [](const Value& oid, const Value& from, const Value& to) {
    return MakeRecord({{"o", oid}, {"f", from}, {"t", to}});
  };
  std::unordered_map<Value, pg::EdgeId, ValueHash> edge_of;
  for (pg::NodeId id = 0; id < graph->node_capacity(); ++id) {
    if (graph->HasNode(id)) node_of.emplace(NodeOid(graph->node(id)), id);
  }
  for (pg::EdgeId id = 0; id < graph->edge_capacity(); ++id) {
    if (!graph->HasEdge(id)) continue;
    const pg::Edge& e = graph->edge(id);
    edge_of.emplace(edge_key(EdgeOid(e), NodeOid(graph->node(e.from)),
                             NodeOid(graph->node(e.to))),
                    id);
  }
  // Pass 1: nodes.  Later facts win property conflicts: monotonic
  // aggregates emit improving values over time, and relation order is
  // derivation order.
  for (const std::string& label : catalog.NodeLabels()) {
    const vadalog::Relation* rel = db.Get(label);
    if (rel == nullptr) continue;
    const std::vector<std::string>& props = catalog.NodeProps(label);
    for (const vadalog::Tuple& t : rel->tuples()) {
      KGM_CHECK(t.size() == 1 + props.size());
      const Value& oid = t[0];
      auto it = node_of.find(oid);
      pg::NodeId id;
      bool is_new = it == node_of.end();
      if (is_new) {
        id = graph->AddNode(label);
        if (!oid.is_int()) {
          graph->SetNodeProperty(id, kOidProperty, oid);
        }
        node_of.emplace(oid, id);
        ++stats.new_nodes;
      } else {
        id = it->second;
        if (!graph->node(id).HasLabel(label)) {
          graph->AddLabel(id, label);
          ++stats.updated_nodes;
        }
      }
      for (size_t i = 0; i < props.size(); ++i) {
        if (t[1 + i].is_null()) continue;
        const Value* existing = graph->NodeProperty(id, props[i]);
        if (existing == nullptr || !(*existing == t[1 + i])) {
          graph->SetNodeProperty(id, props[i], t[1 + i]);
          if (!is_new && existing != nullptr) ++stats.updated_nodes;
        }
      }
    }
  }
  // Pass 2: edges.
  for (const std::string& label : catalog.EdgeLabels()) {
    const vadalog::Relation* rel = db.Get(label);
    if (rel == nullptr) continue;
    const std::vector<std::string>& props = catalog.EdgeProps(label);
    for (const vadalog::Tuple& t : rel->tuples()) {
      KGM_CHECK(t.size() == 3 + props.size());
      const Value& oid = t[0];
      Value key = edge_key(oid, t[1], t[2]);
      auto existing = edge_of.find(key);
      if (existing != edge_of.end() &&
          graph->edge(existing->second).label == label) {
        pg::EdgeId eid = existing->second;
        for (size_t i = 0; i < props.size(); ++i) {
          if (t[3 + i].is_null()) continue;
          const Value* old = graph->EdgeProperty(eid, props[i]);
          if (old == nullptr || !(*old == t[3 + i])) {
            graph->SetEdgeProperty(eid, props[i], t[3 + i]);
          }
        }
        continue;
      }
      auto from_it = node_of.find(t[1]);
      auto to_it = node_of.find(t[2]);
      if (from_it == node_of.end() || to_it == node_of.end()) {
        return FailedPrecondition("derived edge " + label +
                                  " references unresolved node OID " +
                                  (from_it == node_of.end() ? t[1] : t[2])
                                      .ToString());
      }
      pg::PropertyMap prop_map;
      for (size_t i = 0; i < props.size(); ++i) {
        if (!t[3 + i].is_null()) prop_map[props[i]] = t[3 + i];
      }
      if (!oid.is_int()) prop_map[kOidProperty] = oid;
      pg::EdgeId eid = graph->AddEdge(from_it->second, to_it->second, label,
                                      std::move(prop_map));
      edge_of.emplace(std::move(key), eid);
      ++stats.new_edges;
    }
  }
  return stats;
}

}  // namespace kgm::metalog
