// Label catalog and the PG-to-relational mapping (step (1) of the MetaLog
// to Vadalog translation, Section 4 of the paper).
//
// L-labeled nodes with properties f1..fn become facts L(oid, f1, ..., fn);
// Le-labeled edges become facts Le(oid, from, to, f1, ..., fm).  Property
// columns follow the catalog's canonical (sorted) order; properties missing
// on a node/edge encode as null.

#ifndef KGM_METALOG_CATALOG_H_
#define KGM_METALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "metalog/ast.h"
#include "pg/property_graph.h"
#include "vadalog/database.h"

namespace kgm::metalog {

// Reserved property that preserves the chase OID (a Skolem term or labeled
// null) of derived nodes/edges across encode/decode round trips, keeping
// repeated materialization runs idempotent.
inline constexpr char kOidProperty[] = "__oid";

// Canonical property lists per node label and edge label.
class GraphCatalog {
 public:
  GraphCatalog() = default;

  // Scans a graph: every label gets the union of properties observed on its
  // nodes/edges.
  static GraphCatalog FromGraph(const pg::PropertyGraph& graph);

  // Registers `props` for a node/edge label (merged with existing entries).
  void AddNodeLabel(const std::string& label,
                    const std::vector<std::string>& props = {});
  void AddEdgeLabel(const std::string& label,
                    const std::vector<std::string>& props = {});

  // Adds every label/property mentioned by a MetaLog program, so that
  // intensional labels (e.g. CONTROLS) are known before translation.
  // Labels used as both node and edge labels are rejected.
  Status AbsorbProgram(const MetaProgram& program);

  // Merges another catalog into this one.
  void Merge(const GraphCatalog& other);

  bool HasNodeLabel(const std::string& label) const;
  bool HasEdgeLabel(const std::string& label) const;

  // Sorted property names of a label (empty vector if unknown).
  const std::vector<std::string>& NodeProps(const std::string& label) const;
  const std::vector<std::string>& EdgeProps(const std::string& label) const;

  // Index of `prop` in the relational encoding of the label's facts, i.e.
  // 1 + prop position for nodes, 3 + prop position for edges; -1 if unknown.
  int NodePropColumn(const std::string& label, const std::string& prop) const;
  int EdgePropColumn(const std::string& label, const std::string& prop) const;

  // Fact arities: nodes = 1 + #props, edges = 3 + #props.
  size_t NodeArity(const std::string& label) const;
  size_t EdgeArity(const std::string& label) const;

  std::vector<std::string> NodeLabels() const;
  std::vector<std::string> EdgeLabels() const;

  // Order-independent digest of the catalog contents (labels and their
  // canonical property lists).  Two catalogs with equal fingerprints
  // produce identical relational encodings, so a MetaLog program compiled
  // against one is valid against the other — the prepared-query cache
  // keys compiled programs by (source, fingerprint).
  uint64_t Fingerprint() const;

 private:
  std::map<std::string, std::vector<std::string>> node_labels_;
  std::map<std::string, std::vector<std::string>> edge_labels_;
};

// Encodes `graph` into relational facts per the catalog.  Node OIDs are the
// node ids as integers; edge OIDs the edge ids.  Labels absent from the
// catalog are skipped.
vadalog::FactDb EncodeGraph(const pg::PropertyGraph& graph,
                            const GraphCatalog& catalog);

// Statistics of a decode pass.
struct DecodeStats {
  size_t new_nodes = 0;
  size_t new_edges = 0;
  size_t updated_nodes = 0;
};

// Merges derived facts of `db` back into `graph` (the inverse mapping):
//  * node facts with a fresh OID (Skolem/null) create new nodes;
//  * node facts with a known OID merge their non-null properties;
//  * edge facts with fresh OIDs create edges between resolved endpoints.
// Facts whose predicates are not catalog labels are ignored.
Result<DecodeStats> DecodeGraph(const vadalog::FactDb& db,
                                const GraphCatalog& catalog,
                                pg::PropertyGraph* graph);

}  // namespace kgm::metalog

#endif  // KGM_METALOG_CATALOG_H_
