// Prepared-program cache: parse a MetaLog program and compile it through
// MTV once, then reuse the compiled Vadalog program for every execution
// against a compatible catalog.
//
// Compilation output depends only on (source text, catalog contents, MTV
// options), so entries are keyed by the source hash combined with the
// catalog fingerprint — a program prepared for one epoch of a served
// knowledge graph stays valid across publications as long as the label
// catalog is unchanged, while a schema change naturally misses and
// recompiles.  The cache is bounded (LRU) and thread-safe; concurrent
// misses for the same key may compile twice, but only one result is
// retained.

#ifndef KGM_METALOG_PREPARED_H_
#define KGM_METALOG_PREPARED_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "lint/diagnostic.h"
#include "metalog/ast.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "vadalog/ast.h"

namespace kgm::metalog {

// One parse+MTV compilation, immutable once cached.
struct CompiledMeta {
  MetaProgram meta;        // the parsed source
  GraphCatalog catalog;    // base catalog after AbsorbProgram
  vadalog::Program program;
  std::vector<std::string> helper_predicates;
  // MTV provenance: originating MetaLog rule per compiled rule.
  std::vector<int> rule_origin;
  // Diagnostics produced by the lint hook (empty without a hook).  Cached
  // with the entry, so admission checks on cache hits are free.
  lint::LintResult lint;
};

class PreparedCache {
 public:
  explicit PreparedCache(size_t capacity = 128);

  // Runs after every successful compilation, outside the cache lock; the
  // result is stored in CompiledMeta::lint.  `base` is the catalog handed
  // to Compile (before AbsorbProgram).  Set once before concurrent use —
  // typically by the owning service at construction.
  using LintHook =
      std::function<lint::LintResult(const CompiledMeta&, const GraphCatalog& base)>;
  void set_lint_hook(LintHook hook) { lint_hook_ = std::move(hook); }

  // Returns the compiled form of `source` against `catalog` (which must
  // NOT yet have the program absorbed — Compile copies and absorbs it),
  // compiling on a miss.  Parse/translation failures are returned as-is
  // and are not cached.
  Result<std::shared_ptr<const CompiledMeta>> Compile(
      std::string_view source, const GraphCatalog& catalog,
      const MtvOptions& options = {});

  struct Counters {
    size_t hits = 0;
    size_t misses = 0;          // includes collision misses
    size_t key_collisions = 0;  // hash matched, full key material did not
    size_t evictions = 0;       // capacity evictions only
  };
  Counters counters() const;
  size_t size() const;
  void Clear();

  // Stable key for (source, catalog, options); exposed so callers (e.g.
  // the serving layer's result cache) can key on the same identity.
  static uint64_t KeyOf(std::string_view source, const GraphCatalog& catalog,
                        const MtvOptions& options);

  // The full key material behind KeyOf: a canonical string of the source
  // text, the catalog's labels with their property lists, and the options.
  // Entries store it and verify it on every hit, so a 64-bit hash
  // collision between two distinct (source, catalog, options) triples is
  // counted in `key_collisions` and served as a miss — never as the wrong
  // compiled program.
  static std::string CanonicalKey(std::string_view source,
                                  const GraphCatalog& catalog,
                                  const MtvOptions& options);

 private:
  struct Entry {
    uint64_t hash = 0;
    std::string full_key;  // CanonicalKey(...); verified on hit
    std::shared_ptr<const CompiledMeta> value;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> by_key_;
  Counters counters_;
  LintHook lint_hook_;  // immutable after setup; called without mu_ held
};

}  // namespace kgm::metalog

#endif  // KGM_METALOG_PREPARED_H_
