// Prepared-program cache: parse a MetaLog program and compile it through
// MTV once, then reuse the compiled Vadalog program for every execution
// against a compatible catalog.
//
// Compilation output depends only on (source text, catalog contents, MTV
// options), so entries are keyed by the source hash combined with the
// catalog fingerprint — a program prepared for one epoch of a served
// knowledge graph stays valid across publications as long as the label
// catalog is unchanged, while a schema change naturally misses and
// recompiles.  The cache is bounded (LRU) and thread-safe; concurrent
// misses for the same key may compile twice, but only one result is
// retained.

#ifndef KGM_METALOG_PREPARED_H_
#define KGM_METALOG_PREPARED_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "metalog/ast.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "vadalog/ast.h"

namespace kgm::metalog {

// One parse+MTV compilation, immutable once cached.
struct CompiledMeta {
  MetaProgram meta;        // the parsed source
  GraphCatalog catalog;    // base catalog after AbsorbProgram
  vadalog::Program program;
  std::vector<std::string> helper_predicates;
};

class PreparedCache {
 public:
  explicit PreparedCache(size_t capacity = 128);

  // Returns the compiled form of `source` against `catalog` (which must
  // NOT yet have the program absorbed — Compile copies and absorbs it),
  // compiling on a miss.  Parse/translation failures are returned as-is
  // and are not cached.
  Result<std::shared_ptr<const CompiledMeta>> Compile(
      std::string_view source, const GraphCatalog& catalog,
      const MtvOptions& options = {});

  struct Counters {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
  };
  Counters counters() const;
  size_t size() const;
  void Clear();

  // Stable key for (source, catalog, options); exposed so callers (e.g.
  // the serving layer's result cache) can key on the same identity.
  static uint64_t KeyOf(std::string_view source, const GraphCatalog& catalog,
                        const MtvOptions& options);

 private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const CompiledMeta>>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> by_key_;
  Counters counters_;
};

}  // namespace kgm::metalog

#endif  // KGM_METALOG_PREPARED_H_
