// MTV: the MetaLog-to-Vadalog translator (Section 4 of the paper).
//
// Given a MetaLog program and a label catalog, MTV produces a Vadalog
// program over the relational encoding of the property graph:
//
//  (2) PG node atoms (x: L; K) become relational atoms L(x, k1, ..., kn)
//      with the catalog's canonical property order; unmentioned properties
//      become anonymous variables in the body and nulls in the head.
//  (3) Path patterns are resolved inductively:
//        * single edge atoms inline as Le(e, x, y, props) (inverse swaps the
//          endpoints);
//        * concatenations chain through fresh intermediate variables;
//        * alternations compile to a helper predicate (alpha) with one rule
//          per branch;
//        * closures compile to a transitive helper predicate (beta); '*' is
//          reflexive per the paper's semi-path semantics (q >= 0), realized
//          by expanding the rule into 2^k variants where each star either
//          contributes its closure atom or unifies its endpoints.  Setting
//          `reflexive_star = false` reproduces the paper's published
//          non-reflexive beta translation (Example 4.4).
//      Variables shared between a closure body and the rest of the rule
//      (e.g. the schemaOID selector of Example 5.1) become parameter
//      columns of the helper predicate, threaded through every step.
//
// Head conveniences: a labeled head atom with no identifier variable gets an
// automatic existential OID; a `*p` spread expands to get(p, "field")
// assignments over the catalog's fields.

#ifndef KGM_METALOG_MTV_H_
#define KGM_METALOG_MTV_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "metalog/ast.h"
#include "metalog/catalog.h"
#include "vadalog/ast.h"

namespace kgm::metalog {

struct MtvOptions {
  // Kleene star includes the empty path (paper semantics).  When false, the
  // star is translated exactly as published in Example 4.4 (one or more
  // steps).
  bool reflexive_star = true;
  // Maximum number of star occurrences per rule (reflexive expansion is
  // exponential in this count).
  int max_stars_per_rule = 4;
};

struct MtvResult {
  vadalog::Program program;
  // Names of generated helper predicates (alpha / beta of Section 4).
  std::vector<std::string> helper_predicates;
  // Provenance: for every compiled rule (parallel to program.rules) the
  // 0-based index of the MetaLog rule it was generated from — helper rules
  // and star-expansion variants map back to their originating rule, so
  // diagnostics on compiled rules can report at the MetaLog source line.
  std::vector<int> rule_origin;
};

// Translates a whole MetaLog program.  The catalog must already know every
// label the program mentions (see GraphCatalog::AbsorbProgram).
Result<MtvResult> TranslateMetaProgram(const MetaProgram& program,
                                       const GraphCatalog& catalog,
                                       const MtvOptions& options = {});

// Translates a single rule (helper rules are appended to the result).
Result<MtvResult> TranslateMetaRule(const MetaRule& rule,
                                    const GraphCatalog& catalog,
                                    const MtvOptions& options = {});

// Target query language for the generated @input annotations.
enum class BindingLanguage {
  kCypher,  // graph-database targets (Example 4.4 binds Neo4J this way)
  kSql,     // relational targets
};

// Generates the `@input(atom, "query")` annotation block of Example 4.4:
// for every node/edge label the program's bodies read, a query in the
// target system's language that populates the corresponding relational
// atom (implementing translation step (1) at the source).
std::string GenerateInputBindings(const MetaProgram& program,
                                  const GraphCatalog& catalog,
                                  BindingLanguage language);

}  // namespace kgm::metalog

#endif  // KGM_METALOG_MTV_H_
