// End-to-end MetaLog execution against a property graph:
//
//   1. build a catalog from the graph, absorb the program's labels,
//   2. encode the graph relationally (MTV step (1)),
//   3. compile the MetaLog program to Vadalog (MTV steps (2)-(3)),
//   4. run the Vadalog engine to fixpoint,
//   5. decode derived node/edge facts back into the graph.
//
// This mirrors how KGModel executes intensional components and schema
// mappings via the Vadalog System (Sections 4-6 of the paper).

#ifndef KGM_METALOG_RUNNER_H_
#define KGM_METALOG_RUNNER_H_

#include <string>

#include "base/status.h"
#include "metalog/ast.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "metalog/prepared.h"
#include "pg/property_graph.h"
#include "vadalog/engine.h"

namespace kgm::metalog {

struct MetaRunOptions {
  vadalog::EngineOptions engine;
  MtvOptions mtv;
  // Extra labels to register before translation (for intensional labels
  // whose properties are not mentioned in the program).
  GraphCatalog extra_catalog;
  // Optional prepared-program cache.  When set, RunMetaLogSource reuses
  // cached parse+MTV compilations instead of recompiling per run (valid as
  // long as the graph's label catalog is unchanged; a changed catalog
  // fingerprint misses and recompiles).
  PreparedCache* prepared = nullptr;
};

struct MetaRunResult {
  DecodeStats decode;
  vadalog::EngineStats engine_stats;
  size_t vadalog_rule_count = 0;
};

// Runs a parsed MetaLog program against `graph`, materializing derived
// nodes, edges and properties in place.
Result<MetaRunResult> RunMetaLog(const MetaProgram& program,
                                 pg::PropertyGraph* graph,
                                 const MetaRunOptions& options = {});

// Parses and runs MetaLog source text.  With options.prepared set, the
// parse+MTV compilation is served from the cache when possible.
Result<MetaRunResult> RunMetaLogSource(std::string_view source,
                                       pg::PropertyGraph* graph,
                                       const MetaRunOptions& options = {});

// Runs an already-compiled MetaLog program (from PreparedCache::Compile)
// against `graph`.  The compilation's catalog must cover the graph's
// labels; labels absent from it are skipped during encoding.
Result<MetaRunResult> RunCompiledMeta(const CompiledMeta& compiled,
                                      pg::PropertyGraph* graph,
                                      const MetaRunOptions& options = {});

}  // namespace kgm::metalog

#endif  // KGM_METALOG_RUNNER_H_
