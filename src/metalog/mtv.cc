#include "metalog/mtv.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "base/check.h"

namespace kgm::metalog {

namespace {

using vadalog::Atom;
using vadalog::Expr;
using vadalog::ExprPtr;
using vadalog::Literal;
using vadalog::Rule;
using vadalog::Term;

// --- variable renaming over compiled Vadalog rules ---------------------------

ExprPtr RenameExpr(const ExprPtr& e, const std::string& from,
                   const std::string& to) {
  switch (e->kind) {
    case Expr::Kind::kConst:
      return e;
    case Expr::Kind::kVar:
      return e->var == from ? Expr::Var(to) : e;
    case Expr::Kind::kBinary:
      return Expr::Binary(e->op, RenameExpr(e->lhs, from, to),
                          RenameExpr(e->rhs, from, to));
    case Expr::Kind::kNot:
      return Expr::Not(RenameExpr(e->lhs, from, to));
    case Expr::Kind::kNeg:
      return Expr::Negate(RenameExpr(e->lhs, from, to));
    case Expr::Kind::kCall: {
      std::vector<ExprPtr> args;
      for (const ExprPtr& a : e->call_args) {
        args.push_back(RenameExpr(a, from, to));
      }
      return Expr::Call(e->call_name, std::move(args));
    }
  }
  return e;
}

void RenameInAtom(Atom* atom, const std::string& from, const std::string& to) {
  for (Term& t : atom->args) {
    if (t.is_var() && t.var == from) t.var = to;
  }
}

void RenameVar(Rule* rule, const std::string& from, const std::string& to) {
  for (Literal& l : rule->body) RenameInAtom(&l.atom, from, to);
  for (vadalog::Assignment& a : rule->assignments) {
    if (a.var == from) a.var = to;
    a.expr = RenameExpr(a.expr, from, to);
  }
  for (vadalog::Condition& c : rule->conditions) {
    c.expr = RenameExpr(c.expr, from, to);
  }
  for (vadalog::Aggregate& a : rule->aggregates) {
    if (a.result_var == from) a.result_var = to;
    for (ExprPtr& e : a.args) e = RenameExpr(e, from, to);
    for (std::string& v : a.contributors) {
      if (v == from) v = to;
    }
  }
  for (vadalog::ExistentialSpec& e : rule->existentials) {
    if (e.var == from) e.var = to;
    for (std::string& v : e.skolem_args) {
      if (v == from) v = to;
    }
  }
  for (Atom& h : rule->head) RenameInAtom(&h, from, to);
}

// --- the translator -----------------------------------------------------------

class Translator {
 public:
  Translator(const GraphCatalog& catalog, const MtvOptions& options)
      : catalog_(catalog), options_(options) {}

  Status TranslateRule(const MetaRule& rule, int rule_index);

  MtvResult TakeResult() { return std::move(result_); }

 private:
  // One use of a Kleene star inside the current rule.
  struct StarUse {
    std::string left_var;
    std::string right_var;
    Literal closure_literal;  // beta(left, right, params...)
  };

  // All generated rules go through here: every rule carries the source
  // location of the MetaLog rule it came from and a provenance entry.
  void AppendRule(Rule rule) {
    rule.loc = rule_loc_;
    result_.program.rules.push_back(std::move(rule));
    result_.rule_origin.push_back(rule_index_);
  }

  std::string FreshVar() { return "_mtv" + std::to_string(++var_counter_); }
  std::string FreshHelper(const char* kind) {
    return std::string("_") + kind + "_r" + std::to_string(rule_index_) +
           "_" + std::to_string(++helper_counter_);
  }

  // Counts occurrences of every variable in the whole MetaLog rule.
  void CountRuleVars(const MetaRule& rule);
  static void CountPatternVars(const GraphPattern& pattern,
                               std::map<std::string, int>* counts);

  // Appends the literal for a node atom to `rule`, with the endpoint
  // variable already chosen.
  Status EmitNodeLiteral(const PgAtom& atom, const std::string& var,
                         Rule* rule);

  // Appends literal(s) realizing `path` between lv and rv to `rule`.
  // Stars are recorded into stars_ instead of emitting literals directly
  // (they are expanded into rule variants later) unless inside a helper.
  Status EmitPath(const PathPtr& path, const std::string& lv,
                  const std::string& rv, Rule* rule, bool allow_star_marker);

  // Single edge atom -> body literal.
  Result<Literal> EdgeLiteral(const PgAtom& atom, bool inverse,
                              const std::string& lv, const std::string& rv);

  // Parameters of a closure/alternation: variables occurring both inside the
  // sub-pattern and elsewhere in the rule.
  std::vector<std::string> ParamsOf(const PathPtr& sub);

  // Creates the helper predicate for an alternation and returns its literal.
  Result<Literal> BuildAlt(const PathPtr& alt, const std::string& lv,
                           const std::string& rv);

  // Creates the transitive-closure helper (>= 1 step) and returns its
  // literal between lv and rv.
  Result<Literal> BuildClosure(const PathPtr& inner, const std::string& lv,
                               const std::string& rv);

  Status EmitHeadPattern(const GraphPattern& pattern, Rule* rule,
                         std::set<std::string>* existing_existentials,
                         std::set<std::string>* body_vars);
  Result<Atom> HeadNodeAtom(const PgAtom& atom, const std::string& var,
                            Rule* rule);
  Result<Atom> HeadEdgeAtom(const PgAtom& atom, bool inverse,
                            const std::string& id_var, const std::string& lv,
                            const std::string& rv, Rule* rule);

  const GraphCatalog& catalog_;
  const MtvOptions& options_;
  MtvResult result_;

  int rule_index_ = 0;
  int var_counter_ = 0;
  int helper_counter_ = 0;
  std::map<std::string, int> var_counts_;   // across the whole MetaLog rule
  std::vector<StarUse> stars_;
  std::string rule_label_;
  SourceLoc rule_loc_;  // of the MetaLog rule being translated
};

void Translator::CountPatternVars(const GraphPattern& pattern,
                                  std::map<std::string, int>* counts) {
  auto count_atom = [counts](const PgAtom& atom) {
    if (!atom.id_var.empty() && atom.id_var != "_") ++(*counts)[atom.id_var];
    for (const PgProperty& p : atom.properties) {
      if (p.value.is_var() && !p.value.is_anonymous()) {
        ++(*counts)[p.value.var];
      }
    }
    if (!atom.spread_var.empty()) ++(*counts)[atom.spread_var];
  };
  for (const PgAtom& n : pattern.nodes) count_atom(n);
  for (const PathPtr& p : pattern.paths) {
    std::vector<std::string> vars;
    p->CollectVars(&vars);
    for (const std::string& v : vars) ++(*counts)[v];
  }
}

void Translator::CountRuleVars(const MetaRule& rule) {
  var_counts_.clear();
  for (const GraphPattern& p : rule.body_patterns) {
    CountPatternVars(p, &var_counts_);
  }
  for (const GraphPattern& p : rule.negated_patterns) {
    CountPatternVars(p, &var_counts_);
  }
  for (const GraphPattern& p : rule.head_patterns) {
    CountPatternVars(p, &var_counts_);
  }
  auto count_expr = [this](const ExprPtr& e) {
    std::vector<std::string> vars;
    e->CollectVars(&vars);
    for (const std::string& v : vars) ++var_counts_[v];
  };
  for (const vadalog::Assignment& a : rule.assignments) {
    ++var_counts_[a.var];
    count_expr(a.expr);
  }
  for (const vadalog::Condition& c : rule.conditions) count_expr(c.expr);
  for (const vadalog::Aggregate& a : rule.aggregates) {
    ++var_counts_[a.result_var];
    for (const ExprPtr& e : a.args) count_expr(e);
    for (const std::string& v : a.contributors) ++var_counts_[v];
  }
  for (const vadalog::ExistentialSpec& e : rule.existentials) {
    for (const std::string& v : e.skolem_args) ++var_counts_[v];
  }
}

Status Translator::EmitNodeLiteral(const PgAtom& atom, const std::string& var,
                                   Rule* rule) {
  if (atom.label.empty()) {
    if (!atom.properties.empty() || !atom.spread_var.empty()) {
      return InvalidArgument(rule_label_ +
                             ": node atom with properties needs a label");
    }
    return OkStatus();  // pure endpoint reference
  }
  if (!catalog_.HasNodeLabel(atom.label)) {
    return InvalidArgument(rule_label_ + ": unknown node label " +
                           atom.label);
  }
  if (!atom.spread_var.empty()) {
    return InvalidArgument(rule_label_ +
                           ": '*' spread is only allowed in rule heads");
  }
  const std::vector<std::string>& props = catalog_.NodeProps(atom.label);
  Atom out;
  out.predicate = atom.label;
  out.args.push_back(Term::Var(var));
  std::map<std::string, Term> named;
  for (const PgProperty& p : atom.properties) {
    if (std::find(props.begin(), props.end(), p.name) == props.end()) {
      return InvalidArgument(rule_label_ + ": unknown property " + p.name +
                             " on label " + atom.label);
    }
    named.emplace(p.name, p.value);
  }
  for (const std::string& prop : props) {
    auto it = named.find(prop);
    out.args.push_back(it == named.end() ? Term::Var("_") : it->second);
  }
  rule->body.push_back(Literal{std::move(out), /*negated=*/false});
  return OkStatus();
}

Result<Literal> Translator::EdgeLiteral(const PgAtom& atom, bool inverse,
                                        const std::string& lv,
                                        const std::string& rv) {
  if (atom.label.empty()) {
    return InvalidArgument(rule_label_ + ": edge atoms must carry a label");
  }
  if (!catalog_.HasEdgeLabel(atom.label)) {
    return InvalidArgument(rule_label_ + ": unknown edge label " +
                           atom.label);
  }
  if (!atom.spread_var.empty()) {
    return InvalidArgument(rule_label_ +
                           ": '*' spread is only allowed in rule heads");
  }
  const std::vector<std::string>& props = catalog_.EdgeProps(atom.label);
  Atom out;
  out.predicate = atom.label;
  std::string id = atom.id_var.empty() ? "_" : atom.id_var;
  out.args.push_back(id == "_" ? Term::Var("_") : Term::Var(id));
  out.args.push_back(Term::Var(inverse ? rv : lv));
  out.args.push_back(Term::Var(inverse ? lv : rv));
  std::map<std::string, Term> named;
  for (const PgProperty& p : atom.properties) {
    if (std::find(props.begin(), props.end(), p.name) == props.end()) {
      return InvalidArgument(rule_label_ + ": unknown property " + p.name +
                             " on edge label " + atom.label);
    }
    named.emplace(p.name, p.value);
  }
  for (const std::string& prop : props) {
    auto it = named.find(prop);
    out.args.push_back(it == named.end() ? Term::Var("_") : it->second);
  }
  return Literal{std::move(out), /*negated=*/false};
}

std::vector<std::string> Translator::ParamsOf(const PathPtr& sub) {
  std::vector<std::string> inner;
  sub->CollectVars(&inner);
  std::map<std::string, int> inner_counts;
  for (const std::string& v : inner) ++inner_counts[v];
  std::set<std::string> params;
  for (const auto& [v, count] : inner_counts) {
    auto it = var_counts_.find(v);
    int total = it == var_counts_.end() ? count : it->second;
    if (total > count) params.insert(v);  // also used outside the sub-pattern
  }
  return {params.begin(), params.end()};
}

Result<Literal> Translator::BuildAlt(const PathPtr& alt,
                                     const std::string& lv,
                                     const std::string& rv) {
  std::vector<std::string> params = ParamsOf(alt);
  std::string pred = FreshHelper("alt");
  result_.helper_predicates.push_back(pred);
  for (const PathPtr& branch : alt->children) {
    Rule helper;
    helper.label = pred;
    std::string h = FreshVar();
    std::string q = FreshVar();
    KGM_RETURN_IF_ERROR(EmitPath(branch, h, q, &helper,
                                 /*allow_star_marker=*/false));
    Atom head;
    head.predicate = pred;
    head.args.push_back(Term::Var(h));
    head.args.push_back(Term::Var(q));
    for (const std::string& p : params) head.args.push_back(Term::Var(p));
    helper.head.push_back(std::move(head));
    AppendRule(std::move(helper));
  }
  Atom use;
  use.predicate = pred;
  use.args.push_back(Term::Var(lv));
  use.args.push_back(Term::Var(rv));
  for (const std::string& p : params) use.args.push_back(Term::Var(p));
  return Literal{std::move(use), /*negated=*/false};
}

Result<Literal> Translator::BuildClosure(const PathPtr& inner,
                                         const std::string& lv,
                                         const std::string& rv) {
  std::vector<std::string> params = ParamsOf(inner);
  std::string pred = FreshHelper("closure");
  result_.helper_predicates.push_back(pred);

  // Base rule: tau(S)(h, q) -> beta(h, q, params).
  {
    Rule base;
    base.label = pred;
    std::string h = FreshVar();
    std::string q = FreshVar();
    KGM_RETURN_IF_ERROR(EmitPath(inner, h, q, &base,
                                 /*allow_star_marker=*/false));
    Atom head;
    head.predicate = pred;
    head.args.push_back(Term::Var(h));
    head.args.push_back(Term::Var(q));
    for (const std::string& p : params) head.args.push_back(Term::Var(p));
    base.head.push_back(std::move(head));
    AppendRule(std::move(base));
  }
  // Step rule: beta(v, h, params), tau(S)(h, q) -> beta(v, q, params).
  {
    Rule step;
    step.label = pred;
    std::string v = FreshVar();
    std::string h = FreshVar();
    std::string q = FreshVar();
    Atom rec;
    rec.predicate = pred;
    rec.args.push_back(Term::Var(v));
    rec.args.push_back(Term::Var(h));
    for (const std::string& p : params) rec.args.push_back(Term::Var(p));
    step.body.push_back(Literal{std::move(rec), /*negated=*/false});
    KGM_RETURN_IF_ERROR(EmitPath(inner, h, q, &step,
                                 /*allow_star_marker=*/false));
    Atom head;
    head.predicate = pred;
    head.args.push_back(Term::Var(v));
    head.args.push_back(Term::Var(q));
    for (const std::string& p : params) head.args.push_back(Term::Var(p));
    step.head.push_back(std::move(head));
    AppendRule(std::move(step));
  }
  Atom use;
  use.predicate = pred;
  use.args.push_back(Term::Var(lv));
  use.args.push_back(Term::Var(rv));
  for (const std::string& p : params) use.args.push_back(Term::Var(p));
  return Literal{std::move(use), /*negated=*/false};
}

Status Translator::EmitPath(const PathPtr& path, const std::string& lv,
                            const std::string& rv, Rule* rule,
                            bool allow_star_marker) {
  switch (path->kind) {
    case PathKind::kEdge: {
      KGM_ASSIGN_OR_RETURN(Literal lit,
                           EdgeLiteral(path->edge, path->inverse, lv, rv));
      rule->body.push_back(std::move(lit));
      return OkStatus();
    }
    case PathKind::kConcat: {
      std::string prev = lv;
      for (size_t i = 0; i < path->children.size(); ++i) {
        std::string next =
            (i + 1 == path->children.size()) ? rv : FreshVar();
        KGM_RETURN_IF_ERROR(EmitPath(path->children[i], prev, next, rule,
                                     allow_star_marker));
        prev = next;
      }
      return OkStatus();
    }
    case PathKind::kAlt: {
      KGM_ASSIGN_OR_RETURN(Literal lit, BuildAlt(path, lv, rv));
      rule->body.push_back(std::move(lit));
      return OkStatus();
    }
    case PathKind::kPlus: {
      KGM_ASSIGN_OR_RETURN(Literal lit,
                           BuildClosure(path->children[0], lv, rv));
      rule->body.push_back(std::move(lit));
      return OkStatus();
    }
    case PathKind::kStar: {
      KGM_ASSIGN_OR_RETURN(Literal lit,
                           BuildClosure(path->children[0], lv, rv));
      if (options_.reflexive_star && allow_star_marker) {
        stars_.push_back(StarUse{lv, rv, std::move(lit)});
        return OkStatus();
      }
      if (options_.reflexive_star) {
        // Star nested inside another closure: the empty path is covered by
        // the enclosing closure taking fewer steps only if this star is the
        // whole step, which we cannot assume; reject to stay sound.
        return Unimplemented(rule_label_ +
                             ": '*' nested inside another closure or "
                             "alternation is not supported; rewrite with "
                             "'+' or '|'");
      }
      rule->body.push_back(std::move(lit));
      return OkStatus();
    }
  }
  return Internal("unhandled path kind");
}

Result<Atom> Translator::HeadNodeAtom(const PgAtom& atom,
                                      const std::string& var, Rule* rule) {
  KGM_CHECK(!atom.label.empty());
  if (!catalog_.HasNodeLabel(atom.label)) {
    return InvalidArgument(rule_label_ + ": unknown node label " +
                           atom.label);
  }
  const std::vector<std::string>& props = catalog_.NodeProps(atom.label);
  Atom out;
  out.predicate = atom.label;
  out.args.push_back(Term::Var(var));
  std::map<std::string, Term> named;
  for (const PgProperty& p : atom.properties) {
    if (std::find(props.begin(), props.end(), p.name) == props.end()) {
      return InvalidArgument(rule_label_ + ": unknown property " + p.name +
                             " on label " + atom.label);
    }
    named.emplace(p.name, p.value);
  }
  for (const std::string& prop : props) {
    auto it = named.find(prop);
    if (it != named.end()) {
      out.args.push_back(it->second);
    } else if (!atom.spread_var.empty()) {
      // *p expansion: fresh var assigned get(p, "prop").
      std::string v = FreshVar();
      rule->assignments.push_back(vadalog::Assignment{
          v, Expr::Call("get", {Expr::Var(atom.spread_var),
                                Expr::Const(Value(prop))})});
      out.args.push_back(Term::Var(v));
    } else {
      out.args.push_back(Term::Const(Value()));
    }
  }
  return out;
}

Result<Atom> Translator::HeadEdgeAtom(const PgAtom& atom, bool inverse,
                                      const std::string& id_var,
                                      const std::string& lv,
                                      const std::string& rv, Rule* rule) {
  if (atom.label.empty()) {
    return InvalidArgument(rule_label_ + ": head edge atoms must be labeled");
  }
  if (!catalog_.HasEdgeLabel(atom.label)) {
    return InvalidArgument(rule_label_ + ": unknown edge label " +
                           atom.label);
  }
  const std::vector<std::string>& props = catalog_.EdgeProps(atom.label);
  Atom out;
  out.predicate = atom.label;
  out.args.push_back(Term::Var(id_var));
  out.args.push_back(Term::Var(inverse ? rv : lv));
  out.args.push_back(Term::Var(inverse ? lv : rv));
  std::map<std::string, Term> named;
  for (const PgProperty& p : atom.properties) {
    if (std::find(props.begin(), props.end(), p.name) == props.end()) {
      return InvalidArgument(rule_label_ + ": unknown property " + p.name +
                             " on edge label " + atom.label);
    }
    named.emplace(p.name, p.value);
  }
  for (const std::string& prop : props) {
    auto it = named.find(prop);
    if (it != named.end()) {
      out.args.push_back(it->second);
    } else if (!atom.spread_var.empty()) {
      std::string v = FreshVar();
      rule->assignments.push_back(vadalog::Assignment{
          v, Expr::Call("get", {Expr::Var(atom.spread_var),
                                Expr::Const(Value(prop))})});
      out.args.push_back(Term::Var(v));
    } else {
      out.args.push_back(Term::Const(Value()));
    }
  }
  return out;
}

Status Translator::EmitHeadPattern(
    const GraphPattern& pattern, Rule* rule,
    std::set<std::string>* existing_existentials,
    std::set<std::string>* body_vars) {
  // Resolve node endpoint variables first.
  std::vector<std::string> node_vars;
  for (const PgAtom& node : pattern.nodes) {
    std::string var = node.id_var;
    if (var.empty() || var == "_") {
      if (node.label.empty()) {
        return InvalidArgument(rule_label_ +
                               ": anonymous unlabeled node atom in head");
      }
      var = FreshVar();
    }
    // New entity (not bound in the body, not yet existential): declare it.
    if (body_vars->count(var) == 0 &&
        existing_existentials->count(var) == 0) {
      rule->existentials.push_back(vadalog::ExistentialSpec{var, "", {}});
      existing_existentials->insert(var);
    }
    node_vars.push_back(var);
    if (!node.label.empty()) {
      KGM_ASSIGN_OR_RETURN(Atom atom, HeadNodeAtom(node, var, rule));
      rule->head.push_back(std::move(atom));
    }
  }
  for (size_t i = 0; i < pattern.paths.size(); ++i) {
    const PathPtr& path = pattern.paths[i];
    if (!path->IsSingleEdge()) {
      return InvalidArgument(
          rule_label_ +
          ": head path patterns must be single edge atoms");
    }
    std::string id_var = path->edge.id_var;
    if (id_var.empty() || id_var == "_") id_var = FreshVar();
    if (body_vars->count(id_var) == 0 &&
        existing_existentials->count(id_var) == 0) {
      rule->existentials.push_back(vadalog::ExistentialSpec{id_var, "", {}});
      existing_existentials->insert(id_var);
    }
    KGM_ASSIGN_OR_RETURN(
        Atom atom, HeadEdgeAtom(path->edge, path->inverse, id_var,
                                node_vars[i], node_vars[i + 1], rule));
    rule->head.push_back(std::move(atom));
  }
  return OkStatus();
}

Status Translator::TranslateRule(const MetaRule& rule, int rule_index) {
  rule_index_ = rule_index;
  helper_counter_ = 0;
  stars_.clear();
  rule_label_ = rule.label.empty() ? "rule " + std::to_string(rule_index + 1)
                                   : rule.label;
  rule_loc_ = rule.loc;
  CountRuleVars(rule);

  Rule main;
  main.label = rule.label;
  // Body: node and edge literals interleaved in pattern order.
  for (const GraphPattern& pattern : rule.body_patterns) {
    std::vector<std::string> node_vars;
    for (const PgAtom& node : pattern.nodes) {
      node_vars.push_back(node.id_var.empty() || node.id_var == "_"
                              ? FreshVar()
                              : node.id_var);
    }
    KGM_RETURN_IF_ERROR(EmitNodeLiteral(pattern.nodes[0], node_vars[0],
                                        &main));
    for (size_t i = 0; i < pattern.paths.size(); ++i) {
      KGM_RETURN_IF_ERROR(EmitPath(pattern.paths[i], node_vars[i],
                                   node_vars[i + 1], &main,
                                   /*allow_star_marker=*/true));
      KGM_RETURN_IF_ERROR(EmitNodeLiteral(pattern.nodes[i + 1],
                                          node_vars[i + 1], &main));
    }
  }
  // Negated patterns: one negated literal each.
  for (const GraphPattern& pattern : rule.negated_patterns) {
    auto endpoint = [](const PgAtom& node) -> std::string {
      return node.id_var.empty() || node.id_var == "_" ? "_" : node.id_var;
    };
    if (pattern.paths.empty()) {
      // Negated node atom.
      const PgAtom& node = pattern.nodes[0];
      if (node.label.empty()) {
        return InvalidArgument(rule_label_ +
                               ": negated node atoms must carry a label");
      }
      size_t before = main.body.size();
      KGM_RETURN_IF_ERROR(EmitNodeLiteral(node, endpoint(node), &main));
      KGM_CHECK(main.body.size() == before + 1);
      main.body.back().negated = true;
      continue;
    }
    // Negated single-edge pattern: endpoints must be plain references.
    for (const PgAtom& node : pattern.nodes) {
      if (!node.label.empty() || !node.properties.empty()) {
        return InvalidArgument(
            rule_label_ +
            ": endpoints of a negated edge pattern must be bare references");
      }
    }
    const PathPtr& path = pattern.paths[0];
    KGM_ASSIGN_OR_RETURN(
        Literal lit,
        EdgeLiteral(path->edge, path->inverse, endpoint(pattern.nodes[0]),
                    endpoint(pattern.nodes[1])));
    lit.negated = true;
    main.body.push_back(std::move(lit));
  }

  main.assignments = rule.assignments;
  main.conditions = rule.conditions;
  main.aggregates = rule.aggregates;
  main.existentials = rule.existentials;

  // Head.
  std::set<std::string> existentials;
  for (const vadalog::ExistentialSpec& e : rule.existentials) {
    existentials.insert(e.var);
  }
  std::set<std::string> body_vars;
  for (const Literal& l : main.body) {
    for (const Term& t : l.atom.args) {
      if (t.is_var() && !t.is_anonymous()) body_vars.insert(t.var);
    }
  }
  for (const StarUse& s : stars_) {
    body_vars.insert(s.left_var);
    body_vars.insert(s.right_var);
    for (const Term& t : s.closure_literal.atom.args) {
      if (t.is_var() && !t.is_anonymous()) body_vars.insert(t.var);
    }
  }
  for (const vadalog::Assignment& a : rule.assignments) {
    body_vars.insert(a.var);
  }
  for (const vadalog::Aggregate& a : rule.aggregates) {
    body_vars.insert(a.result_var);
  }
  for (const GraphPattern& pattern : rule.head_patterns) {
    KGM_RETURN_IF_ERROR(
        EmitHeadPattern(pattern, &main, &existentials, &body_vars));
  }

  // Reflexive-star expansion: for each subset of star uses, either the
  // closure literal appears, or the endpoints are unified (empty path).
  if (static_cast<int>(stars_.size()) > options_.max_stars_per_rule) {
    return FailedPrecondition(rule_label_ + ": too many '*' operators (" +
                              std::to_string(stars_.size()) + ")");
  }
  size_t variants = 1ULL << stars_.size();
  for (size_t mask = 0; mask < variants; ++mask) {
    Rule variant = main;
    for (size_t si = 0; si < stars_.size(); ++si) {
      const StarUse& star = stars_[si];
      if (mask & (1ULL << si)) {
        variant.body.push_back(star.closure_literal);
      } else {
        // Empty path: unify the right endpoint with the left one.
        RenameVar(&variant, star.right_var, star.left_var);
      }
    }
    AppendRule(std::move(variant));
  }
  return OkStatus();
}

}  // namespace

Result<MtvResult> TranslateMetaProgram(const MetaProgram& program,
                                       const GraphCatalog& catalog,
                                       const MtvOptions& options) {
  Translator translator(catalog, options);
  for (size_t i = 0; i < program.rules.size(); ++i) {
    KGM_RETURN_IF_ERROR(
        translator.TranslateRule(program.rules[i], static_cast<int>(i)));
  }
  return translator.TakeResult();
}

Result<MtvResult> TranslateMetaRule(const MetaRule& rule,
                                    const GraphCatalog& catalog,
                                    const MtvOptions& options) {
  Translator translator(catalog, options);
  KGM_RETURN_IF_ERROR(translator.TranslateRule(rule, 0));
  return translator.TakeResult();
}

namespace {

void CollectBodyLabels(const PathPtr& path, std::set<std::string>* edges) {
  if (path->kind == PathKind::kEdge) {
    if (!path->edge.label.empty()) edges->insert(path->edge.label);
    return;
  }
  for (const PathPtr& c : path->children) CollectBodyLabels(c, edges);
}

}  // namespace

std::string GenerateInputBindings(const MetaProgram& program,
                                  const GraphCatalog& catalog,
                                  BindingLanguage language) {
  std::set<std::string> node_labels;
  std::set<std::string> edge_labels;
  auto collect_pattern = [&](const GraphPattern& pattern) {
    for (const PgAtom& n : pattern.nodes) {
      if (!n.label.empty()) node_labels.insert(n.label);
    }
    for (const PathPtr& p : pattern.paths) CollectBodyLabels(p, &edge_labels);
  };
  for (const MetaRule& rule : program.rules) {
    for (const GraphPattern& p : rule.body_patterns) collect_pattern(p);
    for (const GraphPattern& p : rule.negated_patterns) collect_pattern(p);
  }
  std::string out;
  for (const std::string& label : node_labels) {
    const std::vector<std::string>& props = catalog.NodeProps(label);
    out += "@input(" + label + ", \"";
    if (language == BindingLanguage::kCypher) {
      out += "MATCH (n:" + label + ") RETURN id(n)";
      for (const std::string& p : props) out += ", n." + p;
    } else {
      out += "SELECT oid";
      for (const std::string& p : props) out += ", " + p;
      out += " FROM " + label;
    }
    out += "\").\n";
  }
  for (const std::string& label : edge_labels) {
    const std::vector<std::string>& props = catalog.EdgeProps(label);
    out += "@input(" + label + ", \"";
    if (language == BindingLanguage::kCypher) {
      out += "MATCH (x)-[e:" + label + "]->(y) RETURN id(e), id(x), id(y)";
      for (const std::string& p : props) out += ", e." + p;
    } else {
      out += "SELECT oid, from_oid, to_oid";
      for (const std::string& p : props) out += ", " + p;
      out += " FROM " + label;
    }
    out += "\").\n";
  }
  return out;
}

}  // namespace kgm::metalog
