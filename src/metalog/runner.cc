#include "metalog/runner.h"

#include "metalog/parser.h"

namespace kgm::metalog {

Result<MetaRunResult> RunMetaLog(const MetaProgram& program,
                                 pg::PropertyGraph* graph,
                                 const MetaRunOptions& options) {
  GraphCatalog catalog = GraphCatalog::FromGraph(*graph);
  catalog.Merge(options.extra_catalog);
  KGM_RETURN_IF_ERROR(catalog.AbsorbProgram(program));

  vadalog::FactDb db = EncodeGraph(*graph, catalog);
  KGM_ASSIGN_OR_RETURN(MtvResult mtv,
                       TranslateMetaProgram(program, catalog, options.mtv));

  vadalog::Engine engine(std::move(mtv.program), options.engine);
  KGM_RETURN_IF_ERROR(engine.status());
  KGM_RETURN_IF_ERROR(engine.Run(&db));

  MetaRunResult result;
  result.engine_stats = engine.stats();
  result.vadalog_rule_count = engine.program().rules.size();
  KGM_ASSIGN_OR_RETURN(result.decode, DecodeGraph(db, catalog, graph));
  return result;
}

Result<MetaRunResult> RunMetaLogSource(std::string_view source,
                                       pg::PropertyGraph* graph,
                                       const MetaRunOptions& options) {
  if (options.prepared == nullptr) {
    KGM_ASSIGN_OR_RETURN(MetaProgram program, ParseMetaProgram(source));
    return RunMetaLog(program, graph, options);
  }
  GraphCatalog catalog = GraphCatalog::FromGraph(*graph);
  catalog.Merge(options.extra_catalog);
  KGM_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledMeta> compiled,
      options.prepared->Compile(source, catalog, options.mtv));
  return RunCompiledMeta(*compiled, graph, options);
}

Result<MetaRunResult> RunCompiledMeta(const CompiledMeta& compiled,
                                      pg::PropertyGraph* graph,
                                      const MetaRunOptions& options) {
  vadalog::FactDb db = EncodeGraph(*graph, compiled.catalog);

  vadalog::Program program = compiled.program;  // engine takes ownership
  vadalog::Engine engine(std::move(program), options.engine);
  KGM_RETURN_IF_ERROR(engine.status());
  KGM_RETURN_IF_ERROR(engine.Run(&db));

  MetaRunResult result;
  result.engine_stats = engine.stats();
  result.vadalog_rule_count = engine.program().rules.size();
  KGM_ASSIGN_OR_RETURN(result.decode,
                       DecodeGraph(db, compiled.catalog, graph));
  return result;
}

}  // namespace kgm::metalog
