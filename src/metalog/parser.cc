#include "metalog/parser.h"

#include "vadalog/lexer.h"
#include "vadalog/parser.h"

namespace kgm::metalog {

namespace {

using vadalog::TokKind;
using vadalog::Token;
using vadalog::TokenStream;

class MetaParser {
 public:
  explicit MetaParser(TokenStream& ts) : ts_(ts) {}

  Result<MetaProgram> ParseProgram() {
    MetaProgram program;
    while (!ts_.AtEnd()) {
      KGM_ASSIGN_OR_RETURN(MetaRule rule, ParseRule());
      rule.label = "m" + std::to_string(program.rules.size() + 1);
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

  Result<MetaRule> ParseSingleRule() {
    KGM_ASSIGN_OR_RETURN(MetaRule rule, ParseRule());
    if (!ts_.AtEnd()) return ts_.ErrorHere("trailing input after rule");
    return rule;
  }

 private:
  Result<MetaRule> ParseRule() {
    MetaRule rule;
    rule.loc = ts_.Peek().loc();
    // Body elements.
    while (true) {
      KGM_RETURN_IF_ERROR(ParseBodyElement(&rule));
      if (!ts_.Match(TokKind::kComma)) break;
    }
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kArrow, "'->'"));
    KGM_ASSIGN_OR_RETURN(rule.existentials,
                         vadalog::ParseExistentialPrefix(ts_));
    while (true) {
      KGM_ASSIGN_OR_RETURN(GraphPattern p, ParsePattern());
      rule.head_patterns.push_back(std::move(p));
      if (!ts_.Match(TokKind::kComma)) break;
    }
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kDot, "'.' at end of rule"));
    if (rule.head_patterns.empty()) return ts_.ErrorHere("empty head");
    return rule;
  }

  // A '(' starts a node atom (graph pattern) when its interior looks like
  // `)` / `: Label` / `; props` / `ident` followed by one of those; anything
  // else (e.g. `(v > 0.5)`) is a parenthesized condition.
  bool NodeAtomStartsHere() const {
    if (!ts_.Check(TokKind::kLParen)) return false;
    TokKind k1 = ts_.Peek(1).kind;
    if (k1 == TokKind::kRParen || k1 == TokKind::kColon ||
        k1 == TokKind::kSemicolon) {
      return true;
    }
    if (k1 == TokKind::kIdent) {
      TokKind k2 = ts_.Peek(2).kind;
      return k2 == TokKind::kRParen || k2 == TokKind::kColon ||
             k2 == TokKind::kSemicolon;
    }
    return false;
  }

  Status ParseBodyElement(MetaRule* rule) {
    // Negated pattern: `not` followed by a node atom / single-edge pattern.
    if (ts_.CheckIdent("not") &&
        ts_.Peek(1).kind == TokKind::kLParen) {
      ts_.Advance();
      KGM_ASSIGN_OR_RETURN(GraphPattern p, ParsePattern());
      if (p.paths.size() > 1 ||
          (p.paths.size() == 1 && !p.paths[0]->IsSingleEdge())) {
        return ts_.ErrorHere(
            "negated patterns must be a node atom or a single edge");
      }
      rule->negated_patterns.push_back(std::move(p));
      return OkStatus();
    }
    // Graph pattern?
    if (NodeAtomStartsHere()) {
      KGM_ASSIGN_OR_RETURN(GraphPattern p, ParsePattern());
      rule->body_patterns.push_back(std::move(p));
      return OkStatus();
    }
    // Assignment or aggregate: IDENT '='.
    if (ts_.Check(TokKind::kIdent) && ts_.Peek(1).kind == TokKind::kAssign) {
      std::string var = ts_.Advance().text;
      ts_.Advance();  // '='
      if (ts_.Check(TokKind::kIdent) &&
          vadalog::IsAggregateFunction(ts_.Peek().text) &&
          ts_.Peek(1).kind == TokKind::kLParen) {
        std::string func = ts_.Advance().text;
        KGM_ASSIGN_OR_RETURN(
            vadalog::Aggregate agg,
            vadalog::ParseAggregateBody(ts_, std::move(var),
                                        std::move(func)));
        rule->aggregates.push_back(std::move(agg));
        return OkStatus();
      }
      KGM_ASSIGN_OR_RETURN(vadalog::ExprPtr expr,
                           vadalog::ParseExpression(ts_));
      rule->assignments.push_back(
          vadalog::Assignment{std::move(var), std::move(expr)});
      return OkStatus();
    }
    // Condition.
    KGM_ASSIGN_OR_RETURN(vadalog::ExprPtr expr, vadalog::ParseExpression(ts_));
    rule->conditions.push_back(vadalog::Condition{std::move(expr)});
    return OkStatus();
  }

  Result<GraphPattern> ParsePattern() {
    GraphPattern pattern;
    KGM_ASSIGN_OR_RETURN(PgAtom first, ParseNodeAtom());
    pattern.nodes.push_back(std::move(first));
    // Path elements start with '[' (edge atom) or '(' followed by '[' / '('.
    while (PathStartsHere()) {
      KGM_ASSIGN_OR_RETURN(PathPtr path, ParseSeq());
      KGM_ASSIGN_OR_RETURN(PgAtom node, ParseNodeAtom());
      pattern.paths.push_back(std::move(path));
      pattern.nodes.push_back(std::move(node));
    }
    return pattern;
  }

  bool PathStartsHere() const {
    if (ts_.Check(TokKind::kLBracket)) return true;
    if (ts_.Check(TokKind::kLParen)) {
      TokKind next = ts_.Peek(1).kind;
      return next == TokKind::kLBracket || next == TokKind::kLParen;
    }
    return false;
  }

  Result<PathPtr> ParseSeq() {
    std::vector<PathPtr> parts;
    KGM_ASSIGN_OR_RETURN(PathPtr first, ParsePostfix());
    parts.push_back(std::move(first));
    while (ts_.Match(TokKind::kSlash)) {
      KGM_ASSIGN_OR_RETURN(PathPtr next, ParsePostfix());
      parts.push_back(std::move(next));
    }
    return PathExpr::Concat(std::move(parts));
  }

  Result<PathPtr> ParsePostfix() {
    KGM_ASSIGN_OR_RETURN(PathPtr expr, ParsePrimary());
    while (true) {
      if (ts_.Check(TokKind::kStar)) {
        ts_.Advance();
        expr = PathExpr::Star(std::move(expr));
      } else if (ts_.Check(TokKind::kPlus)) {
        ts_.Advance();
        expr = PathExpr::Plus(std::move(expr));
      } else if (ts_.Check(TokKind::kMinus)) {
        ts_.Advance();
        if (expr->kind != PathKind::kEdge) {
          // rho^- over composites: push inversion down.
          KGM_ASSIGN_OR_RETURN(expr, InvertPath(expr));
        } else {
          auto e = std::make_shared<PathExpr>(*expr);
          e->inverse = !e->inverse;
          expr = e;
        }
      } else {
        break;
      }
    }
    return expr;
  }

  // Inverts a composite path: (A/B)- = B-/A-, (A|B)- = A-|B-, (A*)- = (A-)*.
  Result<PathPtr> InvertPath(const PathPtr& p) {
    switch (p->kind) {
      case PathKind::kEdge: {
        auto e = std::make_shared<PathExpr>(*p);
        e->inverse = !e->inverse;
        return PathPtr(e);
      }
      case PathKind::kConcat: {
        std::vector<PathPtr> parts;
        for (auto it = p->children.rbegin(); it != p->children.rend(); ++it) {
          KGM_ASSIGN_OR_RETURN(PathPtr inv, InvertPath(*it));
          parts.push_back(std::move(inv));
        }
        return PathExpr::Concat(std::move(parts));
      }
      case PathKind::kAlt: {
        std::vector<PathPtr> branches;
        for (const PathPtr& c : p->children) {
          KGM_ASSIGN_OR_RETURN(PathPtr inv, InvertPath(c));
          branches.push_back(std::move(inv));
        }
        return PathExpr::Alt(std::move(branches));
      }
      case PathKind::kStar: {
        KGM_ASSIGN_OR_RETURN(PathPtr inv, InvertPath(p->children[0]));
        return PathExpr::Star(std::move(inv));
      }
      case PathKind::kPlus: {
        KGM_ASSIGN_OR_RETURN(PathPtr inv, InvertPath(p->children[0]));
        return PathExpr::Plus(std::move(inv));
      }
    }
    return ts_.ErrorHere("cannot invert path");
  }

  Result<PathPtr> ParsePrimary() {
    if (ts_.Check(TokKind::kLBracket)) {
      KGM_ASSIGN_OR_RETURN(PgAtom edge, ParseEdgeAtom());
      return PathExpr::Edge(std::move(edge), /*inverse=*/false);
    }
    if (ts_.Match(TokKind::kLParen)) {
      KGM_ASSIGN_OR_RETURN(PathPtr inner, ParseAlt());
      KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    return ts_.ErrorHere("expected edge atom or path group");
  }

  Result<PathPtr> ParseAlt() {
    std::vector<PathPtr> branches;
    KGM_ASSIGN_OR_RETURN(PathPtr first, ParseSeq());
    branches.push_back(std::move(first));
    while (ts_.Match(TokKind::kPipe)) {
      KGM_ASSIGN_OR_RETURN(PathPtr next, ParseSeq());
      branches.push_back(std::move(next));
    }
    return PathExpr::Alt(std::move(branches));
  }

  Result<PgAtom> ParseNodeAtom() {
    const SourceLoc loc = ts_.Peek().loc();
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLParen, "'(' of node atom"));
    KGM_ASSIGN_OR_RETURN(PgAtom atom, ParseAtomInterior(/*is_edge=*/false));
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRParen, "')' of node atom"));
    atom.loc = loc;
    return atom;
  }

  Result<PgAtom> ParseEdgeAtom() {
    const SourceLoc loc = ts_.Peek().loc();
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kLBracket, "'[' of edge atom"));
    KGM_ASSIGN_OR_RETURN(PgAtom atom, ParseAtomInterior(/*is_edge=*/true));
    KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kRBracket, "']' of edge atom"));
    atom.loc = loc;
    return atom;
  }

  Result<PgAtom> ParseAtomInterior(bool is_edge) {
    PgAtom atom;
    atom.is_edge = is_edge;
    if (ts_.Check(TokKind::kIdent) && !ts_.CheckIdent("exists")) {
      atom.id_var = ts_.Advance().text;
    }
    if (ts_.Match(TokKind::kColon)) {
      if (!ts_.Check(TokKind::kIdent)) {
        return ts_.ErrorHere("expected label after ':'");
      }
      atom.label = ts_.Advance().text;
    }
    if (ts_.Match(TokKind::kSemicolon)) {
      while (true) {
        if (ts_.Match(TokKind::kStar)) {
          if (!ts_.Check(TokKind::kIdent)) {
            return ts_.ErrorHere("expected record variable after '*'");
          }
          if (!atom.spread_var.empty()) {
            return ts_.ErrorHere("duplicate '*' spread in atom");
          }
          atom.spread_var = ts_.Advance().text;
        } else {
          if (!ts_.Check(TokKind::kIdent)) {
            return ts_.ErrorHere("expected property name");
          }
          PgProperty prop;
          prop.name = ts_.Advance().text;
          KGM_RETURN_IF_ERROR(ts_.Expect(TokKind::kColon, "':'"));
          KGM_ASSIGN_OR_RETURN(prop.value, vadalog::ParseTermAt(ts_));
          atom.properties.push_back(std::move(prop));
        }
        if (!ts_.Match(TokKind::kComma)) break;
      }
    }
    return atom;
  }

  TokenStream& ts_;
};

}  // namespace

Result<MetaProgram> ParseMetaProgram(std::string_view source) {
  KGM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                       vadalog::Tokenize(source));
  TokenStream ts(std::move(tokens));
  MetaParser parser(ts);
  return parser.ParseProgram();
}

Result<MetaRule> ParseMetaRule(std::string_view source) {
  KGM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                       vadalog::Tokenize(source));
  TokenStream ts(std::move(tokens));
  MetaParser parser(ts);
  return parser.ParseSingleRule();
}

}  // namespace kgm::metalog
