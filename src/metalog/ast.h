// Abstract syntax of MetaLog (Section 4 of the paper).
//
// A MetaLog rule is an existential rule whose body is a conjunction of
// property-graph node atoms, path patterns, conditions and expressions, and
// whose head is a conjunction of PG node atoms and (single-edge) path
// patterns:
//
//   (x: Business)[: CONTROLS](z: Business)
//       [: OWNS; percentage: w](y: Business),
//   v = msum(w, <z>), v > 0.5
//     -> exists c (x)[c: CONTROLS](y).
//
// Path patterns are regular expressions over edge atoms with concatenation
// '/', alternation '|', inversion (postfix '-'), Kleene star '*' (reflexive,
// per the paper's semi-path semantics with q >= 0) and strict closure '+'.
//
// Scalar machinery (expressions, conditions, assignments, aggregates,
// existential specifications) is shared with the Vadalog AST.

#ifndef KGM_METALOG_AST_H_
#define KGM_METALOG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "vadalog/ast.h"

namespace kgm::metalog {

// A property constraint `name: term` inside a PG atom.
struct PgProperty {
  std::string name;
  vadalog::Term value;
};

// A node atom `(x: Label; k1: v1, ...)` or edge atom `[x: Label; ...]`.
// All parts are optional: `(x)`, `(: Label)`, `()` are legal node atoms.
// `spread_var` implements the `*p` unpacking operator of Example 6.2.
struct PgAtom {
  bool is_edge = false;
  std::string id_var;   // empty = anonymous
  std::string label;    // empty = no label constraint
  std::vector<PgProperty> properties;
  std::string spread_var;  // empty = no spread
  // Position of the opening '(' or '[' in the source.
  SourceLoc loc;

  std::string ToString() const;
};

// A regular path expression over edge atoms.
struct PathExpr;
using PathPtr = std::shared_ptr<const PathExpr>;

enum class PathKind { kEdge, kConcat, kAlt, kStar, kPlus };

struct PathExpr {
  PathKind kind = PathKind::kEdge;
  // kEdge
  PgAtom edge;
  bool inverse = false;  // rho^- : traverse the edge backwards
  // kConcat / kAlt: two or more children; kStar / kPlus: one child
  std::vector<PathPtr> children;

  static PathPtr Edge(PgAtom atom, bool inverse);
  static PathPtr Concat(std::vector<PathPtr> parts);
  static PathPtr Alt(std::vector<PathPtr> branches);
  static PathPtr Star(PathPtr inner);
  static PathPtr Plus(PathPtr inner);

  std::string ToString() const;

  // True if this expression is a single (possibly inverted) edge atom.
  bool IsSingleEdge() const { return kind == PathKind::kEdge; }

  // Appends all variables mentioned in edge atoms of this subtree.
  void CollectVars(std::vector<std::string>* out) const;
};

// A chain `n0 p0 n1 p1 n2 ...`: k+1 node atoms joined by k path patterns.
struct GraphPattern {
  std::vector<PgAtom> nodes;   // size k+1
  std::vector<PathPtr> paths;  // size k

  std::string ToString() const;
};

struct MetaRule {
  std::vector<GraphPattern> body_patterns;
  // Negated patterns (`not (x)[: L](y)` / `not (x: L)`): restricted to a
  // single node atom or a single-edge two-node pattern whose endpoints are
  // bound references, so each translates to one negated relational literal.
  std::vector<GraphPattern> negated_patterns;
  std::vector<vadalog::Assignment> assignments;
  std::vector<vadalog::Condition> conditions;
  std::vector<vadalog::Aggregate> aggregates;
  std::vector<vadalog::ExistentialSpec> existentials;
  std::vector<GraphPattern> head_patterns;
  std::string label;
  // Start of the rule in the source.
  SourceLoc loc;

  std::string ToString() const;
};

struct MetaProgram {
  std::vector<MetaRule> rules;

  std::string ToString() const;
};

}  // namespace kgm::metalog

#endif  // KGM_METALOG_AST_H_
