// Parser for the MetaLog surface syntax.
//
// Grammar sketch (scalar sub-grammars shared with the Vadalog parser):
//
//   program   := rule*
//   rule      := body '->' head '.'
//   body      := element (',' element)*
//   element   := pattern | VAR '=' (aggregate | expr) | expr
//   pattern   := node (path node)*
//   node      := '(' [IDENT] [':' IDENT] [';' props] ')'
//   props     := prop (',' prop)* ;  prop := IDENT ':' term | '*' IDENT
//   path      := seq ;  seq := postfix ('/' postfix)*
//   postfix   := primary ('*' | '+' | '-')*
//   primary   := edge | '(' alt ')' ;  alt := seq ('|' seq)*
//   edge      := '[' [IDENT] [':' IDENT] [';' props] ']'
//   head      := ('exists' spec ','?)* pattern (',' pattern)*
//
// Disambiguation: after '(' in body position, '[' or '(' starts a path
// group, anything else a node atom; a body element starting with '(' is a
// graph pattern (parenthesized conditions must not start an element).

#ifndef KGM_METALOG_PARSER_H_
#define KGM_METALOG_PARSER_H_

#include <string>

#include "base/status.h"
#include "metalog/ast.h"

namespace kgm::metalog {

// Parses a full MetaLog program.
Result<MetaProgram> ParseMetaProgram(std::string_view source);

// Parses a single MetaLog rule.
Result<MetaRule> ParseMetaRule(std::string_view source);

}  // namespace kgm::metalog

#endif  // KGM_METALOG_PARSER_H_
