#include "metalog/ast.h"

namespace kgm::metalog {

std::string PgAtom::ToString() const {
  std::string out;
  out += is_edge ? "[" : "(";
  out += id_var;
  if (!label.empty()) out += ": " + label;
  if (!properties.empty() || !spread_var.empty()) {
    out += "; ";
    bool first = true;
    for (const PgProperty& p : properties) {
      if (!first) out += ", ";
      first = false;
      out += p.name + ": " + p.value.ToString();
    }
    if (!spread_var.empty()) {
      if (!first) out += ", ";
      out += "*" + spread_var;
    }
  }
  out += is_edge ? "]" : ")";
  return out;
}

PathPtr PathExpr::Edge(PgAtom atom, bool inverse) {
  auto e = std::make_shared<PathExpr>();
  e->kind = PathKind::kEdge;
  e->edge = std::move(atom);
  e->inverse = inverse;
  return e;
}

PathPtr PathExpr::Concat(std::vector<PathPtr> parts) {
  if (parts.size() == 1) return parts[0];
  auto e = std::make_shared<PathExpr>();
  e->kind = PathKind::kConcat;
  e->children = std::move(parts);
  return e;
}

PathPtr PathExpr::Alt(std::vector<PathPtr> branches) {
  if (branches.size() == 1) return branches[0];
  auto e = std::make_shared<PathExpr>();
  e->kind = PathKind::kAlt;
  e->children = std::move(branches);
  return e;
}

PathPtr PathExpr::Star(PathPtr inner) {
  auto e = std::make_shared<PathExpr>();
  e->kind = PathKind::kStar;
  e->children = {std::move(inner)};
  return e;
}

PathPtr PathExpr::Plus(PathPtr inner) {
  auto e = std::make_shared<PathExpr>();
  e->kind = PathKind::kPlus;
  e->children = {std::move(inner)};
  return e;
}

std::string PathExpr::ToString() const {
  switch (kind) {
    case PathKind::kEdge:
      return edge.ToString() + (inverse ? "-" : "");
    case PathKind::kConcat: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " / ";
        bool paren = children[i]->kind == PathKind::kAlt;
        out += paren ? "(" + children[i]->ToString() + ")"
                     : children[i]->ToString();
      }
      return out;
    }
    case PathKind::kAlt: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " | ";
        out += children[i]->ToString();
      }
      return out;
    }
    case PathKind::kStar:
    case PathKind::kPlus: {
      std::string inner = children[0]->ToString();
      bool paren = children[0]->kind != PathKind::kEdge;
      std::string out = paren ? "(" + inner + ")" : inner;
      return out + (kind == PathKind::kStar ? "*" : "+");
    }
  }
  return "?";
}

void PathExpr::CollectVars(std::vector<std::string>* out) const {
  if (kind == PathKind::kEdge) {
    if (!edge.id_var.empty() && edge.id_var != "_") {
      out->push_back(edge.id_var);
    }
    for (const PgProperty& p : edge.properties) {
      if (p.value.is_var() && !p.value.is_anonymous()) {
        out->push_back(p.value.var);
      }
    }
    return;
  }
  for (const PathPtr& c : children) c->CollectVars(out);
}

std::string GraphPattern::ToString() const {
  std::string out = nodes[0].ToString();
  for (size_t i = 0; i < paths.size(); ++i) {
    bool paren = paths[i]->kind == PathKind::kConcat ||
                 paths[i]->kind == PathKind::kAlt;
    out += paren ? "(" + paths[i]->ToString() + ")" : paths[i]->ToString();
    out += nodes[i + 1].ToString();
  }
  return out;
}

std::string MetaRule::ToString() const {
  std::vector<std::string> parts;
  for (const GraphPattern& p : body_patterns) parts.push_back(p.ToString());
  for (const GraphPattern& p : negated_patterns) {
    parts.push_back("not " + p.ToString());
  }
  for (const vadalog::Assignment& a : assignments) {
    parts.push_back(a.ToString());
  }
  for (const vadalog::Aggregate& a : aggregates) parts.push_back(a.ToString());
  for (const vadalog::Condition& c : conditions) parts.push_back(c.ToString());
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  out += " -> ";
  for (const vadalog::ExistentialSpec& e : existentials) {
    out += e.ToString() + " ";
  }
  for (size_t i = 0; i < head_patterns.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_patterns[i].ToString();
  }
  out += ".";
  return out;
}

std::string MetaProgram::ToString() const {
  std::string out;
  for (const MetaRule& r : rules) out += r.ToString() + "\n";
  return out;
}

}  // namespace kgm::metalog
