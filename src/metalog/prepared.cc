#include "metalog/prepared.h"

#include <utility>

#include "base/value.h"
#include "metalog/parser.h"

namespace kgm::metalog {

PreparedCache::PreparedCache(size_t capacity) : capacity_(capacity) {}

uint64_t PreparedCache::KeyOf(std::string_view source,
                              const GraphCatalog& catalog,
                              const MtvOptions& options) {
  uint64_t key = std::hash<std::string_view>{}(source);
  key = HashCombine(key, catalog.Fingerprint());
  key = HashCombine(key, options.reflexive_star ? 0x7265666cULL : 0ULL);
  key = HashCombine(key, static_cast<uint64_t>(options.max_stars_per_rule));
  return key;
}

std::string PreparedCache::CanonicalKey(std::string_view source,
                                        const GraphCatalog& catalog,
                                        const MtvOptions& options) {
  // '\x1f' (unit separator) cannot appear in label/property identifiers or
  // meaningfully in program text, so the concatenation is unambiguous.
  std::string key(source);
  for (const std::string& label : catalog.NodeLabels()) {
    key += '\x1f';
    key += 'N';
    key += label;
    for (const std::string& p : catalog.NodeProps(label)) {
      key += '\x1e';
      key += p;
    }
  }
  for (const std::string& label : catalog.EdgeLabels()) {
    key += '\x1f';
    key += 'E';
    key += label;
    for (const std::string& p : catalog.EdgeProps(label)) {
      key += '\x1e';
      key += p;
    }
  }
  key += '\x1f';
  key += options.reflexive_star ? '1' : '0';
  key += '\x1f';
  key += std::to_string(options.max_stars_per_rule);
  return key;
}

Result<std::shared_ptr<const CompiledMeta>> PreparedCache::Compile(
    std::string_view source, const GraphCatalog& catalog,
    const MtvOptions& options) {
  const uint64_t key = KeyOf(source, catalog, options);
  std::string full_key = CanonicalKey(source, catalog, options);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      if (it->second->full_key == full_key) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++counters_.hits;
        return it->second->value;
      }
      // Hash collision between distinct key material: a miss, never the
      // other key's program.
      ++counters_.key_collisions;
    }
    ++counters_.misses;
  }

  // Compile outside the lock: concurrent misses may duplicate work but
  // never serialize all callers behind one compilation.
  auto compiled = std::make_shared<CompiledMeta>();
  KGM_ASSIGN_OR_RETURN(compiled->meta, ParseMetaProgram(source));
  compiled->catalog = catalog;
  KGM_RETURN_IF_ERROR(compiled->catalog.AbsorbProgram(compiled->meta));
  KGM_ASSIGN_OR_RETURN(
      MtvResult mtv,
      TranslateMetaProgram(compiled->meta, compiled->catalog, options));
  compiled->program = std::move(mtv.program);
  compiled->helper_predicates = std::move(mtv.helper_predicates);
  compiled->rule_origin = std::move(mtv.rule_origin);
  if (lint_hook_) compiled->lint = lint_hook_(*compiled, catalog);

  std::shared_ptr<const CompiledMeta> result = std::move(compiled);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    if (it->second->full_key == full_key) {
      // Another thread compiled the same key first; keep its copy.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
    // Colliding entry for different key material: the newcomer displaces
    // it (the cache holds at most one entry per hash value).
    it->second->full_key = std::move(full_key);
    it->second->value = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return result;
  }
  lru_.push_front(Entry{key, std::move(full_key), result});
  by_key_[key] = lru_.begin();
  while (capacity_ > 0 && lru_.size() > capacity_) {
    by_key_.erase(lru_.back().hash);
    lru_.pop_back();
    ++counters_.evictions;
  }
  return result;
}

PreparedCache::Counters PreparedCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t PreparedCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PreparedCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
}

}  // namespace kgm::metalog
