// Deterministic pseudo-random number generation for synthetic workloads.
//
// splitmix64 seeds a xoshiro256** state; all benchmark and generator code
// uses this RNG so that every run of the reproduction is bit-for-bit
// repeatable for a given seed.

#ifndef KGM_BASE_RNG_H_
#define KGM_BASE_RNG_H_

#include <cstdint>

namespace kgm {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value (xoshiro256**).
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n).  n must be > 0.
  uint64_t NextBelow(uint64_t n) { return Next() % n; }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace kgm

#endif  // KGM_BASE_RNG_H_
