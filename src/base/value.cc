#include "base/value.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "base/check.h"

namespace kgm {

double Value::AsDouble() const {
  KGM_CHECK(is_numeric());
  if (is_int()) return static_cast<double>(AsInt());
  return AsDoubleExact();
}

bool Value::RecordEquals(const Value& other) const {
  const Record& a = *AsRecord();
  const Record& b = *other.AsRecord();
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second) return false;
  }
  return true;
}

bool Value::operator<(const Value& other) const {
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind());
  }
  switch (kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kBool:
      return AsBool() < other.AsBool();
    case ValueKind::kInt:
      return AsInt() < other.AsInt();
    case ValueKind::kDouble:
      return AsDoubleExact() < other.AsDoubleExact();
    case ValueKind::kString:
      return AsString() < other.AsString();
    case ValueKind::kLabeledNull:
      return AsLabeledNull() < other.AsLabeledNull();
    case ValueKind::kSkolem:
      return AsSkolem() < other.AsSkolem();
    case ValueKind::kRecord: {
      const Record& a = *AsRecord();
      const Record& b = *other.AsRecord();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        if (a[i].first != b[i].first) return a[i].first < b[i].first;
        if (a[i].second != b[i].second) return a[i].second < b[i].second;
      }
      return a.size() < b.size();
    }
  }
  return false;
}

size_t Value::RecordHash(size_t seed) const {
  size_t h = seed;
  for (const auto& [name, value] : *AsRecord()) {
    h = HashCombine(h, std::hash<std::string>{}(name));
    h = HashCombine(h, value.Hash());
  }
  return h;
}

size_t Value::StableHash() const {
  switch (kind()) {
    case ValueKind::kSkolem: {
      size_t seed = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
      return seed ^ (SkolemTable::Global().StableHashOf(AsSkolem()) +
                     0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
    }
    case ValueKind::kRecord:
      return RecordStableHash(static_cast<size_t>(kind()) *
                              0x9e3779b97f4a7c15ULL);
    default:
      // Every other kind already hashes by content.
      return Hash();
  }
}

size_t Value::RecordStableHash(size_t seed) const {
  size_t h = seed;
  for (const auto& [name, value] : *AsRecord()) {
    h = HashCombine(h, std::hash<std::string>{}(name));
    h = HashCombine(h, value.StableHash());
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << AsDoubleExact();
      return os.str();
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kLabeledNull:
      return "_:n" + std::to_string(AsLabeledNull().id);
    case ValueKind::kSkolem: {
      const SkolemTable& table = SkolemTable::Global();
      std::string out = table.FunctorOf(AsSkolem());
      out += "(";
      const std::vector<Value>& args = table.ArgsOf(AsSkolem());
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += args[i].ToString();
      }
      out += ")";
      return out;
    }
    case ValueKind::kRecord: {
      std::string out = "{";
      bool first = true;
      for (const auto& [name, value] : *AsRecord()) {
        if (!first) out += ", ";
        first = false;
        out += name + ": " + value.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

Value MakeRecord(Record fields) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return Value(std::make_shared<const Record>(std::move(fields)));
}

// --- SkolemTable -------------------------------------------------------------

namespace {
struct SkolemKey {
  std::string functor;
  std::vector<Value> args;
  bool operator==(const SkolemKey& o) const {
    return functor == o.functor && args == o.args;
  }
};
struct SkolemKeyHash {
  size_t operator()(const SkolemKey& k) const {
    size_t h = std::hash<std::string>{}(k.functor);
    for (const Value& v : k.args) h = HashCombine(h, v.Hash());
    return h;
  }
};
}  // namespace

struct SkolemTable::Index {
  std::unordered_map<SkolemKey, uint64_t, SkolemKeyHash> map;
};

namespace {
// Content hash of a term, independent of intern order.  Argument
// StableHash() calls may re-enter the table (nested Skolem arguments), so
// callers must NOT hold the table mutex.
size_t SkolemContentHash(const std::string& functor,
                         const std::vector<Value>& args) {
  size_t h = std::hash<std::string>{}(functor);
  for (const Value& a : args) h = HashCombine(h, a.StableHash());
  return h;
}
}  // namespace

SkolemTable::SkolemTable() : index_(std::make_shared<Index>()) {}

SkolemTable& SkolemTable::Global() {
  static SkolemTable& table = *new SkolemTable();
  return table;
}

Value SkolemTable::Intern(const std::string& functor,
                          const std::vector<Value>& args) {
  SkolemKey key{functor, args};
  // Computed before taking mu_ (see SkolemContentHash); wasted on a hit,
  // but hits skip straight to the id anyway.
  size_t stable = SkolemContentHash(functor, args);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_->map.find(key);
  if (it != index_->map.end()) return Value(SkolemRef{it->second});
  uint64_t id = terms_.size();
  terms_.push_back(Term{functor, args, stable});
  index_->map.emplace(std::move(key), id);
  return Value(SkolemRef{id});
}

std::vector<Value> SkolemTable::InternBatch(
    const std::vector<std::pair<std::string, std::vector<Value>>>& batch) {
  std::vector<Value> out;
  out.reserve(batch.size());
  // Content hashes computed before taking mu_ (see SkolemContentHash).
  // Batch args only reference refs interned before this call, so the
  // unlocked reads are safe.
  std::vector<size_t> stable;
  stable.reserve(batch.size());
  for (const auto& [functor, args] : batch) {
    stable.push_back(SkolemContentHash(functor, args));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto& [functor, args] = batch[i];
    SkolemKey key{functor, args};
    auto it = index_->map.find(key);
    if (it != index_->map.end()) {
      out.emplace_back(SkolemRef{it->second});
      continue;
    }
    uint64_t id = terms_.size();
    terms_.push_back(Term{functor, args, stable[i]});
    index_->map.emplace(std::move(key), id);
    out.emplace_back(SkolemRef{id});
  }
  return out;
}

const std::string& SkolemTable::FunctorOf(SkolemRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  KGM_CHECK(ref.id < terms_.size());
  return terms_[ref.id].functor;
}

const std::vector<Value>& SkolemTable::ArgsOf(SkolemRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  KGM_CHECK(ref.id < terms_.size());
  return terms_[ref.id].args;
}

size_t SkolemTable::StableHashOf(SkolemRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  KGM_CHECK(ref.id < terms_.size());
  return terms_[ref.id].stable_hash;
}

size_t SkolemTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return terms_.size();
}

}  // namespace kgm
