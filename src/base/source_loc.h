// Source positions for program text.
//
// SourceLoc anchors a construct (token, atom, rule, annotation) to the
// user's source: 1-based line and column plus the 0-based byte offset of
// the construct's first character.  A default-constructed SourceLoc is
// "unknown" (line 0) — programs built programmatically instead of parsed
// carry unknown locations and diagnostics fall back to rule labels.

#ifndef KGM_BASE_SOURCE_LOC_H_
#define KGM_BASE_SOURCE_LOC_H_

#include <cstddef>
#include <string>

namespace kgm {

struct SourceLoc {
  int line = 0;         // 1-based; 0 = unknown
  int column = 0;       // 1-based
  size_t offset = 0;    // byte offset into the source text

  bool valid() const { return line > 0; }

  // "<line>:<column>", or "?" when unknown.
  std::string ToString() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  bool operator==(const SourceLoc& o) const {
    return line == o.line && column == o.column && offset == o.offset;
  }

  // Orders by position in the source; unknown locations sort last.
  bool operator<(const SourceLoc& o) const {
    if (valid() != o.valid()) return valid();
    if (line != o.line) return line < o.line;
    return column < o.column;
  }
};

}  // namespace kgm

#endif  // KGM_BASE_SOURCE_LOC_H_
