#include "base/thread_pool.h"

namespace kgm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 1) {
    fn(0);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitIdle();
}

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace kgm
