#include "base/strings.h"

#include <cctype>

namespace kgm {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string ToSnakeCase(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      // Insert '_' at lower->upper boundaries and before the last capital of
      // an acronym run followed by a lowercase letter ("HTTPServer" ->
      // "http_server").
      bool prev_lower =
          i > 0 && std::islower(static_cast<unsigned char>(s[i - 1]));
      bool next_lower = i + 1 < s.size() &&
                        std::islower(static_cast<unsigned char>(s[i + 1]));
      bool prev_upper =
          i > 0 && std::isupper(static_cast<unsigned char>(s[i - 1]));
      if (!out.empty() && (prev_lower || (prev_upper && next_lower))) {
        out += '_';
      }
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace kgm
