// The universal runtime value of KGModel.
//
// A Value is a constant of the domain C, a labeled null of N, a Skolem term
// of the identifier set I (Section 4 of the paper, "Linker Skolem Functors"),
// or a record produced by the pack() aggregate (Section 6, input views).
//
// Values are cheap to copy (strings by value, records by shared pointer) and
// provide a total order and a hash so they can serve as tuple components in
// the relational engine and as property values in the property-graph store.

#ifndef KGM_BASE_VALUE_H_
#define KGM_BASE_VALUE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace kgm {

class Value;

// A named-field record, kept sorted by field name.  Used by the pack()
// aggregate and by instance views.
using Record = std::vector<std::pair<std::string, Value>>;
using RecordPtr = std::shared_ptr<const Record>;

// A fresh labeled null from N, created by the chase for an existentially
// quantified variable with no linker Skolem functor.
struct LabeledNull {
  uint64_t id;
  bool operator==(const LabeledNull& o) const { return id == o.id; }
  bool operator<(const LabeledNull& o) const { return id < o.id; }
};

// A Skolem term of I: an interned (functor, arguments) pair.  Injectivity,
// determinism and range-disjointness between functors follow from interning.
struct SkolemRef {
  uint64_t id;
  bool operator==(const SkolemRef& o) const { return id == o.id; }
  bool operator<(const SkolemRef& o) const { return id < o.id; }
};

enum class ValueKind {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kLabeledNull,
  kSkolem,
  kRecord,
};

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(int i) : data_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}
  explicit Value(LabeledNull n) : data_(n) {}
  explicit Value(SkolemRef s) : data_(s) {}
  explicit Value(RecordPtr r) : data_(std::move(r)) {}

  ValueKind kind() const { return static_cast<ValueKind>(data_.index()); }

  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_labeled_null() const { return kind() == ValueKind::kLabeledNull; }
  bool is_skolem() const { return kind() == ValueKind::kSkolem; }
  bool is_record() const { return kind() == ValueKind::kRecord; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDoubleExact() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  LabeledNull AsLabeledNull() const { return std::get<LabeledNull>(data_); }
  SkolemRef AsSkolem() const { return std::get<SkolemRef>(data_); }
  const RecordPtr& AsRecord() const { return std::get<RecordPtr>(data_); }

  // Numeric coercion: kInt and kDouble widen to double.  Requires
  // is_numeric().
  double AsDouble() const;

  // Equality and hashing are the engine's hottest operations (every join
  // probe, index lookup and dedup goes through them), so the scalar cases
  // inline here; records defer to the out-of-line slow path.
  bool operator==(const Value& other) const {
    if (data_.index() != other.data_.index()) return false;
    switch (kind()) {
      case ValueKind::kNull:
        return true;
      case ValueKind::kBool:
        return *std::get_if<bool>(&data_) == *std::get_if<bool>(&other.data_);
      case ValueKind::kInt:
        return *std::get_if<int64_t>(&data_) ==
               *std::get_if<int64_t>(&other.data_);
      case ValueKind::kDouble:
        return *std::get_if<double>(&data_) ==
               *std::get_if<double>(&other.data_);
      case ValueKind::kString:
        return *std::get_if<std::string>(&data_) ==
               *std::get_if<std::string>(&other.data_);
      case ValueKind::kLabeledNull:
        return std::get_if<LabeledNull>(&data_)->id ==
               std::get_if<LabeledNull>(&other.data_)->id;
      case ValueKind::kSkolem:
        return std::get_if<SkolemRef>(&data_)->id ==
               std::get_if<SkolemRef>(&other.data_)->id;
      case ValueKind::kRecord:
        return RecordEquals(other);
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  // Total order: by kind, then by value within the kind.
  bool operator<(const Value& other) const;

  size_t Hash() const {
    size_t seed = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
    switch (kind()) {
      case ValueKind::kNull:
        return seed;
      case ValueKind::kBool:
        return seed ^ (*std::get_if<bool>(&data_) + 0x9e3779b97f4a7c15ULL +
                       (seed << 6) + (seed >> 2));
      case ValueKind::kInt:
        return seed ^ (std::hash<int64_t>{}(*std::get_if<int64_t>(&data_)) +
                       0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
      case ValueKind::kDouble:
        return seed ^ (std::hash<double>{}(*std::get_if<double>(&data_)) +
                       0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
      case ValueKind::kString:
        return seed ^
               (std::hash<std::string>{}(*std::get_if<std::string>(&data_)) +
                0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
      case ValueKind::kLabeledNull:
        return seed ^
               (std::hash<uint64_t>{}(std::get_if<LabeledNull>(&data_)->id) +
                0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
      case ValueKind::kSkolem:
        return seed ^
               (std::hash<uint64_t>{}(std::get_if<SkolemRef>(&data_)->id) +
                0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
      case ValueKind::kRecord:
        return RecordHash(seed);
    }
    return seed;
  }

  // Process-history-independent hash: a pure function of the value's
  // CONTENT.  Identical to Hash() for every scalar kind except kSkolem,
  // which Hash() keys by its intern-table index — an id that depends on how
  // many terms the process interned before, so two runs over the same data
  // can disagree.  StableHash() resolves a Skolem term to its (functor,
  // args) content instead (memoized at intern time, so the lookup is O(1)),
  // and records recurse with StableHash.  The cardinality statistics feed
  // their distinct-count sketches with this hash so that selectivity
  // estimates — and therefore join-plan choices — are reproducible per
  // (instance, program) regardless of what ran earlier in the process.
  // Labeled nulls still hash by id: the chase mints them from a run-local
  // counter in deterministic order, so they are already reproducible.
  size_t StableHash() const;

  // Debug/display rendering: strings are quoted, nulls print as _:nK,
  // Skolem terms as their functor applied to arguments.
  std::string ToString() const;

 private:
  // Record (pack()) comparisons and hashes, out of line.
  bool RecordEquals(const Value& other) const;
  size_t RecordHash(size_t seed) const;
  size_t RecordStableHash(size_t seed) const;

  std::variant<std::monostate, bool, int64_t, double, std::string, LabeledNull,
               SkolemRef, RecordPtr>
      data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

// Combines `h` into `seed` (boost-style).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// Makes a record value from (name, value) pairs; sorts fields by name.
Value MakeRecord(Record fields);

// --- Skolem table -----------------------------------------------------------

// Interns Skolem terms.  A process-wide table, safe for concurrent use:
// Intern() is content-addressed (same (functor, args) always yields the
// same ref) and the accessors return references to immutable interned
// terms whose addresses are stable for the lifetime of the process.
class SkolemTable {
 public:
  // Returns the process-wide table.
  static SkolemTable& Global();

  // Interns sk_functor(args) and returns its Value (kind kSkolem).
  // Thread-safe; idempotent per (functor, args).
  Value Intern(const std::string& functor, const std::vector<Value>& args);

  // Interns every (functor, args) pair of `batch` under a single lock
  // acquisition and returns the Values in batch order.  Fresh ids are
  // assigned in batch order, so a caller that fixes the batch order also
  // fixes the ids minted for previously unseen terms — the deterministic
  // parallel chase relies on this when replaying candidate firings.
  std::vector<Value> InternBatch(
      const std::vector<std::pair<std::string, std::vector<Value>>>& batch);

  // Returns the functor of an interned term.
  const std::string& FunctorOf(SkolemRef ref) const;
  // Returns the arguments of an interned term.
  const std::vector<Value>& ArgsOf(SkolemRef ref) const;
  // Content hash of an interned term — hash(functor) combined with the
  // StableHash of each argument, computed once at intern time.  Unlike the
  // ref id, the same (functor, args) yields the same value in every
  // process, whatever was interned before.
  size_t StableHashOf(SkolemRef ref) const;

  size_t size() const;

 private:
  struct Term {
    std::string functor;
    std::vector<Value> args;
    size_t stable_hash = 0;  // content hash, fixed at intern time
  };
  struct TermKeyHash {
    size_t operator()(const std::pair<std::string, std::vector<Value>>& k)
        const;
  };

  mutable std::mutex mu_;
  // deque: element addresses survive growth, so FunctorOf/ArgsOf can hand
  // out references without holding mu_.
  std::deque<Term> terms_;
  // Maps (functor, args) to index in terms_.  Kept as a parallel structure
  // to avoid storing keys twice; see value.cc.
  struct Index;
  std::shared_ptr<Index> index_;

 public:
  SkolemTable();
};

// Allocates fresh labeled nulls.
class NullFactory {
 public:
  Value Fresh() { return Value(LabeledNull{next_++}); }
  uint64_t count() const { return next_; }

 private:
  uint64_t next_ = 0;
};

}  // namespace kgm

#endif  // KGM_BASE_VALUE_H_
