// Small string helpers shared across the project.

#ifndef KGM_BASE_STRINGS_H_
#define KGM_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgm {

// Splits `s` on `sep`; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `pieces` with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// True if `c` can start / continue an identifier ([A-Za-z_] / [A-Za-z0-9_]).
bool IsIdentStart(char c);
bool IsIdentChar(char c);

// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

// snake_case rendering of a PascalCase / camelCase identifier
// ("PublicListedCompany" -> "public_listed_company").
std::string ToSnakeCase(std::string_view s);

}  // namespace kgm

#endif  // KGM_BASE_STRINGS_H_
