// Lightweight assertion macros for programmer errors.
//
// The project does not use exceptions (see DESIGN.md); recoverable errors are
// reported through kgm::Status / kgm::Result<T>.  KGM_CHECK is reserved for
// invariant violations that indicate a bug, and aborts the process.

#ifndef KGM_BASE_CHECK_H_
#define KGM_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define KGM_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "KGM_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define KGM_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "KGM_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // KGM_BASE_CHECK_H_
