// A small reusable worker pool.
//
// Tasks are plain std::function<void()> closures pushed with Submit();
// WaitIdle() blocks the caller until every submitted task has finished,
// making the pool usable as a fork/join barrier:
//
//   ThreadPool pool(4);
//   for (WorkItem& w : items) pool.Submit([&w] { w.Run(); });
//   pool.WaitIdle();   // all items done, results visible to this thread
//
// WaitIdle() establishes a happens-before edge between every completed
// task and the waiting thread, so task outputs can be read without
// further synchronization.  The pool is intentionally minimal: no
// futures, no task priorities, no work stealing.  Destruction drains the
// queue and joins the workers.

#ifndef KGM_BASE_THREAD_POOL_H_
#define KGM_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kgm {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Finishes all pending tasks, then joins the workers.
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  // Enqueues a task.  Must not be called concurrently with destruction.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running.
  void WaitIdle();

  // Fork/join convenience: runs fn(0) .. fn(n - 1) on the pool and blocks
  // until all calls return.  The caller must not hold tasks of its own in
  // flight (ParallelFor waits for the whole pool to go idle).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // The default parallelism: hardware_concurrency, or 1 when unknown.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals WaitIdle: all work done
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;                 // tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kgm

#endif  // KGM_BASE_THREAD_POOL_H_
