// Error handling without exceptions: Status and Result<T>.
//
// Status carries an error code and a human-readable message; Result<T> is
// either a value or a non-OK Status.  The KGM_RETURN_IF_ERROR and
// KGM_ASSIGN_OR_RETURN macros implement the usual propagation idioms.

#ifndef KGM_BASE_STATUS_H_
#define KGM_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "base/check.h"

namespace kgm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  // A per-request deadline expired or the request was cooperatively
  // cancelled before completion (serving-layer taxonomy).
  kDeadlineExceeded,
  // The service cannot take the request right now (e.g. admission control
  // rejected it because the request queue is full); retrying later may
  // succeed.
  kUnavailable,
};

// Returns a stable lower-case name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error outcome.  Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    KGM_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

// A value of type T or a non-OK Status.  Accessing value() on an error
// aborts, so callers must test ok() (or use KGM_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    KGM_CHECK_MSG(!std::get<Status>(data_).ok(),
                  "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    KGM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    KGM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    KGM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace kgm

#define KGM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::kgm::Status kgm_status_ = (expr);             \
    if (!kgm_status_.ok()) return kgm_status_;      \
  } while (0)

#define KGM_INTERNAL_CONCAT2(a, b) a##b
#define KGM_INTERNAL_CONCAT(a, b) KGM_INTERNAL_CONCAT2(a, b)

#define KGM_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto KGM_INTERNAL_CONCAT(kgm_result_, __LINE__) = (expr);          \
  if (!KGM_INTERNAL_CONCAT(kgm_result_, __LINE__).ok())              \
    return KGM_INTERNAL_CONCAT(kgm_result_, __LINE__).status();      \
  lhs = std::move(KGM_INTERNAL_CONCAT(kgm_result_, __LINE__)).value()

#endif  // KGM_BASE_STATUS_H_
