#include "core/gsl.h"

#include <sstream>

namespace kgm::core {

namespace {

std::string AttrLine(const AttributeDef& a) {
  std::string out;
  out += a.intensional ? "~" : (a.optional ? "o" : "*");
  out += " ";
  out += a.name;
  if (a.is_id) out += " <id>";
  out += ": ";
  out += AttrTypeName(a.type);
  for (const AttributeModifier& m : a.modifiers) {
    out += " {" + m.ToString() + "}";
  }
  return out;
}

std::string GenLabel(const GeneralizationDef& g) {
  std::string out;
  out += g.total ? "t" : "p";
  out += g.disjoint ? "d" : "o";
  return out;
}

std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '<' ||
        c == '>' || c == '|') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string RenderGslAscii(const SuperSchema& schema) {
  std::ostringstream os;
  os << "GSL diagram: " << schema.name() << " (schemaOID "
     << schema.schema_oid() << ")\n";
  os << "  legend: * mandatory attr, o optional, ~ intensional, <id> "
        "identifier\n\n";
  for (const NodeDef& n : schema.nodes()) {
    os << (n.intensional ? "~(" : "(") << n.name
       << (n.intensional ? ")~" : ")") << "\n";
    for (const AttributeDef& a : n.attributes) {
      os << "    " << AttrLine(a) << "\n";
    }
  }
  os << "\n";
  for (const EdgeDef& e : schema.edges()) {
    os << "  (" << e.from << ") " << e.source.ToString() << " "
       << (e.intensional ? "~" : "-") << "[" << e.name << "]"
       << (e.intensional ? "~>" : "->") << " " << e.target.ToString() << " ("
       << e.to << ")\n";
    for (const AttributeDef& a : e.attributes) {
      os << "      " << AttrLine(a) << "\n";
    }
  }
  os << "\n";
  for (const GeneralizationDef& g : schema.generalizations()) {
    os << "  " << g.parent << " <=" << GenLabel(g) << "= {";
    for (size_t i = 0; i < g.children.size(); ++i) {
      if (i > 0) os << ", ";
      os << g.children[i];
    }
    os << "}\n";
  }
  return os.str();
}

std::string RenderGslDot(const SuperSchema& schema) {
  std::ostringstream os;
  os << "digraph \"" << schema.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=record, fontsize=10];\n";
  for (const NodeDef& n : schema.nodes()) {
    os << "  \"" << n.name << "\" [label=\"{" << DotEscape(n.name);
    if (!n.attributes.empty()) {
      os << "|";
      for (const AttributeDef& a : n.attributes) {
        os << DotEscape(AttrLine(a)) << "\\l";
      }
    }
    os << "}\"";
    if (n.intensional) os << ", style=dashed";
    os << "];\n";
  }
  for (const EdgeDef& e : schema.edges()) {
    os << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
       << DotEscape(e.name) << " " << e.source.ToString() << "/"
       << e.target.ToString() << "\"";
    if (e.intensional) os << ", style=dashed";
    os << "];\n";
  }
  for (const GeneralizationDef& g : schema.generalizations()) {
    for (const std::string& child : g.children) {
      os << "  \"" << child << "\" -> \"" << g.parent
         << "\" [arrowhead=onormal, penwidth=2, label=\"" << GenLabel(g)
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace kgm::core
