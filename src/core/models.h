// Model definitions and target-schema representations.
//
// A model is represented in KGModel by specializing and renaming a subset
// of the super-constructs (Section 5).  PropertyGraphModel() mirrors
// Figure 5, RelationalModel() Figure 7, and CsvModel() the flat-file model
// mentioned in Section 2.2.
//
// PgSchema is the in-memory form of a schema of the PG model — the output
// of the super-schema -> PG translation (Figure 6).  Relational target
// schemas reuse rel::TableSchema (Figure 8).

#ifndef KGM_CORE_MODELS_H_
#define KGM_CORE_MODELS_H_

#include <string>
#include <vector>

#include "core/superschema.h"

namespace kgm::core {

// One construct of a model, specializing a super-construct
// ("Node: SM_Node" in Figure 5).
struct ModelConstruct {
  std::string name;         // e.g. "Node"
  std::string specializes;  // e.g. "SM_Node"
};

struct ModelDef {
  std::string name;
  std::vector<ModelConstruct> constructs;

  // True if some construct of this model specializes `super_construct`.
  bool Supports(std::string_view super_construct) const;
  // The model construct specializing `super_construct`, or "".
  std::string ConstructFor(std::string_view super_construct) const;
};

// Figure 5: the essential PG model (labeled nodes and edges, multi-label
// tagging, unique property modifiers, no generalizations).
ModelDef PropertyGraphModel();

// Figure 7: the essential relational model (Relations of Fields, reached
// via Predicates, with ForeignKeys).
ModelDef RelationalModel();

// Plain CSV files: one file per entity, no constraints beyond headers.
ModelDef CsvModel();

// --- PG target schema (Figure 6) ---------------------------------------------

struct PgPropertyDef {
  std::string name;
  AttrType type = AttrType::kString;
  bool required = false;
  bool unique = false;
  bool intensional = false;
};

// A node type of the translated PG schema: the original SM_Node, tagged
// with the accumulated labels of all its ancestors.
struct PgNodeType {
  std::vector<std::string> labels;  // own type first, then ancestors
  std::vector<PgPropertyDef> properties;
  bool intensional = false;

  const std::string& primary_label() const { return labels.front(); }
};

// A relationship type: the edge replicated over the descendants of its
// endpoints (Eliminate.DeleteGeneralizations(3)).
struct PgRelationshipType {
  std::string name;
  std::string from;  // primary label of the source node type
  std::string to;    // primary label of the target node type
  std::vector<PgPropertyDef> properties;
  bool intensional = false;
};

struct PgSchema {
  std::string name;
  std::vector<PgNodeType> node_types;
  std::vector<PgRelationshipType> relationship_types;

  const PgNodeType* FindNodeType(std::string_view primary_label) const;
  // All relationship types named `name`.
  std::vector<const PgRelationshipType*> FindRelationships(
      std::string_view name) const;

  // Deterministic ordering (by primary label / by name-from-to); used to
  // compare the declarative and native translation paths.
  void Canonicalize();

  std::string ToString() const;
};

}  // namespace kgm::core

#endif  // KGM_CORE_MODELS_H_
