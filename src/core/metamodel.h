// The meta-model (Figure 2) and the super-model dictionary (Figure 3).
//
// KGModel's representation stack (Figure 1) has three levels: the
// meta-model (MM_Entity, MM_Link, MM_Property), the super-model whose
// super-constructs are instances of the meta-constructs, and the models,
// whose constructs specialize super-constructs.  This header exposes the
// two upper levels as data: property-graph renderings, the Gamma_SM
// rendering table, and the Figure 1 stack description.

#ifndef KGM_CORE_METAMODEL_H_
#define KGM_CORE_METAMODEL_H_

#include <string>
#include <vector>

#include "pg/property_graph.h"

namespace kgm::core {

// Figure 2: the meta-model as a property graph.  Nodes: MM_Entity,
// MM_Link, MM_Property; edges: MM_HAS_PROPERTY, MM_SOURCE, MM_TARGET.
pg::PropertyGraph MetaModelGraph();

// Figure 3 (left): the super-model dictionary as an instance of the
// meta-model: every super-construct is an MM_Entity / MM_Link instance.
pg::PropertyGraph SuperModelAsMetaInstance();

// One row of the Gamma_SM rendering function in tabular form (Figure 3,
// right).  `has_grapheme` is false for the link super-constructs rendered
// with a gray background in the paper (no explicit notation).
struct GraphemeEntry {
  std::string construct;    // e.g. "SM_Node"
  std::string attributes;   // e.g. "isIntensional = true"
  std::string grapheme;     // textual description of the visual item
  bool has_grapheme = true;
};

// The full Gamma_SM table.
std::vector<GraphemeEntry> SuperModelRenderingTable();

// Figure 1: the KGModel modeling stack, rendered as ASCII art.
std::string RenderModelingStack();

}  // namespace kgm::core

#endif  // KGM_CORE_METAMODEL_H_
