// Graph dictionaries: storing super-schemas as property graphs.
//
// KGModel stores super-schemas and schemas in graph dictionaries
// (Section 2.2).  The encoding follows the super-model dictionary of
// Figure 3 and matches the atoms used by the paper's MetaLog examples
// (SM_CHILD / SM_PARENT run from the SM_Generalization node to the child /
// parent SM_Node, as in the Cypher bindings of Example 4.4):
//
//   (n: SM_Node; schemaOID, isIntensional)
//       -[: SM_HAS_NODE_TYPE]-> (t: SM_Type; name, schemaOID)
//       -[: SM_HAS_NODE_PROPERTY]-> (a: SM_Attribute; name, dataType,
//                                    isId, isOpt, isIntensional, schemaOID)
//   (e: SM_Edge; schemaOID, isOpt1, isFun1, isOpt2, isFun2, isIntensional)
//       -[: SM_HAS_EDGE_TYPE]-> (t: SM_Type)
//       -[: SM_FROM]-> (n: SM_Node),  -[: SM_TO]-> (m: SM_Node)
//       -[: SM_HAS_EDGE_PROPERTY]-> (a: SM_Attribute)
//   (g: SM_Generalization; schemaOID, isTotal, isDisjoint)
//       -[: SM_PARENT]-> (n: SM_Node),  -[: SM_CHILD]-> (c: SM_Node)
//   (a: SM_Attribute) -[: SM_HAS_MODIFIER]->
//       (m: SM_AttributeModifier; kind, enumValues, rangeMin, rangeMax)

#ifndef KGM_CORE_DICTIONARY_H_
#define KGM_CORE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/superschema.h"
#include "pg/property_graph.h"

namespace kgm::core {

// Dictionary label and link names.
inline constexpr char kSmNode[] = "SM_Node";
inline constexpr char kSmEdge[] = "SM_Edge";
inline constexpr char kSmType[] = "SM_Type";
inline constexpr char kSmAttribute[] = "SM_Attribute";
inline constexpr char kSmGeneralization[] = "SM_Generalization";
inline constexpr char kSmAttributeModifier[] = "SM_AttributeModifier";
inline constexpr char kSmHasNodeType[] = "SM_HAS_NODE_TYPE";
inline constexpr char kSmHasEdgeType[] = "SM_HAS_EDGE_TYPE";
inline constexpr char kSmHasNodeProperty[] = "SM_HAS_NODE_PROPERTY";
inline constexpr char kSmHasEdgeProperty[] = "SM_HAS_EDGE_PROPERTY";
inline constexpr char kSmFrom[] = "SM_FROM";
inline constexpr char kSmTo[] = "SM_TO";
inline constexpr char kSmParent[] = "SM_PARENT";
inline constexpr char kSmChild[] = "SM_CHILD";
inline constexpr char kSmHasModifier[] = "SM_HAS_MODIFIER";

// Serializes `schema` into `dict`, tagging every construct with the
// schema's OID.  Multiple schemas can share one dictionary.
Status StoreSuperSchema(const SuperSchema& schema, pg::PropertyGraph* dict);

// Reconstructs the super-schema with the given OID from `dict`.
Result<SuperSchema> LoadSuperSchema(const pg::PropertyGraph& dict,
                                    int64_t schema_oid,
                                    const std::string& name = "");

// OIDs of the schemas stored in `dict` (sorted, deduplicated).
std::vector<int64_t> StoredSchemaOids(const pg::PropertyGraph& dict);

}  // namespace kgm::core

#endif  // KGM_CORE_DICTIONARY_H_
