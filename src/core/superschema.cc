#include "core/superschema.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace kgm::core {

const char* AttrTypeName(AttrType t) {
  switch (t) {
    case AttrType::kString:
      return "string";
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kBool:
      return "bool";
    case AttrType::kDate:
      return "date";
  }
  return "?";
}

std::string AttributeModifier::ToString() const {
  switch (kind) {
    case Kind::kUnique:
      return "unique";
    case Kind::kEnum: {
      std::string out = "enum{";
      for (size_t i = 0; i < enum_values.size(); ++i) {
        if (i > 0) out += ", ";
        out += enum_values[i].ToString();
      }
      return out + "}";
    }
    case Kind::kRange: {
      std::ostringstream os;
      os << "range[" << min << ", " << max << "]";
      return os.str();
    }
  }
  return "?";
}

AttributeDef IdAttr(std::string name, AttrType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  a.is_id = true;
  return a;
}

AttributeDef Attr(std::string name, AttrType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

AttributeDef OptAttr(std::string name, AttrType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  a.optional = true;
  return a;
}

AttributeDef IntensionalAttr(std::string name, AttrType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  a.optional = true;
  a.intensional = true;
  return a;
}

std::string Cardinality::ToString() const {
  std::string out = "(";
  out += optional ? "0" : "1";
  out += ",";
  out += functional ? "1" : "N";
  out += ")";
  return out;
}

const AttributeDef* NodeDef::FindAttribute(std::string_view attr_name) const {
  for (const AttributeDef& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

const AttributeDef* EdgeDef::FindAttribute(std::string_view attr_name) const {
  for (const AttributeDef& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

NodeDef& SuperSchema::AddNode(std::string node_name,
                              std::vector<AttributeDef> attributes) {
  NodeDef node;
  node.name = std::move(node_name);
  node.attributes = std::move(attributes);
  nodes_.push_back(std::move(node));
  return nodes_.back();
}

NodeDef& SuperSchema::AddIntensionalNode(
    std::string node_name, std::vector<AttributeDef> attributes) {
  NodeDef& node = AddNode(std::move(node_name), std::move(attributes));
  node.intensional = true;
  return node;
}

EdgeDef& SuperSchema::AddEdge(std::string edge_name, std::string from,
                              std::string to, Cardinality source,
                              Cardinality target,
                              std::vector<AttributeDef> attributes) {
  EdgeDef edge;
  edge.name = std::move(edge_name);
  edge.from = std::move(from);
  edge.to = std::move(to);
  edge.source = source;
  edge.target = target;
  edge.attributes = std::move(attributes);
  edges_.push_back(std::move(edge));
  return edges_.back();
}

EdgeDef& SuperSchema::AddIntensionalEdge(
    std::string edge_name, std::string from, std::string to,
    std::vector<AttributeDef> attributes) {
  EdgeDef& edge = AddEdge(std::move(edge_name), std::move(from),
                          std::move(to), Cardinality::ZeroOrMore(),
                          Cardinality::ZeroOrMore(), std::move(attributes));
  edge.intensional = true;
  return edge;
}

GeneralizationDef& SuperSchema::AddGeneralization(
    std::string parent, std::vector<std::string> children, bool total,
    bool disjoint) {
  GeneralizationDef gen;
  gen.parent = std::move(parent);
  gen.children = std::move(children);
  gen.total = total;
  gen.disjoint = disjoint;
  generalizations_.push_back(std::move(gen));
  return generalizations_.back();
}

const NodeDef* SuperSchema::FindNode(std::string_view node_name) const {
  for (const NodeDef& n : nodes_) {
    if (n.name == node_name) return &n;
  }
  return nullptr;
}

const EdgeDef* SuperSchema::FindEdge(std::string_view edge_name) const {
  for (const EdgeDef& e : edges_) {
    if (e.name == edge_name) return &e;
  }
  return nullptr;
}

std::vector<std::string> SuperSchema::AncestorsOf(
    std::string_view node_name) const {
  std::vector<std::string> out;
  std::string current(node_name);
  // Single-parent hierarchies (validated); walk upwards.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const GeneralizationDef& g : generalizations_) {
      for (const std::string& child : g.children) {
        if (child == current) {
          out.push_back(g.parent);
          current = g.parent;
          moved = true;
          break;
        }
      }
      if (moved) break;
    }
    if (out.size() > nodes_.size()) break;  // cycle guard
  }
  return out;
}

std::vector<std::string> SuperSchema::DescendantsOf(
    std::string_view node_name) const {
  std::vector<std::string> out;
  std::vector<std::string> frontier{std::string(node_name)};
  std::set<std::string> seen;
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    for (const GeneralizationDef& g : generalizations_) {
      if (g.parent != current) continue;
      for (const std::string& child : g.children) {
        if (seen.insert(child).second) {
          out.push_back(child);
          frontier.push_back(child);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SuperSchema::IsLeaf(std::string_view node_name) const {
  for (const GeneralizationDef& g : generalizations_) {
    if (g.parent == node_name) return false;
  }
  return true;
}

std::vector<std::string> SuperSchema::LeavesUnder(
    std::string_view node_name) const {
  std::vector<std::string> out;
  if (IsLeaf(node_name)) {
    out.emplace_back(node_name);
    return out;
  }
  for (const std::string& d : DescendantsOf(node_name)) {
    if (IsLeaf(d)) out.push_back(d);
  }
  return out;
}

std::string SuperSchema::RootOf(std::string_view node_name) const {
  std::vector<std::string> ancestors = AncestorsOf(node_name);
  return ancestors.empty() ? std::string(node_name) : ancestors.back();
}

std::vector<AttributeDef> SuperSchema::EffectiveAttributes(
    std::string_view node_name) const {
  std::vector<AttributeDef> out;
  const NodeDef* node = FindNode(node_name);
  if (node == nullptr) return out;
  out = node->attributes;
  for (const std::string& ancestor : AncestorsOf(node_name)) {
    const NodeDef* a = FindNode(ancestor);
    if (a == nullptr) continue;
    for (const AttributeDef& attr : a->attributes) {
      bool duplicate = false;
      for (const AttributeDef& existing : out) {
        if (existing.name == attr.name) duplicate = true;
      }
      if (!duplicate) out.push_back(attr);
    }
  }
  return out;
}

std::vector<AttributeDef> SuperSchema::EffectiveIdAttributes(
    std::string_view node_name) const {
  std::vector<AttributeDef> out;
  for (const AttributeDef& a : EffectiveAttributes(node_name)) {
    if (a.is_id) out.push_back(a);
  }
  return out;
}

Status SuperSchema::Validate() const {
  std::set<std::string> node_names;
  for (const NodeDef& n : nodes_) {
    if (!node_names.insert(n.name).second) {
      return FailedPrecondition("duplicate node type: " + n.name);
    }
    std::set<std::string> attr_names;
    for (const AttributeDef& a : n.attributes) {
      if (!attr_names.insert(a.name).second) {
        return FailedPrecondition("duplicate attribute " + a.name +
                                  " on node " + n.name);
      }
      if (a.is_id && a.optional) {
        return FailedPrecondition("identifying attribute " + a.name +
                                  " on node " + n.name +
                                  " cannot be optional");
      }
    }
  }
  std::set<std::string> edge_names;
  for (const EdgeDef& e : edges_) {
    // SM_Edges have one single SM_Type: super-schemas are simple graphs by
    // construction (Section 3.2).
    if (!edge_names.insert(e.name).second) {
      return FailedPrecondition("duplicate edge type: " + e.name);
    }
    if (node_names.count(e.from) == 0) {
      return FailedPrecondition("edge " + e.name +
                                " has unknown source node " + e.from);
    }
    if (node_names.count(e.to) == 0) {
      return FailedPrecondition("edge " + e.name +
                                " has unknown target node " + e.to);
    }
    std::set<std::string> attr_names;
    for (const AttributeDef& a : e.attributes) {
      if (!attr_names.insert(a.name).second) {
        return FailedPrecondition("duplicate attribute " + a.name +
                                  " on edge " + e.name);
      }
      if (a.is_id) {
        return FailedPrecondition("edge attribute " + a.name + " on " +
                                  e.name + " cannot be identifying");
      }
    }
  }
  // Generalizations: known members, single parent, no cycles.
  std::map<std::string, std::string> parent_of;
  for (const GeneralizationDef& g : generalizations_) {
    if (node_names.count(g.parent) == 0) {
      return FailedPrecondition("generalization parent unknown: " + g.parent);
    }
    if (g.children.empty()) {
      return FailedPrecondition("generalization of " + g.parent +
                                " has no children");
    }
    for (const std::string& child : g.children) {
      if (node_names.count(child) == 0) {
        return FailedPrecondition("generalization child unknown: " + child);
      }
      if (child == g.parent) {
        return FailedPrecondition("node " + child + " generalizes itself");
      }
      auto [it, inserted] = parent_of.emplace(child, g.parent);
      if (!inserted) {
        return FailedPrecondition("node " + child +
                                  " has multiple parents (" + it->second +
                                  ", " + g.parent + ")");
      }
    }
  }
  for (const NodeDef& n : nodes_) {
    // Cycle check by walking up with a step budget.
    std::string current = n.name;
    size_t steps = 0;
    while (parent_of.count(current) > 0) {
      current = parent_of[current];
      if (++steps > nodes_.size()) {
        return FailedPrecondition("generalization cycle involving " + n.name);
      }
    }
  }
  // Every non-intensional node must have a resolvable identifier.
  for (const NodeDef& n : nodes_) {
    if (n.intensional) continue;
    if (EffectiveIdAttributes(n.name).empty()) {
      return FailedPrecondition("node " + n.name +
                                " has no identifying attributes (own or "
                                "inherited)");
    }
  }
  return OkStatus();
}

std::string SuperSchema::Summary() const {
  std::ostringstream os;
  os << "schema " << name_ << ": " << nodes_.size() << " nodes, "
     << edges_.size() << " edges, " << generalizations_.size()
     << " generalizations";
  return os.str();
}

}  // namespace kgm::core
