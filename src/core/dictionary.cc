#include "core/dictionary.h"

#include <map>
#include <set>

#include "base/check.h"
#include "base/strings.h"

namespace kgm::core {

namespace {

Value SchemaOid(int64_t oid) { return Value(oid); }

std::string SerializeEnumValues(const std::vector<Value>& values) {
  std::vector<std::string> parts;
  for (const Value& v : values) {
    parts.push_back(v.is_string() ? v.AsString() : v.ToString());
  }
  return Join(parts, "|");
}

std::vector<Value> DeserializeEnumValues(const std::string& serialized) {
  std::vector<Value> out;
  if (serialized.empty()) return out;
  for (const std::string& part : Split(serialized, '|')) {
    out.push_back(Value(part));
  }
  return out;
}

Result<AttrType> ParseAttrType(const std::string& name) {
  if (name == "string") return AttrType::kString;
  if (name == "int") return AttrType::kInt;
  if (name == "double") return AttrType::kDouble;
  if (name == "bool") return AttrType::kBool;
  if (name == "date") return AttrType::kDate;
  return InvalidArgument("unknown attribute type: " + name);
}

pg::NodeId StoreAttribute(const AttributeDef& attr, int64_t oid,
                          pg::PropertyGraph* dict) {
  pg::NodeId a = dict->AddNode(
      kSmAttribute, {{"name", Value(attr.name)},
                     {"dataType", Value(AttrTypeName(attr.type))},
                     {"isId", Value(attr.is_id)},
                     {"isOpt", Value(attr.optional)},
                     {"isIntensional", Value(attr.intensional)},
                     {"schemaOID", SchemaOid(oid)}});
  for (const AttributeModifier& mod : attr.modifiers) {
    pg::PropertyMap props{{"schemaOID", SchemaOid(oid)}};
    switch (mod.kind) {
      case AttributeModifier::Kind::kUnique:
        props["kind"] = Value("unique");
        break;
      case AttributeModifier::Kind::kEnum:
        props["kind"] = Value("enum");
        props["enumValues"] = Value(SerializeEnumValues(mod.enum_values));
        break;
      case AttributeModifier::Kind::kRange:
        props["kind"] = Value("range");
        props["rangeMin"] = Value(mod.min);
        props["rangeMax"] = Value(mod.max);
        break;
    }
    pg::NodeId m = dict->AddNode(kSmAttributeModifier, std::move(props));
    dict->AddEdge(a, m, kSmHasModifier,
                  {{"schemaOID", SchemaOid(oid)}});
  }
  return a;
}

}  // namespace

Status StoreSuperSchema(const SuperSchema& schema, pg::PropertyGraph* dict) {
  KGM_RETURN_IF_ERROR(schema.Validate());
  int64_t oid = schema.schema_oid();
  std::map<std::string, pg::NodeId> node_ids;

  for (const NodeDef& node : schema.nodes()) {
    pg::NodeId n = dict->AddNode(
        kSmNode, {{"isIntensional", Value(node.intensional)},
                  {"schemaOID", SchemaOid(oid)}});
    pg::NodeId t = dict->AddNode(kSmType, {{"name", Value(node.name)},
                                           {"schemaOID", SchemaOid(oid)}});
    dict->AddEdge(n, t, kSmHasNodeType, {{"schemaOID", SchemaOid(oid)}});
    for (const AttributeDef& attr : node.attributes) {
      pg::NodeId a = StoreAttribute(attr, oid, dict);
      dict->AddEdge(n, a, kSmHasNodeProperty,
                    {{"schemaOID", SchemaOid(oid)}});
    }
    node_ids[node.name] = n;
  }
  for (const EdgeDef& edge : schema.edges()) {
    // The paper's isFun1/isOpt1 refer to the right (target) maximum /
    // minimum cardinality as seen from the source; we store both sides
    // explicitly.
    pg::NodeId e = dict->AddNode(
        kSmEdge, {{"isIntensional", Value(edge.intensional)},
                  {"isOpt1", Value(edge.source.optional)},
                  {"isFun1", Value(edge.source.functional)},
                  {"isOpt2", Value(edge.target.optional)},
                  {"isFun2", Value(edge.target.functional)},
                  {"schemaOID", SchemaOid(oid)}});
    pg::NodeId t = dict->AddNode(kSmType, {{"name", Value(edge.name)},
                                           {"schemaOID", SchemaOid(oid)}});
    dict->AddEdge(e, t, kSmHasEdgeType, {{"schemaOID", SchemaOid(oid)}});
    dict->AddEdge(e, node_ids.at(edge.from), kSmFrom,
                  {{"schemaOID", SchemaOid(oid)}});
    dict->AddEdge(e, node_ids.at(edge.to), kSmTo,
                  {{"schemaOID", SchemaOid(oid)}});
    for (const AttributeDef& attr : edge.attributes) {
      pg::NodeId a = StoreAttribute(attr, oid, dict);
      dict->AddEdge(e, a, kSmHasEdgeProperty,
                    {{"schemaOID", SchemaOid(oid)}});
    }
  }
  for (const GeneralizationDef& gen : schema.generalizations()) {
    pg::NodeId g = dict->AddNode(
        kSmGeneralization, {{"isTotal", Value(gen.total)},
                            {"isDisjoint", Value(gen.disjoint)},
                            {"schemaOID", SchemaOid(oid)}});
    dict->AddEdge(g, node_ids.at(gen.parent), kSmParent,
                  {{"schemaOID", SchemaOid(oid)}});
    for (const std::string& child : gen.children) {
      dict->AddEdge(g, node_ids.at(child), kSmChild,
                    {{"schemaOID", SchemaOid(oid)}});
    }
  }
  return OkStatus();
}

namespace {

bool InSchema(const pg::PropertyGraph& dict, pg::NodeId id, int64_t oid) {
  const Value* v = dict.NodeProperty(id, "schemaOID");
  return v != nullptr && v->is_int() && v->AsInt() == oid;
}

Result<AttributeDef> LoadAttribute(const pg::PropertyGraph& dict,
                                   pg::NodeId a) {
  AttributeDef attr;
  const Value* name = dict.NodeProperty(a, "name");
  if (name == nullptr) return FailedPrecondition("attribute without name");
  attr.name = name->AsString();
  const Value* type = dict.NodeProperty(a, "dataType");
  if (type != nullptr) {
    KGM_ASSIGN_OR_RETURN(attr.type, ParseAttrType(type->AsString()));
  }
  const Value* is_id = dict.NodeProperty(a, "isId");
  attr.is_id = is_id != nullptr && is_id->is_bool() && is_id->AsBool();
  const Value* opt = dict.NodeProperty(a, "isOpt");
  attr.optional = opt != nullptr && opt->is_bool() && opt->AsBool();
  const Value* intensional = dict.NodeProperty(a, "isIntensional");
  attr.intensional = intensional != nullptr && intensional->is_bool() &&
                     intensional->AsBool();
  for (pg::EdgeId e : dict.OutEdges(a)) {
    if (!dict.HasEdge(e) || dict.edge(e).label != kSmHasModifier) continue;
    pg::NodeId m = dict.edge(e).to;
    const Value* kind = dict.NodeProperty(m, "kind");
    if (kind == nullptr) continue;
    if (kind->AsString() == "unique") {
      attr.modifiers.push_back(AttributeModifier::Unique());
    } else if (kind->AsString() == "enum") {
      const Value* values = dict.NodeProperty(m, "enumValues");
      attr.modifiers.push_back(AttributeModifier::Enum(
          DeserializeEnumValues(values == nullptr ? "" : values->AsString())));
    } else if (kind->AsString() == "range") {
      const Value* lo = dict.NodeProperty(m, "rangeMin");
      const Value* hi = dict.NodeProperty(m, "rangeMax");
      attr.modifiers.push_back(AttributeModifier::Range(
          lo == nullptr ? 0 : lo->AsDouble(),
          hi == nullptr ? 0 : hi->AsDouble()));
    }
  }
  return attr;
}

bool BoolProp(const pg::PropertyGraph& dict, pg::NodeId id,
              std::string_view key) {
  const Value* v = dict.NodeProperty(id, key);
  return v != nullptr && v->is_bool() && v->AsBool();
}

}  // namespace

Result<SuperSchema> LoadSuperSchema(const pg::PropertyGraph& dict,
                                    int64_t schema_oid,
                                    const std::string& name) {
  SuperSchema schema(name.empty() ? "schema_" + std::to_string(schema_oid)
                                  : name,
                     schema_oid);
  std::map<pg::NodeId, std::string> node_names;

  auto type_name_of = [&dict](pg::NodeId id, const char* type_link)
      -> Result<std::string> {
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e) || dict.edge(e).label != type_link) continue;
      const Value* name_value = dict.NodeProperty(dict.edge(e).to, "name");
      if (name_value == nullptr) {
        return FailedPrecondition("SM_Type without name");
      }
      return name_value->AsString();
    }
    return FailedPrecondition("construct without SM_Type link");
  };

  for (pg::NodeId id : dict.NodesWithLabel(kSmNode)) {
    if (!InSchema(dict, id, schema_oid)) continue;
    KGM_ASSIGN_OR_RETURN(std::string type_name,
                         type_name_of(id, kSmHasNodeType));
    NodeDef& node = schema.AddNode(type_name);
    node.intensional = BoolProp(dict, id, "isIntensional");
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e) || dict.edge(e).label != kSmHasNodeProperty) {
        continue;
      }
      KGM_ASSIGN_OR_RETURN(AttributeDef attr,
                           LoadAttribute(dict, dict.edge(e).to));
      node.attributes.push_back(std::move(attr));
    }
    node_names[id] = type_name;
  }
  for (pg::NodeId id : dict.NodesWithLabel(kSmEdge)) {
    if (!InSchema(dict, id, schema_oid)) continue;
    KGM_ASSIGN_OR_RETURN(std::string type_name,
                         type_name_of(id, kSmHasEdgeType));
    std::string from;
    std::string to;
    std::vector<AttributeDef> attrs;
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e)) continue;
      const pg::Edge& edge = dict.edge(e);
      if (edge.label == kSmFrom) {
        from = node_names[edge.to];
      } else if (edge.label == kSmTo) {
        to = node_names[edge.to];
      } else if (edge.label == kSmHasEdgeProperty) {
        KGM_ASSIGN_OR_RETURN(AttributeDef attr, LoadAttribute(dict, edge.to));
        attrs.push_back(std::move(attr));
      }
    }
    if (from.empty() || to.empty()) {
      return FailedPrecondition("SM_Edge " + type_name +
                                " lacks SM_FROM/SM_TO links");
    }
    Cardinality source{BoolProp(dict, id, "isOpt1"),
                       BoolProp(dict, id, "isFun1")};
    Cardinality target{BoolProp(dict, id, "isOpt2"),
                       BoolProp(dict, id, "isFun2")};
    EdgeDef& edge = schema.AddEdge(type_name, from, to, source, target,
                                   std::move(attrs));
    edge.intensional = BoolProp(dict, id, "isIntensional");
  }
  for (pg::NodeId id : dict.NodesWithLabel(kSmGeneralization)) {
    if (!InSchema(dict, id, schema_oid)) continue;
    std::string parent;
    std::vector<std::string> children;
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e)) continue;
      const pg::Edge& edge = dict.edge(e);
      if (edge.label == kSmParent) {
        parent = node_names[edge.to];
      } else if (edge.label == kSmChild) {
        children.push_back(node_names[edge.to]);
      }
    }
    if (parent.empty() || children.empty()) {
      return FailedPrecondition("malformed SM_Generalization");
    }
    schema.AddGeneralization(parent, std::move(children),
                             BoolProp(dict, id, "isTotal"),
                             BoolProp(dict, id, "isDisjoint"));
  }
  KGM_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

std::vector<int64_t> StoredSchemaOids(const pg::PropertyGraph& dict) {
  std::set<int64_t> oids;
  for (pg::NodeId id : dict.NodesWithLabel(kSmNode)) {
    const Value* v = dict.NodeProperty(id, "schemaOID");
    if (v != nullptr && v->is_int()) oids.insert(v->AsInt());
  }
  return {oids.begin(), oids.end()};
}

}  // namespace kgm::core
