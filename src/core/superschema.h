// The super-model and super-schemas (Section 3 of the paper).
//
// The super-model offers the data engineer model-independent conceptual
// elements — the super-constructs of Figure 3: SM_Node, SM_Edge, SM_Type,
// SM_Attribute, SM_AttributeModifier and SM_Generalization, plus the links
// connecting them.  A SuperSchema is an instance of the super-model: the
// conceptual design of one knowledge graph (e.g. the Company KG of
// Figure 4).
//
// This header is the typed C++ surface the data engineer uses; the
// dictionary serialization (dictionary.h) stores the same information as a
// property graph so the SSST MetaLog mappings can operate on it at
// meta-level.

#ifndef KGM_CORE_SUPERSCHEMA_H_
#define KGM_CORE_SUPERSCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/value.h"

namespace kgm::core {

// Attribute value domains (MM_Property "type").
enum class AttrType {
  kString = 0,
  kInt,
  kDouble,
  kBool,
  kDate,  // stored as ISO-8601 strings
};

const char* AttrTypeName(AttrType t);

// SM_AttributeModifier: extra business constraints on an attribute.  The
// paper names SM_UniqueAttributeModifier and SM_EnumAttributeModifier
// explicitly; kRange is one of the "many more modifiers" it alludes to.
struct AttributeModifier {
  enum class Kind { kUnique, kEnum, kRange };
  Kind kind = Kind::kUnique;
  std::vector<Value> enum_values;  // kEnum
  double min = 0;                  // kRange
  double max = 0;                  // kRange

  static AttributeModifier Unique() { return {Kind::kUnique, {}, 0, 0}; }
  static AttributeModifier Enum(std::vector<Value> values) {
    return {Kind::kEnum, std::move(values), 0, 0};
  }
  static AttributeModifier Range(double min, double max) {
    return {Kind::kRange, {}, min, max};
  }
  std::string ToString() const;
};

// SM_Attribute.
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kString;
  bool is_id = false;      // part of the identifier
  bool optional = false;   // isOpt
  bool intensional = false;
  std::vector<AttributeModifier> modifiers;
};

// Convenience constructors for the builder API.
AttributeDef IdAttr(std::string name, AttrType type = AttrType::kString);
AttributeDef Attr(std::string name, AttrType type = AttrType::kString);
AttributeDef OptAttr(std::string name, AttrType type = AttrType::kString);
AttributeDef IntensionalAttr(std::string name,
                             AttrType type = AttrType::kString);

// One side of an SM_Edge cardinality: (min, max) with min in {0,1} (isOpt)
// and max in {1, N} (isFun).
struct Cardinality {
  bool optional = true;    // min = 0
  bool functional = false; // max = 1

  static Cardinality ZeroOrOne() { return {true, true}; }
  static Cardinality ExactlyOne() { return {false, true}; }
  static Cardinality ZeroOrMore() { return {true, false}; }
  static Cardinality OneOrMore() { return {false, false}; }
  std::string ToString() const;  // "(0,1)", "(1,1)", "(0,N)", "(1,N)"
};

// SM_Node.
struct NodeDef {
  std::string name;  // the SM_Type name
  bool intensional = false;
  std::vector<AttributeDef> attributes;

  const AttributeDef* FindAttribute(std::string_view attr_name) const;
};

// SM_Edge: a binary aggregation of two SM_Nodes.  Super-schemas are simple
// graphs by construction: each edge has one single SM_Type (name).
struct EdgeDef {
  std::string name;
  std::string from;  // source node type
  std::string to;    // target node type
  // Cardinality as the engineer reads it: `source` constrains how many
  // edges a source node can have (isFun1/isOpt1 in the paper's encoding),
  // `target` the reverse direction.
  Cardinality source = Cardinality::ZeroOrMore();
  Cardinality target = Cardinality::ZeroOrMore();
  bool intensional = false;
  std::vector<AttributeDef> attributes;

  bool many_to_many() const {
    return !source.functional && !target.functional;
  }
  const AttributeDef* FindAttribute(std::string_view attr_name) const;
};

// SM_Generalization.
struct GeneralizationDef {
  std::string parent;
  std::vector<std::string> children;
  bool total = false;
  bool disjoint = false;
};

// A super-schema: an instance of the super-model.
class SuperSchema {
 public:
  explicit SuperSchema(std::string name, int64_t schema_oid = 0)
      : name_(std::move(name)), schema_oid_(schema_oid) {}

  const std::string& name() const { return name_; }
  int64_t schema_oid() const { return schema_oid_; }
  void set_schema_oid(int64_t oid) { schema_oid_ = oid; }

  // --- builder ---------------------------------------------------------------

  NodeDef& AddNode(std::string node_name,
                   std::vector<AttributeDef> attributes = {});
  NodeDef& AddIntensionalNode(std::string node_name,
                              std::vector<AttributeDef> attributes = {});
  EdgeDef& AddEdge(std::string edge_name, std::string from, std::string to,
                   Cardinality source = Cardinality::ZeroOrMore(),
                   Cardinality target = Cardinality::ZeroOrMore(),
                   std::vector<AttributeDef> attributes = {});
  EdgeDef& AddIntensionalEdge(std::string edge_name, std::string from,
                              std::string to,
                              std::vector<AttributeDef> attributes = {});
  GeneralizationDef& AddGeneralization(std::string parent,
                                       std::vector<std::string> children,
                                       bool total, bool disjoint);

  // --- access ---------------------------------------------------------------

  const std::vector<NodeDef>& nodes() const { return nodes_; }
  const std::vector<EdgeDef>& edges() const { return edges_; }
  const std::vector<GeneralizationDef>& generalizations() const {
    return generalizations_;
  }

  const NodeDef* FindNode(std::string_view node_name) const;
  const EdgeDef* FindEdge(std::string_view edge_name) const;

  // Proper ancestors of `node_name` through the generalization hierarchy,
  // nearest first.
  std::vector<std::string> AncestorsOf(std::string_view node_name) const;
  // Proper descendants (children at any depth).
  std::vector<std::string> DescendantsOf(std::string_view node_name) const;
  // Leaf descendants (nodes with no children); a leaf returns itself.
  std::vector<std::string> LeavesUnder(std::string_view node_name) const;
  // True if `node_name` has no children.
  bool IsLeaf(std::string_view node_name) const;
  // The topmost ancestor (the node itself when it has no parent).
  std::string RootOf(std::string_view node_name) const;

  // Own attributes plus all attributes inherited from ancestors.
  std::vector<AttributeDef> EffectiveAttributes(
      std::string_view node_name) const;
  // Identifier attributes: own isId attributes, else the root's.
  std::vector<AttributeDef> EffectiveIdAttributes(
      std::string_view node_name) const;

  // Structural validation: unique names, known endpoints, acyclic
  // generalizations, single parent per node, identifiers resolvable.
  Status Validate() const;

  // Summary string ("schema CompanyKG: 12 nodes, 13 edges, 4 gens").
  std::string Summary() const;

 private:
  std::string name_;
  int64_t schema_oid_;
  std::vector<NodeDef> nodes_;
  std::vector<EdgeDef> edges_;
  std::vector<GeneralizationDef> generalizations_;
};

}  // namespace kgm::core

#endif  // KGM_CORE_SUPERSCHEMA_H_
