#include "core/metamodel.h"

#include <sstream>

namespace kgm::core {

pg::PropertyGraph MetaModelGraph() {
  pg::PropertyGraph g;
  pg::NodeId entity = g.AddNode(
      "MM_Entity", {{"name", Value("MM_Entity")},
                    {"doc", Value("an abstract entity of the domain")}});
  pg::NodeId link = g.AddNode(
      "MM_Link", {{"name", Value("MM_Link")},
                  {"doc", Value("a connection between entities")}});
  pg::NodeId property = g.AddNode(
      "MM_Property", {{"name", Value("MM_Property")},
                      {"doc", Value("a named, typed property")}});
  // MM_Links run between entities (cardinality 0..N -> 0..N); entities and
  // links carry properties.  Every meta-construct has an internal OID.
  g.AddEdge(link, entity, "MM_SOURCE", {{"card", Value("1,1")}});
  g.AddEdge(link, entity, "MM_TARGET", {{"card", Value("1,1")}});
  g.AddEdge(entity, property, "MM_HAS_PROPERTY", {{"card", Value("0,N")}});
  g.AddEdge(link, property, "MM_HAS_PROPERTY", {{"card", Value("0,N")}});
  return g;
}

pg::PropertyGraph SuperModelAsMetaInstance() {
  pg::PropertyGraph g;
  auto entity = [&g](const char* name,
                     std::vector<std::string> props) -> pg::NodeId {
    pg::NodeId id = g.AddNode("MM_Entity", {{"name", Value(name)}});
    for (const std::string& p : props) {
      pg::NodeId prop = g.AddNode(
          "MM_Property", {{"name", Value(p)}});
      g.AddEdge(id, prop, "MM_HAS_PROPERTY");
    }
    return id;
  };
  pg::NodeId node = entity("SM_Node", {"isIntensional"});
  pg::NodeId edge = entity("SM_Edge", {"isIntensional", "isOpt1", "isFun1",
                                       "isOpt2", "isFun2"});
  pg::NodeId type = entity("SM_Type", {"name"});
  pg::NodeId attr = entity("SM_Attribute", {"name", "dataType", "isId",
                                            "isOpt"});
  pg::NodeId modifier = entity("SM_AttributeModifier", {"kind"});
  pg::NodeId gen = entity("SM_Generalization", {"isTotal", "isDisjoint"});
  auto mm_link = [&g](const char* name, pg::NodeId from,
                      pg::NodeId to) {
    pg::NodeId id = g.AddNode("MM_Link", {{"name", Value(name)}});
    g.AddEdge(id, from, "MM_SOURCE");
    g.AddEdge(id, to, "MM_TARGET");
  };
  mm_link("SM_HAS_NODE_TYPE", node, type);
  mm_link("SM_HAS_EDGE_TYPE", edge, type);
  mm_link("SM_HAS_NODE_PROPERTY", node, attr);
  mm_link("SM_HAS_EDGE_PROPERTY", edge, attr);
  mm_link("SM_FROM", edge, node);
  mm_link("SM_TO", edge, node);
  mm_link("SM_PARENT", gen, node);
  mm_link("SM_CHILD", gen, node);
  mm_link("SM_HAS_MODIFIER", attr, modifier);
  return g;
}

std::vector<GraphemeEntry> SuperModelRenderingTable() {
  return {
      {"SM_Node", "isIntensional = false, name from SM_Type",
       "solid circle labeled with the type name", true},
      {"SM_Node", "isIntensional = true, name from SM_Type",
       "dashed circle labeled with the type name", true},
      {"SM_Edge",
       "isIntensional = false, name from SM_Type, cardinalities from "
       "isOpt/isFun",
       "solid labeled arrow with (min,max) cardinalities", true},
      {"SM_Edge",
       "isIntensional = true, name from SM_Type, cardinalities from "
       "isOpt/isFun",
       "dashed labeled arrow with (min,max) cardinalities", true},
      {"SM_Type", "name", "label text of the owning node/edge", true},
      {"SM_HAS_NODE_PROPERTY", "", "no explicit notation", false},
      {"SM_HAS_EDGE_PROPERTY", "", "no explicit notation", false},
      {"SM_FROM", "", "no explicit notation (arrow tail)", false},
      {"SM_TO", "", "no explicit notation (arrow head)", false},
      {"SM_Attribute", "isOpt = false, isId = false",
       "filled lollipop with the attribute name", true},
      {"SM_Attribute", "isOpt = true, isId = false",
       "hollow lollipop with the attribute name", true},
      {"SM_Attribute", "isOpt = false, isId = true",
       "filled lollipop, name underlined (identifier)", true},
      {"SM_Generalization", "isTotal = true, isDisjoint = true",
       "single-headed thick solid black arrow", true},
      {"SM_Generalization", "isTotal = false, isDisjoint = true",
       "single-headed thick outlined arrow", true},
      {"SM_Generalization", "isTotal = true, isDisjoint = false",
       "double-headed thick solid black arrow", true},
      {"SM_Generalization", "isTotal = false, isDisjoint = false",
       "double-headed thick outlined arrow", true},
      {"SM_PARENT", "", "no explicit notation (arrow head side)", false},
      {"SM_CHILD", "", "no explicit notation (arrow tail side)", false},
  };
}

std::string RenderModelingStack() {
  std::ostringstream os;
  os << "KGModel modeling stack (Figure 1)\n"
     << "\n"
     << "  model stack                schema stack            instance stack\n"
     << "  +-------------+\n"
     << "  | meta-model  |  MM_Entity, MM_Link, MM_Property\n"
     << "  +------+------+\n"
     << "         | instantiates\n"
     << "  +------v------+           +--------------+        +------------------+\n"
     << "  | super-model |---------->| super-schema |------->| super-components |\n"
     << "  +------+------+           +------+-------+        +---------+--------+\n"
     << "         | specializes             | mappings M(M)            | M(M).instance\n"
     << "  +------v------+           +------v-------+        +---------v--------+\n"
     << "  |   models    |---------->|   schemas    |------->|    components    |\n"
     << "  | (PG, rel,   |           | (per target  |        | (ground + derived|\n"
     << "  |  CSV, ...)  |           |  system)     |        |  data)           |\n"
     << "  +-------------+           +--------------+        +------------------+\n";
  return os.str();
}

}  // namespace kgm::core
