// GSL — the Graph Schema Language renderings (Section 3).
//
// The Graph Schema Language is the visual language for KG design diagrams
// obtained by applying the rendering function Gamma_SM to a super-schema.
// This module provides two textual realizations of Gamma_SM: an ASCII
// rendering for terminals and a Graphviz DOT rendering for actual diagrams
// (the closest runnable equivalent of the KGSE design tool's canvas).

#ifndef KGM_CORE_GSL_H_
#define KGM_CORE_GSL_H_

#include <string>

#include "core/superschema.h"

namespace kgm::core {

// Multi-line ASCII rendering: one block per node (attributes with their
// id/optional/intensional decorations), then edges with cardinalities,
// then generalizations.  Intensional constructs render with '~'.
std::string RenderGslAscii(const SuperSchema& schema);

// Graphviz DOT: nodes as record shapes, intensional constructs dashed,
// generalizations as thick arrows labeled (t|p)(d|o) for
// total/partial x disjoint/overlapping.
std::string RenderGslDot(const SuperSchema& schema);

}  // namespace kgm::core

#endif  // KGM_CORE_GSL_H_
