#include "core/models.h"

#include <algorithm>
#include <sstream>

namespace kgm::core {

bool ModelDef::Supports(std::string_view super_construct) const {
  return !ConstructFor(super_construct).empty();
}

std::string ModelDef::ConstructFor(std::string_view super_construct) const {
  for (const ModelConstruct& c : constructs) {
    if (c.specializes == super_construct) return c.name;
  }
  return "";
}

ModelDef PropertyGraphModel() {
  return ModelDef{
      "property_graph",
      {
          {"Node", "SM_Node"},
          {"Relationship", "SM_Edge"},
          {"Label", "SM_Type"},
          {"Property", "SM_Attribute"},
          {"UniquePropertyModifier", "SM_UniqueAttributeModifier"},
          // No construct specializes SM_Generalization: the Eliminate phase
          // must remove generalizations (Section 5.2).
      },
  };
}

ModelDef RelationalModel() {
  return ModelDef{
      "relational",
      {
          {"Predicate", "SM_Node"},
          {"ForeignKey", "SM_Edge"},
          {"Relation", "SM_Type"},
          {"Field", "SM_Attribute"},
          {"UniqueConstraint", "SM_UniqueAttributeModifier"},
          // Neither SM_Generalization nor many-to-many SM_Edges survive;
          // both are eliminated (Section 5.3).
      },
  };
}

ModelDef CsvModel() {
  return ModelDef{
      "csv",
      {
          {"File", "SM_Type"},
          {"Row", "SM_Node"},
          {"Column", "SM_Attribute"},
          // CSV supports no links or constraints; everything else is
          // eliminated.
      },
  };
}

const PgNodeType* PgSchema::FindNodeType(
    std::string_view primary_label) const {
  for (const PgNodeType& n : node_types) {
    if (n.primary_label() == primary_label) return &n;
  }
  return nullptr;
}

std::vector<const PgRelationshipType*> PgSchema::FindRelationships(
    std::string_view rel_name) const {
  std::vector<const PgRelationshipType*> out;
  for (const PgRelationshipType& r : relationship_types) {
    if (r.name == rel_name) out.push_back(&r);
  }
  return out;
}

void PgSchema::Canonicalize() {
  for (PgNodeType& n : node_types) {
    // Primary label stays first; ancestors sorted after it.
    if (n.labels.size() > 2) {
      std::sort(n.labels.begin() + 1, n.labels.end());
    }
    std::sort(n.properties.begin(), n.properties.end(),
              [](const PgPropertyDef& a, const PgPropertyDef& b) {
                return a.name < b.name;
              });
  }
  std::sort(node_types.begin(), node_types.end(),
            [](const PgNodeType& a, const PgNodeType& b) {
              return a.primary_label() < b.primary_label();
            });
  for (PgRelationshipType& r : relationship_types) {
    std::sort(r.properties.begin(), r.properties.end(),
              [](const PgPropertyDef& a, const PgPropertyDef& b) {
                return a.name < b.name;
              });
  }
  std::sort(relationship_types.begin(), relationship_types.end(),
            [](const PgRelationshipType& a, const PgRelationshipType& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
}

namespace {
std::string RenderProps(const std::vector<PgPropertyDef>& props) {
  std::string out;
  for (const PgPropertyDef& p : props) {
    out += "    ";
    out += p.intensional ? "~ " : "- ";
    out += p.name + ": " + AttrTypeName(p.type);
    if (p.required) out += " required";
    if (p.unique) out += " unique";
    out += "\n";
  }
  return out;
}
}  // namespace

std::string PgSchema::ToString() const {
  std::ostringstream os;
  os << "PG schema " << name << "\n";
  for (const PgNodeType& n : node_types) {
    os << "  (";
    for (size_t i = 0; i < n.labels.size(); ++i) {
      if (i > 0) os << ":";
      os << n.labels[i];
    }
    os << ")" << (n.intensional ? " [intensional]" : "") << "\n";
    os << RenderProps(n.properties);
  }
  for (const PgRelationshipType& r : relationship_types) {
    os << "  (" << r.from << ")-[" << r.name << "]->(" << r.to << ")"
       << (r.intensional ? " [intensional]" : "") << "\n";
    os << RenderProps(r.properties);
  }
  return os.str();
}

}  // namespace kgm::core
