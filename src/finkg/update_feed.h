// Streaming shareholding-update feed.
//
// Simulates the daily churn of the company register (Section 2.1: the
// Company KG is refreshed as shareholding records change) as a stream of
// EdbDelta batches against the relational encoding of an ownership graph:
// each batch deletes a sample of live edge rows and inserts new edges with
// fresh oids between the known endpoints.  Deterministic given the seed,
// so differential tests and benchmarks replay identical streams.

#ifndef KGM_FINKG_UPDATE_FEED_H_
#define KGM_FINKG_UPDATE_FEED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "vadalog/database.h"
#include "vadalog/incremental.h"

namespace kgm::finkg {

struct UpdateFeedConfig {
  // Encoded edge relation the feed mutates; rows are
  // (oid, from, to, props...) per metalog::EncodeGraph.
  std::string edge_pred = "OWNS";
  size_t batch_size = 32;
  // Fraction of each batch that deletes a live edge (the rest inserts).
  double delete_fraction = 0.3;
  uint64_t seed = 1;
};

class UpdateFeed {
 public:
  // Reads the current rows of `edges` (may be null/empty: the feed then
  // yields empty batches).  The relation is not retained; the feed tracks
  // liveness itself, assuming its batches are applied in order.
  UpdateFeed(const vadalog::Relation* edges, UpdateFeedConfig config);

  // The next update batch: `delete_fraction` of `batch_size` removals of
  // live edges, the rest insertions of new edges (fresh oids, endpoints
  // drawn from the observed node population, fresh percentage).
  vadalog::EdbDelta NextBatch();

  size_t live_edges() const { return live_.size(); }

 private:
  UpdateFeedConfig config_;
  kgm::Rng rng_;
  size_t arity_ = 0;                  // of the edge relation
  std::vector<vadalog::Tuple> live_;  // rows currently in the relation
  std::vector<Value> endpoints_;      // distinct node oids seen in rows
  int64_t next_oid_ = 0;              // above every oid seen at construction
};

}  // namespace kgm::finkg

#endif  // KGM_FINKG_UPDATE_FEED_H_
