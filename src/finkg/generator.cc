#include "finkg/generator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/check.h"
#include "base/rng.h"

namespace kgm::finkg {

namespace {

// Discrete power-law sample in [1, cap] by inverse transform.
size_t PowerLawSample(Rng& rng, double alpha, size_t cap) {
  double u = rng.NextDouble();
  if (u <= 0) u = 1e-12;
  double x = std::pow(u, -1.0 / (alpha - 1.0));
  size_t k = static_cast<size_t>(x);
  if (k < 1) k = 1;
  return std::min(k, cap);
}

const char* PickRight(Rng& rng) {
  double u = rng.NextDouble();
  if (u < 0.92) return "ownership";
  if (u < 0.96) return "bare ownership";
  return "usufruct";
}

}  // namespace

ShareholdingNetwork ShareholdingNetwork::Generate(
    const GeneratorConfig& config) {
  KGM_CHECK(config.num_companies > 1);
  ShareholdingNetwork net;
  net.config_ = config;
  Rng rng(config.seed);
  size_t companies = config.num_companies;
  size_t persons = config.num_persons;

  // Preferential-attachment pool: one entry per out-edge already assigned.
  std::vector<uint32_t> pa_pool;
  pa_pool.reserve(companies * 3);

  size_t num_funds = std::max<size_t>(
      1, static_cast<size_t>(persons * config.fund_fraction));
  auto pick_person = [&]() -> uint32_t {
    // Institutional holders: ids [companies, companies + num_funds).
    if (rng.NextBool(config.fund_pick_prob)) {
      return static_cast<uint32_t>(companies + rng.NextBelow(num_funds));
    }
    if (!pa_pool.empty() && !rng.NextBool(config.uniform_pick_prob)) {
      // Walk the pool until a person shows up (bounded tries).
      for (int tries = 0; tries < 8; ++tries) {
        uint32_t candidate = pa_pool[rng.NextBelow(pa_pool.size())];
        if (candidate >= companies) return candidate;
      }
    }
    return static_cast<uint32_t>(companies + rng.NextBelow(persons));
  };
  auto pick_company = [&](uint32_t target) -> uint32_t {
    bool backward = rng.NextBool(config.back_edge_prob);
    if (!backward && !pa_pool.empty() &&
        !rng.NextBool(config.uniform_pick_prob)) {
      for (int tries = 0; tries < 8; ++tries) {
        uint32_t candidate = pa_pool[rng.NextBelow(pa_pool.size())];
        if (candidate < companies && candidate > target) return candidate;
      }
    }
    if (backward && target > 0) {
      return static_cast<uint32_t>(rng.NextBelow(target));
    }
    // Forward uniform: an index above `target` keeps the company-company
    // subgraph mostly acyclic.
    if (target + 1 < companies) {
      return static_cast<uint32_t>(
          target + 1 + rng.NextBelow(companies - target - 1));
    }
    return static_cast<uint32_t>(rng.NextBelow(companies));
  };

  for (uint32_t c = 0; c < companies; ++c) {
    size_t k = PowerLawSample(rng, config.shareholders_alpha,
                              config.max_shareholders);
    // Shareholder weights: skewed, normalized to the recorded total.
    std::vector<double> weights(k);
    for (double& w : weights) {
      double u = rng.NextDouble();
      w = u * u + 0.01;
    }
    double sum = 0;
    for (double w : weights) sum += w;
    // Recorded capital share; headroom below 1.0 is reserved for the
    // cross-shareholding ring slivers added afterwards.
    double total = 0.65 + 0.3 * rng.NextDouble();
    bool majority = rng.NextBool(config.majority_prob);
    for (double& w : weights) w = w / sum * total;
    if (majority && k >= 1) {
      // Boost the first shareholder above 50%.
      double boost = 0.51 + 0.4 * rng.NextDouble();
      double rest = total - weights[0];
      double scale = rest > 0 ? (total - boost) / rest : 0;
      if (boost < total) {
        for (size_t i = 1; i < k; ++i) weights[i] *= scale;
        weights[0] = boost;
      }
    }
    std::vector<uint32_t> used;
    for (size_t i = 0; i < k; ++i) {
      bool corporate = rng.NextBool(config.company_shareholder_fraction);
      uint32_t holder = corporate ? pick_company(c) : pick_person();
      if (holder == c) continue;  // no literal self-ownership blocks
      if (std::find(used.begin(), used.end(), holder) != used.end()) {
        continue;  // one block per holder per company here; rights differ
      }
      used.push_back(holder);
      net.holdings_.push_back(Holding{holder, c, weights[i],
                                      PickRight(rng)});
      pa_pool.push_back(holder);
    }
  }

  // Cross-shareholding rings: arrange a small fraction of companies in
  // ownership cycles.  Each member holds a sliver of the next, fitting the
  // <= 1.0 per-company budget left by the `total` draw above.
  size_t in_rings = static_cast<size_t>(companies * config.ring_fraction);
  uint32_t next_member = 0;
  while (in_rings >= 3 && next_member + 3 <= companies) {
    size_t ring = 3 + rng.NextBelow(std::min(config.max_ring_size,
                                             in_rings) - 2);
    ring = std::min<size_t>(ring, companies - next_member);
    if (ring < 3) break;
    for (size_t i = 0; i < ring; ++i) {
      uint32_t holder = next_member + static_cast<uint32_t>(i);
      uint32_t held = next_member + static_cast<uint32_t>((i + 1) % ring);
      net.holdings_.push_back(
          Holding{holder, held, 0.02 + 0.03 * rng.NextDouble(),
                  "ownership"});
    }
    next_member += static_cast<uint32_t>(ring);
    in_rings -= ring;
  }
  return net;
}

std::string ShareholdingNetwork::CompanyName(uint32_t id) const {
  KGM_CHECK(IsCompany(id));
  return "company_" + std::to_string(id);
}

std::string ShareholdingNetwork::PersonSurname(uint32_t id) const {
  KGM_CHECK(!IsCompany(id));
  // A few thousand surnames: collisions create families.
  static const char* kStems[] = {"rossi",  "russo",   "ferrari", "esposito",
                                 "bianchi", "romano",  "colombo", "ricci",
                                 "marino", "greco",   "bruno",   "gallo"};
  size_t stem = id % (sizeof(kStems) / sizeof(kStems[0]));
  size_t variant = (id / 97) % 211;
  return std::string(kStems[stem]) + "_" + std::to_string(variant);
}

std::string ShareholdingNetwork::FiscalCode(uint32_t id) const {
  return (IsCompany(id) ? "C" : "P") + std::to_string(id);
}

analytics::Digraph ShareholdingNetwork::ToDigraph() const {
  analytics::Digraph g;
  g.num_nodes = num_entities();
  g.edges.reserve(holdings_.size());
  for (const Holding& h : holdings_) {
    g.edges.emplace_back(h.holder, h.company);
  }
  return g;
}

pg::PropertyGraph ShareholdingNetwork::ToInstanceGraph() const {
  pg::PropertyGraph g;
  std::vector<pg::NodeId> node_of(num_entities());
  for (uint32_t id = 0; id < num_entities(); ++id) {
    if (IsCompany(id)) {
      node_of[id] = g.AddNode(
          std::vector<std::string>{"Business", "LegalPerson", "Person"},
          {{"fiscalCode", Value(FiscalCode(id))},
           {"businessName", Value(CompanyName(id))},
           {"legalNature", Value("srl")},
           {"shareholdingCapital", Value(10000.0 + (id % 1000) * 500.0)}});
    } else {
      node_of[id] = g.AddNode(
          std::vector<std::string>{"PhysicalPerson", "Person"},
          {{"fiscalCode", Value(FiscalCode(id))},
           {"name", Value("person_" + std::to_string(id))},
           {"surname", Value(PersonSurname(id))},
           {"gender", Value(id % 2 == 0 ? "female" : "male")}});
    }
  }
  size_t share_counter = 0;
  for (const Holding& h : holdings_) {
    pg::NodeId share = g.AddNode(
        std::vector<std::string>{"Share"},
        {{"shareId", Value("S" + std::to_string(share_counter++))},
         {"percentage", Value(h.pct)}});
    g.AddEdge(node_of[h.holder], share, "HOLDS",
              {{"right", Value(h.right)}, {"percentage", Value(h.pct)}});
    g.AddEdge(share, node_of[h.company], "BELONGS_TO");
  }
  return g;
}

pg::PropertyGraph ShareholdingNetwork::ToOwnershipGraph(
    bool include_persons) const {
  pg::PropertyGraph g;
  std::vector<pg::NodeId> node_of(num_entities(), pg::kInvalidNode);
  for (uint32_t id = 0; id < num_entities(); ++id) {
    if (IsCompany(id)) {
      node_of[id] = g.AddNode(
          std::vector<std::string>{"Business", "LegalPerson", "Person"},
          {{"fiscalCode", Value(FiscalCode(id))},
           {"businessName", Value(CompanyName(id))},
           {"legalNature", Value("srl")},
           {"shareholdingCapital", Value(10000.0)}});
    } else if (include_persons) {
      node_of[id] = g.AddNode(
          std::vector<std::string>{"PhysicalPerson", "Person"},
          {{"fiscalCode", Value(FiscalCode(id))},
           {"name", Value("person_" + std::to_string(id))},
           {"surname", Value(PersonSurname(id))},
           {"gender", Value(id % 2 == 0 ? "female" : "male")}});
    }
  }
  // Aggregate ownership-right percentages per (holder, company).
  std::map<std::pair<uint32_t, uint32_t>, double> owns;
  for (const Holding& h : holdings_) {
    if (node_of[h.holder] == pg::kInvalidNode) continue;
    if (std::string_view(h.right) != "ownership") continue;
    owns[{h.holder, h.company}] += h.pct;
  }
  for (const auto& [pair, pct] : owns) {
    g.AddEdge(node_of[pair.first], node_of[pair.second], "OWNS",
              {{"percentage", Value(pct)}});
  }
  return g;
}

}  // namespace kgm::finkg
