// The Company Knowledge Graph of the Central Bank of Italy (Section 3.3).
//
// CompanyKgSchema() reproduces the GSL design of Figure 4: the
// Person/PhysicalPerson/LegalPerson/Business/NonBusiness/
// PublicListedCompany hierarchy, Share/StockShare, Place, Family,
// BusinessEvent, the extensional edges (HOLDS, BELONGS_TO, RESIDES,
// HAS_ROLE, REPRESENTS, PARTICIPATES) and the intensional ones (OWNS,
// CONTROLS, IS_RELATED_TO, BELONGS_TO_FAMILY, FAMILY_OWNS), plus the
// intensional numberOfStakeholders property on Business.
//
// The MetaLog programs for the intensional components (Sections 2.1, 4
// and 6) are provided as source-text constants.

#ifndef KGM_FINKG_COMPANY_KG_H_
#define KGM_FINKG_COMPANY_KG_H_

#include "core/superschema.h"

namespace kgm::finkg {

// The Figure 4 super-schema.  schema_oid defaults to 123 as in the
// paper's Example 5.1.
core::SuperSchema CompanyKgSchema(int64_t schema_oid = 123);

// --- intensional components (MetaLog source) ----------------------------------

// Example 4.1: company control.  A business x controls a business y if it
// directly owns more than 50% of y, or it controls companies that jointly
// (possibly with x itself) own more than 50% of y.
extern const char kControlProgram[];

// The derived OWNS edge: compact ownership rights from HOLDS/BELONGS_TO
// (Section 3.3), summing the percentages of all ownership-right shares a
// person holds in a business.
extern const char kOwnsProgram[];

// The intensional numberOfStakeholders property on Business.
extern const char kStakeholdersProgram[];

// Families: persons sharing a surname belong to one Family node;
// IS_RELATED_TO links the family members pairwise; FAMILY_OWNS links a
// family to businesses in which some member holds ownership.
extern const char kFamilyProgram[];

// Close links per ECB Guideline (EU) 2016/65 art. 138: two entities are
// closely linked when one owns, directly or indirectly, 20% or more of
// the other's capital, or a third party owns 20% or more of both.
// Ownership percentages compose multiplicatively along chains (integrated
// ownership [43]) and the program emits CLOSE_LINK edges.
extern const char kCloseLinksProgram[];

}  // namespace kgm::finkg

#endif  // KGM_FINKG_COMPANY_KG_H_
