#include "finkg/company_kg.h"

namespace kgm::finkg {

using core::Attr;
using core::AttrType;
using core::AttributeModifier;
using core::Cardinality;
using core::IdAttr;
using core::IntensionalAttr;
using core::OptAttr;
using core::SuperSchema;

SuperSchema CompanyKgSchema(int64_t schema_oid) {
  SuperSchema s("CompanyKG", schema_oid);

  // «I will introduce a SM_Generalization, where a Person generalizes and
  // collects the common features of PhysicalPerson and LegalPerson.»
  auto& person = s.AddNode("Person", {IdAttr("fiscalCode")});
  person.attributes[0].modifiers.push_back(AttributeModifier::Unique());

  s.AddNode("PhysicalPerson",
            {Attr("name"), Attr("surname"),
             Attr("gender"),
             OptAttr("birthDate", AttrType::kDate)});
  s.AddNode("LegalPerson",
            {Attr("businessName"), Attr("legalNature"),
             OptAttr("website")});
  s.AddGeneralization("Person", {"PhysicalPerson", "LegalPerson"},
                      /*total=*/true, /*disjoint=*/true);

  // «... specializing the LegalPerson into a Business SM_Node, gathering
  // shareholding capital features, and a NonBusiness SM_Node.»
  auto& business = s.AddNode(
      "Business", {Attr("shareholdingCapital", AttrType::kDouble),
                   IntensionalAttr("numberOfStakeholders", AttrType::kInt)});
  (void)business;
  s.AddNode("NonBusiness", {Attr("isGovernmental", AttrType::kBool)});
  s.AddGeneralization("LegalPerson", {"Business", "NonBusiness"},
                      /*total=*/true, /*disjoint=*/true);

  // «... one more specialization of Business: PublicListedCompany; the
  // generalization will not be total.»
  s.AddNode("PublicListedCompany",
            {Attr("stockExchange"), OptAttr("tickerSymbol")});
  s.AddGeneralization("Business", {"PublicListedCompany"},
                      /*total=*/false, /*disjoint=*/true);

  // «I will introduce a Share SM_Node ... and the HOLDS / BELONGS_TO
  // SM_Edges decoupling owner-owned SM_Nodes.»
  s.AddNode("Share", {IdAttr("shareId"),
                      Attr("percentage", AttrType::kDouble)});
  s.AddNode("StockShare", {Attr("numberOfStocks", AttrType::kInt)});
  s.AddGeneralization("Share", {"StockShare"}, /*total=*/false,
                      /*disjoint=*/true);

  // «I will introduce a Place SM_Node, modeling the address as an
  // identifier and storing each part of it as an SM_Attribute.»
  s.AddNode("Place", {IdAttr("street"), IdAttr("streetNumber"),
                      IdAttr("city"), IdAttr("postalCode"),
                      OptAttr("gpsCoordinates")});

  // Intensional concepts: families as virtual centers of interest.
  s.AddIntensionalNode("Family", {Attr("familyName")});

  // Company events (mergers & acquisitions, splits).
  s.AddNode("BusinessEvent", {IdAttr("eventId"), Attr("eventType"),
                              Attr("date", AttrType::kDate)});

  // --- extensional edges ------------------------------------------------------
  // A person holds shares; multiple persons may hold one share with
  // different rights.
  s.AddEdge("HOLDS", "Person", "Share", Cardinality::ZeroOrMore(),
            Cardinality::OneOrMore(),
            {Attr("right"), Attr("percentage", AttrType::kDouble)});
  // Every share belongs to exactly one business.
  s.AddEdge("BELONGS_TO", "Share", "Business", Cardinality::ExactlyOne(),
            Cardinality::ZeroOrMore());
  s.AddEdge("RESIDES", "Person", "Place", Cardinality::ZeroOrOne(),
            Cardinality::ZeroOrMore());
  // «a Person can have a role in NonBusinesses and Businesses, but not in
  // PhysicalPersons, so HAS_ROLE will be inbound to LegalPerson.»
  s.AddEdge("HAS_ROLE", "Person", "LegalPerson",
            Cardinality::ZeroOrMore(), Cardinality::ZeroOrMore(),
            {Attr("role")});
  s.AddEdge("REPRESENTS", "PhysicalPerson", "LegalPerson",
            Cardinality::ZeroOrMore(), Cardinality::ZeroOrMore());
  s.AddEdge("PARTICIPATES", "Business", "BusinessEvent",
            Cardinality::ZeroOrMore(), Cardinality::ZeroOrMore(),
            {Attr("role")});

  // --- intensional edges ------------------------------------------------------
  s.AddIntensionalEdge("OWNS", "Person", "Business",
                       {Attr("percentage", AttrType::kDouble)});
  s.AddIntensionalEdge("CONTROLS", "Person", "Business");
  s.AddIntensionalEdge("IS_RELATED_TO", "PhysicalPerson", "PhysicalPerson");
  s.AddIntensionalEdge("BELONGS_TO_FAMILY", "PhysicalPerson", "Family");
  s.AddIntensionalEdge("FAMILY_OWNS", "Family", "Business");
  s.AddIntensionalEdge("IO", "Person", "Business",
                       {Attr("weight", AttrType::kDouble)});
  s.AddIntensionalEdge("CLOSE_LINK", "Person", "Person");
  return s;
}

// Example 4.1, verbatim modulo ASCII syntax.  Linker Skolem functors make
// repeated materialization runs idempotent.
const char kControlProgram[] = R"(
  (x: Business) -> exists c = skCtrl(x, x) (x)[c: CONTROLS](x).
  (x: Business)[: CONTROLS](z: Business)
      [: OWNS; percentage: w](y: Business),
  v = msum(w, <z>), v > 0.5
    -> exists c = skCtrl(x, y) (x)[c: CONTROLS](y).
)";

// «I will introduce an intensional OWNS SM_Edge that compactly represents
// only property rights» — summing ownership-right share percentages.
const char kOwnsProgram[] = R"(
  (p: Person)[: HOLDS; right: "ownership", percentage: w](s: Share)
      [: BELONGS_TO](b: Business),
  v = sum(w, <s>)
    -> exists o = skOwns(p, b) (p)[o: OWNS; percentage: v](b).
)";

// «I will introduce as well a numberOfStakeholders intensional property
// into Business.»  Monotonic count: the last emitted value is the total.
const char kStakeholdersProgram[] = R"(
  (p: Person)[: HOLDS](s: Share)[: BELONGS_TO](b: Business),
  n = mcount(<p>)
    -> (b: Business; numberOfStakeholders: n).
)";

const char kFamilyProgram[] = R"(
  (p: PhysicalPerson; surname: s)
    -> exists f = skFamily(s)
       (p)[: BELONGS_TO_FAMILY](f: Family; familyName: s).
  (p: PhysicalPerson; surname: s), (q: PhysicalPerson; surname: s), p != q
    -> exists r = skRel(p, q) (p)[r: IS_RELATED_TO](q).
  % f stays a bare reference: BELONGS_TO_FAMILY only targets Family nodes,
  % and repeating the Family label atom would join two affected positions
  % on f, breaking wardedness.
  (p: PhysicalPerson)[: BELONGS_TO_FAMILY](f),
  (p)[: OWNS](b: Business)
    -> exists e = skFamOwns(f, b) (f)[e: FAMILY_OWNS](b).
)";

// Close links (ECB RIAD guideline): x and y are closely linked when one
// owns >= 20% of the other directly or indirectly, or a third party owns
// >= 20% of both.  Indirect ownership composes multiplicatively along
// chains (integrated ownership); chains below 1% are pruned, which also
// bounds the chase on cyclic shareholding structures.
const char kCloseLinksProgram[] = R"(
  (x: Person)[: OWNS; percentage: w](y: Business), w >= 0.01
    -> exists e = skIo(x, y, w) (x)[e: IO; weight: w](y).
  (x: Person)[: IO; weight: v1](z: Business)
      [: OWNS; percentage: w2](y: Business),
  v = v1 * w2, v >= 0.01
    -> exists e = skIo(x, y, v) (x)[e: IO; weight: v](y).
  (x: Person)[: IO; weight: v](y: Business), v >= 0.2, x != y
    -> exists c = skCl(x, y) (x)[c: CLOSE_LINK](y).
  (z: Person)[: IO; weight: v1](x: Business), v1 >= 0.2,
  (z)[: IO; weight: v2](y: Business), v2 >= 0.2, x != y
    -> exists c = skCl(x, y) (x)[c: CLOSE_LINK](y).
)";

}  // namespace kgm::finkg
