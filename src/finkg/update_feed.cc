#include "finkg/update_feed.h"

#include <algorithm>
#include <set>
#include <utility>

namespace kgm::finkg {

UpdateFeed::UpdateFeed(const vadalog::Relation* edges, UpdateFeedConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (edges == nullptr || edges->arity() < 3) return;
  arity_ = edges->arity();
  live_ = edges->tuples();
  std::set<Value> seen;
  for (const vadalog::Tuple& t : live_) {
    if (t[0].is_int()) next_oid_ = std::max(next_oid_, t[0].AsInt() + 1);
    seen.insert(t[1]);
    seen.insert(t[2]);
  }
  endpoints_.assign(seen.begin(), seen.end());
}

vadalog::EdbDelta UpdateFeed::NextBatch() {
  vadalog::EdbDelta delta;
  if (endpoints_.empty() || config_.batch_size == 0) return delta;

  size_t deletes = static_cast<size_t>(
      static_cast<double>(config_.batch_size) * config_.delete_fraction);
  deletes = std::min(deletes, live_.size());
  for (size_t i = 0; i < deletes; ++i) {
    const size_t pick = rng_.NextBelow(live_.size());
    delta.deletes[config_.edge_pred].push_back(std::move(live_[pick]));
    live_[pick] = std::move(live_.back());
    live_.pop_back();
  }

  const size_t inserts = config_.batch_size - deletes;
  for (size_t i = 0; i < inserts; ++i) {
    vadalog::Tuple t;
    t.push_back(Value(next_oid_++));
    t.push_back(endpoints_[rng_.NextBelow(endpoints_.size())]);
    t.push_back(endpoints_[rng_.NextBelow(endpoints_.size())]);
    // Remaining columns are properties: copy them from a random live row
    // (so e.g. a HOLDS `right` string stays a valid right) but refresh
    // numeric ones with a new ownership percentage in (0, 0.6].
    const vadalog::Tuple* donor =
        live_.empty() ? nullptr : &live_[rng_.NextBelow(live_.size())];
    for (size_t col = 3; col < arity_; ++col) {
      const Value* from_donor =
          donor != nullptr && col < donor->size() ? &(*donor)[col] : nullptr;
      if (from_donor == nullptr || from_donor->is_numeric()) {
        t.push_back(Value(0.01 + 0.59 * rng_.NextDouble()));
      } else {
        t.push_back(*from_donor);
      }
    }
    delta.inserts[config_.edge_pred].push_back(t);
    live_.push_back(std::move(t));
  }
  return delta;
}

}  // namespace kgm::finkg
