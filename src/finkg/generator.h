// Synthetic shareholding-network generator.
//
// Stands in for the confidential Italian Chambers of Commerce company
// register (Section 2.1).  The generator is tuned so that the statistics
// table of Section 2.1 reproduces in *shape* at any scale: scale-free
// in-degree (companies with thousands of shareholders) via a power-law
// shareholder-count distribution, heavy-tailed out-degree via preferential
// attachment (funds holding many companies), near-trivial SCCs with rare
// small cross-shareholding cycles, one giant WCC plus many small ones, and
// the ~3.1 vs ~1.8 in/out average-degree asymmetry (averages taken over
// incident nodes).
//
// Entities are companies [0, num_companies) and physical persons
// [num_companies, num_companies + num_persons).

#ifndef KGM_FINKG_GENERATOR_H_
#define KGM_FINKG_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/graph_stats.h"
#include "pg/property_graph.h"

namespace kgm::finkg {

struct GeneratorConfig {
  size_t num_companies = 4000;
  size_t num_persons = 6000;
  // Probability that a shareholder slot is filled by a company.
  double company_shareholder_fraction = 0.25;
  // Probability that a company-company edge may point "backwards",
  // enabling cross-shareholding cycles (kept rare, as in the real graph).
  double back_edge_prob = 0.02;
  // Power-law exponent of the shareholder-count distribution.
  double shareholders_alpha = 2.5;
  size_t max_shareholders = 5000;
  // Probability of picking a shareholder uniformly instead of by
  // preferential attachment.  Mostly-uniform person picks keep the average
  // out-degree below the average in-degree (the 1.78-vs-3.12 asymmetry of
  // Section 2.1) while the preferential remainder still produces hub
  // holders.
  double uniform_pick_prob = 0.8;
  // Probability that a company has a majority (>50%) shareholder.
  double majority_prob = 0.35;
  // A small set of institutional holders (funds, holding companies) that
  // receive a disproportionate share of the holder slots; they create the
  // out-degree hubs (the >5.1k max out-degree of Section 2.1).
  double fund_fraction = 0.004;   // fraction of persons that are funds
  double fund_pick_prob = 0.1;    // probability a slot goes to a fund
  // Cross-shareholding rings: a small fraction of companies is arranged in
  // ownership cycles (each member holds a sliver of the next), producing
  // the rare non-trivial SCCs of Section 2.1 (largest SCC 1.9k out of
  // 11.97M nodes).
  double ring_fraction = 0.003;   // fraction of companies in rings
  size_t max_ring_size = 64;
  uint64_t seed = 42;
};

// One share block: `holder` holds `pct` of `company` with a legal right.
struct Holding {
  uint32_t holder;
  uint32_t company;
  double pct;
  const char* right;  // "ownership", "bare ownership", "usufruct"
};

class ShareholdingNetwork {
 public:
  static ShareholdingNetwork Generate(const GeneratorConfig& config);

  const GeneratorConfig& config() const { return config_; }
  const std::vector<Holding>& holdings() const { return holdings_; }
  size_t num_entities() const {
    return config_.num_companies + config_.num_persons;
  }
  bool IsCompany(uint32_t id) const { return id < config_.num_companies; }

  // Deterministic synthetic register data.
  std::string CompanyName(uint32_t id) const;
  std::string PersonSurname(uint32_t id) const;
  std::string FiscalCode(uint32_t id) const;

  // The holder -> company digraph for the Section 2.1 statistics.
  analytics::Digraph ToDigraph() const;

  // The full extensional component per the translated Figure 6 schema:
  // PhysicalPerson/Business nodes (with accumulated Person/LegalPerson
  // labels), Share nodes, HOLDS and BELONGS_TO edges.
  pg::PropertyGraph ToInstanceGraph() const;

  // The compact ownership view used by the control benchmarks: Business
  // (and optionally Person) nodes with direct OWNS edges carrying the
  // aggregated percentage per (holder, company) pair.
  pg::PropertyGraph ToOwnershipGraph(bool include_persons = false) const;

 private:
  GeneratorConfig config_;
  std::vector<Holding> holdings_;
};

}  // namespace kgm::finkg

#endif  // KGM_FINKG_GENERATOR_H_
