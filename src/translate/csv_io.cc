#include "translate/csv_io.h"

#include <charconv>
#include <cstdio>
#include <map>

#include "base/strings.h"
#include "metalog/catalog.h"  // kOidProperty
#include "translate/native.h"

namespace kgm::translate {

namespace {

using core::AttrType;
using core::AttributeDef;
using core::SuperSchema;

std::string CsvValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return "";
    case ValueKind::kBool:
      return v.AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(v.AsInt());
    case ValueKind::kDouble: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", v.AsDoubleExact());
      return buffer;
    }
    case ValueKind::kString:
      return v.AsString();
    default:
      return v.ToString();
  }
}

Result<Value> ParseCsvValue(const std::string& field, AttrType type) {
  if (field.empty()) return Value();
  const char* first = field.data();
  const char* last = field.data() + field.size();
  switch (type) {
    case AttrType::kString:
    case AttrType::kDate:
      return Value(field);
    case AttrType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc::result_out_of_range) {
        return InvalidArgument("integer out of range: " + field);
      }
      if (ec != std::errc() || ptr != last) {
        return InvalidArgument("bad integer: " + field);
      }
      return Value(v);
    }
    case AttrType::kDouble: {
      double v = 0;
      auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc::result_out_of_range) {
        return InvalidArgument("double out of range: " + field);
      }
      if (ec != std::errc() || ptr != last) {
        return InvalidArgument("bad double: " + field);
      }
      return Value(v);
    }
    case AttrType::kBool:
      if (field == "true") return Value(true);
      if (field == "false") return Value(false);
      return InvalidArgument("bad boolean: " + field);
  }
  return Value(field);
}

size_t Depth(const SuperSchema& schema, const std::string& node) {
  return schema.AncestorsOf(node).size();
}

const core::NodeDef* PrimaryType(const SuperSchema& schema,
                                 const pg::Node& node) {
  const core::NodeDef* best = nullptr;
  for (const std::string& label : node.labels) {
    const core::NodeDef* def = schema.FindNode(label);
    if (def != nullptr &&
        (best == nullptr ||
         Depth(schema, def->name) > Depth(schema, best->name))) {
      best = def;
    }
  }
  return best;
}

// The node's identity fields: effective id values, or the surrogate OID.
std::vector<std::string> NodeKeyFields(const SuperSchema& schema,
                                       const pg::PropertyGraph& data,
                                       pg::NodeId id,
                                       const std::string& type) {
  std::vector<std::string> out;
  auto ids = schema.EffectiveIdAttributes(type);
  if (ids.empty()) {
    const Value* oid = data.NodeProperty(id, metalog::kOidProperty);
    out.push_back(oid != nullptr ? CsvValue(*oid)
                                 : "n" + std::to_string(id));
    return out;
  }
  for (const AttributeDef& attr : ids) {
    const Value* v = data.NodeProperty(id, attr.name);
    out.push_back(v == nullptr ? "" : CsvValue(*v));
  }
  return out;
}

std::vector<std::string> KeyColumnNames(const SuperSchema& schema,
                                        const std::string& type,
                                        const std::string& prefix) {
  std::vector<std::string> out;
  auto ids = schema.EffectiveIdAttributes(type);
  if (ids.empty()) {
    out.push_back(prefix + ToSnakeCase(type) + "_oid");
    return out;
  }
  for (const AttributeDef& attr : ids) {
    out.push_back(prefix + ToSnakeCase(attr.name));
  }
  return out;
}

}  // namespace

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Result<std::vector<std::string>> CsvSplitLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (quoted) return InvalidArgument("unterminated quote in CSV line");
  out.push_back(std::move(field));
  return out;
}

Result<std::vector<std::string>> CsvSplitRecords(const std::string& doc) {
  std::vector<std::string> out;
  std::string record;
  bool quoted = false;
  for (size_t i = 0; i < doc.size(); ++i) {
    char c = doc[i];
    if (quoted) {
      // Inside quotes only a '"' changes state; "" stays inside (the
      // escape is resolved by CsvSplitLine, which re-scans the record).
      if (c == '"' && !(i + 1 < doc.size() && doc[i + 1] == '"')) {
        quoted = false;
      } else if (c == '"') {
        record += c;
        ++i;
      }
      record += c;
      continue;
    }
    if (c == '"') {
      quoted = true;
      record += c;
    } else if (c == '\n') {
      if (!record.empty() && record.back() == '\r') record.pop_back();
      out.push_back(std::move(record));
      record.clear();
    } else {
      record += c;
    }
  }
  if (quoted) return InvalidArgument("unterminated quote in CSV document");
  if (!record.empty()) {
    if (record.back() == '\r') record.pop_back();
    out.push_back(std::move(record));
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

Result<std::map<std::string, std::string>> ExportCsv(
    const SuperSchema& schema, const pg::PropertyGraph& data) {
  KGM_RETURN_IF_ERROR(schema.Validate());
  std::map<std::string, std::string> files;

  // Node files: rows are the nodes whose primary (deepest) type matches.
  for (const core::NodeDef& node : schema.nodes()) {
    std::vector<std::string> header =
        KeyColumnNames(schema, node.name, "");
    auto effective = schema.EffectiveAttributes(node.name);
    std::vector<const AttributeDef*> non_id;
    for (const AttributeDef& a : effective) {
      if (!a.is_id) non_id.push_back(&a);
    }
    for (const AttributeDef* a : non_id) {
      header.push_back(ToSnakeCase(a->name));
    }
    std::string doc = Join(header, ",") + "\n";
    for (pg::NodeId id = 0; id < data.node_capacity(); ++id) {
      if (!data.HasNode(id)) continue;
      const core::NodeDef* primary = PrimaryType(schema, data.node(id));
      if (primary == nullptr || primary->name != node.name) continue;
      std::vector<std::string> row =
          NodeKeyFields(schema, data, id, node.name);
      for (const AttributeDef* a : non_id) {
        const Value* v = data.NodeProperty(id, a->name);
        row.push_back(v == nullptr ? "" : CsvValue(*v));
      }
      for (std::string& field : row) field = CsvEscape(field);
      doc += Join(row, ",") + "\n";
    }
    files[ToSnakeCase(node.name) + ".csv"] = std::move(doc);
  }

  // Edge files: endpoint keys plus attributes.
  for (const core::EdgeDef& edge : schema.edges()) {
    std::vector<std::string> header =
        KeyColumnNames(schema, edge.from, "from_");
    for (std::string& col :
         KeyColumnNames(schema, edge.to, "to_")) {
      header.push_back(std::move(col));
    }
    for (const AttributeDef& a : edge.attributes) {
      header.push_back(ToSnakeCase(a.name));
    }
    std::string doc = Join(header, ",") + "\n";
    for (pg::EdgeId e : data.EdgesWithLabel(edge.name)) {
      const pg::Edge& instance = data.edge(e);
      std::vector<std::string> row =
          NodeKeyFields(schema, data, instance.from, edge.from);
      for (std::string& field :
           NodeKeyFields(schema, data, instance.to, edge.to)) {
        row.push_back(std::move(field));
      }
      for (const AttributeDef& a : edge.attributes) {
        auto it = instance.props.find(a.name);
        row.push_back(it == instance.props.end() ? ""
                                                 : CsvValue(it->second));
      }
      for (std::string& field : row) field = CsvEscape(field);
      doc += Join(row, ",") + "\n";
    }
    files[ToSnakeCase(edge.name) + ".csv"] = std::move(doc);
  }
  return files;
}

Result<pg::PropertyGraph> ImportCsv(
    const SuperSchema& schema,
    const std::map<std::string, std::string>& files) {
  KGM_RETURN_IF_ERROR(schema.Validate());
  pg::PropertyGraph graph;
  std::map<std::string, pg::NodeId> entity_of;  // root + keys -> node

  auto entity_key = [&schema](const std::string& type,
                              const std::vector<std::string>& key) {
    std::string out = schema.RootOf(type);
    for (const std::string& k : key) {
      out += '\x1f';
      out += k;
    }
    return out;
  };

  // Nodes.
  for (const core::NodeDef& node : schema.nodes()) {
    auto it = files.find(ToSnakeCase(node.name) + ".csv");
    if (it == files.end()) continue;
    KGM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                         CsvSplitRecords(it->second));
    if (lines.empty()) continue;
    KGM_ASSIGN_OR_RETURN(std::vector<std::string> header,
                         CsvSplitLine(lines[0]));
    auto ids = schema.EffectiveIdAttributes(node.name);
    size_t key_width = ids.empty() ? 1 : ids.size();
    auto effective = schema.EffectiveAttributes(node.name);
    std::vector<std::string> labels{node.name};
    for (const std::string& a : schema.AncestorsOf(node.name)) {
      labels.push_back(a);
    }
    for (size_t li = 1; li < lines.size(); ++li) {
      KGM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           CsvSplitLine(lines[li]));
      if (fields.size() != header.size()) {
        return InvalidArgument(it->first + " line " + std::to_string(li) +
                               ": field count mismatch");
      }
      pg::NodeId id = graph.AddNode(labels);
      std::vector<std::string> key(fields.begin(),
                                   fields.begin() + key_width);
      if (ids.empty()) {
        graph.SetNodeProperty(id, metalog::kOidProperty,
                              Value(fields[0]));
      } else {
        for (size_t i = 0; i < ids.size(); ++i) {
          KGM_ASSIGN_OR_RETURN(Value v,
                               ParseCsvValue(fields[i], ids[i].type));
          if (!v.is_null()) graph.SetNodeProperty(id, ids[i].name, v);
        }
      }
      // Remaining columns by header name.
      for (size_t col = key_width; col < header.size(); ++col) {
        for (const AttributeDef& a : effective) {
          if (ToSnakeCase(a.name) != header[col]) continue;
          KGM_ASSIGN_OR_RETURN(Value v, ParseCsvValue(fields[col], a.type));
          if (!v.is_null()) graph.SetNodeProperty(id, a.name, v);
          break;
        }
      }
      auto [pos, inserted] =
          entity_of.emplace(entity_key(node.name, key), id);
      if (!inserted) {
        return InvalidArgument(it->first + ": duplicate key at line " +
                               std::to_string(li));
      }
    }
  }

  // Edges.
  for (const core::EdgeDef& edge : schema.edges()) {
    auto it = files.find(ToSnakeCase(edge.name) + ".csv");
    if (it == files.end()) continue;
    KGM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                         CsvSplitRecords(it->second));
    if (lines.empty()) continue;
    auto from_ids = schema.EffectiveIdAttributes(edge.from);
    auto to_ids = schema.EffectiveIdAttributes(edge.to);
    size_t from_width = from_ids.empty() ? 1 : from_ids.size();
    size_t to_width = to_ids.empty() ? 1 : to_ids.size();
    for (size_t li = 1; li < lines.size(); ++li) {
      KGM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           CsvSplitLine(lines[li]));
      if (fields.size() < from_width + to_width) {
        return InvalidArgument(it->first + " line " + std::to_string(li) +
                               ": too few fields");
      }
      std::vector<std::string> from_key(fields.begin(),
                                        fields.begin() + from_width);
      std::vector<std::string> to_key(
          fields.begin() + from_width,
          fields.begin() + from_width + to_width);
      auto from_it = entity_of.find(entity_key(edge.from, from_key));
      auto to_it = entity_of.find(entity_key(edge.to, to_key));
      if (from_it == entity_of.end() || to_it == entity_of.end()) {
        return FailedPrecondition(it->first + " line " +
                                  std::to_string(li) +
                                  ": dangling endpoint reference");
      }
      pg::PropertyMap props;
      size_t col = from_width + to_width;
      for (const AttributeDef& a : edge.attributes) {
        if (col >= fields.size()) break;
        KGM_ASSIGN_OR_RETURN(Value v, ParseCsvValue(fields[col], a.type));
        if (!v.is_null()) props[a.name] = v;
        ++col;
      }
      graph.AddEdge(from_it->second, to_it->second, edge.name,
                    std::move(props));
    }
  }
  return graph;
}

}  // namespace kgm::translate
