// SSST — the Super-Schema to Schema Translator (Algorithm 1).
//
// Given a super-schema S and a target model M, SSST selects candidate
// mappings from the repository, applies the chosen implementation strategy,
// compiles the MetaLog mapping to Vadalog through MTV, and produces the
// schema S' of M (plus, for relational targets, enforceable DDL).
//
// Two execution paths are provided: kDeclarative runs the published
// MetaLog Eliminate/Copy programs on the dictionary graph (the paper's
// mechanism); kNative runs the equivalent procedural translator.  The two
// must agree — tests and the E10 ablation bench rely on it.

#ifndef KGM_TRANSLATE_SSST_H_
#define KGM_TRANSLATE_SSST_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/models.h"
#include "core/superschema.h"
#include "rel/relational.h"
#include "translate/native.h"
#include "translate/pg_mapping.h"

namespace kgm::translate {

enum class TranslationPath {
  kDeclarative,  // MetaLog mappings over the dictionary (Section 5)
  kNative,       // procedural oracle
};

struct SsstOptions {
  TranslationPath path = TranslationPath::kDeclarative;
  PgGeneralizationStrategy pg_strategy =
      PgGeneralizationStrategy::kTypeAccumulation;
};

// Super-schema -> PG model schema (Figure 6).  The declarative path only
// implements the type-accumulation strategy; the child-parent-edges
// strategy falls back to the native translator.
Result<core::PgSchema> TranslateToPropertyGraph(
    const core::SuperSchema& schema, const SsstOptions& options = {});

// Super-schema -> relational schema (Figure 8).  Currently native-only;
// the declarative relational mapping is listed as an extension in
// DESIGN.md.
Result<std::vector<rel::TableSchema>> TranslateToRelational(
    const core::SuperSchema& schema, const SsstOptions& options = {});

// Super-schema -> CSV files.
std::vector<CsvFileSchema> TranslateToCsv(const core::SuperSchema& schema);

}  // namespace kgm::translate

#endif  // KGM_TRANSLATE_SSST_H_
