// The declarative super-schema -> PG-model mapping (Section 5.2).
//
// The mapping M(PG) is a pair of MetaLog programs (Eliminate, Copy)
// operating on the graph dictionary:
//
//   * Eliminate rewrites the super-schema S (schemaOID kSrcOid) into the
//     intermediate super-schema S- (schemaOID kIntermediateOid):
//     CopyNodes, CopyEdges, CopyAttributes and DeleteGeneralizations(1)-(4)
//     — types accumulate on descendants, attributes and edges are
//     inherited downwards, generalizations disappear (Examples 5.1, 5.2).
//   * Copy downcasts S- into the PG schema S' (schemaOID kTargetOid),
//     renaming super-constructs into the PG model constructs of Figure 5:
//     StoreNodes, StoreLabels, StoreRelationships, StoreProperties,
//     StoreUniquePropertyModifiers.
//
// Both programs run on the Vadalog engine via MTV, exactly as SSST
// prescribes (Algorithm 1, lines 3-5).  Linker Skolem functors keep the
// pieces produced by different rules glued to the same target OIDs.

#ifndef KGM_TRANSLATE_PG_MAPPING_H_
#define KGM_TRANSLATE_PG_MAPPING_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "core/models.h"
#include "core/superschema.h"
#include "pg/property_graph.h"

namespace kgm::translate {

// Fixed schema OIDs used inside the private translation dictionary.
inline constexpr int64_t kSrcOid = 1;
inline constexpr int64_t kIntermediateOid = 2;
inline constexpr int64_t kTargetOid = 3;

// A (model, strategy) entry of the mapping repository (Algorithm 1,
// line 1: "select candidate mappings to M from REPO").
struct Mapping {
  std::string model;      // e.g. "property_graph"
  std::string strategy;   // e.g. "type_accumulation"
  std::string eliminate;  // MetaLog source
  std::string copy;       // MetaLog source
};

// The built-in mapping repository.
const std::vector<Mapping>& MappingRepository();

// The mapping for (model, strategy); nullptr when absent.
const Mapping* FindMapping(const std::string& model,
                           const std::string& strategy);

// Phase timings of one declarative translation.
struct DeclarativeStats {
  double eliminate_seconds = 0;
  double copy_seconds = 0;
  size_t eliminate_rules = 0;  // Vadalog rules after MTV
  size_t copy_rules = 0;
};

// Runs the full declarative pipeline: store `schema` in a fresh dictionary,
// apply Eliminate then Copy via the MetaLog runner, and parse the resulting
// PG-construct subgraph into a PgSchema.
Result<core::PgSchema> TranslateToPgDeclarative(
    const core::SuperSchema& schema, DeclarativeStats* stats = nullptr);

// Parses the PG-model constructs with `schema_oid` out of a dictionary
// produced by the Copy phase.
Result<core::PgSchema> ParsePgSchemaFromDictionary(
    const pg::PropertyGraph& dict, int64_t schema_oid,
    const std::string& name);

}  // namespace kgm::translate

#endif  // KGM_TRANSLATE_PG_MAPPING_H_
