#include "translate/enforce.h"

#include <sstream>

#include "base/strings.h"

namespace kgm::translate {

std::string RenderCypherConstraints(const core::PgSchema& schema) {
  std::ostringstream os;
  for (const core::PgNodeType& n : schema.node_types) {
    const std::string& label = n.primary_label();
    for (const core::PgPropertyDef& p : n.properties) {
      if (p.unique) {
        os << "CREATE CONSTRAINT " << ToSnakeCase(label) << "_"
           << ToSnakeCase(p.name) << "_unique FOR (n:" << label
           << ") REQUIRE n." << p.name << " IS UNIQUE;\n";
      }
      if (p.required) {
        os << "CREATE CONSTRAINT " << ToSnakeCase(label) << "_"
           << ToSnakeCase(p.name) << "_exists FOR (n:" << label
           << ") REQUIRE n." << p.name << " IS NOT NULL;\n";
      }
    }
  }
  return os.str();
}

namespace {
const char* XsdType(core::AttrType t) {
  switch (t) {
    case core::AttrType::kString:
      return "xsd:string";
    case core::AttrType::kInt:
      return "xsd:integer";
    case core::AttrType::kDouble:
      return "xsd:double";
    case core::AttrType::kBool:
      return "xsd:boolean";
    case core::AttrType::kDate:
      return "xsd:date";
  }
  return "xsd:string";
}
}  // namespace

std::string RenderRdfs(const core::SuperSchema& schema,
                       const std::string& base_iri) {
  std::ostringstream os;
  os << "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
     << "@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .\n"
     << "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
     << "@prefix : <" << base_iri << "> .\n\n";
  for (const core::NodeDef& n : schema.nodes()) {
    os << ":" << n.name << " rdf:type rdfs:Class .\n";
    for (const core::AttributeDef& a : n.attributes) {
      os << ":" << a.name << " rdf:type rdf:Property ;\n"
         << "    rdfs:domain :" << n.name << " ;\n"
         << "    rdfs:range " << XsdType(a.type) << " .\n";
    }
  }
  for (const core::GeneralizationDef& g : schema.generalizations()) {
    for (const std::string& child : g.children) {
      os << ":" << child << " rdfs:subClassOf :" << g.parent << " .\n";
    }
  }
  for (const core::EdgeDef& e : schema.edges()) {
    os << ":" << e.name << " rdf:type rdf:Property ;\n"
       << "    rdfs:domain :" << e.from << " ;\n"
       << "    rdfs:range :" << e.to << " .\n";
  }
  return os.str();
}

std::string RenderCsvHeaders(const std::vector<CsvFileSchema>& files) {
  std::ostringstream os;
  for (const CsvFileSchema& f : files) {
    os << f.file_name << ": " << Join(f.columns, ",") << "\n";
  }
  return os.str();
}

}  // namespace kgm::translate
