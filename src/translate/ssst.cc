#include "translate/ssst.h"

namespace kgm::translate {

Result<core::PgSchema> TranslateToPropertyGraph(
    const core::SuperSchema& schema, const SsstOptions& options) {
  if (options.path == TranslationPath::kDeclarative &&
      options.pg_strategy == PgGeneralizationStrategy::kTypeAccumulation) {
    return TranslateToPgDeclarative(schema);
  }
  return TranslateToPgNative(schema, options.pg_strategy);
}

Result<std::vector<rel::TableSchema>> TranslateToRelational(
    const core::SuperSchema& schema, const SsstOptions& options) {
  (void)options;  // single strategy implemented; see header
  return TranslateToRelationalNative(schema);
}

std::vector<CsvFileSchema> TranslateToCsv(const core::SuperSchema& schema) {
  return TranslateToCsvNative(schema);
}

}  // namespace kgm::translate
