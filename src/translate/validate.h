// Instance validation against a translated PG schema.
//
// Graph databases are schema-less; the paper (Sections 2.2 and 5) notes
// that schemas "can be enforced with ad-hoc methodologies" citing the
// schema-validation literature.  This module is that methodology: it
// checks a data property graph against a PgSchema produced by SSST —
// label sets, required/typed/unique properties, undeclared properties,
// endpoint labels of relationships, and the cardinality bounds recorded in
// the super-schema.

#ifndef KGM_TRANSLATE_VALIDATE_H_
#define KGM_TRANSLATE_VALIDATE_H_

#include <string>
#include <vector>

#include "core/models.h"
#include "core/superschema.h"
#include "pg/property_graph.h"

namespace kgm::translate {

struct Violation {
  enum class Kind {
    kUnknownLabel,         // node label not in the schema
    kMissingLabel,         // node lacks an inherited (accumulated) label
    kMissingRequired,      // required property absent
    kWrongType,            // property value has the wrong type
    kUndeclaredProperty,   // property not declared for the label
    kUniqueViolated,       // two nodes share a unique property value
    kUnknownRelationship,  // edge label not in the schema
    kBadEndpoint,          // edge endpoints don't carry the expected labels
    kCardinality,          // edge count violates a (min,max) bound
    kEnumViolated,         // value outside an SM_EnumAttributeModifier list
    kRangeViolated,        // value outside an SM_RangeAttributeModifier
  };
  Kind kind;
  std::string message;  // human-readable, names the offending element
};

const char* ViolationKindName(Violation::Kind kind);

struct ValidationReport {
  std::vector<Violation> violations;
  size_t checked_nodes = 0;
  size_t checked_edges = 0;

  bool ok() const { return violations.empty(); }
  // Count of violations of one kind.
  size_t Count(Violation::Kind kind) const;
  std::string ToString() const;
};

struct ValidateOptions {
  // Stop collecting after this many violations (0 = unlimited).
  size_t max_violations = 1000;
  // Skip intensional constructs: before materialization, derived labels,
  // edges and properties are legitimately absent.
  bool ignore_intensional = true;
};

// Validates `data` against the PG schema and the cardinalities of the
// originating super-schema.
ValidationReport ValidateInstance(const core::SuperSchema& schema,
                                  const core::PgSchema& pg_schema,
                                  const pg::PropertyGraph& data,
                                  const ValidateOptions& options = {});

}  // namespace kgm::translate

#endif  // KGM_TRANSLATE_VALIDATE_H_
