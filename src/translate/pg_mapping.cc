#include "translate/pg_mapping.h"

#include <chrono>
#include <map>
#include <set>

#include "core/dictionary.h"
#include "metalog/runner.h"

namespace kgm::translate {

namespace {

// --- the Eliminate program (Section 5.2, Examples 5.1/5.2) -------------------
//
// schemaOID 1 = S (source super-schema), 2 = S- (intermediate).
// The reflexive star over ([: SM_CHILD]- / [: SM_PARENT]) walks from a node
// to itself and to each of its ancestors, so CopyAttributes and
// DeleteGeneralizations(1)/(2) collapse into single rules.
const char kPgEliminate[] = R"(
% Eliminate.CopyNodes
(n: SM_Node; schemaOID: 1, isIntensional: i)
  -> exists x = skN(n)
     (x: SM_Node; schemaOID: 2, isIntensional: i).

% Eliminate.DeleteGeneralizations(1): the node keeps its own type...
(n: SM_Node; schemaOID: 1)[: SM_HAS_NODE_TYPE](t: SM_Type; name: w)
  -> exists x = skN(n), exists h = skHNT(n, t), exists l = skTy(n, t)
     (x: SM_Node; schemaOID: 2)
       [h: SM_HAS_NODE_TYPE; isPrimary: true]
     (l: SM_Type; schemaOID: 2, name: w).

% ... and accumulates the types of every proper ancestor.
(n: SM_Node; schemaOID: 1)
    ([: SM_CHILD]- / [: SM_PARENT])+
    (a: SM_Node)[: SM_HAS_NODE_TYPE](t: SM_Type; name: w)
  -> exists x = skN(n), exists h = skHNT(n, t), exists l = skTy(n, t)
     (x: SM_Node; schemaOID: 2)
       [h: SM_HAS_NODE_TYPE; isPrimary: false]
     (l: SM_Type; schemaOID: 2, name: w).

% Eliminate.CopyAttributes + DeleteGeneralizations(2): own and inherited
% attributes (the star is reflexive: a = n covers CopyAttributes).
(n: SM_Node; schemaOID: 1)
    ([: SM_CHILD]- / [: SM_PARENT])*
    (a: SM_Node)[: SM_HAS_NODE_PROPERTY]
    (p: SM_Attribute; name: m, dataType: d, isId: ii, isOpt: io,
     isIntensional: iz)
  -> exists x = skN(n), exists h = skHNP(n, p), exists q = skAt(n, p)
     (x: SM_Node; schemaOID: 2)[h: SM_HAS_NODE_PROPERTY]
     (q: SM_Attribute; schemaOID: 2, name: m, dataType: d, isId: ii,
      isOpt: io, isIntensional: iz).

% Attribute modifiers follow their attribute.
(n: SM_Node; schemaOID: 1)
    ([: SM_CHILD]- / [: SM_PARENT])*
    (a: SM_Node)[: SM_HAS_NODE_PROPERTY](p: SM_Attribute)
    [: SM_HAS_MODIFIER]
    (mo: SM_AttributeModifier; kind: k, enumValues: ev, rangeMin: rlo,
     rangeMax: rhi)
  -> exists q = skAt(n, p), exists h = skHM(n, mo), exists m2 = skMod(n, mo)
     (q: SM_Attribute; schemaOID: 2)[h: SM_HAS_MODIFIER]
     (m2: SM_AttributeModifier; schemaOID: 2, kind: k, enumValues: ev,
      rangeMin: rlo, rangeMax: rhi).

% Eliminate.CopyEdges + DeleteGeneralizations(3)/(4): every edge is
% replicated between each descendant-or-self pair of its endpoints
% (Example 5.2 generalized to both directions).
(e: SM_Edge; schemaOID: 1, isIntensional: i, isOpt1: o1, isFun1: f1,
   isOpt2: o2, isFun2: f2)
    [: SM_HAS_EDGE_TYPE](t: SM_Type; name: w),
(e)[: SM_FROM](nf: SM_Node),
(e)[: SM_TO](nt: SM_Node),
(ef: SM_Node; schemaOID: 1) ([: SM_CHILD]- / [: SM_PARENT])* (nf),
(et: SM_Node; schemaOID: 1) ([: SM_CHILD]- / [: SM_PARENT])* (nt)
  -> exists e2 = skE(e, ef, et), exists ht = skEHT(e, ef, et),
     exists t2 = skETy(e, ef, et), exists hf = skEF(e, ef, et),
     exists h2 = skETo(e, ef, et), exists xf = skN(ef), exists xt = skN(et)
     (e2: SM_Edge; schemaOID: 2, isIntensional: i, isOpt1: o1, isFun1: f1,
        isOpt2: o2, isFun2: f2)
       [ht: SM_HAS_EDGE_TYPE](t2: SM_Type; schemaOID: 2, name: w),
     (e2)[hf: SM_FROM](xf: SM_Node; schemaOID: 2),
     (e2)[h2: SM_TO](xt: SM_Node; schemaOID: 2).

% Edge attributes follow each replica.
(e: SM_Edge; schemaOID: 1)
    [: SM_HAS_EDGE_PROPERTY]
    (p: SM_Attribute; name: m, dataType: d, isId: ii, isOpt: io,
     isIntensional: iz),
(e)[: SM_FROM](nf: SM_Node),
(e)[: SM_TO](nt: SM_Node),
(ef: SM_Node; schemaOID: 1) ([: SM_CHILD]- / [: SM_PARENT])* (nf),
(et: SM_Node; schemaOID: 1) ([: SM_CHILD]- / [: SM_PARENT])* (nt)
  -> exists e2 = skE(e, ef, et), exists h = skEHP(e, ef, et, p),
     exists q = skEAt(e, ef, et, p)
     (e2: SM_Edge; schemaOID: 2)[h: SM_HAS_EDGE_PROPERTY]
     (q: SM_Attribute; schemaOID: 2, name: m, dataType: d, isId: ii,
      isOpt: io, isIntensional: iz).
)";

// --- the Copy program (Section 5.2, Copy.Store*) ------------------------------
//
// schemaOID 2 = S-, 3 = S' (instance of the PG model of Figure 5).
const char kPgCopy[] = R"(
% Copy.StoreNodes
(n: SM_Node; schemaOID: 2, isIntensional: i)
  -> exists x = skPN(n) (x: Node; schemaOID: 3, isIntensional: i).

% Copy.StoreLabels: accumulated SM_Types become Labels (shared by name).
(n: SM_Node; schemaOID: 2)
    [: SM_HAS_NODE_TYPE; isPrimary: pr](t: SM_Type; name: w)
  -> exists x = skPN(n), exists l = skPL(w), exists h = skPHL(n, t)
     (x: Node; schemaOID: 3)[h: HAS_LABEL; isPrimary: pr]
     (l: Label; schemaOID: 3, name: w).

% Copy.StoreRelationships
(e: SM_Edge; schemaOID: 2, isIntensional: i)
    [: SM_HAS_EDGE_TYPE](t: SM_Type; name: w),
(e)[: SM_FROM](nf: SM_Node),
(e)[: SM_TO](nt: SM_Node)
  -> exists r = skPR(e), exists hf = skPRF(e), exists h2 = skPRT(e),
     exists xf = skPN(nf), exists xt = skPN(nt)
     (r: Relationship; schemaOID: 3, name: w, isIntensional: i),
     (r)[hf: R_FROM](xf: Node; schemaOID: 3),
     (r)[h2: R_TO](xt: Node; schemaOID: 3).

% Copy.StoreProperties (node side)
(n: SM_Node; schemaOID: 2)
    [: SM_HAS_NODE_PROPERTY]
    (a: SM_Attribute; name: m, dataType: d, isId: ii, isOpt: io,
     isIntensional: iz)
  -> exists x = skPN(n), exists p = skPP(a), exists h = skPHP(n, a)
     (x: Node; schemaOID: 3)[h: HAS_PROPERTY]
     (p: Property; schemaOID: 3, name: m, dataType: d, isId: ii, isOpt: io,
      isIntensional: iz).

% Copy.StoreProperties (relationship side)
(e: SM_Edge; schemaOID: 2)
    [: SM_HAS_EDGE_PROPERTY]
    (a: SM_Attribute; name: m, dataType: d, isId: ii, isOpt: io,
     isIntensional: iz)
  -> exists r = skPR(e), exists p = skPP(a), exists h = skPHPE(e, a)
     (r: Relationship; schemaOID: 3)[h: HAS_PROPERTY]
     (p: Property; schemaOID: 3, name: m, dataType: d, isId: ii, isOpt: io,
      isIntensional: iz).

% Copy.StoreUniquePropertyModifiers
(a: SM_Attribute; schemaOID: 2)
    [: SM_HAS_MODIFIER](mo: SM_AttributeModifier; kind: k), k == "unique"
  -> exists p = skPP(a), exists u = skPU(mo), exists h = skPHU(mo)
     (p: Property; schemaOID: 3)[h: HAS_MODIFIER]
     (u: UniquePropertyModifier; schemaOID: 3).
)";

// --- the relational Eliminate program (Section 5.3) ---------------------------
//
// schemaOID 1 = S, 2 = S-.  Generalizations become explicit one-to-many
// IS_A edges between the (kept) member nodes; one-to-many edges are copied
// (the Copy phase turns them into ForeignKeys); many-to-many edges are
// replaced by a junction SM_Node with two mandatory functional edges to the
// original endpoints (Eliminate.DeleteManyToManyEdges(1)-(3)).
const char kRelEliminate[] = R"(
% Eliminate.CopyNodes
(n: SM_Node; schemaOID: 1, isIntensional: i)
  -> exists x = skN(n)
     (x: SM_Node; schemaOID: 2, isIntensional: i).

% Eliminate.CopyTypes (node types; each node keeps its single type)
(n: SM_Node; schemaOID: 1)[: SM_HAS_NODE_TYPE](t: SM_Type; name: w)
  -> exists x = skN(n), exists h = skHNT(n, t), exists l = skTy(n, t)
     (x: SM_Node; schemaOID: 2)
       [h: SM_HAS_NODE_TYPE; isPrimary: true]
     (l: SM_Type; schemaOID: 2, name: w).

% Eliminate.CopyNodeAttributes
(n: SM_Node; schemaOID: 1)
    [: SM_HAS_NODE_PROPERTY]
    (p: SM_Attribute; name: m, dataType: d, isId: ii, isOpt: io,
     isIntensional: iz)
  -> exists x = skN(n), exists h = skHNP(n, p), exists q = skAt(n, p)
     (x: SM_Node; schemaOID: 2)[h: SM_HAS_NODE_PROPERTY]
     (q: SM_Attribute; schemaOID: 2, name: m, dataType: d, isId: ii,
      isOpt: io, isIntensional: iz).

% Eliminate.CopyOneToManyEdges: an edge with a functional side survives
% (the Copy phase renders it as a ForeignKey).
(e: SM_Edge; schemaOID: 1, isIntensional: i, isOpt1: o1, isFun1: true,
   isOpt2: o2, isFun2: f2)
    [: SM_HAS_EDGE_TYPE](t: SM_Type; name: w),
(e)[: SM_FROM](nf: SM_Node),
(e)[: SM_TO](nt: SM_Node)
  -> exists e2 = skE(e), exists ht = skEHT(e), exists t2 = skETy(e),
     exists hf = skEF(e), exists h2 = skETo(e),
     exists xf = skN(nf), exists xt = skN(nt)
     (e2: SM_Edge; schemaOID: 2, isIntensional: i, isOpt1: o1,
        isFun1: true, isOpt2: o2, isFun2: f2)
       [ht: SM_HAS_EDGE_TYPE](t2: SM_Type; schemaOID: 2, name: w),
     (e2)[hf: SM_FROM](xf: SM_Node; schemaOID: 2),
     (e2)[h2: SM_TO](xt: SM_Node; schemaOID: 2).

% ... symmetrically when only the target side is functional.
(e: SM_Edge; schemaOID: 1, isIntensional: i, isOpt1: o1, isFun1: false,
   isOpt2: o2, isFun2: true)
    [: SM_HAS_EDGE_TYPE](t: SM_Type; name: w),
(e)[: SM_FROM](nf: SM_Node),
(e)[: SM_TO](nt: SM_Node)
  -> exists e2 = skE(e), exists ht = skEHT(e), exists t2 = skETy(e),
     exists hf = skEF(e), exists h2 = skETo(e),
     exists xf = skN(nf), exists xt = skN(nt)
     (e2: SM_Edge; schemaOID: 2, isIntensional: i, isOpt1: o1,
        isFun1: false, isOpt2: o2, isFun2: true)
       [ht: SM_HAS_EDGE_TYPE](t2: SM_Type; schemaOID: 2, name: w),
     (e2)[hf: SM_FROM](xf: SM_Node; schemaOID: 2),
     (e2)[h2: SM_TO](xt: SM_Node; schemaOID: 2).

% Eliminate.DeleteManyToManyEdges(1): a junction SM_Node takes the edge's
% type and attributes ...
(e: SM_Edge; schemaOID: 1, isFun1: false, isFun2: false)
    [: SM_HAS_EDGE_TYPE](t: SM_Type; name: w)
  -> exists p = skJn(e), exists tp = skJnTy(e), exists h = skJnHT(e)
     (p: SM_Node; schemaOID: 2)
       [h: SM_HAS_NODE_TYPE; isPrimary: true]
     (tp: SM_Type; schemaOID: 2, name: w).

(e: SM_Edge; schemaOID: 1, isFun1: false, isFun2: false)
    [: SM_HAS_EDGE_PROPERTY]
    (a: SM_Attribute; name: m, dataType: d, isId: ii, isOpt: io,
     isIntensional: iz)
  -> exists p = skJn(e), exists h = skJnHP(e, a), exists q = skJnAt(e, a)
     (p: SM_Node; schemaOID: 2)[h: SM_HAS_NODE_PROPERTY]
     (q: SM_Attribute; schemaOID: 2, name: m, dataType: d, isId: ii,
      isOpt: io, isIntensional: iz).

% Eliminate.DeleteManyToManyEdges(2): a mandatory functional edge fk_m from
% the junction to the target endpoint ...
(e: SM_Edge; schemaOID: 1, isFun1: false, isFun2: false, isOpt1: po),
(e)[: SM_TO](m: SM_Node)
  -> exists fk = skFkTo(e), exists t2 = skFkToTy(e),
     exists ht = skFkToHT(e), exists hf = skFkToF(e),
     exists h2 = skFkToT(e), exists p = skJn(e), exists xm = skN(m)
     (fk: SM_Edge; schemaOID: 2, isIntensional: false, isOpt1: po,
        isFun1: true, isOpt2: true, isFun2: false)
       [ht: SM_HAS_EDGE_TYPE](t2: SM_Type; schemaOID: 2, name: "FK_TO"),
     (fk)[hf: SM_FROM](p: SM_Node; schemaOID: 2),
     (fk)[h2: SM_TO](xm: SM_Node; schemaOID: 2).

% Eliminate.DeleteManyToManyEdges(3): ... and fk_n to the source endpoint.
(e: SM_Edge; schemaOID: 1, isFun1: false, isFun2: false, isOpt2: po),
(e)[: SM_FROM](n: SM_Node)
  -> exists fk = skFkFrom(e), exists t2 = skFkFromTy(e),
     exists ht = skFkFromHT(e), exists hf = skFkFromF(e),
     exists h2 = skFkFromT(e), exists p = skJn(e), exists xn = skN(n)
     (fk: SM_Edge; schemaOID: 2, isIntensional: false, isOpt1: po,
        isFun1: true, isOpt2: true, isFun2: false)
       [ht: SM_HAS_EDGE_TYPE](t2: SM_Type; schemaOID: 2, name: "FK_FROM"),
     (fk)[hf: SM_FROM](p: SM_Node; schemaOID: 2),
     (fk)[h2: SM_TO](xn: SM_Node; schemaOID: 2).

% Eliminate.DeleteGeneralizations (relational tactic): each member keeps
% its relation; the child links to its parent with a mandatory functional
% IS_A edge (rendered as a foreign key on the shared key).
(g: SM_Generalization; schemaOID: 1),
(g)[: SM_CHILD](c: SM_Node),
(g)[: SM_PARENT](par: SM_Node)
  -> exists e2 = skIsA(g, c), exists t2 = skIsATy(g, c),
     exists ht = skIsAHT(g, c), exists hf = skIsAF(g, c),
     exists h2 = skIsAT(g, c), exists xc = skN(c), exists xp = skN(par)
     (e2: SM_Edge; schemaOID: 2, isIntensional: false, isOpt1: false,
        isFun1: true, isOpt2: true, isFun2: false)
       [ht: SM_HAS_EDGE_TYPE](t2: SM_Type; schemaOID: 2, name: "IS_A"),
     (e2)[hf: SM_FROM](xc: SM_Node; schemaOID: 2),
     (e2)[h2: SM_TO](xp: SM_Node; schemaOID: 2).
)";

Result<core::AttrType> ParseAttrTypeName(const std::string& name) {
  if (name == "string") return core::AttrType::kString;
  if (name == "int") return core::AttrType::kInt;
  if (name == "double") return core::AttrType::kDouble;
  if (name == "bool") return core::AttrType::kBool;
  if (name == "date") return core::AttrType::kDate;
  return InvalidArgument("unknown attribute type: " + name);
}

bool BoolProp(const pg::PropertyGraph& g, pg::NodeId id,
              std::string_view key) {
  const Value* v = g.NodeProperty(id, key);
  return v != nullptr && v->is_bool() && v->AsBool();
}

bool BoolEdgeProp(const pg::PropertyGraph& g, pg::EdgeId id,
                  std::string_view key) {
  const Value* v = g.EdgeProperty(id, key);
  return v != nullptr && v->is_bool() && v->AsBool();
}

bool InSchema(const pg::PropertyGraph& g, pg::NodeId id, int64_t oid) {
  const Value* v = g.NodeProperty(id, "schemaOID");
  return v != nullptr && v->is_int() && v->AsInt() == oid;
}

Result<core::PgPropertyDef> ParseProperty(const pg::PropertyGraph& g,
                                          pg::NodeId p) {
  core::PgPropertyDef prop;
  const Value* name = g.NodeProperty(p, "name");
  if (name == nullptr || !name->is_string()) {
    return FailedPrecondition("Property without name");
  }
  prop.name = name->AsString();
  const Value* type = g.NodeProperty(p, "dataType");
  if (type != nullptr && type->is_string()) {
    KGM_ASSIGN_OR_RETURN(prop.type, ParseAttrTypeName(type->AsString()));
  }
  prop.intensional = BoolProp(g, p, "isIntensional");
  prop.required = !BoolProp(g, p, "isOpt") && !prop.intensional;
  prop.unique = BoolProp(g, p, "isId");
  for (pg::EdgeId e : g.OutEdges(p)) {
    if (g.HasEdge(e) && g.edge(e).label == "HAS_MODIFIER" &&
        g.node(g.edge(e).to).HasLabel("UniquePropertyModifier")) {
      prop.unique = true;
    }
  }
  return prop;
}

// Properties of a Node/Relationship dictionary entry, deduplicated by name.
Result<std::vector<core::PgPropertyDef>> ParseProperties(
    const pg::PropertyGraph& g, pg::NodeId owner) {
  std::vector<core::PgPropertyDef> out;
  std::set<std::string> seen;
  for (pg::EdgeId e : g.OutEdges(owner)) {
    if (!g.HasEdge(e) || g.edge(e).label != "HAS_PROPERTY") continue;
    KGM_ASSIGN_OR_RETURN(core::PgPropertyDef prop,
                         ParseProperty(g, g.edge(e).to));
    if (seen.insert(prop.name).second) out.push_back(std::move(prop));
  }
  return out;
}

}  // namespace

const std::vector<Mapping>& MappingRepository() {
  static const std::vector<Mapping>& repo = *new std::vector<Mapping>{
      {"property_graph", "type_accumulation", kPgEliminate, kPgCopy},
      // The relational Eliminate phase of Section 5.3 (junctions for
      // many-to-many edges, IS_A foreign-key edges for generalizations);
      // the Copy phase into Relations/Fields/ForeignKeys runs natively
      // (DESIGN.md §5).
      {"relational", "relation_per_member", kRelEliminate, ""},
  };
  return repo;
}

const Mapping* FindMapping(const std::string& model,
                           const std::string& strategy) {
  for (const Mapping& m : MappingRepository()) {
    if (m.model == model && m.strategy == strategy) return &m;
  }
  return nullptr;
}

Result<core::PgSchema> ParsePgSchemaFromDictionary(
    const pg::PropertyGraph& dict, int64_t schema_oid,
    const std::string& name) {
  core::PgSchema out;
  out.name = name;
  std::map<pg::NodeId, std::string> primary_label;

  for (pg::NodeId id : dict.NodesWithLabel("Node")) {
    if (!InSchema(dict, id, schema_oid)) continue;
    core::PgNodeType nt;
    nt.intensional = BoolProp(dict, id, "isIntensional");
    std::string primary;
    std::vector<std::string> others;
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e) || dict.edge(e).label != "HAS_LABEL") continue;
      const Value* label_name = dict.NodeProperty(dict.edge(e).to, "name");
      if (label_name == nullptr) {
        return FailedPrecondition("Label without name");
      }
      if (BoolEdgeProp(dict, e, "isPrimary")) {
        primary = label_name->AsString();
      } else {
        others.push_back(label_name->AsString());
      }
    }
    if (primary.empty()) {
      return FailedPrecondition("translated Node without a primary label");
    }
    nt.labels.push_back(primary);
    for (std::string& l : others) nt.labels.push_back(std::move(l));
    KGM_ASSIGN_OR_RETURN(nt.properties, ParseProperties(dict, id));
    primary_label[id] = primary;
    out.node_types.push_back(std::move(nt));
  }

  for (pg::NodeId id : dict.NodesWithLabel("Relationship")) {
    if (!InSchema(dict, id, schema_oid)) continue;
    core::PgRelationshipType rt;
    const Value* rel_name = dict.NodeProperty(id, "name");
    if (rel_name == nullptr) {
      return FailedPrecondition("Relationship without name");
    }
    rt.name = rel_name->AsString();
    rt.intensional = BoolProp(dict, id, "isIntensional");
    for (pg::EdgeId e : dict.OutEdges(id)) {
      if (!dict.HasEdge(e)) continue;
      const pg::Edge& edge = dict.edge(e);
      if (edge.label == "R_FROM") {
        rt.from = primary_label[edge.to];
      } else if (edge.label == "R_TO") {
        rt.to = primary_label[edge.to];
      }
    }
    if (rt.from.empty() || rt.to.empty()) {
      return FailedPrecondition("Relationship " + rt.name +
                                " lacks endpoints");
    }
    KGM_ASSIGN_OR_RETURN(rt.properties, ParseProperties(dict, id));
    out.relationship_types.push_back(std::move(rt));
  }
  out.Canonicalize();
  return out;
}

Result<core::PgSchema> TranslateToPgDeclarative(
    const core::SuperSchema& schema, DeclarativeStats* stats) {
  const Mapping* mapping =
      FindMapping("property_graph", "type_accumulation");
  KGM_CHECK(mapping != nullptr);

  // Store S into a private dictionary under kSrcOid.
  core::SuperSchema source = schema;  // copy to retag the OID
  source.set_schema_oid(kSrcOid);
  pg::PropertyGraph dict;
  KGM_RETURN_IF_ERROR(core::StoreSuperSchema(source, &dict));

  using Clock = std::chrono::steady_clock;
  metalog::MetaRunOptions options;

  auto t0 = Clock::now();
  KGM_ASSIGN_OR_RETURN(metalog::MetaRunResult eliminate,
                       metalog::RunMetaLogSource(mapping->eliminate, &dict,
                                                 options));
  auto t1 = Clock::now();
  KGM_ASSIGN_OR_RETURN(metalog::MetaRunResult copy,
                       metalog::RunMetaLogSource(mapping->copy, &dict,
                                                 options));
  auto t2 = Clock::now();
  if (stats != nullptr) {
    stats->eliminate_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    stats->copy_seconds = std::chrono::duration<double>(t2 - t1).count();
    stats->eliminate_rules = eliminate.vadalog_rule_count;
    stats->copy_rules = copy.vadalog_rule_count;
  }
  return ParsePgSchemaFromDictionary(dict, kTargetOid, schema.name() + "_pg");
}

}  // namespace kgm::translate
