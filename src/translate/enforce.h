// Schema enforcement renderers (Section 2.2 / Section 5).
//
// "Schemas then contain all the information needed to be deployed and
// enforced, with different methods, depending on the target systems": SQL
// DDL for relational systems, RDF-S documents for RDF stores, and ad-hoc
// constraint statements (Cypher-style) for schema-less graph databases.

#ifndef KGM_TRANSLATE_ENFORCE_H_
#define KGM_TRANSLATE_ENFORCE_H_

#include <string>
#include <vector>

#include "core/models.h"
#include "core/superschema.h"
#include "rel/relational.h"
#include "translate/native.h"

namespace kgm::translate {

// Cypher-style uniqueness / existence constraints for a PG schema.
std::string RenderCypherConstraints(const core::PgSchema& schema);

// An RDF-Schema document (Turtle syntax) for the super-schema: classes for
// node types, subClassOf for generalizations, properties with domain and
// range.
std::string RenderRdfs(const core::SuperSchema& schema,
                       const std::string& base_iri = "http://kgm.example/");

// CSV headers, one line per file.
std::string RenderCsvHeaders(const std::vector<CsvFileSchema>& files);

}  // namespace kgm::translate

#endif  // KGM_TRANSLATE_ENFORCE_H_
