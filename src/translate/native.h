// Native (procedural) super-schema -> schema translators.
//
// These implement exactly the Eliminate/Copy semantics of Section 5 of the
// paper, but as direct C++ over the typed SuperSchema instead of MetaLog
// programs over the dictionary graph.  The declarative path
// (pg_mapping.h) is the faithful mechanism; the native path serves as an
// independent oracle for equivalence testing and as the performance
// ablation baseline (DESIGN.md, E10).

#ifndef KGM_TRANSLATE_NATIVE_H_
#define KGM_TRANSLATE_NATIVE_H_

#include <vector>

#include "base/status.h"
#include "core/models.h"
#include "core/superschema.h"
#include "rel/relational.h"

namespace kgm::translate {

// Strategy for representing generalizations in the PG model (the
// "implementation strategy" the engineer picks in Algorithm 1, line 2).
enum class PgGeneralizationStrategy {
  // Children accumulate the labels of all ancestors; edges and attributes
  // are inherited downwards (Section 5.2, multi-tagging targets).
  kTypeAccumulation,
  // Children keep a single label and link to their parent through an IS_A
  // relationship (targets without multi-tagging).
  kChildParentEdges,
};

// Section 5.2: the PG model mapping.
Result<core::PgSchema> TranslateToPgNative(
    const core::SuperSchema& schema,
    PgGeneralizationStrategy strategy =
        PgGeneralizationStrategy::kTypeAccumulation);

// Section 5.3: the relational model mapping.  Generalizations become one
// relation per member with foreign keys to the parent; one-to-many edges
// become foreign keys; many-to-many edges become junction relations.
Result<std::vector<rel::TableSchema>> TranslateToRelationalNative(
    const core::SuperSchema& schema);

// The AttrType -> ColumnType mapping the relational translation uses.
rel::ColumnType ToRelColumnType(core::AttrType t);

// The relational key columns (snake_case name, type) of a node type: its
// effective id attributes, or the surrogate `<name>_oid` column for
// intensional nodes without identifiers.
std::vector<std::pair<std::string, rel::ColumnType>> RelationalKeyColumns(
    const core::SuperSchema& schema, const std::string& node);

// A CSV "schema": one file per node type (effective attributes) and one per
// edge type (endpoint keys plus edge attributes).
struct CsvFileSchema {
  std::string file_name;            // e.g. "physical_person.csv"
  std::vector<std::string> columns;
};

std::vector<CsvFileSchema> TranslateToCsvNative(
    const core::SuperSchema& schema);

}  // namespace kgm::translate

#endif  // KGM_TRANSLATE_NATIVE_H_
