#include "translate/validate.h"

#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "metalog/catalog.h"  // kOidProperty

namespace kgm::translate {

namespace {

bool TypeMatches(core::AttrType type, const Value& v) {
  switch (type) {
    case core::AttrType::kString:
    case core::AttrType::kDate:
      return v.is_string();
    case core::AttrType::kInt:
      return v.is_int();
    case core::AttrType::kDouble:
      return v.is_numeric();
    case core::AttrType::kBool:
      return v.is_bool();
  }
  return false;
}

// The node type (by schema) that declares `attr`, walking from `label`
// upwards; uniqueness is scoped to that declaring type.
std::string DeclaringLabel(const core::SuperSchema& schema,
                           const std::string& label,
                           const std::string& attr) {
  const core::NodeDef* node = schema.FindNode(label);
  if (node != nullptr && node->FindAttribute(attr) != nullptr) return label;
  for (const std::string& ancestor : schema.AncestorsOf(label)) {
    const core::NodeDef* a = schema.FindNode(ancestor);
    if (a != nullptr && a->FindAttribute(attr) != nullptr) return ancestor;
  }
  return label;
}

}  // namespace

const char* ViolationKindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kUnknownLabel:
      return "unknown_label";
    case Violation::Kind::kMissingLabel:
      return "missing_label";
    case Violation::Kind::kMissingRequired:
      return "missing_required";
    case Violation::Kind::kWrongType:
      return "wrong_type";
    case Violation::Kind::kUndeclaredProperty:
      return "undeclared_property";
    case Violation::Kind::kUniqueViolated:
      return "unique_violated";
    case Violation::Kind::kUnknownRelationship:
      return "unknown_relationship";
    case Violation::Kind::kBadEndpoint:
      return "bad_endpoint";
    case Violation::Kind::kCardinality:
      return "cardinality";
    case Violation::Kind::kEnumViolated:
      return "enum_violated";
    case Violation::Kind::kRangeViolated:
      return "range_violated";
  }
  return "?";
}

size_t ValidationReport::Count(Violation::Kind kind) const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

std::string ValidationReport::ToString() const {
  std::ostringstream os;
  os << "validated " << checked_nodes << " nodes, " << checked_edges
     << " edges: "
     << (violations.empty() ? "conformant"
                            : std::to_string(violations.size()) +
                                  " violation(s)")
     << "\n";
  for (const Violation& v : violations) {
    os << "  [" << ViolationKindName(v.kind) << "] " << v.message << "\n";
  }
  return os.str();
}

ValidationReport ValidateInstance(const core::SuperSchema& schema,
                                  const core::PgSchema& pg_schema,
                                  const pg::PropertyGraph& data,
                                  const ValidateOptions& options) {
  ValidationReport report;
  auto add = [&](Violation::Kind kind, std::string message) {
    if (options.max_violations != 0 &&
        report.violations.size() >= options.max_violations) {
      return;
    }
    report.violations.push_back({kind, std::move(message)});
  };

  // Indexes.
  std::map<std::string, const core::PgNodeType*> type_of;
  std::set<std::string> all_known_labels;
  for (const core::PgNodeType& nt : pg_schema.node_types) {
    type_of[nt.primary_label()] = &nt;
    for (const std::string& l : nt.labels) all_known_labels.insert(l);
  }
  std::set<std::string> edge_labels;
  for (const core::PgRelationshipType& rt : pg_schema.relationship_types) {
    edge_labels.insert(rt.name);
  }
  // (declaring label, attr, value) -> first node seen.
  std::map<std::tuple<std::string, std::string, std::string>, pg::NodeId>
      unique_seen;
  // (primary label, attribute) -> schema attribute, for modifier checks.
  std::map<std::pair<std::string, std::string>, core::AttributeDef>
      attr_defs;
  for (const core::NodeDef& n : schema.nodes()) {
    for (const core::AttributeDef& a : schema.EffectiveAttributes(n.name)) {
      attr_defs[{n.name, a.name}] = a;
    }
  }

  // --- nodes ------------------------------------------------------------------
  for (pg::NodeId id = 0; id < data.node_capacity(); ++id) {
    if (!data.HasNode(id)) continue;
    const pg::Node& node = data.node(id);
    ++report.checked_nodes;
    std::string node_name = "node " + std::to_string(id);

    const core::PgNodeType* nt = nullptr;
    for (const std::string& label : node.labels) {
      auto it = type_of.find(label);
      // The primary type is the most specific one: prefer the type whose
      // label set is largest (deepest in the hierarchy).
      if (it != type_of.end() &&
          (nt == nullptr || it->second->labels.size() > nt->labels.size())) {
        nt = it->second;
      }
    }
    if (nt == nullptr) {
      add(Violation::Kind::kUnknownLabel,
          node_name + " has no label naming a schema node type");
      continue;
    }
    if (nt->intensional && options.ignore_intensional) continue;
    // Accumulated labels must all be present; extra labels must be known.
    std::set<std::string> expected(nt->labels.begin(), nt->labels.end());
    for (const std::string& label : nt->labels) {
      if (!node.HasLabel(label)) {
        add(Violation::Kind::kMissingLabel,
            node_name + " (:" + nt->primary_label() + ") lacks label " +
                label);
      }
    }
    for (const std::string& label : node.labels) {
      if (expected.count(label) == 0 &&
          all_known_labels.count(label) == 0) {
        add(Violation::Kind::kUnknownLabel,
            node_name + " carries unknown label " + label);
      }
    }
    // Properties.
    std::set<std::string> declared;
    for (const core::PgPropertyDef& prop : nt->properties) {
      declared.insert(prop.name);
      auto it = node.props.find(prop.name);
      if (it == node.props.end() || it->second.is_null()) {
        if (prop.required &&
            !(prop.intensional && options.ignore_intensional)) {
          add(Violation::Kind::kMissingRequired,
              node_name + " (:" + nt->primary_label() +
                  ") misses required property " + prop.name);
        }
        continue;
      }
      if (!TypeMatches(prop.type, it->second)) {
        add(Violation::Kind::kWrongType,
            node_name + "." + prop.name + " = " + it->second.ToString() +
                " is not a " + core::AttrTypeName(prop.type));
      }
      // SM_AttributeModifier constraints (enum, range).
      auto def = attr_defs.find({nt->primary_label(), prop.name});
      if (def != attr_defs.end()) {
        for (const core::AttributeModifier& mod : def->second.modifiers) {
          if (mod.kind == core::AttributeModifier::Kind::kEnum) {
            bool allowed = false;
            for (const Value& v : mod.enum_values) {
              if (v == it->second) allowed = true;
            }
            if (!allowed) {
              add(Violation::Kind::kEnumViolated,
                  node_name + "." + prop.name + " = " +
                      it->second.ToString() +
                      " is not among the enumerated values");
            }
          } else if (mod.kind == core::AttributeModifier::Kind::kRange &&
                     it->second.is_numeric()) {
            double v = it->second.AsDouble();
            if (v < mod.min || v > mod.max) {
              add(Violation::Kind::kRangeViolated,
                  node_name + "." + prop.name + " = " +
                      it->second.ToString() + " outside [" +
                      std::to_string(mod.min) + ", " +
                      std::to_string(mod.max) + "]");
            }
          }
        }
      }
      if (prop.unique) {
        std::string scope =
            DeclaringLabel(schema, nt->primary_label(), prop.name);
        auto key = std::make_tuple(scope, prop.name,
                                   it->second.ToString());
        auto [pos, inserted] = unique_seen.emplace(key, id);
        if (!inserted) {
          add(Violation::Kind::kUniqueViolated,
              node_name + "." + prop.name + " duplicates node " +
                  std::to_string(pos->second) + " (" +
                  it->second.ToString() + ", unique within " + scope + ")");
        }
      }
    }
    for (const auto& [key, value] : node.props) {
      if (key == metalog::kOidProperty) continue;
      if (declared.count(key) == 0) {
        add(Violation::Kind::kUndeclaredProperty,
            node_name + " (:" + nt->primary_label() +
                ") carries undeclared property " + key);
      }
    }
  }

  // --- edges ------------------------------------------------------------------
  // Outgoing/incoming counts per (node, edge type) for cardinalities.
  std::unordered_map<uint64_t, size_t> out_count;
  std::unordered_map<uint64_t, size_t> in_count;
  std::map<std::string, size_t> edge_type_index;
  {
    size_t i = 0;
    for (const core::EdgeDef& e : schema.edges()) {
      edge_type_index[e.name] = i++;
    }
  }
  auto count_key = [&](pg::NodeId node, const std::string& label) {
    return node * edge_type_index.size() + edge_type_index[label];
  };

  for (pg::EdgeId id = 0; id < data.edge_capacity(); ++id) {
    if (!data.HasEdge(id)) continue;
    const pg::Edge& edge = data.edge(id);
    ++report.checked_edges;
    const core::EdgeDef* def = schema.FindEdge(edge.label);
    if (def == nullptr) {
      if (edge_labels.count(edge.label) == 0) {
        add(Violation::Kind::kUnknownRelationship,
            "edge " + std::to_string(id) + " has unknown label " +
                edge.label);
      }
      continue;
    }
    if (def->intensional && options.ignore_intensional) continue;
    // Endpoints must carry the (ancestor) labels of the edge definition.
    if (!data.node(edge.from).HasLabel(def->from)) {
      add(Violation::Kind::kBadEndpoint,
          "edge " + std::to_string(id) + " (:" + edge.label +
              ") starts at a node without label " + def->from);
    }
    if (!data.node(edge.to).HasLabel(def->to)) {
      add(Violation::Kind::kBadEndpoint,
          "edge " + std::to_string(id) + " (:" + edge.label +
              ") ends at a node without label " + def->to);
    }
    ++out_count[count_key(edge.from, edge.label)];
    ++in_count[count_key(edge.to, edge.label)];
  }

  // Cardinality bounds.
  for (const core::EdgeDef& def : schema.edges()) {
    if (def.intensional && options.ignore_intensional) continue;
    for (pg::NodeId id = 0; id < data.node_capacity(); ++id) {
      if (!data.HasNode(id)) continue;
      if (data.node(id).HasLabel(def.from)) {
        size_t n = out_count.count(count_key(id, def.name)) > 0
                       ? out_count[count_key(id, def.name)]
                       : 0;
        if (def.source.functional && n > 1) {
          add(Violation::Kind::kCardinality,
              "node " + std::to_string(id) + " has " + std::to_string(n) +
                  " outgoing :" + def.name + " edges (max 1)");
        }
        if (!def.source.optional && n == 0) {
          add(Violation::Kind::kCardinality,
              "node " + std::to_string(id) + " has no outgoing :" +
                  def.name + " edge (min 1)");
        }
      }
      if (data.node(id).HasLabel(def.to)) {
        size_t n = in_count.count(count_key(id, def.name)) > 0
                       ? in_count[count_key(id, def.name)]
                       : 0;
        if (def.target.functional && n > 1) {
          add(Violation::Kind::kCardinality,
              "node " + std::to_string(id) + " has " + std::to_string(n) +
                  " incoming :" + def.name + " edges (max 1)");
        }
        if (!def.target.optional && n == 0) {
          add(Violation::Kind::kCardinality,
              "node " + std::to_string(id) + " has no incoming :" +
                  def.name + " edge (min 1)");
        }
      }
    }
  }
  return report;
}

}  // namespace kgm::translate
