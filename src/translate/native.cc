#include "translate/native.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/strings.h"

namespace kgm::translate {

using core::AttrType;
using core::AttributeDef;
using core::AttributeModifier;
using core::EdgeDef;
using core::GeneralizationDef;
using core::NodeDef;
using core::PgNodeType;
using core::PgPropertyDef;
using core::PgRelationshipType;
using core::PgSchema;
using core::SuperSchema;

namespace {

bool HasUniqueModifier(const AttributeDef& a) {
  for (const AttributeModifier& m : a.modifiers) {
    if (m.kind == AttributeModifier::Kind::kUnique) return true;
  }
  return false;
}

PgPropertyDef ToPgProperty(const AttributeDef& a) {
  PgPropertyDef p;
  p.name = a.name;
  p.type = a.type;
  p.required = !a.optional && !a.intensional;
  p.unique = a.is_id || HasUniqueModifier(a);
  p.intensional = a.intensional;
  return p;
}

// Self plus all descendants.
std::vector<std::string> SelfAndDescendants(const SuperSchema& schema,
                                            const std::string& node) {
  std::vector<std::string> out{node};
  for (const std::string& d : schema.DescendantsOf(node)) out.push_back(d);
  return out;
}

}  // namespace

rel::ColumnType ToRelColumnType(AttrType t) {
  switch (t) {
    case AttrType::kString:
      return rel::ColumnType::kString;
    case AttrType::kInt:
      return rel::ColumnType::kInt;
    case AttrType::kDouble:
      return rel::ColumnType::kDouble;
    case AttrType::kBool:
      return rel::ColumnType::kBool;
    case AttrType::kDate:
      return rel::ColumnType::kString;  // ISO-8601 strings
  }
  return rel::ColumnType::kAny;
}

std::vector<std::pair<std::string, rel::ColumnType>> RelationalKeyColumns(
    const SuperSchema& schema, const std::string& node) {
  std::vector<std::pair<std::string, rel::ColumnType>> out;
  for (const AttributeDef& a : schema.EffectiveIdAttributes(node)) {
    out.emplace_back(ToSnakeCase(a.name), ToRelColumnType(a.type));
  }
  if (out.empty()) {
    out.emplace_back(ToSnakeCase(node) + "_oid", rel::ColumnType::kString);
  }
  return out;
}

Result<PgSchema> TranslateToPgNative(const SuperSchema& schema,
                                     PgGeneralizationStrategy strategy) {
  KGM_RETURN_IF_ERROR(schema.Validate());
  PgSchema out;
  out.name = schema.name() + "_pg";

  for (const NodeDef& node : schema.nodes()) {
    PgNodeType nt;
    nt.intensional = node.intensional;
    nt.labels.push_back(node.name);
    if (strategy == PgGeneralizationStrategy::kTypeAccumulation) {
      // Eliminate.DeleteGeneralizations(1): types of all ancestors
      // accumulate on the node.
      for (const std::string& ancestor : schema.AncestorsOf(node.name)) {
        nt.labels.push_back(ancestor);
      }
      // Eliminate.DeleteGeneralizations(2): ancestor attributes are copied
      // down.
      for (const AttributeDef& a : schema.EffectiveAttributes(node.name)) {
        nt.properties.push_back(ToPgProperty(a));
      }
    } else {
      for (const AttributeDef& a : node.attributes) {
        nt.properties.push_back(ToPgProperty(a));
      }
    }
    out.node_types.push_back(std::move(nt));
  }

  for (const EdgeDef& edge : schema.edges()) {
    std::vector<std::string> froms{edge.from};
    std::vector<std::string> tos{edge.to};
    if (strategy == PgGeneralizationStrategy::kTypeAccumulation) {
      // Eliminate.DeleteGeneralizations(3)+(4): the edge is inherited by
      // every descendant of each endpoint.
      froms = SelfAndDescendants(schema, edge.from);
      tos = SelfAndDescendants(schema, edge.to);
    }
    for (const std::string& f : froms) {
      for (const std::string& t : tos) {
        PgRelationshipType rt;
        rt.name = edge.name;
        rt.from = f;
        rt.to = t;
        rt.intensional = edge.intensional;
        for (const AttributeDef& a : edge.attributes) {
          rt.properties.push_back(ToPgProperty(a));
        }
        out.relationship_types.push_back(std::move(rt));
      }
    }
  }

  if (strategy == PgGeneralizationStrategy::kChildParentEdges) {
    for (const GeneralizationDef& g : schema.generalizations()) {
      for (const std::string& child : g.children) {
        PgRelationshipType rt;
        rt.name = "IS_A";
        rt.from = child;
        rt.to = g.parent;
        out.relationship_types.push_back(std::move(rt));
      }
    }
  }

  out.Canonicalize();
  return out;
}

Result<std::vector<rel::TableSchema>> TranslateToRelationalNative(
    const SuperSchema& schema) {
  KGM_RETURN_IF_ERROR(schema.Validate());
  std::vector<rel::TableSchema> tables;
  std::map<std::string, size_t> table_index;  // node name -> tables index

  auto key_columns = [&schema](const std::string& node) {
    return RelationalKeyColumns(schema, node);
  };

  // Pass 1: one relation per SM_Node ("a relation for each generalization
  // member", Section 5.3).
  for (const NodeDef& node : schema.nodes()) {
    rel::TableSchema table;
    table.name = ToSnakeCase(node.name);
    std::set<std::string> present;
    // Keys first (inherited from the hierarchy root when not own).
    for (const auto& [col, type] : key_columns(node.name)) {
      table.columns.push_back({col, type, /*nullable=*/false});
      table.primary_key.push_back(col);
      present.insert(col);
    }
    // Own non-id attributes.
    for (const AttributeDef& a : node.attributes) {
      std::string col = ToSnakeCase(a.name);
      if (present.count(col) > 0) continue;
      table.columns.push_back(
          {col, ToRelColumnType(a.type), a.optional || a.intensional});
      present.insert(col);
      if (HasUniqueModifier(a)) table.unique_keys.push_back({col});
    }
    // Child relations reference their parent through the shared key.
    std::vector<std::string> ancestors = schema.AncestorsOf(node.name);
    if (!ancestors.empty()) {
      rel::ForeignKeyDef fk;
      fk.name = "fk_" + table.name + "_is_a";
      for (const auto& [col, type] : key_columns(node.name)) {
        fk.columns.push_back(col);
        fk.ref_columns.push_back(col);
      }
      fk.ref_table = ToSnakeCase(ancestors.front());
      table.foreign_keys.push_back(std::move(fk));
    }
    table_index[node.name] = tables.size();
    tables.push_back(std::move(table));
  }

  // Pass 2: edges.
  for (const EdgeDef& edge : schema.edges()) {
    bool from_functional = edge.source.functional;
    bool to_functional = edge.target.functional;
    std::string edge_col_prefix = ToSnakeCase(edge.name) + "_";
    if (from_functional || to_functional) {
      // A functional side holds the foreign key (Eliminate.
      // CopyOneToManyEdges; one-to-one edges are handled the same way,
      // with the source side chosen as the owner).
      const std::string& owner = from_functional ? edge.from : edge.to;
      const std::string& target = from_functional ? edge.to : edge.from;
      bool owner_optional =
          from_functional ? edge.source.optional : edge.target.optional;
      rel::TableSchema& table = tables[table_index[owner]];
      rel::ForeignKeyDef fk;
      fk.name = "fk_" + ToSnakeCase(owner) + "_" + ToSnakeCase(edge.name);
      for (const auto& [col, type] : key_columns(target)) {
        std::string fk_col = edge_col_prefix + col;
        table.columns.push_back({fk_col, type, owner_optional});
        fk.columns.push_back(fk_col);
        fk.ref_columns.push_back(col);
      }
      fk.ref_table = ToSnakeCase(target);
      table.foreign_keys.push_back(std::move(fk));
      // Edge attributes live on the owning relation
      // (CopyOneToManyEdges(2)).
      for (const AttributeDef& a : edge.attributes) {
        table.columns.push_back({edge_col_prefix + ToSnakeCase(a.name),
                                 ToRelColumnType(a.type), true});
      }
      if (from_functional && to_functional) {
        // One-to-one: the foreign key is also unique.
        tables[table_index[owner]].unique_keys.push_back(
            tables[table_index[owner]].foreign_keys.back().columns);
      }
    } else {
      // Many-to-many: junction relation
      // (Eliminate.DeleteManyToManyEdges).  Self-referencing edges would
      // collide on column names, so they get from_/to_ prefixes.
      bool self_edge = edge.from == edge.to;
      rel::TableSchema junction;
      junction.name = ToSnakeCase(edge.name);
      rel::ForeignKeyDef fk_from;
      fk_from.name = "fk_" + junction.name + "_from";
      fk_from.ref_table = ToSnakeCase(edge.from);
      rel::ForeignKeyDef fk_to;
      fk_to.name = "fk_" + junction.name + "_to";
      fk_to.ref_table = ToSnakeCase(edge.to);
      std::string from_prefix =
          (self_edge ? "from_" : "") + ToSnakeCase(edge.from) + "_";
      std::string to_prefix =
          (self_edge ? "to_" : "") + ToSnakeCase(edge.to) + "_";
      for (const auto& [col, type] : key_columns(edge.from)) {
        std::string jcol = from_prefix + col;
        junction.columns.push_back({jcol, type, /*nullable=*/false});
        junction.primary_key.push_back(jcol);
        fk_from.columns.push_back(jcol);
        fk_from.ref_columns.push_back(col);
      }
      for (const auto& [col, type] : key_columns(edge.to)) {
        std::string jcol = to_prefix + col;
        junction.columns.push_back({jcol, type, /*nullable=*/false});
        junction.primary_key.push_back(jcol);
        fk_to.columns.push_back(jcol);
        fk_to.ref_columns.push_back(col);
      }
      for (const AttributeDef& a : edge.attributes) {
        junction.columns.push_back({ToSnakeCase(a.name),
                                    ToRelColumnType(a.type),
                                    a.optional || a.intensional});
      }
      junction.foreign_keys.push_back(std::move(fk_from));
      junction.foreign_keys.push_back(std::move(fk_to));
      tables.push_back(std::move(junction));
    }
  }
  return tables;
}

std::vector<CsvFileSchema> TranslateToCsvNative(const SuperSchema& schema) {
  std::vector<CsvFileSchema> out;
  for (const NodeDef& node : schema.nodes()) {
    CsvFileSchema file;
    file.file_name = ToSnakeCase(node.name) + ".csv";
    for (const AttributeDef& a : schema.EffectiveAttributes(node.name)) {
      file.columns.push_back(ToSnakeCase(a.name));
    }
    out.push_back(std::move(file));
  }
  for (const EdgeDef& edge : schema.edges()) {
    CsvFileSchema file;
    file.file_name = ToSnakeCase(edge.name) + ".csv";
    for (const AttributeDef& a : schema.EffectiveIdAttributes(edge.from)) {
      file.columns.push_back("from_" + ToSnakeCase(a.name));
    }
    for (const AttributeDef& a : schema.EffectiveIdAttributes(edge.to)) {
      file.columns.push_back("to_" + ToSnakeCase(a.name));
    }
    for (const AttributeDef& a : edge.attributes) {
      file.columns.push_back(ToSnakeCase(a.name));
    }
    out.push_back(std::move(file));
  }
  return out;
}

}  // namespace kgm::translate
