// CSV serialization of instances (the plain-file model of Section 2.2).
//
// ExportCsv writes a property-graph instance into one CSV document per
// node type (effective attributes) and per edge type (endpoint keys plus
// edge attributes), following TranslateToCsvNative's file schemas;
// ImportCsv reads such documents back into a property graph with the
// type-accumulated labels of the Figure 6 schema.

#ifndef KGM_TRANSLATE_CSV_IO_H_
#define KGM_TRANSLATE_CSV_IO_H_

#include <map>
#include <string>

#include "base/status.h"
#include "core/superschema.h"
#include "pg/property_graph.h"

namespace kgm::translate {

// RFC-4180-style quoting: fields containing ',', '"' or newlines are
// quoted, with '"' doubled.
std::string CsvEscape(const std::string& field);

// Splits one CSV line honoring quotes.
Result<std::vector<std::string>> CsvSplitLine(const std::string& line);

// Splits a CSV document into records, honoring quotes: a newline inside a
// quoted field belongs to the field, not the record separator.  CRLF line
// endings are accepted; trailing empty records are dropped.
Result<std::vector<std::string>> CsvSplitRecords(const std::string& doc);

// file name -> document (header line + one line per node/edge).
Result<std::map<std::string, std::string>> ExportCsv(
    const core::SuperSchema& schema, const pg::PropertyGraph& data);

// Inverse of ExportCsv.  Typed columns are parsed back per the schema's
// attribute types; empty fields become absent properties.
Result<pg::PropertyGraph> ImportCsv(
    const core::SuperSchema& schema,
    const std::map<std::string, std::string>& files);

}  // namespace kgm::translate

#endif  // KGM_TRANSLATE_CSV_IO_H_
