#include "rel/relational.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace kgm::rel {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kAny:
      return "any";
    case ColumnType::kBool:
      return "bool";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

bool ValueMatchesType(const Value& v, ColumnType t) {
  switch (t) {
    case ColumnType::kAny:
      return true;
    case ColumnType::kBool:
      return v.is_bool();
    case ColumnType::kInt:
      return v.is_int();
    case ColumnType::kDouble:
      return v.is_numeric();
    case ColumnType::kString:
      // Skolem-generated identifiers are admissible wherever strings are:
      // the chase materializes OIDs from the identifier set I into key
      // columns.
      return v.is_string() || v.is_skolem() || v.is_labeled_null();
  }
  return false;
}

int TableSchema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  for (const std::string& col : schema_.primary_key) {
    int idx = schema_.ColumnIndex(col);
    KGM_CHECK_MSG(idx >= 0, ("primary key column missing: " + col).c_str());
    pk_positions_.push_back(idx);
  }
  for (const auto& unique : schema_.unique_keys) {
    std::vector<int> positions;
    for (const std::string& col : unique) {
      int idx = schema_.ColumnIndex(col);
      KGM_CHECK_MSG(idx >= 0, ("unique column missing: " + col).c_str());
      positions.push_back(idx);
    }
    unique_positions_.push_back(std::move(positions));
  }
  unique_indexes_.resize(unique_positions_.size());
}

Tuple Table::ProjectKey(const Tuple& row,
                        const std::vector<int>& positions) const {
  Tuple key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(row[p]);
  return key;
}

Status Table::Insert(Tuple row) {
  if (row.size() != schema_.arity()) {
    return InvalidArgument("table " + schema_.name + ": arity mismatch, got " +
                           std::to_string(row.size()) + " want " +
                           std::to_string(schema_.arity()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.columns[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return InvalidArgument("table " + schema_.name + ": column " +
                               col.name + " is NOT NULL");
      }
      continue;
    }
    if (!ValueMatchesType(row[i], col.type)) {
      return InvalidArgument("table " + schema_.name + ": column " +
                             col.name + " expects " +
                             ColumnTypeName(col.type) + ", got " +
                             row[i].ToString());
    }
  }
  if (!pk_positions_.empty()) {
    Tuple key = ProjectKey(row, pk_positions_);
    if (pk_index_.count(key) > 0) {
      return AlreadyExists("table " + schema_.name +
                           ": duplicate primary key");
    }
    pk_index_.emplace(std::move(key), rows_.size());
  }
  for (size_t u = 0; u < unique_positions_.size(); ++u) {
    Tuple key = ProjectKey(row, unique_positions_[u]);
    if (unique_indexes_[u].count(key) > 0) {
      return AlreadyExists("table " + schema_.name +
                           ": unique constraint violated");
    }
    unique_indexes_[u].emplace(std::move(key), rows_.size());
  }
  rows_.push_back(std::move(row));
  return OkStatus();
}

void Table::InsertUnchecked(Tuple row) {
  KGM_CHECK(row.size() == schema_.arity());
  if (!pk_positions_.empty()) {
    pk_index_.emplace(ProjectKey(row, pk_positions_), rows_.size());
  }
  rows_.push_back(std::move(row));
}

std::vector<const Tuple*> Table::Lookup(std::string_view col,
                                        const Value& v) const {
  std::vector<const Tuple*> out;
  int idx = schema_.ColumnIndex(col);
  if (idx < 0) return out;
  for (const Tuple& row : rows_) {
    if (row[idx] == v) out.push_back(&row);
  }
  return out;
}

const Tuple* Table::FindByPrimaryKey(const Tuple& key) const {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return nullptr;
  return &rows_[it->second];
}

int64_t Table::FindRowIndexByPrimaryKey(const Tuple& key) const {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

Status Table::UpdateValue(size_t row, std::string_view col, Value v) {
  if (row >= rows_.size()) {
    return OutOfRange("table " + schema_.name + ": row " +
                      std::to_string(row) + " out of range");
  }
  int idx = schema_.ColumnIndex(col);
  if (idx < 0) {
    return NotFound("table " + schema_.name + ": no column " +
                    std::string(col));
  }
  for (int p : pk_positions_) {
    if (p == idx) {
      return FailedPrecondition("table " + schema_.name +
                                ": cannot update primary-key column " +
                                std::string(col));
    }
  }
  for (const auto& positions : unique_positions_) {
    for (int p : positions) {
      if (p == idx) {
        return FailedPrecondition("table " + schema_.name +
                                  ": cannot update unique column " +
                                  std::string(col));
      }
    }
  }
  const ColumnDef& column = schema_.columns[idx];
  if (v.is_null()) {
    if (!column.nullable) {
      return InvalidArgument("table " + schema_.name + ": column " +
                             column.name + " is NOT NULL");
    }
  } else if (!ValueMatchesType(v, column.type)) {
    return InvalidArgument("table " + schema_.name + ": column " +
                           column.name + " expects " +
                           ColumnTypeName(column.type));
  }
  rows_[row][idx] = std::move(v);
  return OkStatus();
}

Status Database::CreateTable(TableSchema schema) {
  if (HasTable(schema.name)) {
    return AlreadyExists("table already exists: " + schema.name);
  }
  order_.push_back(schema.name);
  std::string name = schema.name;
  tables_.emplace(std::move(name), Table(std::move(schema)));
  return OkStatus();
}

bool Database::HasTable(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

Table* Database::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  return &it->second;
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  return &it->second;
}

std::vector<std::string> Database::TableNames() const { return order_; }

Status Database::ValidateForeignKeys() const {
  for (const auto& [name, table] : tables_) {
    for (const ForeignKeyDef& fk : table.schema().foreign_keys) {
      const Table* target = GetTable(fk.ref_table);
      if (target == nullptr) {
        return FailedPrecondition("table " + name +
                                  ": foreign key references missing table " +
                                  fk.ref_table);
      }
      std::vector<int> src_pos;
      for (const std::string& col : fk.columns) {
        int idx = table.schema().ColumnIndex(col);
        if (idx < 0) {
          return FailedPrecondition("table " + name +
                                    ": foreign key column missing: " + col);
        }
        src_pos.push_back(idx);
      }
      std::vector<int> dst_pos;
      for (const std::string& col : fk.ref_columns) {
        int idx = target->schema().ColumnIndex(col);
        if (idx < 0) {
          return FailedPrecondition(
              "table " + fk.ref_table +
              ": referenced foreign key column missing: " + col);
        }
        dst_pos.push_back(idx);
      }
      // Build the set of referenced keys once per constraint.
      std::unordered_map<Tuple, bool, TupleHash> keys;
      for (const Tuple& row : target->rows()) {
        Tuple key;
        for (int p : dst_pos) key.push_back(row[p]);
        keys.emplace(std::move(key), true);
      }
      for (const Tuple& row : table.rows()) {
        Tuple key;
        bool has_null = false;
        for (int p : src_pos) {
          if (row[p].is_null()) has_null = true;
          key.push_back(row[p]);
        }
        if (has_null) continue;  // SQL semantics: NULL FK is not checked.
        if (keys.find(key) == keys.end()) {
          return FailedPrecondition("table " + name +
                                    ": dangling foreign key into " +
                                    fk.ref_table);
        }
      }
    }
  }
  return OkStatus();
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.size();
  return n;
}

namespace {
const char* SqlType(ColumnType t) {
  switch (t) {
    case ColumnType::kAny:
      return "TEXT";
    case ColumnType::kBool:
      return "BOOLEAN";
    case ColumnType::kInt:
      return "BIGINT";
    case ColumnType::kDouble:
      return "DOUBLE PRECISION";
    case ColumnType::kString:
      return "VARCHAR(255)";
  }
  return "TEXT";
}

std::string ColumnList(const std::vector<std::string>& cols) {
  std::string out;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols[i];
  }
  return out;
}
}  // namespace

std::string RenderSqlDdl(const std::vector<TableSchema>& schemas) {
  std::ostringstream os;
  for (const TableSchema& schema : schemas) {
    os << "CREATE TABLE " << schema.name << " (\n";
    bool first = true;
    for (const ColumnDef& col : schema.columns) {
      if (!first) os << ",\n";
      first = false;
      os << "  " << col.name << " " << SqlType(col.type);
      if (!col.nullable) os << " NOT NULL";
    }
    if (!schema.primary_key.empty()) {
      os << ",\n  PRIMARY KEY (" << ColumnList(schema.primary_key) << ")";
    }
    for (const auto& unique : schema.unique_keys) {
      os << ",\n  UNIQUE (" << ColumnList(unique) << ")";
    }
    for (const ForeignKeyDef& fk : schema.foreign_keys) {
      os << ",\n  ";
      if (!fk.name.empty()) os << "CONSTRAINT " << fk.name << " ";
      os << "FOREIGN KEY (" << ColumnList(fk.columns) << ") REFERENCES "
         << fk.ref_table << " (" << ColumnList(fk.ref_columns) << ")";
    }
    os << "\n);\n\n";
  }
  return os.str();
}

}  // namespace kgm::rel
