// Minimal in-memory relational engine.
//
// This is the "relational target system" of the paper (Section 5.3): the
// SSST translator emits relational schemas (Relations, Fields, Predicates,
// ForeignKeys per Figure 7) that are enforced here, and the instance pipeline
// (Section 6) loads from / flushes to these tables.  The engine supports
// typed columns, primary keys, unique constraints, foreign keys, insertion
// with constraint checking, and full-database referential validation.

#ifndef KGM_REL_RELATIONAL_H_
#define KGM_REL_RELATIONAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/value.h"

namespace kgm::rel {

// Declared column types.  kAny accepts every Value kind.
enum class ColumnType {
  kAny = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* ColumnTypeName(ColumnType t);

// True if `v` conforms to `t` (nulls are governed by `nullable`).
bool ValueMatchesType(const Value& v, ColumnType t);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kAny;
  bool nullable = true;
};

struct ForeignKeyDef {
  std::string name;                       // constraint name (may be empty)
  std::vector<std::string> columns;       // referencing columns
  std::string ref_table;                  // referenced table
  std::vector<std::string> ref_columns;   // referenced columns (its key)
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;              // column names
  std::vector<std::vector<std::string>> unique_keys; // extra unique constraints
  std::vector<ForeignKeyDef> foreign_keys;

  // Index of column `name`, or -1.
  int ColumnIndex(std::string_view name) const;
  size_t arity() const { return columns.size(); }
};

using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x12345;
    for (const Value& v : t) h = HashCombine(h, v.Hash());
    return h;
  }
};

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  // Inserts a row, checking arity, column types, nullability, primary-key
  // and unique-constraint violations.  Foreign keys are validated at the
  // database level (ValidateForeignKeys), mirroring deferred constraints.
  Status Insert(Tuple row);

  // Inserts without any checking (bulk loads from trusted translators).
  void InsertUnchecked(Tuple row);

  // Rows whose column `col` equals `v`.
  std::vector<const Tuple*> Lookup(std::string_view col,
                                   const Value& v) const;

  // The row matching primary-key values `key`, if any.
  const Tuple* FindByPrimaryKey(const Tuple& key) const;
  // Its index, or -1.
  int64_t FindRowIndexByPrimaryKey(const Tuple& key) const;

  // Updates one cell (UPDATE ... SET col = v).  Rejects type mismatches
  // and changes to primary-key or unique columns.
  Status UpdateValue(size_t row, std::string_view col, Value v);

 private:
  Tuple ProjectKey(const Tuple& row,
                   const std::vector<int>& positions) const;

  TableSchema schema_;
  std::vector<Tuple> rows_;
  std::vector<int> pk_positions_;
  std::vector<std::vector<int>> unique_positions_;
  std::unordered_map<Tuple, size_t, TupleHash> pk_index_;
  std::vector<std::unordered_map<Tuple, size_t, TupleHash>> unique_indexes_;
};

class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status CreateTable(TableSchema schema);
  bool HasTable(std::string_view name) const;
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  // Table names in creation order.
  std::vector<std::string> TableNames() const;

  // Checks every foreign key of every table; reports the first violation.
  Status ValidateForeignKeys() const;

  size_t TotalRows() const;

 private:
  std::vector<std::string> order_;
  std::map<std::string, Table, std::less<>> tables_;
};

// Renders ANSI-style DDL (CREATE TABLE with PRIMARY KEY, UNIQUE, FOREIGN KEY
// and NOT NULL clauses) for the whole database schema.  This is the
// "enforcement by DDL statements" of Section 2.2 / Section 5.
std::string RenderSqlDdl(const std::vector<TableSchema>& schemas);

}  // namespace kgm::rel

#endif  // KGM_REL_RELATIONAL_H_
