#!/usr/bin/env bash
# One-shot verification: tier-1 ctest on the regular build, program lint
# over the shipped examples, then the ASan and TSan builds (KGM_SANITIZE)
# with the race-sensitive suites.
#
#   tools/check.sh            # full run (regular + lint + asan + tsan)
#   tools/check.sh --fast     # regular build + ctest + program lint only
#   tools/check.sh --tidy     # clang-tidy over src/ (skips if not installed)
#
# Sanitizer builds reuse build-asan/ and build-tsan/ so incremental runs
# are cheap.  Exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
TIDY=0
[[ "${1:-}" == "--fast" ]] && FAST=1
[[ "${1:-}" == "--tidy" ]] && TIDY=1

run() {
  echo "== $*"
  "$@"
}

if [[ "$TIDY" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping tidy run"
    exit 0
  fi
  # clang-tidy reads the compile flags from build/compile_commands.json
  # (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
  run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  mapfile -t SOURCES < <(find src -name '*.cc' | sort)
  run clang-tidy -p build --quiet "${SOURCES[@]}"
  echo "OK (clang-tidy)"
  exit 0
fi

# No explicit generator: reconfiguring an existing build dir with a
# different one is a cmake error, so stick to the platform default.
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j
JOBS="$(nproc)"

run ctest --test-dir build --output-on-failure -j "$JOBS"

# Shipped example programs must lint clean (exit 0 = no warnings/errors).
run ./build/examples/kgmctl lint --schema company examples/programs/*

# Cost-based join planning must never change results: `kgmctl explain`
# materializes every shipped program twice — plan_mode off and greedy —
# and exits non-zero unless the outputs hash-match bit for bit.  The
# plan listing itself is noise here, so stdout is dropped; set -e still
# fails the script on a mismatch.
echo "== kgmctl explain (planner off-vs-greedy differential)"
./build/examples/kgmctl explain \
  examples/programs/owns.mlog examples/programs/control.mlog \
  examples/programs/stakeholders.mlog examples/programs/family.mlog \
  examples/programs/closelinks.mlog examples/programs/reach.vlog \
  > /dev/null

if [[ "$FAST" == 1 ]]; then
  echo "OK (fast: sanitizer builds skipped)"
  exit 0
fi

# The sanitizer runs focus on the suites that exercise the concurrent
# engine and serving paths; everything else is covered by the regular
# build above.  vadalog_ includes the deterministic-chase suites
# (vadalog_engine_chase_parallel_test and the engine parallel tests),
# whose frozen-screen + shared-dedup + ordered-replay protocol is the
# main thing TSan needs to see.  finkg_incremental runs the
# incremental-vs-rebuild differential at 1 and 4 engine threads, which
# exercises delta maintenance (DRed + stratum recompute) under both
# sanitizers.  vadalog_ also matches vadalog_planner_test (greedy-vs-off
# bit-identity at 1/4/16 threads) and vadalog_database_test (the
# cardinality-statistics registers the planner reads).  vadalog_ also
# matches vadalog_magic_test; finkg_pointquery runs the point-query
# differential (magic/QSQR vs full materialization) at 1 and 4 threads.
SANITIZER_TESTS='vadalog_|base_thread_pool|service_|finkg_incremental|finkg_pointquery'

run cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DKGM_SANITIZE=address
run cmake --build build-asan -j
run ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R "$SANITIZER_TESTS"

run cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DKGM_SANITIZE=thread
run cmake --build build-tsan -j
run ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R "$SANITIZER_TESTS"

echo "OK (regular + asan + tsan)"
