// E9 — instance views and Algorithm 2 phases (google-benchmark).
//
// Measures view generation (static analysis of Sigma), instance loading,
// and the end-to-end materialization of the derived-OWNS component at
// growing data sizes.

#include <benchmark/benchmark.h>

#include "base/check.h"
#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "metalog/parser.h"

namespace {

using namespace kgm;

void BM_GenerateViews(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  auto sigma = metalog::ParseMetaProgram(finkg::kControlProgram).value();
  for (auto _ : state) {
    auto in = instance::GenerateInputViews(schema, sigma, 234);
    auto out = instance::GenerateOutputViews(schema, sigma, 234);
    KGM_CHECK(in.ok() && out.ok());
    benchmark::DoNotOptimize(in->size() + out->size());
  }
}
BENCHMARK(BM_GenerateViews)->Unit(benchmark::kMicrosecond);

pg::PropertyGraph MakeInstance(size_t companies) {
  finkg::GeneratorConfig config;
  config.num_companies = companies;
  config.num_persons = companies * 3 / 2;
  config.seed = 42;
  return finkg::ShareholdingNetwork::Generate(config).ToInstanceGraph();
}

void BM_LoadInstance(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  pg::PropertyGraph data = MakeInstance(state.range(0));
  for (auto _ : state) {
    auto loaded = instance::LoadInstance(schema, data);
    KGM_CHECK(loaded.ok());
    benchmark::DoNotOptimize(loaded->loaded_attributes);
  }
  state.counters["nodes"] = static_cast<double>(data.num_nodes());
}
BENCHMARK(BM_LoadInstance)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_MaterializeOwns(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  size_t new_edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    pg::PropertyGraph data = MakeInstance(state.range(0));
    state.ResumeTiming();
    auto stats = instance::Materialize(schema, finkg::kOwnsProgram, &data);
    KGM_CHECK(stats.ok());
    new_edges = stats->new_edges;
  }
  state.counters["owns_edges"] = static_cast<double>(new_edges);
}
BENCHMARK(BM_MaterializeOwns)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
