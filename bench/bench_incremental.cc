// Incremental materialization benchmark: update-to-queryable latency of a
// small EDB delta, maintained incrementally vs rebuilt from scratch.
//
// Engine level: the finkg `control` (aggregates -> per-stratum recompute)
// and `close_links` (Skolem existentials -> DRed) programs are materialized
// over the OWNS ownership graph, then a stream of shareholding-update
// batches is applied through IncrementalView::Apply and, for comparison, a
// fresh Engine::Run over the same post-delta EDB.  Each batch's maintained
// database is verified against the rebuild (set-equal under DRed, ordered
// otherwise), so the speedups reported here are for *correct* maintenance.
//
// Service level: KgService::ApplyDelta (delta snapshot, only touched
// relations re-encoded) vs a full Publish of the same graph.
//
// The results are written as an "incremental" section spliced into
// BENCH_reasoner.json (created if absent), next to the other reasoner perf
// sections tracked across PRs.
//
// Usage: bench_incremental [output.json] [companies] [persons] [batches]
//                          [batch_size]
// Default output file: BENCH_reasoner.json in the working directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "finkg/update_feed.h"
#include "instance/pipeline.h"
#include "metalog/catalog.h"
#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "service/service.h"
#include "vadalog/engine.h"
#include "vadalog/incremental.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Section writer: builds the "incremental" JSON object in memory so it can
// be spliced into an existing BENCH_reasoner.json.
struct SectionWriter {
  std::ostringstream out;
  int depth = 1;
  bool first = true;

  SectionWriter() { out << std::fixed << std::setprecision(6); }
  void Indent() {
    for (int i = 0; i < depth; ++i) out << "  ";
  }
  void Comma() {
    if (!first) out << ",\n";
    first = false;
    Indent();
  }
  void Open(const char* key, char bracket) {
    Comma();
    if (key != nullptr) out << '"' << key << "\": " << bracket << '\n';
    else out << bracket << '\n';
    ++depth;
    first = true;
  }
  void Close(char bracket) {
    out << '\n';
    --depth;
    Indent();
    out << bracket;
    first = false;
  }
  void Field(const char* key, double v) {
    Comma();
    out << '"' << key << "\": " << v;
  }
  void Field(const char* key, size_t v) {
    Comma();
    out << '"' << key << "\": " << v;
  }
  void Field(const char* key, const char* v) {
    Comma();
    out << '"' << key << "\": \"" << v << '"';
  }
};

struct CompiledProgram {
  kgm::metalog::MetaProgram meta;
  kgm::metalog::GraphCatalog catalog;
};

// Parses a finkg MetaLog program against the Company KG schema.  The
// vadalog translation is re-run per use because Engine and IncrementalView
// take the program by value.
bool PrepareProgram(const char* source, CompiledProgram* out) {
  auto parsed = kgm::metalog::ParseMetaProgram(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  out->meta = std::move(*parsed);
  out->catalog =
      kgm::instance::SchemaCatalog(kgm::finkg::CompanyKgSchema());
  kgm::Status absorbed = out->catalog.AbsorbProgram(out->meta);
  if (!absorbed.ok()) {
    std::fprintf(stderr, "absorb failed: %s\n", absorbed.ToString().c_str());
    return false;
  }
  return true;
}

bool Translate(const CompiledProgram& cp, kgm::vadalog::Program* out) {
  auto mtv = kgm::metalog::TranslateMetaProgram(cp.meta, cp.catalog);
  if (!mtv.ok()) {
    std::fprintf(stderr, "translate failed: %s\n",
                 mtv.status().ToString().c_str());
    return false;
  }
  *out = std::move(mtv->program);
  return true;
}

struct EngineBenchResult {
  bool ok = false;
  const char* mode = "";
  double initial_seconds = 0;
  double apply_seconds_total = 0;
  double rebuild_seconds_total = 0;
  size_t batches = 0;
  size_t overdeleted = 0;
  size_t rederived = 0;
  size_t strata_skipped = 0;
  size_t strata_recomputed = 0;
  double overdelete_seconds = 0;
  double rederive_seconds = 0;
  double insert_seconds = 0;
};

// Materializes `cp` over `edb`, then streams `batches` update batches
// through IncrementalView::Apply, rebuilding from scratch after each batch
// to time the baseline and verify the maintained database.
EngineBenchResult RunEngineBench(const CompiledProgram& cp,
                                 const kgm::vadalog::FactDb& edb,
                                 size_t batches, size_t batch_size,
                                 uint64_t seed) {
  using namespace kgm;
  using namespace kgm::vadalog;
  EngineBenchResult r;

  Program program;
  if (!Translate(cp, &program)) return r;
  IncrementalView view(std::move(program));
  if (!view.status().ok()) {
    std::fprintf(stderr, "view rejected: %s\n",
                 view.status().ToString().c_str());
    return r;
  }
  auto t0 = Clock::now();
  Status init = view.Initialize(edb.Clone());
  r.initial_seconds = Seconds(t0, Clock::now());
  if (!init.ok()) {
    std::fprintf(stderr, "initialize failed: %s\n", init.ToString().c_str());
    return r;
  }
  r.mode = MaintenanceModeName(view.mode());

  finkg::UpdateFeedConfig feed_config;
  feed_config.edge_pred = "OWNS";
  feed_config.batch_size = batch_size;
  feed_config.seed = seed;
  finkg::UpdateFeed feed(edb.Get("OWNS"), feed_config);

  for (size_t b = 0; b < batches; ++b) {
    EdbDelta delta = feed.NextBatch();
    auto a0 = Clock::now();
    Status applied = view.Apply(delta);
    r.apply_seconds_total += Seconds(a0, Clock::now());
    if (!applied.ok()) {
      std::fprintf(stderr, "apply failed: %s\n", applied.ToString().c_str());
      return r;
    }
    r.overdeleted += view.last_stats().overdeleted;
    r.rederived += view.last_stats().rederived;
    r.strata_skipped += view.last_stats().strata_skipped;
    r.strata_recomputed += view.last_stats().strata_recomputed;
    r.overdelete_seconds += view.last_stats().overdelete_seconds;
    r.rederive_seconds += view.last_stats().rederive_seconds;
    r.insert_seconds += view.last_stats().insert_seconds;

    // Baseline: a full chase over the same post-delta EDB.
    Program rebuild_program;
    if (!Translate(cp, &rebuild_program)) return r;
    FactDb rebuilt = view.edb().Clone();
    Engine engine(std::move(rebuild_program));
    auto f0 = Clock::now();
    Status ran = engine.Run(&rebuilt);
    r.rebuild_seconds_total += Seconds(f0, Clock::now());
    if (!ran.ok()) {
      std::fprintf(stderr, "rebuild failed: %s\n", ran.ToString().c_str());
      return r;
    }
    const bool ordered = view.mode() != MaintenanceMode::kDRed;
    std::string diff;
    if (DescribeFirstDifference(view.db(), rebuilt, ordered, &diff)) {
      std::fprintf(stderr, "maintained database diverged at batch %zu: %s\n",
                   b, diff.c_str());
      return r;
    }
    ++r.batches;
  }
  r.ok = true;
  return r;
}

struct ServiceBenchResult {
  bool ok = false;
  double publish_seconds_total = 0;
  double apply_delta_seconds_total = 0;
  size_t publishes = 0;
  size_t deltas = 0;
};

// KgService::ApplyDelta (delta snapshot) vs full Publish of the same
// graph: the serving-layer update-to-queryable comparison.
ServiceBenchResult RunServiceBench(const kgm::finkg::ShareholdingNetwork& net,
                                   size_t batches, size_t batch_size,
                                   uint64_t seed) {
  using namespace kgm;
  ServiceBenchResult r;
  service::KgService svc;
  svc.Publish(net.ToOwnershipGraph());

  // Full-publish baseline: same graph, complete re-encode + swap.
  for (size_t i = 0; i < batches; ++i) {
    pg::PropertyGraph graph = net.ToOwnershipGraph();
    auto p0 = Clock::now();
    svc.Publish(std::move(graph));
    r.publish_seconds_total += Seconds(p0, Clock::now());
    ++r.publishes;
  }

  auto snap = svc.CurrentSnapshot();
  auto owns = snap->facts.find("OWNS");
  if (owns == snap->facts.end()) {
    std::fprintf(stderr, "snapshot has no OWNS relation\n");
    return r;
  }
  finkg::UpdateFeedConfig feed_config;
  feed_config.edge_pred = "OWNS";
  feed_config.batch_size = batch_size;
  feed_config.seed = seed;
  finkg::UpdateFeed feed(owns->second.get(), feed_config);
  for (size_t i = 0; i < batches; ++i) {
    vadalog::EdbDelta delta = feed.NextBatch();
    auto d0 = Clock::now();
    auto epoch = svc.ApplyDelta(delta);
    r.apply_delta_seconds_total += Seconds(d0, Clock::now());
    if (!epoch.ok()) {
      std::fprintf(stderr, "ApplyDelta failed: %s\n",
                   epoch.status().ToString().c_str());
      return r;
    }
    ++r.deltas;
  }
  r.ok = true;
  return r;
}

// Splices `section` (the value of the "incremental" key) into the JSON
// object in `path`, replacing an existing "incremental" section is not
// attempted: the file is produced fresh by reasoner_perf_report each run.
bool WriteSection(const std::string& path, const std::string& section) {
  std::string existing;
  if (FILE* in = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  std::string out;
  const size_t close = existing.rfind('}');
  if (close != std::string::npos) {
    out = existing.substr(0, close);
    // Trim trailing whitespace so the comma lands after the last field.
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == ' ' || out.back() == '\t')) {
      out.pop_back();
    }
    out += ",\n  \"incremental\": " + section + "\n}\n";
  } else {
    out = "{\n  \"incremental\": " + section + "\n}\n";
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgm;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_reasoner.json";
  finkg::GeneratorConfig config;
  config.num_companies = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
  config.num_persons = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 600;
  const size_t batches = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 5;
  const size_t batch_size =
      argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 4;
  config.seed = 2022;

  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  pg::PropertyGraph ownership = net.ToOwnershipGraph(/*include_persons=*/true);

  struct Step {
    const char* name;
    const char* source;
  };
  const Step steps[] = {
      {"control", finkg::kControlProgram},
      {"close_links", finkg::kCloseLinksProgram},
  };

  SectionWriter w;
  w.Open(nullptr, '{');
  w.Field("benchmark", "incremental_materialization");
  w.Field("companies", static_cast<size_t>(config.num_companies));
  w.Field("persons", static_cast<size_t>(config.num_persons));
  w.Field("batch_size", batch_size);
  w.Field("batches", batches);
  w.Open("programs", '[');
  size_t failures = 0;
  for (const Step& step : steps) {
    CompiledProgram cp;
    if (!PrepareProgram(step.source, &cp)) return 1;
    vadalog::FactDb edb = metalog::EncodeGraph(ownership, cp.catalog);
    const vadalog::Relation* owns = edb.Get("OWNS");
    EngineBenchResult r =
        RunEngineBench(cp, edb, batches, batch_size, /*seed=*/7);
    if (!r.ok) {
      ++failures;
      continue;
    }
    w.Open(nullptr, '{');
    w.Field("component", step.name);
    w.Field("mode", r.mode);
    w.Field("owns_edges", owns != nullptr ? owns->size() : 0);
    w.Field("initial_seconds", r.initial_seconds);
    w.Field("apply_seconds_total", r.apply_seconds_total);
    w.Field("apply_seconds_mean", r.apply_seconds_total / r.batches);
    w.Field("rebuild_seconds_total", r.rebuild_seconds_total);
    w.Field("rebuild_seconds_mean", r.rebuild_seconds_total / r.batches);
    if (r.apply_seconds_total > 0) {
      w.Field("speedup_vs_rebuild",
              r.rebuild_seconds_total / r.apply_seconds_total);
    }
    w.Field("overdeleted", r.overdeleted);
    w.Field("rederived", r.rederived);
    w.Field("strata_skipped", r.strata_skipped);
    w.Field("strata_recomputed", r.strata_recomputed);
    w.Field("verified_against_rebuild", "true");
    w.Close('}');
    std::printf(
        "%s (%s): apply %.4fs vs rebuild %.4fs over %zu batches (%.1fx) "
        "[overdelete %.4fs rederive %.4fs insert %.4fs]\n",
        step.name, r.mode, r.apply_seconds_total, r.rebuild_seconds_total,
        r.batches,
        r.apply_seconds_total > 0
            ? r.rebuild_seconds_total / r.apply_seconds_total
            : 0.0,
        r.overdelete_seconds, r.rederive_seconds, r.insert_seconds);
  }
  w.Close(']');

  ServiceBenchResult s =
      RunServiceBench(net, batches, batch_size, /*seed=*/11);
  if (s.ok) {
    w.Open("service", '{');
    w.Field("publish_seconds_mean", s.publish_seconds_total / s.publishes);
    w.Field("apply_delta_seconds_mean",
            s.apply_delta_seconds_total / s.deltas);
    if (s.apply_delta_seconds_total > 0) {
      w.Field("speedup_vs_publish",
              (s.publish_seconds_total / s.publishes) /
                  (s.apply_delta_seconds_total / s.deltas));
    }
    w.Field("delta_epochs", s.deltas);
    w.Close('}');
    std::printf("service: publish %.4fs vs apply-delta %.4fs per update\n",
                s.publish_seconds_total / s.publishes,
                s.apply_delta_seconds_total / s.deltas);
  } else {
    ++failures;
  }
  w.Close('}');

  if (failures > 0) return 1;
  if (!WriteSection(out_path, w.out.str())) return 1;
  std::printf("wrote incremental section into %s\n", out_path.c_str());
  return 0;
}
