// E2 — the Section 6 performance experiment.
//
// The paper reports, for the Bank of Italy control component on a 16-core
// 128 GB VM: ~160 minutes of reasoning versus ~15 minutes of loading and
// flushing (ratio ~10.7:1), with the input views materialized once into a
// staging area.  This harness reruns the same staged pipeline
// (Algorithm 2) on synthetic ownership graphs of growing size and prints
// the three phase timings and their ratio, plus the "direct" execution
// that skips the instance machinery (the optimization discussed under
// "Performance Considerations").

#include <chrono>
#include <cstdio>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"
#include "metalog/runner.h"

int main() {
  using namespace kgm;
  using Clock = std::chrono::steady_clock;

  core::SuperSchema schema = finkg::CompanyKgSchema();
  const size_t company_scales[] = {500, 1000, 2000, 5000, 10000, 20000};

  std::printf("E2: control materialization, staged pipeline vs direct\n");
  std::printf(
      "paper (BoI KG, 11.97M nodes): reason ~160 min, load+flush ~15 min, "
      "ratio ~10.7:1\n\n");
  std::printf(
      "%10s %10s %10s %10s %10s %10s %10s\n", "companies", "owns-edges",
      "load(s)", "reason(s)", "flush(s)", "ratio", "direct(s)");

  for (size_t companies : company_scales) {
    finkg::GeneratorConfig config;
    config.num_companies = companies;
    config.num_persons = companies * 3 / 2;
    config.seed = 42;
    finkg::ShareholdingNetwork net =
        finkg::ShareholdingNetwork::Generate(config);

    // Staged pipeline (Algorithm 2).
    pg::PropertyGraph data = net.ToOwnershipGraph();
    size_t owns_edges = data.EdgesWithLabel("OWNS").size();
    auto staged = instance::Materialize(schema, finkg::kControlProgram,
                                        &data);
    if (!staged.ok()) {
      std::printf("staged run failed: %s\n",
                  staged.status().ToString().c_str());
      return 1;
    }
    double load_flush = staged->load_seconds + staged->flush_seconds;
    double ratio = load_flush > 0 ? staged->reason_seconds / load_flush : 0;

    // Direct execution: the same MetaLog program straight on the data
    // graph, without instance constructs or views.
    pg::PropertyGraph direct_data = net.ToOwnershipGraph();
    auto t0 = Clock::now();
    auto direct = metalog::RunMetaLogSource(finkg::kControlProgram,
                                            &direct_data);
    auto t1 = Clock::now();
    if (!direct.ok()) {
      std::printf("direct run failed: %s\n",
                  direct.status().ToString().c_str());
      return 1;
    }
    std::printf("%10zu %10zu %10.3f %10.3f %10.3f %9.1f:1 %10.3f\n",
                companies, owns_edges, staged->load_seconds,
                staged->reason_seconds, staged->flush_seconds, ratio,
                std::chrono::duration<double>(t1 - t0).count());
    // Sanity: both paths derive the same number of control edges.
    if (data.EdgesWithLabel("CONTROLS").size() !=
        direct_data.EdgesWithLabel("CONTROLS").size()) {
      std::printf("MISMATCH: staged %zu vs direct %zu CONTROLS edges\n",
                  data.EdgesWithLabel("CONTROLS").size(),
                  direct_data.EdgesWithLabel("CONTROLS").size());
      return 1;
    }
  }
  std::printf(
      "\nshape check: reasoning dominates load+flush at every scale and "
      "the gap widens with size; the direct path shows the overhead the "
      "staging area trades for model independence.\n");
  return 0;
}
