// E4 — MetaLog translation and path-pattern evaluation (google-benchmark).
//
// Measures MTV compilation of the Section 4 example programs and the
// evaluation of the Example 4.3 DESCFROM closure on generalization chains
// of growing depth.

#include <benchmark/benchmark.h>

#include "base/check.h"
#include "metalog/mtv.h"
#include "metalog/parser.h"
#include "metalog/runner.h"

namespace {

using namespace kgm;

const char kControlSource[] = R"(
  (x: Business) -> exists c (x)[c: CONTROLS](x).
  (x: Business)[: CONTROLS](z: Business)
      [: OWNS; percentage: w](y: Business),
  v = msum(w, <z>), v > 0.5 -> exists c (x)[c: CONTROLS](y).
)";

const char kDescFromSource[] = R"(
  (x: SM_Node) ([: SM_CHILD]- / [: SM_PARENT])* (y: SM_Node)
    -> exists w (x)[w: DESCFROM](y).
)";

metalog::GraphCatalog BusinessCatalog() {
  metalog::GraphCatalog c;
  c.AddNodeLabel("Business", {"name"});
  c.AddEdgeLabel("OWNS", {"percentage"});
  c.AddEdgeLabel("CONTROLS");
  return c;
}

void BM_ParseMetaLog(benchmark::State& state) {
  for (auto _ : state) {
    auto program = metalog::ParseMetaProgram(kControlSource);
    KGM_CHECK(program.ok());
    benchmark::DoNotOptimize(program->rules.size());
  }
}
BENCHMARK(BM_ParseMetaLog)->Unit(benchmark::kMicrosecond);

void BM_MtvTranslateControl(benchmark::State& state) {
  auto program = metalog::ParseMetaProgram(kControlSource).value();
  metalog::GraphCatalog catalog = BusinessCatalog();
  for (auto _ : state) {
    auto result = metalog::TranslateMetaProgram(program, catalog);
    KGM_CHECK(result.ok());
    benchmark::DoNotOptimize(result->program.rules.size());
  }
}
BENCHMARK(BM_MtvTranslateControl)->Unit(benchmark::kMicrosecond);

void BM_MtvTranslateStar(benchmark::State& state) {
  auto program = metalog::ParseMetaProgram(kDescFromSource).value();
  metalog::GraphCatalog catalog;
  catalog.AddNodeLabel("SM_Node", {"name"});
  catalog.AddEdgeLabel("SM_CHILD");
  catalog.AddEdgeLabel("SM_PARENT");
  catalog.AddEdgeLabel("DESCFROM");
  for (auto _ : state) {
    auto result = metalog::TranslateMetaProgram(program, catalog);
    KGM_CHECK(result.ok());
    benchmark::DoNotOptimize(result->helper_predicates.size());
  }
}
BENCHMARK(BM_MtvTranslateStar)->Unit(benchmark::kMicrosecond);

// DESCFROM over a generalization chain of depth D: D*(D+1)/2 proper pairs
// plus D+1 reflexive ones.
void BM_DescFromChain(benchmark::State& state) {
  const int64_t depth = state.range(0);
  size_t edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    pg::PropertyGraph g;
    pg::NodeId prev = g.AddNode("SM_Node", {{"name", Value(int64_t{0})}});
    for (int64_t i = 1; i <= depth; ++i) {
      pg::NodeId next = g.AddNode("SM_Node", {{"name", Value(i)}});
      pg::NodeId gen = g.AddNode("SM_Generalization");
      g.AddEdge(gen, prev, "SM_PARENT");
      g.AddEdge(gen, next, "SM_CHILD");
      prev = next;
    }
    state.ResumeTiming();
    auto result = metalog::RunMetaLogSource(kDescFromSource, &g);
    KGM_CHECK(result.ok());
    edges = g.EdgesWithLabel("DESCFROM").size();
  }
  state.counters["descfrom_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_DescFromChain)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Reflexive vs the paper's published non-reflexive beta translation
// (ablation for DESIGN.md decision 3).
void BM_DescFromNonReflexive(benchmark::State& state) {
  const int64_t depth = state.range(0);
  auto program = metalog::ParseMetaProgram(kDescFromSource).value();
  for (auto _ : state) {
    state.PauseTiming();
    pg::PropertyGraph g;
    pg::NodeId prev = g.AddNode("SM_Node", {{"name", Value(int64_t{0})}});
    for (int64_t i = 1; i <= depth; ++i) {
      pg::NodeId next = g.AddNode("SM_Node", {{"name", Value(i)}});
      pg::NodeId gen = g.AddNode("SM_Generalization");
      g.AddEdge(gen, prev, "SM_PARENT");
      g.AddEdge(gen, next, "SM_CHILD");
      prev = next;
    }
    state.ResumeTiming();
    metalog::MetaRunOptions options;
    options.mtv.reflexive_star = false;
    auto result = metalog::RunMetaLog(program, &g, options);
    KGM_CHECK(result.ok());
  }
}
BENCHMARK(BM_DescFromNonReflexive)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
