// E5/E6/E10 — SSST translation benchmarks (google-benchmark).
//
// Times the Figure 6 (PG) and Figure 8 (relational) translations of the
// Company KG, plus the declarative-vs-native ablation (E10) on synthetic
// super-schemas of growing size and hierarchy depth.

#include <benchmark/benchmark.h>

#include "base/check.h"
#include "finkg/company_kg.h"
#include "translate/ssst.h"

namespace {

using namespace kgm;

// A synthetic super-schema: `width` independent hierarchies of `depth`
// levels, each node with 3 attributes, one edge per adjacent pair.
core::SuperSchema SyntheticSchema(int width, int depth) {
  core::SuperSchema s("synthetic");
  for (int w = 0; w < width; ++w) {
    std::string root = "N" + std::to_string(w) + "_0";
    s.AddNode(root, {core::IdAttr("id"), core::Attr("a"),
                     core::OptAttr("b", core::AttrType::kInt)});
    for (int d = 1; d < depth; ++d) {
      std::string name = "N" + std::to_string(w) + "_" + std::to_string(d);
      std::string parent =
          "N" + std::to_string(w) + "_" + std::to_string(d - 1);
      s.AddNode(name, {core::Attr("x" + std::to_string(d),
                                  core::AttrType::kDouble)});
      s.AddGeneralization(parent, {name}, false, true);
    }
    if (w > 0) {
      s.AddEdge("E" + std::to_string(w), "N" + std::to_string(w - 1) + "_0",
                root, core::Cardinality::ZeroOrMore(),
                core::Cardinality::ZeroOrMore(),
                {core::Attr("weight", core::AttrType::kDouble)});
    }
  }
  KGM_CHECK(s.Validate().ok());
  return s;
}

void BM_PgDeclarativeCompanyKg(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  for (auto _ : state) {
    auto result = translate::TranslateToPgDeclarative(schema);
    KGM_CHECK(result.ok());
    benchmark::DoNotOptimize(result->node_types.size());
  }
}
BENCHMARK(BM_PgDeclarativeCompanyKg)->Unit(benchmark::kMillisecond);

void BM_PgNativeCompanyKg(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  for (auto _ : state) {
    auto result = translate::TranslateToPgNative(schema);
    KGM_CHECK(result.ok());
    benchmark::DoNotOptimize(result->node_types.size());
  }
}
BENCHMARK(BM_PgNativeCompanyKg)->Unit(benchmark::kMillisecond);

void BM_PgDeclarativeSynthetic(benchmark::State& state) {
  core::SuperSchema schema =
      SyntheticSchema(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto result = translate::TranslateToPgDeclarative(schema);
    KGM_CHECK(result.ok());
  }
  state.counters["nodes"] = static_cast<double>(schema.nodes().size());
}
BENCHMARK(BM_PgDeclarativeSynthetic)
    ->Args({4, 2})
    ->Args({8, 3})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PgNativeSynthetic(benchmark::State& state) {
  core::SuperSchema schema =
      SyntheticSchema(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto result = translate::TranslateToPgNative(schema);
    KGM_CHECK(result.ok());
  }
}
BENCHMARK(BM_PgNativeSynthetic)
    ->Args({4, 2})
    ->Args({8, 3})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RelationalCompanyKg(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  for (auto _ : state) {
    auto result = translate::TranslateToRelationalNative(schema);
    KGM_CHECK(result.ok());
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_RelationalCompanyKg)->Unit(benchmark::kMicrosecond);

void BM_CsvCompanyKg(benchmark::State& state) {
  core::SuperSchema schema = finkg::CompanyKgSchema();
  for (auto _ : state) {
    auto files = translate::TranslateToCsvNative(schema);
    benchmark::DoNotOptimize(files.size());
  }
}
BENCHMARK(BM_CsvCompanyKg)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
