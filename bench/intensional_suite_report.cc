// E11 — the intensional components of the Company KG beyond control:
// derived OWNS, numberOfStakeholders, families, and close links
// (integrated ownership per Romei et al. + the ECB close-links criteria),
// each materialized through Algorithm 2 with per-phase timing.

#include <cstdio>
#include <cstdlib>

#include "finkg/company_kg.h"
#include "finkg/generator.h"
#include "instance/pipeline.h"

int main(int argc, char** argv) {
  using namespace kgm;
  core::SuperSchema schema = finkg::CompanyKgSchema();

  // Optional worker count: `intensional_suite_report [num_threads]`
  // (0 = hardware concurrency, 1 = sequential legacy evaluation).
  instance::MaterializeOptions options;
  options.engine.num_threads = 1;
  if (argc > 1) {
    options.engine.num_threads =
        static_cast<size_t>(std::strtoul(argv[1], nullptr, 10));
  }

  finkg::GeneratorConfig config;
  config.num_companies = 400;
  config.num_persons = 600;
  config.seed = 2022;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  pg::PropertyGraph data = net.ToInstanceGraph();

  std::printf(
      "E11: intensional component suite on %zu entities / %zu holdings\n\n",
      net.num_entities(), net.holdings().size());
  std::printf("%-24s %7s %9s %9s %9s %10s %9s %9s\n", "component", "threads",
              "load(s)", "reason(s)", "flush(s)", "vlog-rules", "new-edges",
              "new-nodes");

  struct Step {
    const char* name;
    const char* program;
  };
  const Step steps[] = {
      {"OWNS", finkg::kOwnsProgram},
      {"CONTROLS", finkg::kControlProgram},
      {"numberOfStakeholders", finkg::kStakeholdersProgram},
      {"families", finkg::kFamilyProgram},
      {"close links", finkg::kCloseLinksProgram},
  };
  for (const Step& step : steps) {
    auto stats = instance::Materialize(schema, step.program, &data, options);
    if (!stats.ok()) {
      std::printf("%s FAILED: %s\n", step.name,
                  stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %7zu %9.3f %9.3f %9.3f %10zu %9zu %9zu\n", step.name,
                stats->engine_stats.threads_used, stats->load_seconds,
                stats->reason_seconds, stats->flush_seconds,
                stats->vadalog_rules, stats->new_edges, stats->new_nodes);
    std::printf("%-24s strata:", "");
    for (double s : stats->engine_stats.stratum_seconds) {
      std::printf(" %.3fs", s);
    }
    std::printf("  probes: %zu  firings: %zu\n",
                stats->engine_stats.join_probes,
                stats->engine_stats.rule_firings);
    const auto& es = stats->engine_stats;
    if (es.threads_used > 1) {
      std::printf(
          "%-24s shards: %zu  staged: %zu (+%zu dup)  contended: %zu  "
          "merge: %.3fs  aggfin: %.3fs\n",
          "", es.shard_count, es.staged_inserts, es.staged_duplicates,
          es.shard_contentions, es.merge_seconds, es.agg_finalize_seconds);
    }
  }

  std::printf("\nderived totals:\n");
  for (const char* label : {"OWNS", "CONTROLS", "IS_RELATED_TO",
                            "BELONGS_TO_FAMILY", "FAMILY_OWNS", "IO",
                            "CLOSE_LINK"}) {
    std::printf("  %-18s %zu edges\n", label,
                data.EdgesWithLabel(label).size());
  }
  std::printf("  %-18s %zu nodes\n", "Family",
              data.NodesWithLabel("Family").size());
  return 0;
}
