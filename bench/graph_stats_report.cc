// E1 — Section 2.1 graph statistics.
//
// Regenerates the paper's statistics block for the shareholding graph on
// synthetic networks of growing size and prints each measured column next
// to the published Bank of Italy figures.  Success criterion (DESIGN.md):
// shape, not absolute values — near-unit SCCs with a small largest SCC,
// one giant WCC among many small ones, avg in-degree > avg out-degree
// (~3.1 vs ~1.8), hub degrees far above the averages, tiny clustering,
// power-law tail.

#include <chrono>
#include <cstdio>

#include "analytics/graph_stats.h"
#include "finkg/generator.h"

int main() {
  using namespace kgm;
  using Clock = std::chrono::steady_clock;

  struct Scale {
    size_t companies;
    size_t persons;
  };
  const Scale scales[] = {{4000, 6000}, {20000, 30000}, {80000, 120000}};

  std::printf("E1: Section 2.1 statistics at three synthetic scales\n");
  std::printf("(paper graph: 11.97M nodes / 14.18M edges)\n\n");
  for (const Scale& scale : scales) {
    finkg::GeneratorConfig config;
    config.num_companies = scale.companies;
    config.num_persons = scale.persons;
    config.seed = 42;
    auto t0 = Clock::now();
    finkg::ShareholdingNetwork net =
        finkg::ShareholdingNetwork::Generate(config);
    auto t1 = Clock::now();
    analytics::GraphStatsReport report =
        analytics::ComputeGraphStats(net.ToDigraph());
    auto t2 = Clock::now();
    std::printf("--- scale: %zu companies + %zu persons ---\n",
                scale.companies, scale.persons);
    std::printf("%s", analytics::RenderStatsTable(report).c_str());
    std::printf(
        "  generate %.3fs, analyze %.3fs\n\n",
        std::chrono::duration<double>(t1 - t0).count(),
        std::chrono::duration<double>(t2 - t1).count());
  }
  std::printf(
      "shape check: avg-in > avg-out, SCCs ~1, giant WCC, hubs, power "
      "law — see EXPERIMENTS.md for the recorded comparison.\n");
  return 0;
}
