// E3 — reasoner micro-benchmarks (google-benchmark).
//
// Covers the Vadalog engine primitives the paper's programs exercise:
// linear and non-linear transitive closure, the company-control program
// (Example 4.2) with monotonic aggregation, existential (Skolem) heads,
// and stratified negation.

#include <benchmark/benchmark.h>

#include "base/check.h"
#include "base/rng.h"
#include "finkg/generator.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace {

using namespace kgm;
using vadalog::FactDb;

void AddChain(FactDb* db, int64_t n) {
  for (int64_t i = 0; i + 1 < n; ++i) {
    db->Add("edge", {Value(i), Value(i + 1)});
  }
}

void BM_TransitiveClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    FactDb db;
    AddChain(&db, n);
    Status s = vadalog::RunProgram(R"(
      edge(x, y) -> path(x, y).
      path(x, y), edge(y, z) -> path(x, z).
    )", &db);
    KGM_CHECK(s.ok());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Parallel fixpoint scaling: same non-linear closure, second argument is
// the worker count (1 = sequential legacy path).
void BM_TransitiveClosureParallel(benchmark::State& state) {
  const int64_t n = state.range(0);
  vadalog::EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    Rng rng(7);
    for (int64_t i = 0; i < 2 * n; ++i) {
      db.Add("edge", {Value(static_cast<int64_t>(rng.NextBelow(n))),
                      Value(static_cast<int64_t>(rng.NextBelow(n)))});
    }
    state.ResumeTiming();
    Status s = vadalog::RunProgram(R"(
      edge(x, y) -> path(x, y).
      path(x, y), edge(y, z) -> path(x, z).
    )", &db, options);
    KGM_CHECK(s.ok());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_TransitiveClosureParallel)
    ->Args({300, 1})->Args({300, 2})->Args({300, 4})->Args({300, 8})
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosureRandom(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    Rng rng(7);
    for (int64_t i = 0; i < 2 * n; ++i) {
      db.Add("edge", {Value(static_cast<int64_t>(rng.NextBelow(n))),
                      Value(static_cast<int64_t>(rng.NextBelow(n)))});
    }
    state.ResumeTiming();
    Status s = vadalog::RunProgram(R"(
      edge(x, y) -> path(x, y).
      path(x, y), edge(y, z) -> path(x, z).
    )", &db);
    KGM_CHECK(s.ok());
  }
}
BENCHMARK(BM_TransitiveClosureRandom)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

// The Example 4.2 control program over the synthetic ownership network.
// Second argument is the engine worker count.
void BM_CompanyControl(benchmark::State& state) {
  const size_t companies = state.range(0);
  vadalog::EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  finkg::GeneratorConfig config;
  config.num_companies = companies;
  config.num_persons = companies;
  config.seed = 42;
  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);
  size_t controls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    for (uint32_t c = 0; c < companies; ++c) {
      db.Add("company", {Value(static_cast<int64_t>(c))});
    }
    for (const finkg::Holding& h : net.holdings()) {
      if (!net.IsCompany(h.holder)) continue;
      db.Add("own", {Value(static_cast<int64_t>(h.holder)),
                     Value(static_cast<int64_t>(h.company)),
                     Value(h.pct)});
    }
    state.ResumeTiming();
    Status s = vadalog::RunProgram(R"(
      company(x) -> controls(x, x).
      controls(x, z), own(z, y, w), v = msum(w, <z>), v > 0.5
        -> controls(x, y).
    )", &db, options);
    KGM_CHECK(s.ok());
    controls = db.Get("controls")->size();
  }
  state.counters["controls"] = static_cast<double>(controls);
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_CompanyControl)
    ->Args({500, 1})->Args({2000, 1})->Args({8000, 1})
    ->Args({2000, 2})->Args({2000, 4})->Args({2000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ExistentialSkolemChase(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    for (int64_t i = 0; i < n; ++i) db.Add("node", {Value(i)});
    state.ResumeTiming();
    Status s = vadalog::RunProgram(R"(
      node(x) -> exists e edge_of(e, x).
      edge_of(e, x) -> tagged(e).
    )", &db);
    KGM_CHECK(s.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExistentialSkolemChase)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedNegation(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    for (int64_t i = 0; i < n; ++i) {
      db.Add("node", {Value(i)});
      if (i % 3 == 0) db.Add("marked", {Value(i)});
    }
    state.ResumeTiming();
    Status s = vadalog::RunProgram(
        "node(x), not marked(x) -> unmarked(x).", &db);
    KGM_CHECK(s.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StratifiedNegation)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Second argument is the engine worker count: > 1 exercises the parallel
// scan partitions, the barrier fold and the parallel group-emission round.
void BM_StratifiedAggregation(benchmark::State& state) {
  const int64_t n = state.range(0);
  vadalog::EngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    Rng rng(9);
    for (int64_t i = 0; i < n; ++i) {
      db.Add("holds", {Value(static_cast<int64_t>(rng.NextBelow(n / 4))),
                       Value(static_cast<int64_t>(rng.NextBelow(n / 8))),
                       Value(rng.NextDouble())});
    }
    state.ResumeTiming();
    Status s = vadalog::RunProgram(
        "holds(p, c, w), v = sum(w, <p>) -> total(c, v).", &db, options);
    KGM_CHECK(s.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_StratifiedAggregation)
    ->Args({10000, 1})->Args({50000, 1})
    ->Args({50000, 2})->Args({50000, 4})->Args({50000, 8})
    ->Unit(benchmark::kMillisecond);

// Shard-count sweep at a fixed worker count: measures how much of the
// insert path is lock-limited versus dedup-limited.
void BM_TransitiveClosureShards(benchmark::State& state) {
  const int64_t n = 300;
  vadalog::EngineOptions options;
  options.num_threads = 8;
  options.num_shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    FactDb db;
    Rng rng(7);
    for (int64_t i = 0; i < 2 * n; ++i) {
      db.Add("edge", {Value(static_cast<int64_t>(rng.NextBelow(n))),
                      Value(static_cast<int64_t>(rng.NextBelow(n)))});
    }
    state.ResumeTiming();
    Status s = vadalog::RunProgram(R"(
      edge(x, y) -> path(x, y).
      path(x, y), edge(y, z) -> path(x, z).
    )", &db, options);
    KGM_CHECK(s.ok());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
  state.counters["shards"] = static_cast<double>(options.num_shards);
}
BENCHMARK(BM_TransitiveClosureShards)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
