// Point-query benchmark: closed-loop bound-query load against KgService,
// magic-sets routing vs materialize-then-scan, at 1/8/32 clients.
//
// The workload is the controls-style reachability query: transitive
// ownership closure over the OWNS edges of a generated Company KG, asked
// with the source company bound (`reach(c, ?)`).  Each phase fires the
// same binding mix twice — once with the point-query router enabled
// (magic-sets rewrite answers from the query's cone) and once with
// `use_point_query = false` (full materialization, then filter; the
// honest baseline whose join_probes include the output scan).  The result
// cache is disabled so every request measures evaluation.
//
// Per phase the harness reports throughput, latency percentiles, total
// join probes and fallback counts; the whole run is spliced as a
// "point_query" section into BENCH_service.json (run after bench_service,
// which creates the file).  The probe-reduction factor is asserted: magic
// must beat the materialize baseline by >= 5x on this workload or the
// bench exits nonzero — probe counts are deterministic, so this is a
// correctness-of-optimization gate, not a timing gate.
//
// Usage: bench_pointquery [output.json] [seconds_per_phase] [companies]
//                         [persons]
// Default output file: BENCH_service.json in the working directory.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "finkg/generator.h"
#include "service/service.h"

namespace {

using Clock = std::chrono::steady_clock;

// Section writer: builds the "point_query" JSON object in memory so it
// can be spliced into bench_service's BENCH_service.json.
struct SectionWriter {
  std::ostringstream out;
  int depth = 1;
  bool first = true;

  SectionWriter() { out << std::fixed << std::setprecision(6); }
  void Indent() {
    for (int i = 0; i < depth; ++i) out << "  ";
  }
  void Comma() {
    if (!first) out << ",\n";
    first = false;
    Indent();
  }
  void Open(const char* key, char bracket) {
    Comma();
    if (key != nullptr) out << '"' << key << "\": " << bracket << '\n';
    else out << bracket << '\n';
    ++depth;
    first = true;
  }
  void Close(char bracket) {
    out << '\n';
    --depth;
    Indent();
    out << bracket;
    first = false;
  }
  void Field(const char* key, double v) {
    Comma();
    out << '"' << key << "\": " << v;
  }
  void Field(const char* key, size_t v) {
    Comma();
    out << '"' << key << "\": " << v;
  }
  void Field(const char* key, const char* v) {
    Comma();
    out << '"' << key << "\": \"" << v << '"';
  }
};

// Transitive ownership reach (examples/programs/reach.vlog): the
// controls-style closure the point-query acceptance criterion targets.
constexpr const char* kReachProgram =
    "@input(\"OWNS\").\n"
    "OWNS(_e, x, y, _w) -> reach(x, y).\n"
    "reach(x, y), OWNS(_e, y, z, _w) -> reach(x, z).\n"
    "@output(\"reach\").\n";

struct PhaseResult {
  size_t queries = 0;
  size_t errors = 0;
  size_t fallbacks = 0;     // answered by materialize despite routing on
  size_t probes_total = 0;  // engine join probes across all requests
  double seconds = 0;
  double qps = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

// Runs `clients` closed-loop threads firing bound reach queries for
// `duration`; `use_point_query = false` forces the materialize baseline.
PhaseResult RunPhase(kgm::service::KgService& svc,
                     const std::vector<kgm::Value>& sources, size_t clients,
                     double duration, bool use_point_query) {
  std::atomic<size_t> queries{0};
  std::atomic<size_t> errors{0};
  std::atomic<size_t> fallbacks{0};
  std::atomic<size_t> probes{0};
  std::atomic<bool> stop{false};
  std::mutex latencies_mu;
  std::vector<double> latencies;

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local;
      size_t i = c;  // stagger the binding mix across clients
      while (!stop.load(std::memory_order_relaxed)) {
        kgm::service::QueryRequest request;
        request.program = kReachProgram;
        request.language = kgm::service::QueryLanguage::kVadalog;
        request.output = "reach";
        request.use_result_cache = false;  // measure evaluation, not lookup
        request.use_point_query = use_point_query;
        request.bound_args = {sources[i++ % sources.size()], std::nullopt};
        const Clock::time_point q0 = Clock::now();
        auto result = svc.Query(request);
        local.push_back(
            std::chrono::duration<double>(Clock::now() - q0).count());
        queries.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          probes.fetch_add(result->join_probes, std::memory_order_relaxed);
          if (!result->point_fallback.empty() && use_point_query) {
            fallbacks.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(duration));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  PhaseResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  r.queries = queries.load();
  r.errors = errors.load();
  r.fallbacks = fallbacks.load();
  r.probes_total = probes.load();
  r.qps = r.seconds > 0 ? static_cast<double>(r.queries) / r.seconds : 0;
  std::sort(latencies.begin(), latencies.end());
  r.p50 = Percentile(latencies, 0.50);
  r.p95 = Percentile(latencies, 0.95);
  r.p99 = Percentile(latencies, 0.99);
  return r;
}

void WritePhase(SectionWriter& w, const char* key, const PhaseResult& r) {
  w.Open(key, '{');
  w.Field("queries", r.queries);
  w.Field("errors", r.errors);
  w.Field("fallbacks", r.fallbacks);
  w.Field("qps", r.qps);
  w.Field("latency_p50", r.p50);
  w.Field("latency_p95", r.p95);
  w.Field("latency_p99", r.p99);
  w.Field("probes_total", r.probes_total);
  if (r.queries > 0) {
    w.Field("probes_per_query", static_cast<double>(r.probes_total) /
                                    static_cast<double>(r.queries));
  }
  w.Close('}');
}

// Splices `section` (the value of the "point_query" key) into the JSON
// object in `path`.  bench_service produces the file fresh each run, so
// replacing an existing section is not attempted.
bool WriteSection(const std::string& path, const std::string& section) {
  std::string existing;
  if (FILE* in = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  std::string out;
  const size_t close = existing.rfind('}');
  if (close != std::string::npos) {
    out = existing.substr(0, close);
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == ' ' || out.back() == '\t')) {
      out.pop_back();
    }
    out += ",\n  \"point_query\": " + section + "\n}\n";
  } else {
    out = "{\n  \"point_query\": " + section + "\n}\n";
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgm;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_service.json";
  const double phase_seconds = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;
  finkg::GeneratorConfig config;
  config.num_companies = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 200;
  config.num_persons = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 300;
  config.seed = 2022;

  finkg::ShareholdingNetwork net =
      finkg::ShareholdingNetwork::Generate(config);

  const size_t kMaxClients = 32;
  service::KgServiceOptions options;
  options.num_workers = kMaxClients;
  options.queue_capacity = kMaxClients * 4;
  service::KgService svc(options);
  svc.Publish(net.ToOwnershipGraph(/*include_persons=*/true));

  // Binding mix: distinct owner oids pulled from the snapshot's OWNS
  // relation (column 1 is `from`), so every query has a non-empty cone.
  std::vector<Value> sources;
  {
    auto snap = svc.CurrentSnapshot();
    auto owns = snap->facts.find("OWNS");
    if (owns == snap->facts.end() || owns->second->size() == 0) {
      std::fprintf(stderr, "snapshot has no OWNS edges\n");
      return 1;
    }
    std::set<std::string> seen;
    for (const vadalog::Tuple& t : owns->second->tuples()) {
      if (seen.insert(t[1].ToString()).second) sources.push_back(t[1]);
      if (sources.size() >= 16) break;
    }
  }

  SectionWriter w;
  w.Open(nullptr, '{');
  w.Field("benchmark", "point_query");
  w.Field("program", "reach_over_owns");
  w.Field("companies", static_cast<size_t>(config.num_companies));
  w.Field("persons", static_cast<size_t>(config.num_persons));
  w.Field("bindings", sources.size());
  w.Field("phase_seconds", phase_seconds);
  w.Field("host_cpus",
          static_cast<size_t>(std::thread::hardware_concurrency()));
  w.Field("note",
          "closed-loop clients share cores with the service workers; on a "
          "1-cpu CI runner compare modes within this run only, probe "
          "counts are the machine-independent signal");

  size_t total_errors = 0;
  double worst_reduction = 0;
  bool have_reduction = false;
  w.Open("clients", '[');
  for (size_t clients : {size_t{1}, size_t{8}, size_t{32}}) {
    PhaseResult magic =
        RunPhase(svc, sources, clients, phase_seconds, true);
    PhaseResult mat =
        RunPhase(svc, sources, clients, phase_seconds, false);
    total_errors += magic.errors + mat.errors;

    const double magic_ppq =
        magic.queries > 0 ? static_cast<double>(magic.probes_total) /
                                static_cast<double>(magic.queries)
                          : 0;
    const double mat_ppq =
        mat.queries > 0 ? static_cast<double>(mat.probes_total) /
                              static_cast<double>(mat.queries)
                        : 0;
    const double reduction = magic_ppq > 0 ? mat_ppq / magic_ppq : 0;
    if (!have_reduction || reduction < worst_reduction) {
      worst_reduction = reduction;
      have_reduction = true;
    }

    w.Open(nullptr, '{');
    w.Field("clients", clients);
    WritePhase(w, "magic", magic);
    WritePhase(w, "materialize", mat);
    w.Field("probe_reduction", reduction);
    w.Field("speedup", mat.qps > 0 && magic.qps > 0 ? magic.qps / mat.qps : 0);
    w.Close('}');

    std::printf(
        "bench_pointquery: %2zu clients  magic %6.0f qps (p50 %.4fs, "
        "%.0f probes/q)  materialize %6.0f qps (p50 %.4fs, %.0f probes/q)  "
        "probe reduction %.1fx\n",
        clients, magic.qps, magic.p50, magic_ppq, mat.qps, mat.p50, mat_ppq,
        reduction);
  }
  w.Close(']');
  w.Field("probe_reduction_min", worst_reduction);
  w.Close('}');

  if (total_errors > 0) {
    std::fprintf(stderr, "bench_pointquery: %zu errors\n", total_errors);
    return 1;
  }
  if (!have_reduction || worst_reduction < 5.0) {
    std::fprintf(stderr,
                 "bench_pointquery: probe reduction %.2fx below the 5x "
                 "acceptance floor\n",
                 worst_reduction);
    return 1;
  }
  if (!WriteSection(out_path, w.out.str())) return 1;
  std::printf("wrote point_query section into %s\n", out_path.c_str());
  return 0;
}
